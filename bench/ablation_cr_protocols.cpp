// Ablation A — the three C/R protocols side by side.
//
// The architectural claim of the paper (sections 2 and 6) is that Starfish
// runs coordinated and uncoordinated checkpointing protocols within one
// framework and lets them be compared on the same platform. This bench does
// exactly that: the same ring application runs under no checkpointing,
// stop-and-sync, Chandy-Lamport, and uncoordinated checkpointing, and we
// report completion-time overhead (how much the protocol blocks the
// application), checkpoint counts, and bytes written.
#include <cstdio>

#include "bench_util.hpp"

using namespace starfish;

namespace {

struct Outcome {
  double completion_s = -1;
  size_t images = 0;
  uint64_t bytes = 0;
  double first_epoch_s = -1;
};

Outcome run(daemon::CrProtocol protocol, bool forked = false) {
  core::ClusterOptions opts;
  opts.nodes = 4;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", benchutil::ring_program(120, 100000));
  daemon::JobSpec job;
  job.name = "bench";
  job.binary = "ring";
  job.nprocs = 4;
  job.protocol = protocol;
  job.level = daemon::CkptLevel::kVm;
  job.ckpt_interval = protocol == daemon::CrProtocol::kNone ? 0 : sim::milliseconds(80);
  job.forked_ckpt = forked;
  cluster.submit(job);
  Outcome out;
  if (!cluster.run_until_done("bench", sim::seconds(120.0))) return out;
  out.completion_s = sim::to_seconds(cluster.engine().now());
  out.images = cluster.store().image_count();
  out.bytes = cluster.store().bytes_written();
  auto d = cluster.store().epoch_duration("bench", 1);
  if (d) out.first_epoch_s = sim::to_seconds(*d);
  return out;
}

}  // namespace

int main() {
  benchutil::header("Ablation A: C/R protocols side by side (same app, same cluster)");
  std::printf("ring application, 120 rounds, 4 ranks, checkpoint every 80 ms\n\n");
  const Outcome base = run(daemon::CrProtocol::kNone);
  std::printf("%-16s %12s %10s %10s %14s %12s\n", "protocol", "complete[s]", "overhead",
              "images", "bytes written", "ckpt[s]");
  std::printf("%-16s %12.4f %9.1f%% %10zu %14s %12s\n", "none", base.completion_s, 0.0,
              base.images, util::format_bytes(base.bytes).c_str(), "-");
  for (auto protocol : {daemon::CrProtocol::kStopAndSync, daemon::CrProtocol::kChandyLamport,
                        daemon::CrProtocol::kUncoordinated}) {
    const Outcome o = run(protocol);
    std::printf("%-16s %12.4f %9.1f%% %10zu %14s ", daemon::protocol_name(protocol),
                o.completion_s, 100.0 * (o.completion_s - base.completion_s) / base.completion_s,
                o.images, util::format_bytes(o.bytes).c_str());
    if (o.first_epoch_s >= 0) {
      std::printf("%12.4f\n", o.first_epoch_s);
    } else {
      std::printf("%12s\n", "n/a");
    }
  }
  const Outcome forked = run(daemon::CrProtocol::kStopAndSync, /*forked=*/true);
  std::printf("%-16s %12.4f %9.1f%% %10zu %14s ", "sync+forked", forked.completion_s,
              100.0 * (forked.completion_s - base.completion_s) / base.completion_s,
              forked.images, util::format_bytes(forked.bytes).c_str());
  if (forked.first_epoch_s >= 0) {
    std::printf("%12.4f\n", forked.first_epoch_s);
  } else {
    std::printf("%12s\n", "n/a");
  }
  std::printf("\nshape checks: stop-and-sync freezes the whole application per epoch and\n"
              "costs the most wall-clock; forked (copy-on-write) stop-and-sync resumes\n"
              "the app after the in-memory snapshot and recovers most of that cost\n"
              "(libckpt's optimization); Chandy-Lamport snapshots without any global\n"
              "freeze; uncoordinated writes per-process images with no coordination.\n");
  return 0;
}
