// Ablation: GCS dissemination topology vs membership size (PR 8).
//
// The flat Ensemble-style group has two O(n) walls: the sequencer sends
// every ORDER to all n members, and every member heartbeats every other
// member (O(n^2) datagrams per period group-wide). The k-ary dissemination
// tree (gcs/endpoint.cpp, DESIGN.md section 15) caps the sequencer at O(k)
// sends per multicast and aggregates heartbeats at interior nodes. This
// sweep measures, at n = 16 / 64 / 256 members for both topologies:
//   * sequencer ORDER sends per multicast (the headline O(n) -> O(k)),
//   * wire datagrams per heartbeat period group-wide,
//   * an all-members marker barrier (every member multicasts, everyone
//     delivers all n markers — the GCS cost floor under a coordinated
//     checkpoint's barrier),
//   * view-change latency after an interior-node crash (crash -> every
//     survivor installs the shrunken view).
// All latencies are virtual-time; wire counts are exact. The simulator
// charges no per-message CPU, so latency stays near-flat while the message
// counts expose the real scaling difference (EXPERIMENTS.md).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gcs/endpoint.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

using namespace starfish;

namespace {

util::Bytes marker_bytes() {
  util::Bytes b;
  b.push_back(std::byte{0x5a});
  return b;
}

struct ScaleResult {
  double seq_sends_per_mcast = 0;
  double hb_packets_per_period = 0;
  double barrier_ms = 0;
  double view_change_ms = 0;
  uint64_t sim_ns = 0;
  uint64_t events = 0;
  uint64_t host_ns = 0;
};

uint64_t counter_value(const obs::Hub& hub, const char* name) {
  const obs::Counter* c = hub.metrics.find_counter(name);
  return c != nullptr ? c->value() : 0;
}

ScaleResult run_scale(size_t n, gcs::Topology topo) {
  benchutil::HostTimer timer;
  obs::Hub hub;
  sim::Engine eng(/*seed=*/1);
  eng.set_obs(&hub);
  net::Network net(eng);
  gcs::GroupConfig config;
  config.topology = topo;

  std::vector<uint64_t> delivered(n, 0);
  std::vector<uint64_t> view_id(n, 0);
  std::vector<std::unique_ptr<gcs::GroupEndpoint>> eps;
  std::vector<net::NetAddr> founders;
  for (size_t i = 0; i < n; ++i) {
    auto host = net.add_host("node" + std::to_string(i));
    founders.push_back({host->id(), config.control_port});
  }
  for (size_t i = 0; i < n; ++i) {
    gcs::Callbacks cbs;
    cbs.on_view = [&view_id, i](const gcs::View& v) { view_id[i] = v.view_id; };
    cbs.on_message = [&delivered, i](gcs::MemberId, const util::Bytes&) { ++delivered[i]; };
    eps.push_back(std::make_unique<gcs::GroupEndpoint>(
        net, *net.host(static_cast<sim::HostId>(i)), config, std::move(cbs)));
  }
  for (auto& ep : eps) ep->start_founding(founders);
  eng.run_for(sim::seconds(1));  // settle: founding view + steady heartbeats

  ScaleResult r;

  // Idle heartbeat window: 1 s of virtual time, no application traffic.
  const double periods = static_cast<double>(sim::seconds(1)) /
                         static_cast<double>(config.heartbeat_period);
  uint64_t pkts0 = net.packets_sent();
  eng.run_for(sim::seconds(1));
  r.hb_packets_per_period = static_cast<double>(net.packets_sent() - pkts0) / periods;

  // Sequencer cost: 32 multicasts from a mid-tree member (ORDER_REQ up,
  // ORDER fan-out/relay down).
  constexpr int kMulticasts = 32;
  const uint64_t seq0 = counter_value(hub, "gcs.seq.order_sends");
  const size_t sender = n / 2;
  net.host(static_cast<sim::HostId>(sender))->spawn("bench-sender", [&, sender] {
    for (int k = 0; k < kMulticasts; ++k) {
      eps[sender]->multicast(marker_bytes());
      eng.sleep(sim::milliseconds(5));
    }
  });
  eng.run_for(sim::milliseconds(kMulticasts * 5 + 200));
  r.seq_sends_per_mcast =
      static_cast<double>(counter_value(hub, "gcs.seq.order_sends") - seq0) / kMulticasts;

  // Marker barrier: every member multicasts once; done when every member
  // has delivered all n markers.
  std::vector<uint64_t> target(n);
  for (size_t i = 0; i < n; ++i) target[i] = delivered[i] + n;
  const sim::Time barrier_start = eng.now();
  for (size_t i = 0; i < n; ++i) {
    net.host(static_cast<sim::HostId>(i))->spawn("barrier", [&eps, i] {
      eps[i]->multicast(marker_bytes());
    });
  }
  for (int guard = 0; guard < 4000; ++guard) {
    bool done = true;
    for (size_t i = 0; i < n && done; ++i) done = delivered[i] >= target[i];
    if (done) break;
    eng.run_for(sim::milliseconds(1));
  }
  r.barrier_ms = static_cast<double>(eng.now() - barrier_start) / 1e6;

  // View change: crash an interior node (host 1 relays to its subtree under
  // kTree) and wait for every survivor to install the shrunken view.
  const uint64_t v0 = view_id[0];
  const sim::Time crash_start = eng.now();
  net.crash_host(1);
  for (int guard = 0; guard < 8000; ++guard) {
    bool done = true;
    for (size_t i = 0; i < n && done; ++i) {
      if (i == 1) continue;
      done = view_id[i] > v0;
    }
    if (done) break;
    eng.run_for(sim::milliseconds(1));
  }
  r.view_change_ms = static_cast<double>(eng.now() - crash_start) / 1e6;

  r.sim_ns = static_cast<uint64_t>(eng.now());
  r.events = eng.events_executed();
  r.host_ns = timer.ns();
  return r;
}

const char* topo_name(gcs::Topology t) { return t == gcs::Topology::kTree ? "tree" : "flat"; }

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter json(argc, argv);
  benchutil::MetricsReporter metrics(argc, argv);

  std::printf("GCS dissemination scaling: flat vs tree (k=4)\n");
  std::printf("%8s %6s %16s %16s %12s %14s\n", "topo", "n", "seq_sends/mcast",
              "hb_pkts/period", "barrier_ms", "view_chg_ms");
  for (size_t n : {16u, 64u, 256u}) {
    for (gcs::Topology topo : {gcs::Topology::kFlat, gcs::Topology::kTree}) {
      const ScaleResult r = run_scale(n, topo);
      std::printf("%8s %6zu %16.1f %16.1f %12.3f %14.3f\n", topo_name(topo), n,
                  r.seq_sends_per_mcast, r.hb_packets_per_period, r.barrier_ms,
                  r.view_change_ms);
      const std::string base =
          "gcs_scale/topo=" + std::string(topo_name(topo)) + "/n=" + std::to_string(n);
      json.add({base + "/seq_sends_per_mcast", r.host_ns, r.sim_ns, r.events,
                r.seq_sends_per_mcast, 0});
      json.add({base + "/hb_packets_per_period", 0, r.sim_ns, 0, r.hb_packets_per_period, 0});
      json.add({base + "/barrier_ms", 0, r.sim_ns, 0, r.barrier_ms, 0});
      json.add({base + "/view_change_ms", 0, r.sim_ns, 0, r.view_change_ms, 0});
    }
  }
  if (!json.write("ablation_gcs_scale")) return 1;
  return metrics.write() ? 0 : 1;
}
