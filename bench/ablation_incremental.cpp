// Incremental-checkpointing ablation (libckpt's optimization, paper §6).
//
// A native application with a large, sparsely-mutating state checkpoints
// periodically under stop-and-sync. Full images rewrite the whole state
// every epoch; incremental images write only the dirty pages (with a full
// anchor every 4 epochs). We compare bytes written and checkpoint latency.
#include <cstdio>

#include "bench_util.hpp"
#include "util/rng.hpp"

using namespace starfish;

namespace {

struct Outcome {
  uint64_t bytes = 0;
  size_t images = 0;
  double mean_epoch_s = 0;
  uint64_t epochs = 0;
};

Outcome run(bool incremental, uint64_t state_bytes, int dirty_pages_per_step) {
  core::ClusterOptions opts;
  opts.nodes = 2;
  core::Cluster cluster(opts);
  cluster.registry().register_native("sparse", [state_bytes,
                                                dirty_pages_per_step](core::AppContext& ctx) {
    util::Bytes state(state_bytes, std::byte{0});
    int64_t step = 0;
    util::Rng rng(1234 + ctx.rank());
    ctx.set_state_capture([&] { return state; });
    ctx.set_state_restore([&](const util::Bytes& b) { state = b; });
    while (step < 150) {
      ctx.compute(sim::milliseconds(10));
      ++step;
      for (int p = 0; p < dirty_pages_per_step; ++p) {
        const size_t off = rng.below(state.size());
        state[off] = static_cast<std::byte>(step & 0xff);
      }
    }
  });
  daemon::JobSpec job;
  job.name = "sparse";
  job.binary = "sparse";
  job.nprocs = 2;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kNative;
  job.ckpt_interval = sim::milliseconds(60);
  job.incremental_ckpt = incremental;
  cluster.submit(job);
  Outcome out;
  if (!cluster.run_until_done("sparse", sim::seconds(300.0))) return out;
  out.bytes = cluster.store().bytes_written();
  out.images = cluster.store().image_count();
  // epoch_stats covers every completed epoch, including those whose
  // per-epoch timestamps checkpoint gc already folded away.
  const auto stats = cluster.store().epoch_stats("sparse");
  out.epochs = stats.epochs;
  out.mean_epoch_s =
      stats.epochs > 0 ? sim::to_seconds(stats.total) / static_cast<double>(stats.epochs) : 0;
  return out;
}

}  // namespace

int main() {
  benchutil::header("Incremental-checkpointing ablation (full vs page-delta images)");
  std::printf("native app, 2 ranks, periodic stop-and-sync; a handful of pages dirty\n"
              "between consecutive epochs; full anchor every 4 epochs\n\n");
  std::printf("%10s %6s %14s %14s %8s %12s\n", "state", "mode", "bytes written",
              "mean ckpt [s]", "epochs", "reduction");
  for (uint64_t mb : {1ull, 4ull}) {
    const uint64_t state_bytes = mb * 1024 * 1024;
    const Outcome full = run(false, state_bytes, 4);
    const Outcome incr = run(true, state_bytes, 4);
    std::printf("%8lluMB %6s %14s %14.4f %8llu %12s\n",
                static_cast<unsigned long long>(mb), "full",
                util::format_bytes(full.bytes).c_str(), full.mean_epoch_s,
                static_cast<unsigned long long>(full.epochs), "-");
    char red[32];
    std::snprintf(red, sizeof red, "%.1fx",
                  static_cast<double>(full.bytes) / static_cast<double>(incr.bytes));
    std::printf("%8lluMB %6s %14s %14.4f %8llu %12s\n",
                static_cast<unsigned long long>(mb), "incr",
                util::format_bytes(incr.bytes).c_str(), incr.mean_epoch_s,
                static_cast<unsigned long long>(incr.epochs), red);
  }
  std::printf("\nshape checks: bytes written drop by the dirty-page ratio; checkpoint\n"
              "latency drops with them (less data on the disk's critical path).\n");
  return 0;
}
