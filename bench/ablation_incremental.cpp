// Incremental-checkpointing ablation (libckpt's optimization, paper §6),
// plus the PR10 compressed-epoch sweep.
//
// Part 1 — a native application with a large, sparsely-mutating state
// checkpoints periodically under stop-and-sync. Full images rewrite the
// whole state every epoch; incremental images write only the dirty pages
// (with a full anchor every 4 epochs). We compare bytes written and
// checkpoint latency.
//
// Part 2 — the same sparse workload swept across the codec lever
// (STARFISH_CKPT_COMPRESS): off / lz / delta / delta+lz, reporting disk
// bytes written, the ckpt.codec.* raw-vs-encoded ratio, and mean epoch
// latency. The codec delta is the store-side cousin of part 1's page
// tracker: full images go in, O(dirty pages) frames hit the disk.
//
// Part 3 — replica warm-ship accounting: with the delta codec on, a warm
// epoch ships only its literal pages to each holder. We measure cold
// (anchor) and warm (one dirty page) ship bytes under off and delta+lz;
// the acceptance line is a >= 3x warm reduction with the cold ship
// unchanged (incompressible anchors fall back to raw frames).
#include <cstdio>

#include "bench_util.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/replica.hpp"
#include "ckpt/store.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

using namespace starfish;

namespace {

struct Outcome {
  uint64_t bytes = 0;
  size_t images = 0;
  double mean_epoch_s = 0;
  uint64_t epochs = 0;
  uint64_t codec_raw = 0;      ///< ckpt.codec.raw_bytes (0 when mode is off)
  uint64_t codec_encoded = 0;  ///< ckpt.codec.encoded_bytes
};

Outcome run(bool incremental, uint64_t state_bytes, int dirty_pages_per_step,
            ckpt::CompressMode mode = ckpt::CompressMode::kOff) {
  obs::Hub hub;
  obs::set_default_hub(&hub);
  Outcome out;
  {
    core::ClusterOptions opts;
    opts.nodes = 2;
    opts.ckpt_compress = mode;
    core::Cluster cluster(opts);
    cluster.registry().register_native("sparse", [state_bytes,
                                                  dirty_pages_per_step](core::AppContext& ctx) {
      util::Bytes state(state_bytes, std::byte{0});
      int64_t step = 0;
      util::Rng rng(1234 + ctx.rank());
      ctx.set_state_capture([&] { return state; });
      ctx.set_state_restore([&](const util::Bytes& b) { state = b; });
      while (step < 150) {
        ctx.compute(sim::milliseconds(10));
        ++step;
        for (int p = 0; p < dirty_pages_per_step; ++p) {
          const size_t off = rng.below(state.size());
          state[off] = static_cast<std::byte>(step & 0xff);
        }
      }
    });
    daemon::JobSpec job;
    job.name = "sparse";
    job.binary = "sparse";
    job.nprocs = 2;
    job.protocol = daemon::CrProtocol::kStopAndSync;
    job.level = daemon::CkptLevel::kNative;
    job.ckpt_interval = sim::milliseconds(60);
    job.incremental_ckpt = incremental;
    cluster.submit(job);
    if (!cluster.run_until_done("sparse", sim::seconds(300.0))) {
      obs::set_default_hub(nullptr);
      return out;
    }
    out.bytes = cluster.store().bytes_written();
    out.images = cluster.store().image_count();
    // epoch_stats covers every completed epoch, including those whose
    // per-epoch timestamps checkpoint gc already folded away.
    const auto stats = cluster.store().epoch_stats("sparse");
    out.epochs = stats.epochs;
    out.mean_epoch_s =
        stats.epochs > 0 ? sim::to_seconds(stats.total) / static_cast<double>(stats.epochs) : 0;
    if (const auto* c = hub.metrics.find_counter("ckpt.codec.raw_bytes")) out.codec_raw = c->value();
    if (const auto* c = hub.metrics.find_counter("ckpt.codec.encoded_bytes")) {
      out.codec_encoded = c->value();
    }
  }
  obs::set_default_hub(nullptr);
  return out;
}

// ------------------------------------------------ replica warm ship ----

struct ShipOutcome {
  uint64_t cold = 0;  ///< bytes shipped for the epoch-1 anchor (both holders)
  uint64_t warm = 0;  ///< bytes shipped for the 1-dirty-page epoch 2
};

/// Direct-store harness (same shape as the ReplicaWarmShip test): one rank,
/// a 64-page incompressible payload replicated to two holders, then a warm
/// epoch that rewrites 16 pages with structured (compressible) content —
/// the shape of a tracker table growing by a wave of similar records. The
/// replica tier's own page diff already skips clean pages under `off`, so
/// the codec's win here is lz shrinking the dirty literals below page
/// granularity. Deterministic — no cluster scheduling in the measurement.
ShipOutcome warm_ship(ckpt::CompressMode mode) {
  sim::Engine eng;
  net::Network net{eng};
  for (int i = 0; i < 4; ++i) net.add_host("node" + std::to_string(i));
  ckpt::CheckpointStore store{eng};
  store.enable_replica_backend(net);
  store.set_backend(ckpt::CkptBackend::kReplica);
  store.set_compress_mode(mode);
  util::Rng rng(7);
  util::Bytes cold_payload(64 * ckpt::kPageBytes);
  for (auto& b : cold_payload) b = static_cast<std::byte>(rng.next() & 0xff);
  util::Bytes warm_payload = cold_payload;
  for (size_t i = 0; i < 16 * ckpt::kPageBytes; ++i) {
    const size_t rec = i / 32;
    warm_payload[9 * ckpt::kPageBytes + i] =
        static_cast<std::byte>(i % 32 < 4 ? (rec >> (8 * (i % 32))) & 0xff : (i % 32) * 7);
  }
  auto image = [](util::Bytes payload) {
    ckpt::Image img;
    img.kind = ckpt::ImageKind::kPortable;
    img.file_bytes = ckpt::kPortableBaseBytes + payload.size();
    img.payload = std::move(payload);
    return img;
  };
  ShipOutcome out;
  net.host(0)->spawn("writer", [&] {
    store.put(*net.host(0), ckpt::CkptKey{"app", 0, 1}, image(cold_payload), {1, 2});
    out.cold = store.replicas()->bytes_shipped();
    store.put(*net.host(0), ckpt::CkptKey{"app", 0, 2}, image(warm_payload), {1, 2});
    out.warm = store.replicas()->bytes_shipped() - out.cold;
  });
  eng.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter reporter(argc, argv);

  benchutil::header("Incremental-checkpointing ablation (full vs page-delta images)");
  std::printf("native app, 2 ranks, periodic stop-and-sync; a handful of pages dirty\n"
              "between consecutive epochs; full anchor every 4 epochs\n\n");
  std::printf("%10s %6s %14s %14s %8s %12s\n", "state", "mode", "bytes written",
              "mean ckpt [s]", "epochs", "reduction");
  for (uint64_t mb : {1ull, 4ull}) {
    const uint64_t state_bytes = mb * 1024 * 1024;
    const Outcome full = run(false, state_bytes, 4);
    const Outcome incr = run(true, state_bytes, 4);
    std::printf("%8lluMB %6s %14s %14.4f %8llu %12s\n",
                static_cast<unsigned long long>(mb), "full",
                util::format_bytes(full.bytes).c_str(), full.mean_epoch_s,
                static_cast<unsigned long long>(full.epochs), "-");
    char red[32];
    std::snprintf(red, sizeof red, "%.1fx",
                  static_cast<double>(full.bytes) / static_cast<double>(incr.bytes));
    std::printf("%8lluMB %6s %14s %14.4f %8llu %12s\n",
                static_cast<unsigned long long>(mb), "incr",
                util::format_bytes(incr.bytes).c_str(), incr.mean_epoch_s,
                static_cast<unsigned long long>(incr.epochs), red);
  }
  std::printf("\nshape checks: bytes written drop by the dirty-page ratio; checkpoint\n"
              "latency drops with them (less data on the disk's critical path).\n");

  benchutil::header("Compressed-epoch sweep: STARFISH_CKPT_COMPRESS x disk bytes");
  std::printf("same sparse workload, full (non-incremental) images, 1 MB state;\n"
              "the codec lever turns those full puts into lz / delta frames\n\n");
  std::printf("%10s %14s %14s %12s %14s\n", "mode", "bytes written", "codec ratio",
              "reduction", "mean ckpt [s]");
  double off_bytes = 0;
  for (ckpt::CompressMode mode :
       {ckpt::CompressMode::kOff, ckpt::CompressMode::kLz, ckpt::CompressMode::kDelta,
        ckpt::CompressMode::kDeltaLz}) {
    benchutil::HostTimer timer;
    const Outcome o = run(false, 1024 * 1024, 4, mode);
    if (mode == ckpt::CompressMode::kOff) off_bytes = static_cast<double>(o.bytes);
    char ratio[32], red[32];
    if (o.codec_raw > 0 && o.codec_encoded > 0) {
      std::snprintf(ratio, sizeof ratio, "%.1fx",
                    static_cast<double>(o.codec_raw) / static_cast<double>(o.codec_encoded));
    } else {
      std::snprintf(ratio, sizeof ratio, "-");
    }
    std::snprintf(red, sizeof red, "%.1fx", off_bytes / static_cast<double>(o.bytes));
    std::printf("%10s %14s %14s %12s %14.4f\n", ckpt::compress_mode_name(mode),
                util::format_bytes(o.bytes).c_str(), ratio, red, o.mean_epoch_s);
    reporter.add({.name = std::string("ckpt_codec/disk/mode=") + ckpt::compress_mode_name(mode),
                  .host_ns = timer.ns(),
                  .sim_ns = static_cast<uint64_t>(sim::seconds(o.mean_epoch_s)),
                  .value = static_cast<double>(o.bytes)});
  }
  std::printf("\nshape checks: the zero-heavy sparse state compresses hard under lz;\n"
              "delta adds the O(dirty pages) warm epochs on top. Mean epoch latency\n"
              "must not regress vs off — smaller files spend less time on the disk.\n");

  benchutil::header("Replica warm-ship: delta+lz vs off (bytes to holders per epoch)");
  std::printf("1 rank, 64-page incompressible state, R=2 holders; epoch 1 is the\n"
              "full anchor, epoch 2 rewrites 16 pages with structured records\n\n");
  std::printf("%10s %14s %14s\n", "mode", "cold [B]", "warm [B]");
  ShipOutcome ship[2];
  int idx = 0;
  for (ckpt::CompressMode mode : {ckpt::CompressMode::kOff, ckpt::CompressMode::kDeltaLz}) {
    benchutil::HostTimer timer;
    ship[idx] = warm_ship(mode);
    std::printf("%10s %14llu %14llu\n", ckpt::compress_mode_name(mode),
                static_cast<unsigned long long>(ship[idx].cold),
                static_cast<unsigned long long>(ship[idx].warm));
    reporter.add({.name = std::string("ckpt_codec/replica_warm_bytes/mode=") +
                          ckpt::compress_mode_name(mode),
                  .host_ns = timer.ns(),
                  .value = static_cast<double>(ship[idx].warm)});
    reporter.add({.name = std::string("ckpt_codec/replica_cold_bytes/mode=") +
                          ckpt::compress_mode_name(mode),
                  .host_ns = timer.ns(),
                  .value = static_cast<double>(ship[idx].cold)});
    ++idx;
  }
  const double warm_red = static_cast<double>(ship[0].warm) / static_cast<double>(ship[1].warm);
  const double cold_ratio = static_cast<double>(ship[1].cold) / static_cast<double>(ship[0].cold);
  std::printf("\nwarm reduction %.1fx (acceptance: >= 3x); cold ratio %.3f\n"
              "(acceptance: <= 1.05 — incompressible anchors fall back to raw)\n",
              warm_red, cold_ratio);
  reporter.add({.name = "ckpt_codec/replica_warm_reduction", .value = warm_red});
  reporter.add({.name = "ckpt_codec/replica_cold_ratio", .value = cold_ratio});

  if (!reporter.write("ablation_incremental")) return 1;
  return 0;
}
