// Ablation C — lightweight groups vs one full group per application.
//
// Paper section 2.1: "it would have been possible to allocate a separate
// full blown process group for each application. But ... the lightweight
// group approach is more efficient." We measure both designs on the same
// workload: M applications, each spanning 3 of N daemons, then one node
// crashes. The full-group design runs a complete membership protocol
// (heartbeats, failure detection, flush, install) per application; the
// lightweight design runs ONE heavy protocol and projects the view onto the
// affected applications.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "gcs/endpoint.hpp"
#include "gcs/lightweight.hpp"

using namespace starfish;

namespace {

constexpr size_t kNodes = 9;
constexpr size_t kApps = 6;
constexpr size_t kAppSpan = 3;

struct Result {
  uint64_t packets = 0;       ///< control packets during the recovery window
  uint64_t view_events = 0;   ///< application-visible view changes delivered
};

/// Lightweight design: one heavy group over all daemons + M lw groups.
Result run_lightweight() {
  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<gcs::GroupEndpoint>> eps;
  std::vector<std::unique_ptr<gcs::LightweightGroups>> lw;
  std::vector<net::NetAddr> founders;
  for (size_t i = 0; i < kNodes; ++i) {
    auto host = net.add_host("n" + std::to_string(i));
    founders.push_back({host->id(), 1});
  }
  uint64_t view_events = 0;
  for (size_t i = 0; i < kNodes; ++i) {
    eps.push_back(std::make_unique<gcs::GroupEndpoint>(net, *net.host(i), gcs::GroupConfig{},
                                                       gcs::Callbacks{}));
    lw.push_back(std::make_unique<gcs::LightweightGroups>(*eps[i], gcs::Callbacks{}));
  }
  for (auto& ep : eps) ep->start_founding(founders);
  // App k spans daemons {k, k+1, k+2} (mod kNodes).
  for (size_t k = 0; k < kApps; ++k) {
    for (size_t j = 0; j < kAppSpan; ++j) {
      const size_t member = (k + j) % kNodes;
      gcs::LwCallbacks cbs;
      cbs.on_view = [&view_events](const gcs::LwView&) { ++view_events; };
      net.host(member)->spawn("join", [&, member, k] {
        lw[member]->lw_join("app" + std::to_string(k), cbs);
      });
    }
  }
  eng.run_for(sim::seconds(1.0));  // groups settle
  const uint64_t packets_before = net.packets_sent();
  view_events = 0;  // count only crash-induced events
  net.crash_host(0);
  eng.run_for(sim::seconds(2.0));  // detection + reconfiguration
  Result r;
  r.packets = net.packets_sent() - packets_before;
  r.view_events = view_events;
  for (auto& ep : eps) ep->shutdown();
  return r;
}

/// Baseline: a separate full process group per application (plus the
/// cluster-wide group), each with its own heartbeats and view protocol.
Result run_full_groups() {
  sim::Engine eng;
  net::Network net(eng);
  for (size_t i = 0; i < kNodes; ++i) net.add_host("n" + std::to_string(i));
  std::vector<std::unique_ptr<gcs::GroupEndpoint>> eps;
  uint64_t view_events = 0;

  // Cluster-wide group on port 1.
  std::vector<net::NetAddr> founders;
  for (size_t i = 0; i < kNodes; ++i) founders.push_back({net.host(i)->id(), 1});
  std::vector<gcs::GroupEndpoint*> cluster_group;
  for (size_t i = 0; i < kNodes; ++i) {
    eps.push_back(std::make_unique<gcs::GroupEndpoint>(net, *net.host(i), gcs::GroupConfig{},
                                                       gcs::Callbacks{}));
    cluster_group.push_back(eps.back().get());
  }
  for (auto* ep : cluster_group) ep->start_founding(founders);

  // One full group per application on port 10+k.
  for (size_t k = 0; k < kApps; ++k) {
    gcs::GroupConfig config;
    config.control_port = 10 + static_cast<net::Port>(k);
    std::vector<net::NetAddr> app_founders;
    for (size_t j = 0; j < kAppSpan; ++j) {
      app_founders.push_back({net.host((k + j) % kNodes)->id(), config.control_port});
    }
    std::vector<gcs::GroupEndpoint*> members;
    for (size_t j = 0; j < kAppSpan; ++j) {
      gcs::Callbacks cbs;
      cbs.on_view = [&view_events](const gcs::View&) { ++view_events; };
      eps.push_back(std::make_unique<gcs::GroupEndpoint>(
          net, *net.host((k + j) % kNodes), config, std::move(cbs)));
      members.push_back(eps.back().get());
    }
    for (auto* ep : members) ep->start_founding(app_founders);
  }
  eng.run_for(sim::seconds(1.0));
  const uint64_t packets_before = net.packets_sent();
  view_events = 0;
  net.crash_host(0);
  eng.run_for(sim::seconds(2.0));
  Result r;
  r.packets = net.packets_sent() - packets_before;
  r.view_events = view_events;
  for (auto& ep : eps) ep->shutdown();
  return r;
}

}  // namespace

int main() {
  benchutil::header("Ablation C: lightweight groups vs one full group per application");
  std::printf("%zu daemons, %zu applications spanning %zu daemons each; node 0 (a member\n"
              "of %zu applications) crashes. Control traffic during the 2 s recovery\n"
              "window and application-visible view events:\n\n",
              kNodes, kApps, kAppSpan, kAppSpan);
  const Result lwr = run_lightweight();
  const Result full = run_full_groups();
  std::printf("%-28s %16s %14s\n", "design", "control packets", "view events");
  std::printf("%-28s %16llu %14llu\n", "lightweight groups",
              static_cast<unsigned long long>(lwr.packets),
              static_cast<unsigned long long>(lwr.view_events));
  std::printf("%-28s %16llu %14llu\n", "full group per app",
              static_cast<unsigned long long>(full.packets),
              static_cast<unsigned long long>(full.view_events));
  std::printf("\nshape checks: the full-group design multiplies heartbeats and runs a\n"
              "separate failure-detection + flush + install protocol in every affected\n"
              "group; lightweight groups pay for ONE heavy view change and deliver\n"
              "projected views only to the applications that lost a member.\n");
  return 0;
}
