// Ablation B — the polling thread (paper section 2.2.1).
//
// The polling thread continuously drains the network so the kernel
// interaction of a receive is interleaved with computation instead of
// sitting on the application's critical path. We measure the application-
// level round-trip with the polling thread enabled vs. a conventional
// blocking receive.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/proc.hpp"

using namespace starfish;

namespace {

double rtt_us(net::TransportKind kind, bool polling, size_t bytes) {
  sim::Engine eng;
  net::Network net(eng);
  auto h0 = net.add_host("a");
  auto h1 = net.add_host("b");
  mpi::Proc p0(net, *h0, kind, {}, polling);
  mpi::Proc p1(net, *h1, kind, {}, polling);
  p0.configure_world(0, {p0.addr(), p1.addr()});
  p1.configure_world(1, {p0.addr(), p1.addr()});
  const int reps = 100;
  sim::Duration total = 0;
  h1->spawn("ponger", [&] {
    for (int i = 0; i < reps; ++i) {
      auto m = p1.recv(mpi::kWorldCommId, 0, 0);
      p1.send(mpi::kWorldCommId, 0, 0, std::move(m));
    }
  });
  h0->spawn("pinger", [&] {
    for (int i = 0; i < reps; ++i) {
      const sim::Time start = eng.now();
      p0.send(mpi::kWorldCommId, 1, 0, util::Bytes(bytes, std::byte{9}));
      (void)p0.recv(mpi::kWorldCommId, 1, 0);
      total += eng.now() - start;
    }
  });
  eng.run();
  return sim::to_micros(total) / reps;
}

}  // namespace

int main() {
  benchutil::header("Ablation B: polling thread vs blocking receive (section 2.2.1)");
  std::printf("the polling thread hides the receive-side kernel interaction; without\n"
              "it every receive pays that cost on the application's critical path\n\n");
  for (auto kind : {net::TransportKind::kTcpIp, net::TransportKind::kBipMyrinet}) {
    std::printf("%s:\n", net::transport_name(kind));
    std::printf("  %8s %16s %16s %10s\n", "bytes", "polling [us]", "blocking [us]", "delta");
    for (size_t bytes : std::vector<size_t>{1, 1024, 16384}) {
      const double with_poll = rtt_us(kind, true, bytes);
      const double without = rtt_us(kind, false, bytes);
      std::printf("  %8zu %16.1f %16.1f %9.1f\n", bytes, with_poll, without,
                  without - with_poll);
    }
  }
  std::printf("\nshape checks: a constant per-message penalty appears without the\n"
              "polling thread, larger for the kernel-mediated TCP/IP path.\n");
  return 0;
}
