// Recovery ablation — failure -> automatic restart under each C/R protocol.
//
// Section 3.2.2: on a node failure Starfish automatically restarts the
// application from the last checkpoint (recovery line). We kill a node
// mid-run under each protocol and report how much work the failure costs:
// total completion time vs the crash-free run, and the recovery line used.
#include <cstdio>

#include "bench_util.hpp"

using namespace starfish;

namespace {

struct Outcome {
  bool ok = false;
  double completion_s = 0;
  uint64_t line_epoch = 0;
  uint32_t restarts = 0;
};

Outcome run(daemon::CrProtocol protocol, bool crash) {
  core::ClusterOptions opts;
  opts.nodes = 4;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", benchutil::ring_program(120, 100000));
  daemon::JobSpec job;
  job.name = "rec";
  job.binary = "ring";
  job.nprocs = 4;
  job.policy = daemon::FtPolicy::kRestart;
  job.protocol = protocol;
  job.level = daemon::CkptLevel::kVm;
  job.ckpt_interval = protocol == daemon::CrProtocol::kNone ? 0 : sim::milliseconds(80);
  cluster.submit(job);
  if (crash) {
    cluster.run_for(sim::milliseconds(400));
    cluster.crash_node(2);
  }
  Outcome out;
  out.ok = cluster.run_until_done("rec", sim::seconds(120.0));
  out.completion_s = sim::to_seconds(cluster.engine().now());
  out.line_epoch = cluster.store().latest_committed("rec").value_or(0);
  out.restarts = cluster.daemon_at(0).restarts_performed();
  return out;
}

}  // namespace

int main() {
  benchutil::header("Recovery ablation: node failure at t=0.4 s, automatic restart");
  std::printf("ring application, 120 rounds (~0.63 s crash-free), checkpoints every 80 ms\n\n");
  std::printf("%-16s %8s %14s %14s %12s %10s\n", "protocol", "crash?", "complete [s]",
              "crash cost[s]", "line epoch", "restarts");
  for (auto protocol : {daemon::CrProtocol::kNone, daemon::CrProtocol::kStopAndSync,
                        daemon::CrProtocol::kChandyLamport,
                        daemon::CrProtocol::kUncoordinated}) {
    const Outcome clean = run(protocol, false);
    const Outcome crashed = run(protocol, true);
    std::printf("%-16s %8s %14.4f %14s %12s %10s\n", daemon::protocol_name(protocol), "no",
                clean.completion_s, "-", "-", "-");
    std::printf("%-16s %8s %14.4f %14.4f %12llu %10u\n", "", "yes",
                crashed.completion_s, crashed.completion_s - clean.completion_s,
                static_cast<unsigned long long>(crashed.line_epoch), crashed.restarts);
  }
  std::printf("\nshape checks: without checkpointing the crash forces a restart from\n"
              "scratch (cost ~= time lost before the crash + detection); coordinated\n"
              "protocols recover from the last committed epoch. Note the uncoordinated\n"
              "row: the ring exchanges messages every few milliseconds, so every\n"
              "independent checkpoint depends on its neighbours' latest intervals and\n"
              "the recovery line cascades to the initial state — the DOMINO EFFECT\n"
              "[14,32,34], reproduced here despite dozens of stored images. This is\n"
              "precisely why Starfish supports coordinated protocols side by side.\n");
  return 0;
}
