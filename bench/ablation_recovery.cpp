// Recovery ablation — failure -> automatic restart under each C/R protocol,
// plus the diskless sweep: disk vs. in-memory replicated checkpoint storage.
//
// Section 3.2.2: on a node failure Starfish automatically restarts the
// application from the last checkpoint (recovery line). Part 1 kills a node
// mid-run under each protocol and reports how much work the failure costs:
// total completion time vs the crash-free run, and the recovery line used.
//
// Part 2 holds the protocol fixed (stop-and-sync, warm incremental
// checkpoints) and varies where the images live: the modeled local disk
// (22 MB/s + setup, serialized per host) vs. the in-memory replica tier
// (ckpt/replica.hpp: peer memory over the 60 MB/s data network, copies
// sharing fate with their hosts). Killing 1..R replica-holder hosts shows
// both sides of the tradeoff — in-memory restore reads are far cheaper,
// but R concurrent holder crashes destroy every copy of a rank's chain and
// force a from-scratch restart where disk images would have survived.
#include <cstdio>

#include "bench_util.hpp"

using namespace starfish;

namespace {

struct Outcome {
  bool ok = false;
  double completion_s = 0;
  uint64_t line_epoch = 0;
  uint32_t restarts = 0;
};

Outcome run(daemon::CrProtocol protocol, bool crash) {
  core::ClusterOptions opts;
  opts.nodes = 4;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", benchutil::ring_program(120, 100000));
  daemon::JobSpec job;
  job.name = "rec";
  job.binary = "ring";
  job.nprocs = 4;
  job.policy = daemon::FtPolicy::kRestart;
  job.protocol = protocol;
  job.level = daemon::CkptLevel::kVm;
  job.ckpt_interval = protocol == daemon::CrProtocol::kNone ? 0 : sim::milliseconds(80);
  cluster.submit(job);
  if (crash) {
    cluster.run_for(sim::milliseconds(400));
    cluster.crash_node(2);
  }
  Outcome out;
  out.ok = cluster.run_until_done("rec", sim::seconds(120.0));
  out.completion_s = sim::to_seconds(cluster.engine().now());
  out.line_epoch = cluster.store().latest_committed("rec").value_or(0);
  out.restarts = cluster.daemon_at(0).restarts_performed();
  return out;
}

// ------------------------------------------------------ diskless sweep ----

struct DisklessOutcome {
  bool ok = false;
  double restore_io_s = 0;    ///< summed restore-read time across all ranks
  uint64_t restore_reads = 0; ///< restore reads performed (chain elements)
  double completion_s = 0;
  uint64_t restore_line = 0;  ///< recoverable line after the crash (0 = scratch)
  uint64_t events = 0;
};

constexpr uint32_t kDisklessRanks = 16;
constexpr int kDisklessRounds = 72;

/// One measured run: 16 ranks, warm incremental checkpoints, and (when
/// `kills` > 0) that many replica-holder hosts crashed at once. Restore
/// reads only ever happen during crash recovery, so the obs read-time
/// histograms both backends record (ckpt.store.read_ns /
/// ckpt.replica.get_ns) sum to exactly the restore I/O of the run.
DisklessOutcome diskless_run(ckpt::CkptBackend backend, uint32_t kills) {
  obs::Hub hub;
  obs::set_default_hub(&hub);
  DisklessOutcome out;
  {
    core::ClusterOptions opts;
    opts.nodes = kDisklessRanks + 2;  // spare hosts so restart placement has room
    opts.ckpt_backend = backend;
    opts.ckpt_replication = 2;
    core::Cluster cluster(opts);
    cluster.registry().register_vm("ring", benchutil::ring_program(kDisklessRounds, 100000));
    daemon::JobSpec job;
    job.name = "dless";
    job.binary = "ring";
    job.nprocs = kDisklessRanks;
    job.policy = daemon::FtPolicy::kRestart;
    job.protocol = daemon::CrProtocol::kStopAndSync;
    job.level = daemon::CkptLevel::kVm;
    job.ckpt_interval = sim::milliseconds(60);
    job.incremental_ckpt = true;
    cluster.submit(job);
    if (kills > 0) {
      // Let several epochs commit so the incremental chains are warm (full
      // anchor + deltas) before the failure. Rank r lives on host r; rank
      // 0's R=2 copies live on hosts 1 and 2 (ckpt/replica.hpp placement),
      // so killing hosts 1..kills removes `kills` of them — at kills = R
      // nothing of rank 0's chain survives.
      cluster.run_for(sim::milliseconds(500));
      for (uint32_t h = 1; h <= kills; ++h) cluster.crash_node(h);
      out.restore_line = cluster.store()
                             .latest_recoverable("dless", kDisklessRanks)
                             .value_or(0);
    }
    const bool completed = cluster.run_until_done("dless", sim::seconds(600.0));
    out.completion_s = sim::to_seconds(cluster.engine().now());
    out.events = cluster.engine().events_executed();
    const uint64_t disk_ns = hub.metrics.histogram("ckpt.store.read_ns").sum();
    const uint64_t mem_ns = hub.metrics.histogram("ckpt.replica.get_ns").sum();
    out.restore_io_s = static_cast<double>(disk_ns + mem_ns) / 1e9;
    out.restore_reads = hub.metrics.histogram("ckpt.store.read_ns").count() +
                        hub.metrics.histogram("ckpt.replica.get_ns").count();
    int64_t expected = 0;
    for (uint32_t r = 1; r < kDisklessRanks; ++r) expected += r * kDisklessRounds;
    bool golden = false;
    for (const auto& line : cluster.output("dless")) {
      if (line.find(std::to_string(expected)) != std::string::npos) golden = true;
    }
    out.ok = completed && golden;
  }
  obs::set_default_hub(nullptr);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter reporter(argc, argv);

  benchutil::header("Recovery ablation: node failure at t=0.4 s, automatic restart");
  std::printf("ring application, 120 rounds (~0.63 s crash-free), checkpoints every 80 ms\n\n");
  std::printf("%-16s %8s %14s %14s %12s %10s\n", "protocol", "crash?", "complete [s]",
              "crash cost[s]", "line epoch", "restarts");
  for (auto protocol : {daemon::CrProtocol::kNone, daemon::CrProtocol::kStopAndSync,
                        daemon::CrProtocol::kChandyLamport,
                        daemon::CrProtocol::kUncoordinated}) {
    benchutil::HostTimer timer;
    const Outcome clean = run(protocol, false);
    const Outcome crashed = run(protocol, true);
    std::printf("%-16s %8s %14.4f %14s %12s %10s\n", daemon::protocol_name(protocol), "no",
                clean.completion_s, "-", "-", "-");
    std::printf("%-16s %8s %14.4f %14.4f %12llu %10u\n", "", "yes",
                crashed.completion_s, crashed.completion_s - clean.completion_s,
                static_cast<unsigned long long>(crashed.line_epoch), crashed.restarts);
    reporter.add({.name = std::string("recovery/protocol=") + daemon::protocol_name(protocol),
                  .host_ns = timer.ns(),
                  .sim_ns = static_cast<uint64_t>(sim::seconds(crashed.completion_s)),
                  .value = crashed.completion_s - clean.completion_s});
  }
  std::printf("\nshape checks: without checkpointing the crash forces a restart from\n"
              "scratch (cost ~= time lost before the crash + detection); coordinated\n"
              "protocols recover from the last committed epoch. Note the uncoordinated\n"
              "row: the ring exchanges messages every few milliseconds, so every\n"
              "independent checkpoint depends on its neighbours' latest intervals and\n"
              "the recovery line cascades to the initial state — the DOMINO EFFECT\n"
              "[14,32,34], reproduced here despite dozens of stored images. This is\n"
              "precisely why Starfish supports coordinated protocols side by side.\n");

  benchutil::header("Diskless sweep: disk vs in-memory replicated checkpoints (R=2)");
  std::printf("%u ranks, stop-and-sync + warm incremental checkpoints, crash at\n"
              "t=0.5 s; restore I/O = summed restore-read time across all ranks'\n"
              "recovery chains (obs read-time histograms; reads only happen there)\n\n",
              kDisklessRanks);
  std::printf("%-10s %6s %16s %8s %14s %14s %12s %8s\n", "backend", "kills",
              "restore I/O [s]", "reads", "complete [s]", "crash cost[s]", "line", "golden");
  double disk_io[3] = {0, 0, 0};
  for (auto backend : {ckpt::CkptBackend::kDisk, ckpt::CkptBackend::kReplica}) {
    const bool mem = backend == ckpt::CkptBackend::kReplica;
    const DisklessOutcome clean = diskless_run(backend, 0);
    std::printf("%-10s %6s %16s %8s %14.4f %14s %12s %8s\n", mem ? "replica" : "disk",
                "none", "-", "-", clean.completion_s, "-", "-", clean.ok ? "yes" : "NO");
    for (uint32_t kills = 1; kills <= 2; ++kills) {
      benchutil::HostTimer timer;
      const DisklessOutcome o = diskless_run(backend, kills);
      if (!mem) disk_io[kills] = o.restore_io_s;
      char line[32];
      std::snprintf(line, sizeof line, "%llu%s",
                    static_cast<unsigned long long>(o.restore_line),
                    o.restore_line == 0 ? " (scratch)" : "");
      std::printf("%-10s %6u %16.6f %8llu %14.4f %14.4f %12s %8s\n",
                  mem ? "replica" : "disk", kills, o.restore_io_s,
                  static_cast<unsigned long long>(o.restore_reads), o.completion_s,
                  o.completion_s - clean.completion_s, line, o.ok ? "yes" : "NO");
      reporter.add({.name = "diskless/backend=" + std::string(mem ? "replica" : "disk") +
                            "/kills=" + std::to_string(kills),
                    .host_ns = timer.ns(),
                    .sim_ns = static_cast<uint64_t>(sim::seconds(o.completion_s)),
                    .events = o.events,
                    .value = o.restore_io_s});
      if (mem && kills == 1 && o.restore_io_s > 0) {
        std::printf("%-10s %6s in-memory restore %.1fx faster than disk\n", "", "",
                    disk_io[kills] / o.restore_io_s);
      }
    }
  }
  std::printf("\nshape checks: the in-memory restore path skips the per-image disk\n"
              "setup and the 260 KB run-time base, and peer fetches ride the 60 MB/s\n"
              "data network instead of a 22 MB/s spindle — expect >= 5x cheaper\n"
              "restore reads at kills < R. At kills = R the crashed pair held every\n"
              "copy of rank 0's chain: with no disk images to fall back to, recovery\n"
              "correctly reports the line unrecoverable and restarts from scratch\n"
              "(line 0) — the durability price of diskless storage, while the disk\n"
              "backend still restores from its committed line. Crash cost can dip\n"
              "slightly negative: the restart resets the checkpoint interval timer,\n"
              "so the recovered run takes a few fewer stop-and-sync waves than the\n"
              "crash-free one and spends less time blocked in them.\n");

  if (!reporter.write("ablation_recovery")) return 1;
  return 0;
}
