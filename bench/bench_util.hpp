// Shared helpers for the figure/table reproduction benches.
//
// These benches run inside the deterministic cluster simulator and report
// *virtual-time* measurements next to the paper's published numbers. They
// regenerate the shape of each figure — who wins, how curves grow — rather
// than racing the host CPU (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace starfish::benchutil {

// ------------------------------------------------- machine-readable mode ----
//
// Every figure bench accepts `--json FILE`. The human-readable text output
// (and every simulated-time number in it) is unchanged; the JSON file adds
// the host-side dimensions — wall-clock per run and simulator throughput
// (events/sec from Engine::events_executed()) — that the text output
// deliberately omits. scripts/bench_json.sh merges these into BENCH_PR1.json.

/// Host wall-clock stopwatch, started at construction.
class HostTimer {
 public:
  HostTimer() : start_(std::chrono::steady_clock::now()) {}
  uint64_t ns() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One measured run: the figure's reported metric plus host cost.
struct JsonRun {
  std::string name;      ///< e.g. "fig3/bytes=647168/nodes=2"
  uint64_t host_ns = 0;  ///< host wall-clock spent on the run
  uint64_t sim_ns = 0;   ///< engine.now() when the run finished
  uint64_t events = 0;   ///< engine.events_executed() when the run finished
  double value = 0.0;    ///< the metric the text output reports (s or us)
  uint64_t faults = 0;   ///< injected-fault events (chaos runs only)
};

/// Scans argv for `flag FILE` and returns the FILE value ("" when the flag
/// is absent). A trailing flag with no FILE is a usage error, not a silent
/// no-op: the caller asked for output and would otherwise get none, so fail
/// loudly instead of letting a script read a stale file.
inline std::string flag_value(int argc, char** argv, const char* flag) {
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != flag) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "usage: %s: %s requires a FILE argument\n",
                   argc > 0 ? argv[0] : "bench", flag);
      std::exit(2);
    }
    value = argv[i + 1];
  }
  return value;
}

class JsonReporter {
 public:
  /// Scans argv for "--json FILE"; stays disabled when absent. A trailing
  /// "--json" with no FILE exits with a usage error.
  JsonReporter(int argc, char** argv) : path_(flag_value(argc, argv, "--json")) {}

  bool enabled() const { return !path_.empty(); }
  void add(JsonRun run) { runs_.push_back(std::move(run)); }

  /// Writes {"bench": <name>, "runs": [...]} to the --json path. Returns
  /// false (after perror) if the file cannot be written.
  bool write(const std::string& bench) const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::perror(("bench --json: " + path_).c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"runs\": [", escape(bench).c_str());
    for (size_t i = 0; i < runs_.size(); ++i) {
      const JsonRun& r = runs_[i];
      const double host_s = static_cast<double>(r.host_ns) / 1e9;
      const double eps = host_s > 0 ? static_cast<double>(r.events) / host_s : 0.0;
      std::fprintf(f,
                   "%s\n  {\"name\": \"%s\", \"value\": %.9g, \"host_ns\": %llu, "
                   "\"sim_ns\": %llu, \"events\": %llu, \"events_per_sec\": %.6g",
                   i == 0 ? "" : ",", escape(r.name).c_str(), r.value,
                   static_cast<unsigned long long>(r.host_ns),
                   static_cast<unsigned long long>(r.sim_ns),
                   static_cast<unsigned long long>(r.events), eps);
      // Always present: a schema that grows keys only when they are nonzero
      // forces every consumer to special-case the absent key, and "faults: 0"
      // on a clean run is itself the datum (nothing was injected).
      std::fprintf(f, ", \"faults\": %llu}", static_cast<unsigned long long>(r.faults));
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<JsonRun> runs_;
};

/// Opt-in observability for the benches: `--metrics FILE` dumps the obs
/// metrics registry as JSON, `--trace FILE` additionally enables the tracer
/// and dumps a Chrome trace_event file (load it in Perfetto or
/// chrome://tracing). Installs its Hub as the process default so every
/// Engine the bench creates — however deep inside a run function — records
/// into it. Both flags fail loudly when the FILE argument is missing. With
/// neither flag present no hub is installed and the bench runs exactly as
/// before, byte for byte.
class MetricsReporter {
 public:
  MetricsReporter(int argc, char** argv)
      : metrics_path_(flag_value(argc, argv, "--metrics")),
        trace_path_(flag_value(argc, argv, "--trace")) {
    if (enabled()) {
      if (!trace_path_.empty()) hub_.tracer.set_enabled(true);
      obs::set_default_hub(&hub_);
    }
  }
  ~MetricsReporter() {
    if (enabled() && obs::default_hub() == &hub_) obs::set_default_hub(nullptr);
  }
  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  bool enabled() const { return !metrics_path_.empty() || !trace_path_.empty(); }
  obs::Hub& hub() { return hub_; }

  /// Writes whichever outputs were requested. Returns false (after perror)
  /// if a file cannot be written.
  bool write() {
    bool ok = true;
    if (!metrics_path_.empty() && !hub_.metrics.write_json(metrics_path_)) {
      std::perror(("bench --metrics: " + metrics_path_).c_str());
      ok = false;
    }
    if (!trace_path_.empty() && !hub_.tracer.write_chrome_json(trace_path_)) {
      std::perror(("bench --trace: " + trace_path_).c_str());
      ok = false;
    }
    return ok;
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  obs::Hub hub_;
};

/// VM token-ring program used by several benches; `rounds` circulations with
/// `spin` VM instructions of per-rank work per round.
inline std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_local 1
  push_int 1
  eq
  jmp_if_false send0
  pop
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
send0:
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

/// VM program that allocates `bytes` of heap, takes one user-initiated
/// checkpoint on rank 0, then idles (for Figure 4).
inline std::string blob_checkpoint_program(uint64_t bytes) {
  return R"(
func main 0 0
  push_int )" + std::to_string(bytes) + R"(
  new_bytes
  store_global 0
  push_int 20
  syscall sleep_ms
  syscall rank
  push_int 0
  eq
  jmp_if_false wait
  syscall checkpoint
  pop
wait:
  push_int 2000
  syscall sleep_ms
  halt
)";
}

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Runs the cluster until epoch 1 of `app` has a begin->commit duration or
/// `timeout` virtual seconds pass; returns the duration in seconds (<0 on
/// timeout).
inline double measure_epoch_seconds(core::Cluster& cluster, const std::string& app,
                                    uint64_t epoch = 1, double timeout = 60.0) {
  const sim::Time deadline = cluster.engine().now() + sim::seconds(timeout);
  while (cluster.engine().now() < deadline) {
    cluster.run_for(sim::milliseconds(5));
    auto d = cluster.store().epoch_duration(app, epoch);
    if (d) return sim::to_seconds(*d);
  }
  return -1.0;
}

}  // namespace starfish::benchutil
