// Shared helpers for the figure/table reproduction benches.
//
// These benches run inside the deterministic cluster simulator and report
// *virtual-time* measurements next to the paper's published numbers. They
// regenerate the shape of each figure — who wins, how curves grow — rather
// than racing the host CPU (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "core/cluster.hpp"
#include "util/strings.hpp"

namespace starfish::benchutil {

/// VM token-ring program used by several benches; `rounds` circulations with
/// `spin` VM instructions of per-rank work per round.
inline std::string ring_program(int rounds, int spin) {
  return R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int )" + std::to_string(rounds) + R"(
  ge
  jmp_if_false body
  jmp done
body:
  push_int )" + std::to_string(spin) + R"(
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_local 1
  push_int 1
  eq
  jmp_if_false send0
  pop
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
send0:
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}

/// VM program that allocates `bytes` of heap, takes one user-initiated
/// checkpoint on rank 0, then idles (for Figure 4).
inline std::string blob_checkpoint_program(uint64_t bytes) {
  return R"(
func main 0 0
  push_int )" + std::to_string(bytes) + R"(
  new_bytes
  store_global 0
  push_int 20
  syscall sleep_ms
  syscall rank
  push_int 0
  eq
  jmp_if_false wait
  syscall checkpoint
  pop
wait:
  push_int 2000
  syscall sleep_ms
  halt
)";
}

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Runs the cluster until epoch 1 of `app` has a begin->commit duration or
/// `timeout` virtual seconds pass; returns the duration in seconds (<0 on
/// timeout).
inline double measure_epoch_seconds(core::Cluster& cluster, const std::string& app,
                                    uint64_t epoch = 1, double timeout = 60.0) {
  const sim::Time deadline = cluster.engine().now() + sim::seconds(timeout);
  while (cluster.engine().now() < deadline) {
    cluster.run_for(sim::milliseconds(5));
    auto d = cluster.store().epoch_duration(app, epoch);
    if (d) return sim::to_seconds(*d);
  }
  return -1.0;
}

}  // namespace starfish::benchutil
