// Figure 3 — native (homogeneous) checkpointing time, stop-and-sync.
//
// The paper plots checkpoint time against checkpointed data size for 1, 2
// and 4 nodes. Anchors: the smallest point is a 632 KB file (an empty
// program: the process/VM run-time image) taking 0.104061 s on one node,
// 0.131898 s on two and 0.149219 s on four; the curve grows linearly up to
// 135 MB, staying "on the order of seconds".
//
// Here each process's state is an application blob sized so that the native
// image (blob + 632 KB run-time base) hits the target file size; rank 0
// issues the user-initiated checkpoint downcall and we report the
// begin -> commit duration of the distributed stop-and-sync protocol.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/image.hpp"

using namespace starfish;

namespace {

double run_once(uint64_t file_bytes, uint32_t nodes, benchutil::JsonReporter& json) {
  benchutil::HostTimer timer;
  core::ClusterOptions opts;
  opts.nodes = nodes;
  core::Cluster cluster(opts);
  const uint64_t state_bytes =
      file_bytes > ckpt::kNativeBaseBytes ? file_bytes - ckpt::kNativeBaseBytes : 0;
  cluster.registry().register_native("blob", [state_bytes](core::AppContext& ctx) {
    util::Bytes state(state_bytes, std::byte{0x42});
    ctx.set_state_capture([&state] { return state; });
    ctx.set_state_restore([&state](const util::Bytes& b) { state = b; });
    ctx.engine().sleep(sim::milliseconds(20));
    if (ctx.rank() == 0) ctx.request_checkpoint();
    ctx.compute(sim::seconds(20.0));  // keep running while the protocol works
  });
  daemon::JobSpec job;
  job.name = "fig3";
  job.binary = "blob";
  job.nprocs = nodes;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kNative;
  cluster.submit(job);
  const double secs = benchutil::measure_epoch_seconds(cluster, "fig3");
  if (json.enabled()) {
    json.add({"fig3/bytes=" + std::to_string(file_bytes) + "/nodes=" + std::to_string(nodes),
              timer.ns(), static_cast<uint64_t>(cluster.engine().now()),
              cluster.engine().events_executed(), secs, 0});
  }
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter json(argc, argv);
  benchutil::MetricsReporter metrics(argc, argv);
  benchutil::header(
      "Figure 3: native (homogeneous) checkpoint time vs data size, stop-and-sync");
  std::printf("paper anchors: 632 KB -> 0.104061 s (1 node), 0.131898 s (2), 0.149219 s (4);\n"
              "largest file 135 MB; growth linear in size (IDE disk write dominates)\n\n");
  const std::vector<uint64_t> sizes = {
      632ull * 1024,        2ull * 1024 * 1024,  8ull * 1024 * 1024,
      32ull * 1024 * 1024,  64ull * 1024 * 1024, 135ull * 1024 * 1024,
  };
  std::printf("%12s %12s %12s %12s\n", "file size", "1 node [s]", "2 nodes [s]", "4 nodes [s]");
  for (uint64_t size : sizes) {
    std::printf("%12s", util::format_bytes(size).c_str());
    for (uint32_t nodes : {1u, 2u, 4u}) {
      std::printf(" %12.6f", run_once(size, nodes, json));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nshape checks: linear growth with size; per-node coordination overhead\n"
              "adds a size-independent term that grows with the node count.\n");
  const bool ok = json.write("fig3_native_checkpoint");
  return metrics.write() && ok ? 0 : 1;
}
