// Figure 4 — virtual-machine-level (heterogeneous) checkpointing time.
//
// Same protocol (stop-and-sync) as Figure 3, but at the VM level: the image
// holds only the machine-independent VM state, written buffered (no process
// dump). Anchors: the smallest file is 260 KB (empty program) taking
// 0.0077 s on one node, 0.0205 s on two and 0.052 s on four; the largest is
// 96 MB (the same application whose native image was 135 MB — the VM
// run-time is not saved).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/image.hpp"

using namespace starfish;

namespace {

double run_once(uint64_t file_bytes, uint32_t nodes, benchutil::JsonReporter& json) {
  benchutil::HostTimer timer;
  core::ClusterOptions opts;
  opts.nodes = nodes;
  core::Cluster cluster(opts);
  // Heap blob sized so the portable image (blob + 260 KB VM base + small
  // container overhead) hits the target file size.
  const uint64_t blob =
      file_bytes > ckpt::kPortableBaseBytes + 512 ? file_bytes - ckpt::kPortableBaseBytes - 512
                                                  : 0;
  cluster.registry().register_vm("blob", benchutil::blob_checkpoint_program(blob));
  daemon::JobSpec job;
  job.name = "fig4";
  job.binary = "blob";
  job.nprocs = nodes;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kVm;
  cluster.submit(job);
  const double secs = benchutil::measure_epoch_seconds(cluster, "fig4");
  if (json.enabled()) {
    json.add({"fig4/bytes=" + std::to_string(file_bytes) + "/nodes=" + std::to_string(nodes),
              timer.ns(), static_cast<uint64_t>(cluster.engine().now()),
              cluster.engine().events_executed(), secs, 0});
  }
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter json(argc, argv);
  benchutil::MetricsReporter metrics(argc, argv);
  benchutil::header(
      "Figure 4: VM-level (heterogeneous) checkpoint time vs data size, stop-and-sync");
  std::printf("paper anchors: 260 KB -> 0.0077 s (1 node), 0.0205 s (2), 0.052 s (4);\n"
              "largest file 96 MB; linear growth (buffered write, no process dump)\n\n");
  const std::vector<uint64_t> sizes = {
      260ull * 1024,       2ull * 1024 * 1024,  8ull * 1024 * 1024,
      32ull * 1024 * 1024, 96ull * 1024 * 1024,
  };
  std::printf("%12s %12s %12s %12s\n", "file size", "1 node [s]", "2 nodes [s]", "4 nodes [s]");
  for (uint64_t size : sizes) {
    std::printf("%12s", util::format_bytes(size).c_str());
    for (uint32_t nodes : {1u, 2u, 4u}) {
      std::printf(" %12.6f", run_once(size, nodes, json));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nshape checks: much smaller base than Figure 3 (no run-time image is\n"
              "saved) and a steeper relative impact of multi-node coordination at\n"
              "small sizes, exactly as in the paper.\n");
  const bool ok = json.write("fig4_vm_checkpoint");
  return metrics.write() && ok ? 0 : 1;
}
