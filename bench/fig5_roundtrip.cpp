// Figure 5 — application-level round-trip delay vs data size.
//
// The paper's ping application: one node sends, the peer replies
// immediately; the average over 100 repetitions is reported for both
// TCP/IP and BIP/Myrinet. Anchors: a 1-byte message costs 552 µs over
// TCP/IP and 86 µs over BIP/Myrinet, both growing linearly with size.
#include <cstdio>
#include <memory>
#include <vector>

#include <cstdlib>
#include <optional>

#include "bench_util.hpp"
#include "mpi/proc.hpp"

using namespace starfish;

namespace {

double measure_rtt_us(net::TransportKind kind, size_t bytes, int reps,
                      benchutil::JsonReporter& json, std::optional<uint64_t> chaos_seed) {
  benchutil::HostTimer timer;
  sim::Engine eng(chaos_seed.value_or(0));
  net::Network net(eng);
  if (chaos_seed) {
    // Latency chaos only: delay/jitter perturb the measured RTTs without
    // dropping ping traffic (the bench has no retransmit layer). The seeded
    // engine RNG makes every perturbed run replayable.
    net::LinkFaults plan;
    plan.delay = sim::microseconds(20);
    plan.jitter = sim::microseconds(150);
    net.faults().set_default(plan);
  }
  auto h0 = net.add_host("a");
  auto h1 = net.add_host("b");
  mpi::Proc p0(net, *h0, kind);
  mpi::Proc p1(net, *h1, kind);
  p0.configure_world(0, {p0.addr(), p1.addr()});
  p1.configure_world(1, {p0.addr(), p1.addr()});

  sim::Duration total = 0;
  h1->spawn("ponger", [&] {
    for (int i = 0; i < reps; ++i) {
      auto msg = p1.recv(mpi::kWorldCommId, 0, 0);
      p1.send(mpi::kWorldCommId, 0, 0, std::move(msg));
    }
  });
  h0->spawn("pinger", [&] {
    for (int i = 0; i < reps; ++i) {
      const sim::Time start = eng.now();
      p0.send(mpi::kWorldCommId, 1, 0, util::Bytes(bytes, std::byte{0x5a}));
      (void)p0.recv(mpi::kWorldCommId, 1, 0);
      total += eng.now() - start;
    }
  });
  eng.run();
  const double rtt_us = sim::to_micros(total) / reps;
  if (json.enabled()) {
    const char* transport = kind == net::TransportKind::kTcpIp ? "tcp" : "bip";
    json.add({"fig5/" + std::string(transport) + "/bytes=" + std::to_string(bytes), timer.ns(),
              static_cast<uint64_t>(eng.now()), eng.events_executed(), rtt_us,
              net.faults().counters().total()});
  }
  return rtt_us;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter json(argc, argv);
  benchutil::MetricsReporter metrics(argc, argv);
  std::optional<uint64_t> chaos_seed;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--chaos-seed") {
      chaos_seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  benchutil::header("Figure 5: round-trip delay vs data size (ping, 100 repetitions)");
  if (chaos_seed) {
    std::printf("chaos: link delay/jitter enabled, seed %llu\n",
                static_cast<unsigned long long>(*chaos_seed));
  }
  std::printf("paper anchors: 1 byte -> 552 us over TCP/IP, 86 us over BIP/Myrinet;\n"
              "both curves grow linearly with message size\n\n");
  const std::vector<size_t> sizes = {1, 64, 256, 1024, 4096, 16384, 65536};
  std::printf("%10s %16s %16s %10s\n", "bytes", "TCP/IP [us]", "BIP/Myrinet [us]", "ratio");
  for (size_t s : sizes) {
    const double tcp = measure_rtt_us(net::TransportKind::kTcpIp, s, 100, json, chaos_seed);
    const double bip = measure_rtt_us(net::TransportKind::kBipMyrinet, s, 100, json, chaos_seed);
    std::printf("%10zu %16.1f %16.1f %9.1fx\n", s, tcp, bip, tcp / bip);
  }
  std::printf("\nshape checks: BIP wins everywhere; the gap is largest for small\n"
              "messages (no kernel crossing) and both curves are affine in size.\n");
  const bool ok = json.write("fig5_roundtrip");
  return metrics.write() && ok ? 0 : 1;
}
