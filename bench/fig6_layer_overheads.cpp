// Figure 6 — time a message spends in each layer of the Starfish stack.
//
// The paper decomposes the one-way message cost into the layers it crosses
// on the send and receive sides, and notes that the per-layer times are
// independent of message size because messages are never copied inside
// Starfish. We print the per-layer budget of both transports, then verify
// against end-to-end measurements that the layer (fixed) part really is
// size-independent: measured one-way minus the wire's size term is constant.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/proc.hpp"
#include "net/model_params.hpp"

using namespace starfish;

namespace {

double one_way_us(net::TransportKind kind, size_t bytes) {
  sim::Engine eng;
  net::Network net(eng);
  auto h0 = net.add_host("a");
  auto h1 = net.add_host("b");
  net::Vni tx(net, *h0, kind);
  net::Vni rx(net, *h1, kind);
  sim::Time arrival = 0;
  h1->spawn("rx", [&] {
    (void)rx.recv();
    arrival = eng.now();
  });
  h0->spawn("tx", [&] { tx.send(rx.addr(), util::Bytes(bytes, std::byte{1})); });
  eng.run();
  return sim::to_micros(arrival);
}

void print_layers(const net::TransportModel& m) {
  std::printf("  %-28s %8.1f us\n", "send: MPI module", sim::to_micros(m.mpi_send));
  std::printf("  %-28s %8.1f us\n", "send: VNI", sim::to_micros(m.vni_send));
  std::printf("  %-28s %8.1f us\n", "send: kernel stack", sim::to_micros(m.kernel_send));
  std::printf("  %-28s %8.1f us\n", "wire propagation", sim::to_micros(m.propagation));
  std::printf("  %-28s %8.1f us\n", "recv: kernel stack", sim::to_micros(m.kernel_recv));
  std::printf("  %-28s %8.1f us\n", "recv: VNI", sim::to_micros(m.vni_recv));
  std::printf("  %-28s %8.1f us\n", "recv: MPI module", sim::to_micros(m.mpi_recv));
  std::printf("  %-28s %8.1f us\n", "TOTAL one-way fixed", sim::to_micros(m.one_way_fixed()));
}

}  // namespace

int main() {
  benchutil::header("Figure 6: per-layer overhead for sending and receiving messages");
  std::printf("paper: the time spent in each layer is independent of the message size,\n"
              "since messages are never copied inside Starfish (zero-copy layers).\n");

  for (auto kind : {net::TransportKind::kTcpIp, net::TransportKind::kBipMyrinet}) {
    const auto& m = net::model_for(kind);
    std::printf("\n%s layer budget (one direction):\n", net::transport_name(kind));
    print_layers(m);

    std::printf("  size-independence check (measured one-way minus the wire's\n"
                "  size-proportional term must equal the fixed budget):\n");
    std::printf("  %10s %14s %18s\n", "bytes", "one-way [us]", "minus wire term");
    for (size_t bytes : std::vector<size_t>{1, 1024, 16384, 65536}) {
      const double ow = one_way_us(kind, bytes);
      const double wire_term =
          static_cast<double>(bytes) / (m.bandwidth_mb_s * 1e6) * 1e6;  // us
      std::printf("  %10zu %14.1f %18.1f\n", bytes, ow, ow - wire_term);
    }
  }
  std::printf("\nshape checks: the right-hand column is constant per transport — the\n"
              "layer residence times do not grow with message size.\n");
  return 0;
}
