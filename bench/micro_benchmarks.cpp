// Real-time microbenchmarks (google-benchmark) of the substrate hot paths:
// the figure/table benches above measure *virtual* time inside the
// simulator; these measure how fast the simulator and codecs themselves run
// on the host, which bounds how large an experiment is practical.
#include <benchmark/benchmark.h>

#include <cstring>

#include "ckpt/image.hpp"
#include "ckpt/incremental.hpp"
#include "gcs/wire.hpp"
#include "mpi/datatype.hpp"
#include "mpi/frame.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/buffer.hpp"
#include "util/simd/simd.hpp"
#include "vm/bytecode.hpp"
#include "vm/interp.hpp"

using namespace starfish;

namespace {

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule(sim::microseconds(i), [] {});
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventDispatch);

// Wake-heavy: the dominant block/wake/resume cycle (every recv, every GCS
// deliver, every sync primitive). Two fibers ping-pong through a pair of
// channels, so each item is one park + one zero-delay wake + one resume on
// each side, with no timer involved after warmup.
void BM_EngineWakeHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> ping(eng);
    sim::Channel<int> pong(eng);
    eng.spawn("ponger", [&] {
      for (int i = 0; i < 1000; ++i) {
        (void)ping.recv();
        pong.send(i);
      }
    });
    eng.spawn("pinger", [&] {
      for (int i = 0; i < 1000; ++i) {
        ping.send(i);
        (void)pong.recv();
      }
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // wakes per iteration
}
BENCHMARK(BM_EngineWakeHeavy);

// Spawn-heavy: daemon restarts, chaos churn, per-message handler fibers.
// Waves of short-lived fibers; the driver joins each wave before launching
// the next, so stack recycling (when present) can serve every wave after
// the first from the pool.
void BM_EngineSpawnHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn("driver", [&eng] {
      for (int wave = 0; wave < 125; ++wave) {
        for (int i = 0; i < 8; ++i) {
          eng.spawn("worker", [&eng] { eng.sleep(sim::microseconds(1)); });
        }
        eng.sleep(sim::microseconds(2));  // joins the wave: workers exit first
      }
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // fibers per iteration
}
BENCHMARK(BM_EngineSpawnHeavy);

// Mixed timers: many fibers asleep on staggered deadlines keep the timer
// heap deep while short sleeps churn its top — the scheduling mix of the
// fig benches (heartbeats + link delays + disk transfers).
void BM_EngineMixedTimers(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 64; ++i) {
      eng.spawn("timer", [&eng, i] {
        for (int k = 0; k < 32; ++k) {
          eng.sleep(sim::microseconds((i * 37 + k * 11) % 97 + 1));
        }
      });
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 32);
}
BENCHMARK(BM_EngineMixedTimers);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn("switcher", [&eng] {
      for (int i = 0; i < 1000; ++i) eng.yield();
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // two switches per yield
}
BENCHMARK(BM_FiberContextSwitch);

void BM_ChannelSendRecv(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> ch(eng);
    eng.spawn("rx", [&] {
      for (int i = 0; i < 1000; ++i) (void)ch.recv();
    });
    eng.spawn("tx", [&] {
      for (int i = 0; i < 1000; ++i) ch.send(i);
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelSendRecv);

void BM_BufferWriterU64(benchmark::State& state) {
  for (auto _ : state) {
    util::Bytes out;
    out.reserve(8 * 1024);
    util::Writer w(out);
    for (int i = 0; i < 1024; ++i) w.u64(static_cast<uint64_t>(i) * 0x9e3779b9);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 8 * 1024);
}
BENCHMARK(BM_BufferWriterU64);

void BM_MpiFrameRoundtrip(benchmark::State& state) {
  mpi::Frame f;
  f.kind = mpi::FrameKind::kEager;
  f.comm = 0;
  f.src_rank = 3;
  f.dst_rank = 7;
  f.tag = 42;
  f.payload = util::Bytes(static_cast<size_t>(state.range(0)), std::byte{0x5a});
  for (auto _ : state) {
    auto bytes = f.encode();
    auto back = mpi::Frame::decode(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpiFrameRoundtrip)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PortableImageEncode(benchmark::State& state) {
  vm::VmState s;
  vm::HeapObject blob;
  blob.kind = vm::HeapObject::Kind::kBytes;
  blob.bytes = util::Bytes(static_cast<size_t>(state.range(0)), std::byte{1});
  s.heap.push_back(std::move(blob));
  for (int i = 0; i < 256; ++i) s.globals.push_back(vm::Value::integer(i));
  for (auto _ : state) {
    auto img = ckpt::portable_encode(sim::default_machine(), s);
    benchmark::DoNotOptimize(img.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PortableImageEncode)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_PortableImageCrossDecode(benchmark::State& state) {
  // Encode big-endian 32-bit, decode little-endian 64-bit: the conversion
  // path of the Table 2 matrix.
  auto machines = sim::table2_machines();
  vm::VmState s;
  for (int i = 0; i < 4096; ++i) s.globals.push_back(vm::Value::integer(i * 3));
  auto img = ckpt::portable_encode(machines[1], s);
  for (auto _ : state) {
    auto back = ckpt::portable_decode(img, machines[5]);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PortableImageCrossDecode);

// --- incremental checkpoint encoding, mostly-unchanged state -------------
//
// The interesting case for incremental checkpoints is a long-running app
// whose state barely moves between epochs: a few dirty pages in a large
// blob. BM_IncrementalEncodeTwoPass replicates the original encoder (one
// full memcmp pass to count changed pages, a second to emit them);
// BM_IncrementalEncodeHashed is the shipped single-pass encoder with a warm
// PageHashCache, which fingerprints the current state once and never reads
// the previous epoch at all.

constexpr size_t kIncrStateBytes = 16 * 1024 * 1024;
constexpr size_t kIncrDirtyPages = 4;

/// Faithful replica of the pre-optimization two-pass encoder, kept here so
/// the speedup stays measurable against the real baseline.
util::Bytes incremental_encode_two_pass(const util::Bytes& prev, const util::Bytes& cur) {
  util::Bytes out;
  util::Writer w(out);
  w.u64(cur.size());
  const size_t n_pages = (cur.size() + ckpt::kPageBytes - 1) / ckpt::kPageBytes;
  uint32_t changed = 0;
  auto page_differs = [&](size_t p) {
    const size_t off = p * ckpt::kPageBytes;
    const size_t len = std::min(ckpt::kPageBytes, cur.size() - off);
    if (off >= prev.size()) return true;
    const size_t prev_len = std::min(ckpt::kPageBytes, prev.size() - off);
    if (prev_len != len) return true;
    return std::memcmp(prev.data() + off, cur.data() + off, len) != 0;
  };
  for (size_t p = 0; p < n_pages; ++p) {
    if (page_differs(p)) ++changed;
  }
  w.u32(changed);
  for (size_t p = 0; p < n_pages; ++p) {
    if (!page_differs(p)) continue;
    const size_t off = p * ckpt::kPageBytes;
    const size_t len = std::min(ckpt::kPageBytes, cur.size() - off);
    w.u32(static_cast<uint32_t>(p));
    w.bytes({cur.data() + off, len});
  }
  return out;
}

/// Two `bytes`-sized states differing in kIncrDirtyPages pages, spread
/// across the blob. Benchmarks ping-pong between them so every iteration
/// diffs a state against a genuinely different predecessor.
std::pair<util::Bytes, util::Bytes> incr_states(size_t bytes = kIncrStateBytes) {
  util::Bytes a(bytes, std::byte{0x11});
  util::Bytes b = a;
  const size_t n_pages = bytes / ckpt::kPageBytes;
  for (size_t i = 0; i < kIncrDirtyPages; ++i) {
    b[(i * (n_pages / kIncrDirtyPages) + 1) * ckpt::kPageBytes] = std::byte{0xee};
  }
  return {std::move(a), std::move(b)};
}

void BM_IncrementalEncodeTwoPass(benchmark::State& state) {
  auto [a, b] = incr_states();
  bool flip = false;
  for (auto _ : state) {
    auto delta = incremental_encode_two_pass(flip ? b : a, flip ? a : b);
    flip = !flip;
    benchmark::DoNotOptimize(delta.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kIncrStateBytes);
}
BENCHMARK(BM_IncrementalEncodeTwoPass);

void BM_IncrementalEncodeHashed(benchmark::State& state) {
  auto [a, b] = incr_states();
  ckpt::PageHashCache cache;
  cache.rebuild(util::as_bytes_view(a));  // warm, as after a full epoch
  bool flip = false;                      // first iteration diffs a -> b
  for (auto _ : state) {
    auto delta = ckpt::incremental_encode(flip ? b : a, flip ? a : b, nullptr, &cache);
    flip = !flip;
    benchmark::DoNotOptimize(delta.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kIncrStateBytes);
}
BENCHMARK(BM_IncrementalEncodeHashed);

// --- VM instruction dispatch -------------------------------------------
//
// The VM is the compute substrate of fig4/table2: every simulated
// application instruction goes through Interpreter::run. These benches pin
// the three shapes that dominate real programs — a tight arithmetic loop
// (the canonical accumulate/increment/compare/branch idiom), call-heavy
// recursion, and the syscall round-trip into the host and back.

vm::Program must_assemble_bench(const std::string& src) {
  auto r = vm::assemble(src);
  if (!r.ok()) {
    fprintf(stderr, "bench program failed to assemble: %s\n",
            r.error().to_string().c_str());
    abort();
  }
  return std::move(r).take();
}

// sum 1..20000 via locals: 20k iterations x 14 instructions + prologue.
const char* kVmArithLoopSrc = R"(
func main 0 2
  push_int 0
  store_local 0
  push_int 1
  store_local 1
loop:
  load_local 1
  push_int 20000
  le
  jmp_if_false done
  load_local 0
  load_local 1
  add
  store_local 0
  load_local 1
  push_int 1
  add
  store_local 1
  jmp loop
done:
  load_local 0
  halt
)";

void BM_VmArithLoop(benchmark::State& state) {
  vm::Program prog = must_assemble_bench(kVmArithLoopSrc);
  uint64_t steps = 0;
  for (auto _ : state) {
    vm::Interpreter interp(prog, sim::default_machine());
    interp.start();
    auto r = interp.run();
    if (r.status != vm::RunStatus::kHalted) abort();
    steps = interp.state().steps_executed;
    benchmark::DoNotOptimize(interp.state().stack.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(steps));
}
BENCHMARK(BM_VmArithLoop);

// fib(18) by naive recursion: ~8k calls, each a frame push/arg move/ret.
void BM_VmCallHeavy(benchmark::State& state) {
  vm::Program prog = must_assemble_bench(R"(
func main 0 0
  push_int 18
  call fib
  halt
func fib 1 1
  load_local 0
  push_int 2
  lt
  jmp_if_false rec
  load_local 0
  ret
rec:
  load_local 0
  push_int 1
  sub
  call fib
  load_local 0
  push_int 2
  sub
  call fib
  add
  ret
)");
  uint64_t steps = 0;
  for (auto _ : state) {
    vm::Interpreter interp(prog, sim::default_machine());
    interp.start();
    auto r = interp.run();
    if (r.status != vm::RunStatus::kHalted) abort();
    steps = interp.state().steps_executed;
    benchmark::DoNotOptimize(interp.state().stack.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(steps));
}
BENCHMARK(BM_VmCallHeavy);

// 1000 rank syscalls serviced by the host: run-to-syscall, push the reply,
// complete, resume — the exact control transfer run_vm_app makes per call.
void BM_VmSyscallRoundtrip(benchmark::State& state) {
  vm::Program prog = must_assemble_bench(R"(
func main 0 1
  push_int 0
  store_local 0
loop:
  syscall rank
  pop
  load_local 0
  push_int 1
  add
  store_local 0
  load_local 0
  push_int 1000
  lt
  jmp_if_false done
  jmp loop
done:
  halt
)");
  for (auto _ : state) {
    vm::Interpreter interp(prog, sim::default_machine());
    interp.start();
    for (;;) {
      auto r = interp.run();
      if (r.status == vm::RunStatus::kHalted) break;
      if (r.status != vm::RunStatus::kSyscall) abort();
      interp.push_value(vm::Value::integer(3));
      interp.complete_syscall();
    }
    benchmark::DoNotOptimize(interp.state().steps_executed);
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // round-trips
}
BENCHMARK(BM_VmSyscallRoundtrip);

void BM_GcsWireRoundtrip(benchmark::State& state) {
  gcs::WireMsg msg;
  msg.kind = gcs::MsgKind::kOrder;
  msg.from = {2, 0};
  msg.gseq = 123456;
  msg.origin = {1, 0};
  msg.payload = util::Bytes(256, std::byte{7});
  for (auto _ : state) {
    auto bytes = msg.encode();
    auto back = gcs::WireMsg::decode(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_GcsWireRoundtrip);

// --- SIMD data-plane kernels: dispatched vs forced-scalar ----------------
//
// Each pair runs one hot path under the dispatched table and again with the
// scalar reference forced, so the speedup that justifies the dispatch layer
// stays measurable on any host (EXPERIMENTS.md records the ratios; the
// bit-identity of the outputs is pinned by tests/simd_differential_test.cpp).

namespace simd = util::simd;

/// Forces one ISA level for the duration of a benchmark run.
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) : prev_(simd::level()) { simd::force(isa); }
  ~ScopedIsa() { simd::force(prev_); }

 private:
  simd::Isa prev_;
};

void fingerprint_bench(benchmark::State& state, simd::Isa isa) {
  ScopedIsa forced(isa);
  const size_t n = static_cast<size_t>(state.range(0));
  util::Bytes buf(n, std::byte{0x5a});
  for (size_t i = 0; i < n; i += 97) buf[i] = static_cast<std::byte>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::fingerprint(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
void BM_FingerprintDispatch(benchmark::State& state) {
  fingerprint_bench(state, simd::level());
}
void BM_FingerprintScalar(benchmark::State& state) {
  fingerprint_bench(state, simd::Isa::kScalar);
}
BENCHMARK(BM_FingerprintDispatch)->Arg(4096)->Arg(16 * 1024 * 1024);
BENCHMARK(BM_FingerprintScalar)->Arg(4096)->Arg(16 * 1024 * 1024);

// The warm incremental-checkpoint encode (fingerprint-dominated: one hash
// pass, 4 dirty pages) — the end-to-end path the dispatch layer was built
// for, A/B'd against the scalar reference. 512 KB state so both copies of
// the ping-pong stay L2-resident and the A/B measures the hash kernels,
// not this host's cache hierarchy (the 16 MB streaming case keeps its own
// BM_IncrementalEncode* benches above).
constexpr size_t kWarmEncodeBytes = 512 * 1024;

void warm_encode_bench(benchmark::State& state, simd::Isa isa) {
  ScopedIsa forced(isa);
  auto [a, b] = incr_states(kWarmEncodeBytes);
  ckpt::PageHashCache cache;
  cache.rebuild(util::as_bytes_view(a));
  bool flip = false;
  for (auto _ : state) {
    auto delta = ckpt::incremental_encode(flip ? b : a, flip ? a : b, nullptr, &cache);
    flip = !flip;
    benchmark::DoNotOptimize(delta.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kWarmEncodeBytes);
}
void BM_FingerprintWarmEncodeDispatch(benchmark::State& state) {
  warm_encode_bench(state, simd::level());
}
void BM_FingerprintWarmEncodeScalar(benchmark::State& state) {
  warm_encode_bench(state, simd::Isa::kScalar);
}
BENCHMARK(BM_FingerprintWarmEncodeDispatch);
BENCHMARK(BM_FingerprintWarmEncodeScalar);

/// Int-heavy state whose portable image is dominated by the integer column.
vm::VmState convert_state(size_t n_ints) {
  vm::VmState s;
  s.globals.reserve(n_ints);
  for (size_t i = 0; i < n_ints; ++i) {
    s.globals.push_back(vm::Value::integer(static_cast<int32_t>(i * 2654435761u)));
  }
  return s;
}

// Encode on a big-endian 32-bit saver from this (little-endian) host: the
// byteswap + narrow direction of the heterogeneous conversion.
void image_encode_bench(benchmark::State& state, simd::Isa isa) {
  ScopedIsa forced(isa);
  auto machines = sim::table2_machines();
  const vm::VmState s = convert_state(1 << 16);
  for (auto _ : state) {
    auto img = ckpt::portable_encode(machines[1], s);
    benchmark::DoNotOptimize(img.payload.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * (1 << 16));
}
void BM_ImageConvertEncodeDispatch(benchmark::State& state) {
  image_encode_bench(state, simd::level());
}
void BM_ImageConvertEncodeScalar(benchmark::State& state) {
  image_encode_bench(state, simd::Isa::kScalar);
}
BENCHMARK(BM_ImageConvertEncodeDispatch);
BENCHMARK(BM_ImageConvertEncodeScalar);

// Decode the same image on a little-endian 64-bit target: byteswap + widen.
void image_decode_bench(benchmark::State& state, simd::Isa isa) {
  ScopedIsa forced(isa);
  auto machines = sim::table2_machines();
  const auto img = ckpt::portable_encode(machines[1], convert_state(1 << 16));
  for (auto _ : state) {
    auto back = ckpt::portable_decode(img, machines[5]);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * (1 << 16));
}
void BM_ImageConvertDecodeDispatch(benchmark::State& state) {
  image_decode_bench(state, simd::level());
}
void BM_ImageConvertDecodeScalar(benchmark::State& state) {
  image_decode_bench(state, simd::Isa::kScalar);
}
BENCHMARK(BM_ImageConvertDecodeDispatch);
BENCHMARK(BM_ImageConvertDecodeScalar);

// Large-message pack + unpack of a strided vector layout (a 256 KB matrix
// band: 256-byte blocks every 512 bytes), and the contiguous fast path.
// Cache-resident on purpose: at multi-MB sizes every implementation is
// DRAM-bound and the bench would measure the memory bus, not the kernels.
void datatype_pack_bench(benchmark::State& state, simd::Isa isa, bool contiguous) {
  ScopedIsa forced(isa);
  const size_t total = 256 * 1024;
  const auto dt = contiguous ? mpi::Datatype::contiguous(total, 1)
                             : mpi::Datatype::vector(total / 512, 256, 512, 1);
  util::Bytes buf(dt.extent(), std::byte{0x3c});
  util::Bytes scatter(dt.extent());
  for (auto _ : state) {
    auto packed = dt.pack(util::as_bytes_view(buf));
    benchmark::DoNotOptimize(packed.value().data());
    auto st = dt.unpack(packed.value(), scatter);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 * dt.packed_bytes());
}
void BM_DatatypePackStridedDispatch(benchmark::State& state) {
  datatype_pack_bench(state, simd::level(), false);
}
void BM_DatatypePackStridedScalar(benchmark::State& state) {
  datatype_pack_bench(state, simd::Isa::kScalar, false);
}
void BM_DatatypePackContiguous(benchmark::State& state) {
  datatype_pack_bench(state, simd::level(), true);
}
BENCHMARK(BM_DatatypePackStridedDispatch);
BENCHMARK(BM_DatatypePackStridedScalar);
BENCHMARK(BM_DatatypePackContiguous);

}  // namespace

BENCHMARK_MAIN();
