// Real-time microbenchmarks (google-benchmark) of the substrate hot paths:
// the figure/table benches above measure *virtual* time inside the
// simulator; these measure how fast the simulator and codecs themselves run
// on the host, which bounds how large an experiment is practical.
#include <benchmark/benchmark.h>

#include "ckpt/image.hpp"
#include "gcs/wire.hpp"
#include "mpi/frame.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/buffer.hpp"

using namespace starfish;

namespace {

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule(sim::microseconds(i), [] {});
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn("switcher", [&eng] {
      for (int i = 0; i < 1000; ++i) eng.yield();
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // two switches per yield
}
BENCHMARK(BM_FiberContextSwitch);

void BM_ChannelSendRecv(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> ch(eng);
    eng.spawn("rx", [&] {
      for (int i = 0; i < 1000; ++i) (void)ch.recv();
    });
    eng.spawn("tx", [&] {
      for (int i = 0; i < 1000; ++i) ch.send(i);
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelSendRecv);

void BM_BufferWriterU64(benchmark::State& state) {
  for (auto _ : state) {
    util::Bytes out;
    out.reserve(8 * 1024);
    util::Writer w(out);
    for (int i = 0; i < 1024; ++i) w.u64(static_cast<uint64_t>(i) * 0x9e3779b9);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 8 * 1024);
}
BENCHMARK(BM_BufferWriterU64);

void BM_MpiFrameRoundtrip(benchmark::State& state) {
  mpi::Frame f;
  f.kind = mpi::FrameKind::kEager;
  f.comm = 0;
  f.src_rank = 3;
  f.dst_rank = 7;
  f.tag = 42;
  f.payload = util::Bytes(static_cast<size_t>(state.range(0)), std::byte{0x5a});
  for (auto _ : state) {
    auto bytes = f.encode();
    auto back = mpi::Frame::decode(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpiFrameRoundtrip)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PortableImageEncode(benchmark::State& state) {
  vm::VmState s;
  vm::HeapObject blob;
  blob.kind = vm::HeapObject::Kind::kBytes;
  blob.bytes = util::Bytes(static_cast<size_t>(state.range(0)), std::byte{1});
  s.heap.push_back(std::move(blob));
  for (int i = 0; i < 256; ++i) s.globals.push_back(vm::Value::integer(i));
  for (auto _ : state) {
    auto img = ckpt::portable_encode(sim::default_machine(), s);
    benchmark::DoNotOptimize(img.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PortableImageEncode)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_PortableImageCrossDecode(benchmark::State& state) {
  // Encode big-endian 32-bit, decode little-endian 64-bit: the conversion
  // path of the Table 2 matrix.
  auto machines = sim::table2_machines();
  vm::VmState s;
  for (int i = 0; i < 4096; ++i) s.globals.push_back(vm::Value::integer(i * 3));
  auto img = ckpt::portable_encode(machines[1], s);
  for (auto _ : state) {
    auto back = ckpt::portable_decode(img, machines[5]);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PortableImageCrossDecode);

void BM_GcsWireRoundtrip(benchmark::State& state) {
  gcs::WireMsg msg;
  msg.kind = gcs::MsgKind::kOrder;
  msg.from = {2, 0};
  msg.gseq = 123456;
  msg.origin = {1, 0};
  msg.payload = util::Bytes(256, std::byte{7});
  for (auto _ : state) {
    auto bytes = msg.encode();
    auto back = gcs::WireMsg::decode(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_GcsWireRoundtrip);

}  // namespace

BENCHMARK_MAIN();
