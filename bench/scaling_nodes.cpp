// Extension experiment: checkpoint-time scaling with node count.
//
// Figures 3 and 4 stop at 4 nodes; this sweep extends the x-axis to 16,
// separating the two components of the distributed checkpoint time: the
// (parallel) per-node disk write, and the coordination term that grows with
// membership — the paper's "faster C/R protocols" future-work direction is
// about attacking the latter, and the forked variant shows how much of it
// the application actually feels.
#include <cstdio>

#include "bench_util.hpp"
#include "ckpt/image.hpp"

using namespace starfish;

namespace {

double run_once(uint32_t nodes, bool forked) {
  core::ClusterOptions opts;
  opts.nodes = nodes;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("blob", benchutil::blob_checkpoint_program(1024 * 1024));
  daemon::JobSpec job;
  job.name = "scale";
  job.binary = "blob";
  job.nprocs = nodes;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kVm;
  job.forked_ckpt = forked;
  cluster.submit(job);
  return benchutil::measure_epoch_seconds(cluster, "scale");
}

}  // namespace

int main() {
  benchutil::header("Node-count scaling of stop-and-sync (1.25 MB images per rank)");
  std::printf("extends Figures 3/4 beyond the paper's 4 nodes; the disk term stays\n"
              "flat (writes are parallel) while coordination grows with membership\n\n");
  std::printf("%8s %18s %18s\n", "nodes", "stop-and-sync [s]", "forked variant [s]");
  for (uint32_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    const double plain = run_once(nodes, false);
    const double forked = run_once(nodes, true);
    std::printf("%8u %18.4f %18.4f\n", nodes, plain, forked);
    std::fflush(stdout);
  }
  std::printf("\nshape checks: the plain protocol's epoch latency grows ~linearly with\n"
              "the member count (serial quiesce/ack collection at the initiator);\n"
              "the forked variant pays the same commit latency but the application\n"
              "itself resumes after the snapshot, so its *felt* cost stays flat.\n");
  return 0;
}
