// Extension experiment: checkpoint-time scaling with node count, plus the
// engine's thread-scaling sweep (PR 6).
//
// Part 1 — Figures 3 and 4 stop at 4 nodes; this sweep extends the x-axis to
// 16, separating the two components of the distributed checkpoint time: the
// (parallel) per-node disk write, and the coordination term that grows with
// membership — the paper's "faster C/R protocols" future-work direction is
// about attacking the latter, and the forked variant shows how much of it
// the application actually feels.
//
// Part 2 — `--threads N[,N...]` sweeps the sharded engine (DESIGN.md
// section 13) over worker-thread counts on a 64-host cluster and reports
// aggregate and per-shard simulator throughput. The simulation itself is
// bit-identical at every thread count (tests/shard_determinism_test.cpp);
// only the host-side wall clock may change. Event totals are printed so a
// reader can verify the invariance from the bench output alone.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/image.hpp"

using namespace starfish;

namespace {

double run_once(uint32_t nodes, bool forked) {
  core::ClusterOptions opts;
  opts.nodes = nodes;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("blob", benchutil::blob_checkpoint_program(1024 * 1024));
  daemon::JobSpec job;
  job.name = "scale";
  job.binary = "blob";
  job.nprocs = nodes;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kVm;
  job.forked_ckpt = forked;
  cluster.submit(job);
  return benchutil::measure_epoch_seconds(cluster, "scale");
}

struct ThreadRun {
  unsigned threads = 0;
  uint64_t host_ns = 0;
  uint64_t events = 0;
  uint64_t sim_ns = 0;
  uint64_t epochs = 0;
  std::vector<uint64_t> shard_events;
};

/// One fixed workload — a 64-host daemon group running a 64-rank token ring
/// with periodic coordinated checkpoints — executed on `threads` shards for
/// two seconds of virtual time.
ThreadRun run_threads(unsigned threads, uint32_t hosts) {
  core::ClusterOptions opts;
  opts.nodes = hosts;
  opts.shards = threads;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", benchutil::ring_program(/*rounds=*/1000,
                                                                 /*spin=*/2000));
  daemon::JobSpec job;
  job.name = "sweep";
  job.binary = "ring";
  job.nprocs = hosts;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kVm;
  job.ckpt_interval = sim::milliseconds(250);
  cluster.submit(job);

  ThreadRun r;
  r.threads = threads;
  const benchutil::HostTimer timer;
  cluster.run_for(sim::seconds(2.0));
  r.host_ns = timer.ns();
  r.events = cluster.engine().events_executed();
  r.sim_ns = static_cast<uint64_t>(cluster.engine().now());
  r.epochs = cluster.engine().epochs();
  // Parallel mode has threads+1 shards: index 0 is the control plane's
  // (stop-the-world events), 1..threads are the host workers.
  const unsigned shard_total = threads == 1 ? 1 : threads + 1;
  for (unsigned s = 0; s < shard_total; ++s) {
    r.shard_events.push_back(cluster.engine().shard_events(s));
  }
  return r;
}

std::vector<unsigned> parse_threads(const std::string& spec) {
  std::vector<unsigned> out;
  std::string cur;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(static_cast<unsigned>(std::atoi(cur.c_str())));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  for (const unsigned t : out) {
    if (t == 0) {
      std::fprintf(stderr, "--threads: counts must be positive integers\n");
      std::exit(2);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::JsonReporter json(argc, argv);
  benchutil::MetricsReporter metrics(argc, argv);
  const std::string threads_spec = benchutil::flag_value(argc, argv, "--threads");

  benchutil::header("Node-count scaling of stop-and-sync (1.25 MB images per rank)");
  std::printf("extends Figures 3/4 beyond the paper's 4 nodes; the disk term stays\n"
              "flat (writes are parallel) while coordination grows with membership\n\n");
  std::printf("%8s %18s %18s\n", "nodes", "stop-and-sync [s]", "forked variant [s]");
  for (uint32_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    const benchutil::HostTimer t;
    const double plain = run_once(nodes, false);
    const double forked = run_once(nodes, true);
    std::printf("%8u %18.4f %18.4f\n", nodes, plain, forked);
    std::fflush(stdout);
    json.add({.name = "scaling/nodes=" + std::to_string(nodes),
              .host_ns = t.ns(),
              .value = plain});
  }
  std::printf("\nshape checks: the plain protocol's epoch latency grows ~linearly with\n"
              "the member count (serial quiesce/ack collection at the initiator);\n"
              "the forked variant pays the same commit latency but the application\n"
              "itself resumes after the snapshot, so its *felt* cost stays flat.\n");

  // ------------------------------------------------- thread-scaling sweep ----
  const std::vector<unsigned> sweep =
      threads_spec.empty() ? std::vector<unsigned>{1, 2, 4} : parse_threads(threads_spec);
  constexpr uint32_t kSweepHosts = 64;
  std::printf("\n");
  benchutil::header("Engine thread-scaling sweep (64-host group, 64-rank ring, 2 s virtual)");
  std::printf("same seed at every thread count -> identical virtual history; the\n"
              "columns that may differ are host wall-clock and events/s. Speedup is\n"
              "bounded by the host's core count (nproc decides, not --threads).\n\n");
  std::printf("%8s %12s %12s %14s %10s %8s\n", "threads", "host [ms]", "events",
              "events/s", "speedup", "epochs");
  double base_eps = 0.0;
  uint64_t base_events = 0;
  for (const unsigned threads : sweep) {
    const ThreadRun r = run_threads(threads, kSweepHosts);
    const double host_s = static_cast<double>(r.host_ns) / 1e9;
    const double eps = host_s > 0 ? static_cast<double>(r.events) / host_s : 0.0;
    if (base_eps == 0.0) {
      base_eps = eps;
      base_events = r.events;
    }
    std::printf("%8u %12.1f %12llu %14.3g %9.2fx %8llu\n", threads, host_s * 1e3,
                static_cast<unsigned long long>(r.events), eps,
                base_eps > 0 ? eps / base_eps : 0.0,
                static_cast<unsigned long long>(r.epochs));
    if (r.events != base_events) {
      std::printf("  !! event count diverged from the %u-thread run — determinism bug\n",
                  sweep.front());
    }
    // Per-shard breakdown: how evenly the static host partition spreads the
    // event load, and what each shard's own dispatch rate was.
    for (size_t s = 0; s < r.shard_events.size(); ++s) {
      const double shard_eps =
          host_s > 0 ? static_cast<double>(r.shard_events[s]) / host_s : 0.0;
      const bool is_control = threads > 1 && s == 0;
      std::printf("%8s   shard %2zu%s: %12llu events  %10.3g events/s\n", "", s,
                  is_control ? " (ctl)" : "",
                  static_cast<unsigned long long>(r.shard_events[s]), shard_eps);
    }
    std::fflush(stdout);
    json.add({.name = "scaling/threads=" + std::to_string(threads) +
                      "/hosts=" + std::to_string(kSweepHosts),
              .host_ns = r.host_ns,
              .sim_ns = r.sim_ns,
              .events = r.events,
              .value = eps});
  }

  json.write("scaling_nodes");
  metrics.write();
  return 0;
}
