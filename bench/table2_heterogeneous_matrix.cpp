// Table 2 — machine types tested with heterogeneous C/R.
//
// The paper lists six machine types (architecture, OS, byte order, word
// length) across which VM-level checkpoints restore. We reproduce the table
// and exercise the full 6x6 save/restore matrix: every portable image must
// restore on every machine (with endianness and word-length conversion),
// while native images restore only under an identical representation.
#include <cstdio>

#include "bench_util.hpp"
#include "ckpt/image.hpp"
#include "vm/value.hpp"

using namespace starfish;

namespace {

vm::VmState sample_state() {
  vm::VmState s;
  s.globals = {vm::Value::integer(123456789), vm::Value::real(2.718281828),
               vm::Value::boolean(true), vm::Value::reference(0)};
  s.stack = {vm::Value::integer(-42)};
  vm::Frame f;
  f.function = 1;
  f.pc = 99;
  f.locals = {vm::Value::integer(INT32_MAX), vm::Value::integer(INT32_MIN)};
  s.frames.push_back(f);
  vm::HeapObject arr;
  arr.fields = {vm::Value::integer(7), vm::Value::real(0.5)};
  s.heap.push_back(arr);
  s.steps_executed = 1'000'000;
  return s;
}

}  // namespace

int main() {
  benchutil::header("Table 2: machine types tested with heterogeneous C/R");
  auto machines = sim::table2_machines();
  std::printf("%-28s %-18s %-14s %s\n", "architecture type", "OS", "representation",
              "word length");
  for (const auto& m : machines) {
    std::printf("%-28s %-18s %-14s %d-bit\n", m.arch.c_str(), m.os.c_str(),
                m.endian == util::Endian::kLittle ? "little-endian" : "big-endian",
                m.word_bytes * 8);
  }

  const vm::VmState state = sample_state();
  int portable_ok = 0, native_ok = 0;

  std::printf("\nVM-level (portable) restore matrix — saved on row, restored on column:\n");
  std::printf("%8s", "");
  for (size_t c = 0; c < machines.size(); ++c) std::printf("   M%zu", c);
  std::printf("\n");
  for (size_t r = 0; r < machines.size(); ++r) {
    std::printf("    M%zu  ", r);
    auto img = ckpt::portable_encode(machines[r], state);
    for (size_t c = 0; c < machines.size(); ++c) {
      auto back = ckpt::portable_decode(img, machines[c]);
      const bool ok = back.ok() && back.value() == state;
      if (ok) ++portable_ok;
      std::printf("  %s", ok ? "ok " : "XX ");
    }
    std::printf("\n");
  }

  std::printf("\nnative restore matrix (homogeneous restriction — only identical\n"
              "representations restore):\n");
  util::Bytes memory(4096, std::byte{0xcd});
  std::printf("%8s", "");
  for (size_t c = 0; c < machines.size(); ++c) std::printf("   M%zu", c);
  std::printf("\n");
  for (size_t r = 0; r < machines.size(); ++r) {
    std::printf("    M%zu  ", r);
    auto img = ckpt::native_encode(machines[r], util::as_bytes_view(memory));
    for (size_t c = 0; c < machines.size(); ++c) {
      const bool ok = ckpt::native_decode(img, machines[c]).ok();
      if (ok) ++native_ok;
      std::printf("  %s", ok ? "ok " : "-- ");
    }
    std::printf("\n");
  }

  std::printf("\nportable restores: %d/36 succeed (paper: all pairs work at the VM level)\n",
              portable_ok);
  std::printf("native restores:   %d/36 succeed (only representation-identical pairs)\n",
              native_ok);
  return portable_ok == 36 ? 0 : 1;
}
