file(REMOVE_RECURSE
  "CMakeFiles/ablation_cr_protocols.dir/ablation_cr_protocols.cpp.o"
  "CMakeFiles/ablation_cr_protocols.dir/ablation_cr_protocols.cpp.o.d"
  "ablation_cr_protocols"
  "ablation_cr_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cr_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
