# Empty compiler generated dependencies file for ablation_cr_protocols.
# This may be replaced when dependencies are built.
