file(REMOVE_RECURSE
  "CMakeFiles/ablation_lightweight_groups.dir/ablation_lightweight_groups.cpp.o"
  "CMakeFiles/ablation_lightweight_groups.dir/ablation_lightweight_groups.cpp.o.d"
  "ablation_lightweight_groups"
  "ablation_lightweight_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lightweight_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
