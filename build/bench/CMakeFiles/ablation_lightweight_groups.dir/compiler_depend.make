# Empty compiler generated dependencies file for ablation_lightweight_groups.
# This may be replaced when dependencies are built.
