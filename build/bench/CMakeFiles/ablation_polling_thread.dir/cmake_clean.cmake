file(REMOVE_RECURSE
  "CMakeFiles/ablation_polling_thread.dir/ablation_polling_thread.cpp.o"
  "CMakeFiles/ablation_polling_thread.dir/ablation_polling_thread.cpp.o.d"
  "ablation_polling_thread"
  "ablation_polling_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polling_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
