# Empty dependencies file for ablation_polling_thread.
# This may be replaced when dependencies are built.
