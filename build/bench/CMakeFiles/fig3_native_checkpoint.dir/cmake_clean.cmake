file(REMOVE_RECURSE
  "CMakeFiles/fig3_native_checkpoint.dir/fig3_native_checkpoint.cpp.o"
  "CMakeFiles/fig3_native_checkpoint.dir/fig3_native_checkpoint.cpp.o.d"
  "fig3_native_checkpoint"
  "fig3_native_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_native_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
