# Empty dependencies file for fig3_native_checkpoint.
# This may be replaced when dependencies are built.
