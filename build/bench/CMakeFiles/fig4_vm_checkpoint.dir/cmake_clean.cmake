file(REMOVE_RECURSE
  "CMakeFiles/fig4_vm_checkpoint.dir/fig4_vm_checkpoint.cpp.o"
  "CMakeFiles/fig4_vm_checkpoint.dir/fig4_vm_checkpoint.cpp.o.d"
  "fig4_vm_checkpoint"
  "fig4_vm_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vm_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
