# Empty dependencies file for fig4_vm_checkpoint.
# This may be replaced when dependencies are built.
