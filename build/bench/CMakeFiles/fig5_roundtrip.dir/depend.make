# Empty dependencies file for fig5_roundtrip.
# This may be replaced when dependencies are built.
