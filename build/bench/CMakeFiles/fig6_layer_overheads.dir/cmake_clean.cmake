file(REMOVE_RECURSE
  "CMakeFiles/fig6_layer_overheads.dir/fig6_layer_overheads.cpp.o"
  "CMakeFiles/fig6_layer_overheads.dir/fig6_layer_overheads.cpp.o.d"
  "fig6_layer_overheads"
  "fig6_layer_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_layer_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
