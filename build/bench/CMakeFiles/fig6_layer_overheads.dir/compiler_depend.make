# Empty compiler generated dependencies file for fig6_layer_overheads.
# This may be replaced when dependencies are built.
