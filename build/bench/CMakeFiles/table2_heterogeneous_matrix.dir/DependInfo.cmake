
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_heterogeneous_matrix.cpp" "bench/CMakeFiles/table2_heterogeneous_matrix.dir/table2_heterogeneous_matrix.cpp.o" "gcc" "bench/CMakeFiles/table2_heterogeneous_matrix.dir/table2_heterogeneous_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/starfish_core.dir/DependInfo.cmake"
  "/root/repo/build/src/daemon/CMakeFiles/starfish_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/starfish_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/starfish_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/starfish_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/starfish_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/starfish_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/starfish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
