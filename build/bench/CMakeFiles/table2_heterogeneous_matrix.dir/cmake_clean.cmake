file(REMOVE_RECURSE
  "CMakeFiles/table2_heterogeneous_matrix.dir/table2_heterogeneous_matrix.cpp.o"
  "CMakeFiles/table2_heterogeneous_matrix.dir/table2_heterogeneous_matrix.cpp.o.d"
  "table2_heterogeneous_matrix"
  "table2_heterogeneous_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_heterogeneous_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
