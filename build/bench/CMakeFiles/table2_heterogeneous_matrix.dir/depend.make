# Empty dependencies file for table2_heterogeneous_matrix.
# This may be replaced when dependencies are built.
