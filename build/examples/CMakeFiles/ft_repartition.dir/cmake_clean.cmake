file(REMOVE_RECURSE
  "CMakeFiles/ft_repartition.dir/ft_repartition.cpp.o"
  "CMakeFiles/ft_repartition.dir/ft_repartition.cpp.o.d"
  "ft_repartition"
  "ft_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
