# Empty compiler generated dependencies file for ft_repartition.
# This may be replaced when dependencies are built.
