file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_restart.dir/heterogeneous_restart.cpp.o"
  "CMakeFiles/heterogeneous_restart.dir/heterogeneous_restart.cpp.o.d"
  "heterogeneous_restart"
  "heterogeneous_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
