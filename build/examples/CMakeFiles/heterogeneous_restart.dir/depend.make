# Empty dependencies file for heterogeneous_restart.
# This may be replaced when dependencies are built.
