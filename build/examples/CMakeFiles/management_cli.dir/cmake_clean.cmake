file(REMOVE_RECURSE
  "CMakeFiles/management_cli.dir/management_cli.cpp.o"
  "CMakeFiles/management_cli.dir/management_cli.cpp.o.d"
  "management_cli"
  "management_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/management_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
