# Empty dependencies file for management_cli.
# This may be replaced when dependencies are built.
