
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/image.cpp" "src/ckpt/CMakeFiles/starfish_ckpt.dir/image.cpp.o" "gcc" "src/ckpt/CMakeFiles/starfish_ckpt.dir/image.cpp.o.d"
  "/root/repo/src/ckpt/incremental.cpp" "src/ckpt/CMakeFiles/starfish_ckpt.dir/incremental.cpp.o" "gcc" "src/ckpt/CMakeFiles/starfish_ckpt.dir/incremental.cpp.o.d"
  "/root/repo/src/ckpt/recovery.cpp" "src/ckpt/CMakeFiles/starfish_ckpt.dir/recovery.cpp.o" "gcc" "src/ckpt/CMakeFiles/starfish_ckpt.dir/recovery.cpp.o.d"
  "/root/repo/src/ckpt/store.cpp" "src/ckpt/CMakeFiles/starfish_ckpt.dir/store.cpp.o" "gcc" "src/ckpt/CMakeFiles/starfish_ckpt.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/starfish_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/starfish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
