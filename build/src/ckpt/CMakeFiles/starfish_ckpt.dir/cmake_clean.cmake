file(REMOVE_RECURSE
  "CMakeFiles/starfish_ckpt.dir/image.cpp.o"
  "CMakeFiles/starfish_ckpt.dir/image.cpp.o.d"
  "CMakeFiles/starfish_ckpt.dir/incremental.cpp.o"
  "CMakeFiles/starfish_ckpt.dir/incremental.cpp.o.d"
  "CMakeFiles/starfish_ckpt.dir/recovery.cpp.o"
  "CMakeFiles/starfish_ckpt.dir/recovery.cpp.o.d"
  "CMakeFiles/starfish_ckpt.dir/store.cpp.o"
  "CMakeFiles/starfish_ckpt.dir/store.cpp.o.d"
  "libstarfish_ckpt.a"
  "libstarfish_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
