file(REMOVE_RECURSE
  "libstarfish_ckpt.a"
)
