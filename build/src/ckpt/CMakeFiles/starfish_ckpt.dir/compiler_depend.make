# Empty compiler generated dependencies file for starfish_ckpt.
# This may be replaced when dependencies are built.
