file(REMOVE_RECURSE
  "CMakeFiles/starfish_core.dir/cluster.cpp.o"
  "CMakeFiles/starfish_core.dir/cluster.cpp.o.d"
  "CMakeFiles/starfish_core.dir/cr.cpp.o"
  "CMakeFiles/starfish_core.dir/cr.cpp.o.d"
  "CMakeFiles/starfish_core.dir/process.cpp.o"
  "CMakeFiles/starfish_core.dir/process.cpp.o.d"
  "libstarfish_core.a"
  "libstarfish_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
