file(REMOVE_RECURSE
  "libstarfish_core.a"
)
