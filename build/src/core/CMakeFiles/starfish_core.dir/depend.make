# Empty dependencies file for starfish_core.
# This may be replaced when dependencies are built.
