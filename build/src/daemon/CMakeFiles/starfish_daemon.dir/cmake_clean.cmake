file(REMOVE_RECURSE
  "CMakeFiles/starfish_daemon.dir/daemon.cpp.o"
  "CMakeFiles/starfish_daemon.dir/daemon.cpp.o.d"
  "CMakeFiles/starfish_daemon.dir/mgmt.cpp.o"
  "CMakeFiles/starfish_daemon.dir/mgmt.cpp.o.d"
  "CMakeFiles/starfish_daemon.dir/wire.cpp.o"
  "CMakeFiles/starfish_daemon.dir/wire.cpp.o.d"
  "libstarfish_daemon.a"
  "libstarfish_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
