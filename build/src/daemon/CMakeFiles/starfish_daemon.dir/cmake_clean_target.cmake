file(REMOVE_RECURSE
  "libstarfish_daemon.a"
)
