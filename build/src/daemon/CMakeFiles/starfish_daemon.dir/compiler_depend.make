# Empty compiler generated dependencies file for starfish_daemon.
# This may be replaced when dependencies are built.
