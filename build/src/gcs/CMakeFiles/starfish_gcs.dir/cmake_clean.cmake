file(REMOVE_RECURSE
  "CMakeFiles/starfish_gcs.dir/endpoint.cpp.o"
  "CMakeFiles/starfish_gcs.dir/endpoint.cpp.o.d"
  "CMakeFiles/starfish_gcs.dir/lightweight.cpp.o"
  "CMakeFiles/starfish_gcs.dir/lightweight.cpp.o.d"
  "CMakeFiles/starfish_gcs.dir/wire.cpp.o"
  "CMakeFiles/starfish_gcs.dir/wire.cpp.o.d"
  "libstarfish_gcs.a"
  "libstarfish_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
