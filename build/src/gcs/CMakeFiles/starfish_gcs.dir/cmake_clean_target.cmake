file(REMOVE_RECURSE
  "libstarfish_gcs.a"
)
