# Empty dependencies file for starfish_gcs.
# This may be replaced when dependencies are built.
