file(REMOVE_RECURSE
  "CMakeFiles/starfish_mpi.dir/comm.cpp.o"
  "CMakeFiles/starfish_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/starfish_mpi.dir/datatype.cpp.o"
  "CMakeFiles/starfish_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/starfish_mpi.dir/frame.cpp.o"
  "CMakeFiles/starfish_mpi.dir/frame.cpp.o.d"
  "CMakeFiles/starfish_mpi.dir/proc.cpp.o"
  "CMakeFiles/starfish_mpi.dir/proc.cpp.o.d"
  "libstarfish_mpi.a"
  "libstarfish_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
