file(REMOVE_RECURSE
  "libstarfish_mpi.a"
)
