# Empty compiler generated dependencies file for starfish_mpi.
# This may be replaced when dependencies are built.
