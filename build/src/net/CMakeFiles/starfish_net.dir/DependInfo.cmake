
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/model_params.cpp" "src/net/CMakeFiles/starfish_net.dir/model_params.cpp.o" "gcc" "src/net/CMakeFiles/starfish_net.dir/model_params.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/starfish_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/starfish_net.dir/network.cpp.o.d"
  "/root/repo/src/net/vni.cpp" "src/net/CMakeFiles/starfish_net.dir/vni.cpp.o" "gcc" "src/net/CMakeFiles/starfish_net.dir/vni.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/starfish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/starfish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
