file(REMOVE_RECURSE
  "CMakeFiles/starfish_net.dir/model_params.cpp.o"
  "CMakeFiles/starfish_net.dir/model_params.cpp.o.d"
  "CMakeFiles/starfish_net.dir/network.cpp.o"
  "CMakeFiles/starfish_net.dir/network.cpp.o.d"
  "CMakeFiles/starfish_net.dir/vni.cpp.o"
  "CMakeFiles/starfish_net.dir/vni.cpp.o.d"
  "libstarfish_net.a"
  "libstarfish_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
