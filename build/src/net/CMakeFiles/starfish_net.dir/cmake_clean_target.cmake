file(REMOVE_RECURSE
  "libstarfish_net.a"
)
