# Empty compiler generated dependencies file for starfish_net.
# This may be replaced when dependencies are built.
