file(REMOVE_RECURSE
  "CMakeFiles/starfish_sim.dir/engine.cpp.o"
  "CMakeFiles/starfish_sim.dir/engine.cpp.o.d"
  "CMakeFiles/starfish_sim.dir/machine.cpp.o"
  "CMakeFiles/starfish_sim.dir/machine.cpp.o.d"
  "CMakeFiles/starfish_sim.dir/time.cpp.o"
  "CMakeFiles/starfish_sim.dir/time.cpp.o.d"
  "libstarfish_sim.a"
  "libstarfish_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
