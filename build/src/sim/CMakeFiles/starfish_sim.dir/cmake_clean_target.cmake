file(REMOVE_RECURSE
  "libstarfish_sim.a"
)
