# Empty dependencies file for starfish_sim.
# This may be replaced when dependencies are built.
