file(REMOVE_RECURSE
  "CMakeFiles/starfish_util.dir/log.cpp.o"
  "CMakeFiles/starfish_util.dir/log.cpp.o.d"
  "CMakeFiles/starfish_util.dir/strings.cpp.o"
  "CMakeFiles/starfish_util.dir/strings.cpp.o.d"
  "libstarfish_util.a"
  "libstarfish_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
