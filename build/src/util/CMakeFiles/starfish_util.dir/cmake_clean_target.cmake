file(REMOVE_RECURSE
  "libstarfish_util.a"
)
