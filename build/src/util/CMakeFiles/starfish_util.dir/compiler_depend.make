# Empty compiler generated dependencies file for starfish_util.
# This may be replaced when dependencies are built.
