# Empty dependencies file for starfish_util.
# This may be replaced when dependencies are built.
