file(REMOVE_RECURSE
  "CMakeFiles/starfish_vm.dir/asm.cpp.o"
  "CMakeFiles/starfish_vm.dir/asm.cpp.o.d"
  "CMakeFiles/starfish_vm.dir/interp.cpp.o"
  "CMakeFiles/starfish_vm.dir/interp.cpp.o.d"
  "CMakeFiles/starfish_vm.dir/value.cpp.o"
  "CMakeFiles/starfish_vm.dir/value.cpp.o.d"
  "CMakeFiles/starfish_vm.dir/verify.cpp.o"
  "CMakeFiles/starfish_vm.dir/verify.cpp.o.d"
  "libstarfish_vm.a"
  "libstarfish_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starfish_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
