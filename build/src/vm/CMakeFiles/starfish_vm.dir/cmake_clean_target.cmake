file(REMOVE_RECURSE
  "libstarfish_vm.a"
)
