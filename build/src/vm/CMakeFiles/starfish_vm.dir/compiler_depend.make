# Empty compiler generated dependencies file for starfish_vm.
# This may be replaced when dependencies are built.
