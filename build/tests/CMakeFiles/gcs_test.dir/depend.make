# Empty dependencies file for gcs_test.
# This may be replaced when dependencies are built.
