# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gcs_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
