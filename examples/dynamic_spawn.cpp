// MPI-2 dynamic process management — the "dynamic MPI programs" of the
// paper's title. A master starts alone, asks Starfish for more processes
// mid-run, and the grown world finishes the job together.
//
//   $ ./examples/dynamic_spawn
#include <cstdio>

#include "core/cluster.hpp"
#include "util/strings.hpp"

using namespace starfish;

namespace {
constexpr int kGoTag = 1;
constexpr int kResultTag = 2;

void master_worker(core::AppContext& ctx) {
  if (ctx.rank() == 0) {
    ctx.print("master alone; world size " + std::to_string(ctx.size()));
    ctx.spawn_ranks(3);  // ask Starfish for three more processes
    while (ctx.size() < 4) ctx.compute(sim::milliseconds(10));
    ctx.print("world grew to " + std::to_string(ctx.size()));
    int64_t total = 0;
    for (uint32_t r = 1; r < ctx.size(); ++r) {
      util::Bytes work;
      util::Writer w(work);
      w.i64(static_cast<int64_t>(r) * 100);  // a work unit per worker
      ctx.world().send(static_cast<int>(r), kGoTag, std::move(work));
    }
    for (uint32_t r = 1; r < ctx.size(); ++r) {
      auto reply = ctx.world().recv(mpi::kAnySource, kResultTag);
      util::Reader rd(util::as_bytes_view(reply));
      total += rd.i64().value_or(0);
    }
    ctx.print("sum of squares of work units = " + std::to_string(total));
    return;
  }
  // Spawned workers: receive a unit, square it, reply.
  auto work = ctx.world().recv(0, kGoTag);
  util::Reader rd(util::as_bytes_view(work));
  const int64_t unit = rd.i64().value_or(0);
  ctx.compute(sim::milliseconds(20));
  util::Bytes reply;
  util::Writer w(reply);
  w.i64(unit * unit);
  ctx.world().send(0, kResultTag, std::move(reply));
}
}  // namespace

int main() {
  core::ClusterOptions opts;
  opts.nodes = 4;
  core::Cluster cluster(opts);
  cluster.registry().register_native("mw", master_worker);
  cluster.boot();

  daemon::JobSpec job;
  job.name = "mw";
  job.binary = "mw";
  job.nprocs = 1;  // starts as a single process
  cluster.submit(job);
  const bool ok = cluster.run_until_done("mw", sim::seconds(30.0));
  std::printf("job %s\n", ok ? "completed" : "FAILED");
  for (const auto& line : cluster.output("mw")) std::printf("  %s\n", line.c_str());
  std::printf("final placement:");
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    for (auto r : cluster.daemon_at(i).local_ranks("mw")) {
      std::printf(" rank%u@node%zu", r, i);
    }
  }
  std::printf("\nexpected sum: 100^2 + 200^2 + 300^2 = %d\n", 100 * 100 + 200 * 200 + 300 * 300);
  return ok ? 0 : 1;
}
