// Dynamic repartitioning (paper section 3.2.2): a trivially-parallel Monte
// Carlo π estimation whose workers register a view-change listener. When a
// node dies, the surviving workers receive a view upcall and repartition the
// sample blocks so the whole space is still covered with no duplicates —
// the application continues without any rollback.
//
//   $ ./examples/ft_repartition
#include <algorithm>
#include <cstdio>

#include "core/cluster.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

using namespace starfish;

namespace {

constexpr int kBlocks = 48;
constexpr int kSamplesPerBlock = 20'000;
constexpr int kResultTag = 1;
constexpr int kDoneTag = 2;

/// Deterministic per-block sample count inside the unit circle.
int64_t hits_in_block(int block) {
  util::Rng rng(0xC0FFEE + static_cast<uint64_t>(block));
  int64_t hits = 0;
  for (int s = 0; s < kSamplesPerBlock; ++s) {
    const double x = rng.uniform(), y = rng.uniform();
    if (x * x + y * y <= 1.0) ++hits;
  }
  return hits;
}

void pi_app(core::AppContext& ctx) {
  if (ctx.rank() == 0) {
    // Collector: dedupe block results, estimate pi, dismiss the workers.
    std::vector<int64_t> hits(kBlocks, -1);
    int have = 0;
    while (have < kBlocks) {
      auto data = ctx.world().recv(mpi::kAnySource, kResultTag);
      util::Reader r(util::as_bytes_view(data));
      const int64_t block = r.i64().value_or(0);
      const int64_t h = r.i64().value_or(0);
      if (hits[static_cast<size_t>(block)] < 0) {
        hits[static_cast<size_t>(block)] = h;
        ++have;
      }
    }
    int64_t total = 0;
    for (auto h : hits) total += h;
    const double pi =
        4.0 * static_cast<double>(total) / (static_cast<double>(kBlocks) * kSamplesPerBlock);
    char buf[64];
    std::snprintf(buf, sizeof buf, "pi ~= %.5f from %d blocks", pi, kBlocks);
    ctx.print(buf);
    for (uint32_t r = 1; r < ctx.size(); ++r) ctx.world().send(static_cast<int>(r), kDoneTag, {});
    return;
  }

  // Worker: the Starfish view upcall re-partitions the block space.
  std::vector<uint32_t> live;
  for (uint32_t i = 0; i < ctx.size(); ++i) live.push_back(i);
  bool changed = false;
  ctx.set_view_handler([&](const std::vector<uint32_t>& now_live) {
    live = now_live;
    changed = true;
  });
  for (;;) {
    changed = false;
    std::vector<uint32_t> workers;
    for (uint32_t r : live) {
      if (r != 0) workers.push_back(r);
    }
    auto me = std::find(workers.begin(), workers.end(), ctx.rank());
    if (me != workers.end()) {
      const size_t my_index = static_cast<size_t>(me - workers.begin());
      for (int block = 0; block < kBlocks; ++block) {
        if (static_cast<size_t>(block) % workers.size() != my_index) continue;
        ctx.compute(sim::milliseconds(4));  // the sampling time
        if (changed) break;
        util::Bytes b;
        util::Writer w(b);
        w.i64(block);
        w.i64(hits_in_block(block));
        ctx.world().send(0, kResultTag, std::move(b));
      }
    }
    while (!changed) {
      if (ctx.world().proc().iprobe(ctx.world().id(), 0, kDoneTag)) {
        (void)ctx.world().recv(0, kDoneTag);
        return;
      }
      ctx.compute(sim::milliseconds(10));
    }
  }
}

}  // namespace

int main() {
  core::ClusterOptions opts;
  opts.nodes = 4;
  core::Cluster cluster(opts);
  cluster.registry().register_native("pi", pi_app);
  cluster.boot();

  daemon::JobSpec job;
  job.name = "pi";
  job.binary = "pi";
  job.nprocs = 4;
  job.policy = daemon::FtPolicy::kNotifyViews;  // dynamic repartitioning
  cluster.submit(job);
  std::printf("running Monte Carlo pi on 3 workers (policy: view notification)\n");

  cluster.run_for(sim::milliseconds(30));
  std::printf("t=%.3fs: node 2 dies; its blocks will be re-covered by the survivors\n",
              sim::to_seconds(cluster.engine().now()));
  cluster.crash_node(2);

  const bool ok = cluster.run_until_done("pi", sim::seconds(30.0));
  std::printf("t=%.3fs: job %s\n", sim::to_seconds(cluster.engine().now()),
              ok ? "completed" : "FAILED");
  for (const auto& line : cluster.output("pi")) std::printf("  %s\n", line.c_str());
  return ok ? 0 : 1;
}
