// Heterogeneous checkpoint/restart (paper section 4, Table 2): a VM-level
// program checkpoints on one machine type and restarts on another with a
// different endianness and word length. The same scenario at the native
// (process) level is refused — the homogeneous restriction.
//
//   $ ./examples/heterogeneous_restart
#include <cstdio>

#include "core/cluster.hpp"
#include "util/strings.hpp"

using namespace starfish;

namespace {

// Long-running counting program: sums 1..400 with ~2.5 ms of work per step.
constexpr const char* kCounter = R"(
func main 0 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int 400
  ge
  jmp_if_false body
  jmp done
body:
  push_int 50000
  syscall spin
  load_global 0
  push_int 1
  add
  store_global 0
  load_global 1
  load_global 0
  add
  store_global 1
  jmp loop
done:
  syscall rank
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";

int run(daemon::CkptLevel level) {
  auto machines = sim::table2_machines();
  core::ClusterOptions opts;
  opts.nodes = 3;
  // Node 0: little-endian 32-bit i686/Linux; node 1: big-endian 32-bit Sun;
  // node 2: little-endian 64-bit Alpha.
  opts.machines = {machines[0], machines[1], machines[5]};
  core::Cluster cluster(opts);
  cluster.registry().register_vm("counter", kCounter);
  cluster.boot();
  for (size_t i = 0; i < 3; ++i) {
    std::printf("  node%zu: %s (%s-endian, %d-bit)\n", i,
                cluster.network().host(static_cast<sim::HostId>(i))->machine().label().c_str(),
                cluster.network().host(static_cast<sim::HostId>(i))->machine().endian ==
                        util::Endian::kLittle
                    ? "little"
                    : "big",
                cluster.network().host(static_cast<sim::HostId>(i))->machine().word_bytes * 8);
  }

  daemon::JobSpec job;
  job.name = "hetero";
  job.binary = "counter";
  job.nprocs = 3;
  job.policy = daemon::FtPolicy::kRestart;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = level;
  job.ckpt_interval = sim::milliseconds(100);
  cluster.submit(job);

  cluster.run_for(sim::milliseconds(250));
  std::printf("  committed epoch before crash: %llu\n",
              static_cast<unsigned long long>(
                  cluster.store().latest_committed("hetero").value_or(0)));
  std::printf("  crashing node 0 (i686/Linux) — rank 0 will restore on a surviving node\n");
  cluster.crash_node(0);

  const bool ok = cluster.run_until_done("hetero", sim::seconds(60.0));
  std::printf("  -> %s\n", ok ? "restored across representations, completed" : "FAILED");
  for (const auto& line : cluster.output("hetero")) std::printf("     output: %s\n", line.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("VM-level (heterogeneous) checkpointing:\n");
  const int vm_result = run(daemon::CkptLevel::kVm);
  std::printf("\nnative (process-level) checkpointing on the same mixed cluster:\n");
  const int native_result = run(daemon::CkptLevel::kNative);
  std::printf("\nexpected: the VM level succeeds; the native level fails with a\n"
              "representation mismatch (the paper's homogeneous restriction).\n");
  return (vm_result == 0 && native_result != 0) ? 0 : 1;
}
