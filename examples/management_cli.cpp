// The cluster management session (paper section 3.1.1): an ASCII protocol
// over a TCP connection to any daemon, used by administrators and users
// (the paper's Java GUI speaks exactly this protocol underneath).
//
//   $ ./examples/management_cli
#include <cstdio>

#include "core/cluster.hpp"
#include "util/strings.hpp"

using namespace starfish;

namespace {
constexpr const char* kTinyApp = R"(
func main 0 0
  push_int 200000
  syscall spin
  syscall rank
  syscall print
  halt
)";

void session(core::Cluster& cluster, sim::HostId via, const std::vector<std::string>& lines) {
  std::printf("-- session with node %u --\n", via);
  auto replies = cluster.client_session(via, lines);
  size_t i = 0;
  for (const auto& reply : replies) {
    if (i == 0) {
      std::printf("   <- %s\n", reply.c_str());
    } else {
      std::printf("   -> %s\n", lines[i - 1].c_str());
      std::printf("   <- %s\n", reply.c_str());
    }
    ++i;
  }
}
}  // namespace

int main() {
  core::ClusterOptions opts;
  opts.nodes = 3;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("tiny", kTinyApp);
  cluster.boot();

  // An administrator reconfigures the cluster from node 0.
  session(cluster, 0,
          {"LOGIN root starfish ADMIN", "NODES", "SET scheduler round-robin",
           "GET scheduler", "NODE DISABLE 2"});
  cluster.run_for(sim::milliseconds(50));

  // A user submits and inspects a job through a different node.
  session(cluster, 1,
          {"LOGIN alice pw USER", "SUBMIT myjob tiny 2 PROTOCOL=sync INTERVAL_MS=50",
           "PS"});
  cluster.run_for(sim::milliseconds(200));
  session(cluster, 1, {"LOGIN alice pw USER", "STATUS myjob"});

  // Unauthorized operations are rejected.
  session(cluster, 2, {"LOGIN mallory pw USER", "DELETE myjob", "NODE ENABLE 2"});

  cluster.run_until_done("myjob", sim::seconds(10.0));
  std::printf("job finished; outputs:\n");
  for (const auto& line : cluster.output("myjob")) std::printf("   %s\n", line.c_str());
  return 0;
}
