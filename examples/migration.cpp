// Process migration (paper section 3.2.1): "C/R allows Starfish to migrate
// application processes from one node to another, e.g., if a better node
// becomes available, or a new node is added to the cluster."
//
// A new workstation joins the running cluster; a rank is then migrated onto
// it via checkpoint + placement change, and the job finishes with the exact
// same answer.
//
//   $ ./examples/migration
#include <cstdio>

#include "core/cluster.hpp"
#include "util/strings.hpp"

using namespace starfish;

namespace {
constexpr const char* kRing = R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0
  push_int 0
  store_global 1
loop:
  load_global 0
  push_int 400
  ge
  jmp_if_false body
  jmp done
body:
  push_int 100000
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";
}  // namespace

int main() {
  core::ClusterOptions opts;
  opts.nodes = 3;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", kRing);
  cluster.boot();

  daemon::JobSpec job;
  job.name = "job";
  job.binary = "ring";
  job.nprocs = 3;
  job.policy = daemon::FtPolicy::kRestart;
  job.protocol = daemon::CrProtocol::kStopAndSync;
  job.level = daemon::CkptLevel::kVm;
  cluster.submit(job);
  cluster.run_for(sim::milliseconds(60));
  std::printf("t=%.3fs: 3-rank ring running on nodes 0-2\n",
              sim::to_seconds(cluster.engine().now()));

  const sim::HostId newcomer = cluster.add_node();
  cluster.run_for(sim::seconds(1.0));  // the new daemon joins the group
  std::printf("t=%.3fs: node %u joined; daemon group now has %zu members\n",
              sim::to_seconds(cluster.engine().now()), newcomer,
              cluster.daemon_at(0).group().view().size());

  std::printf("t=%.3fs: migrating rank 1 from node 1 to node %u "
              "(checkpoint -> move -> restore)\n",
              sim::to_seconds(cluster.engine().now()), newcomer);
  cluster.daemon_at(1).migrate("job", 1, newcomer);

  const bool ok = cluster.run_until_done("job");
  std::printf("t=%.3fs: job %s\n", sim::to_seconds(cluster.engine().now()),
              ok ? "completed" : "FAILED");
  for (const auto& line : cluster.output("job")) std::printf("  output: %s\n", line.c_str());
  const auto moved = cluster.daemon_for_host(newcomer).local_ranks("job");
  std::printf("rank 1 %s on node %u\n",
              (moved.size() == 1 && moved[0] == 1) ? "ran to completion" : "NOT found",
              newcomer);
  return ok ? 0 : 1;
}
