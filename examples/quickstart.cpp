// Quickstart: boot a 4-node Starfish cluster, run a fault-tolerant MPI
// program under periodic stop-and-sync checkpointing, kill a node mid-run,
// and watch the system restart the application from the last recovery line.
//
//   $ ./examples/quickstart
//
// Everything below is virtual time inside the deterministic cluster
// simulator; the run is reproducible bit-for-bit.
#include <cstdio>

#include "core/cluster.hpp"
#include "util/strings.hpp"

using namespace starfish;

namespace {

// A token-ring MPI program in Starfish VM assembly: the token circulates 40
// times, each rank adding its rank number; rank 0 prints the result
// (40 * (1+2+3) = 240 on four ranks).
constexpr const char* kRing = R"(
func main 0 2
  syscall rank
  store_local 0
  syscall world_size
  store_local 1
  push_int 0
  store_global 0         # rounds completed
  push_int 0
  store_global 1         # token
loop:
  load_global 0
  push_int 40
  ge
  jmp_if_false body
  jmp done
body:
  push_int 100000        # ~5 ms of computation per round
  syscall spin
  load_local 0
  push_int 0
  eq
  jmp_if_false relay
  push_int 1
  load_global 1
  syscall send_to
  push_int -1
  syscall recv_from
  store_global 1
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
relay:
  push_int -1
  syscall recv_from
  load_local 0
  add
  store_global 1
  load_local 0
  push_int 1
  add
  load_local 1
  mod
  load_global 1
  syscall send_to
  load_global 0
  push_int 1
  add
  store_global 0
  jmp loop
done:
  load_local 0
  push_int 0
  eq
  jmp_if_false finish
  load_global 1
  syscall print
finish:
  halt
)";

}  // namespace

int main() {
  core::ClusterOptions opts;
  opts.nodes = 4;
  core::Cluster cluster(opts);
  cluster.registry().register_vm("ring", kRing);
  cluster.boot();
  std::printf("booted %zu-node cluster; daemon group view has %zu members\n",
              cluster.node_count(), cluster.daemon_at(0).group().view().size());

  daemon::JobSpec job;
  job.name = "demo";
  job.binary = "ring";
  job.nprocs = 4;
  job.policy = daemon::FtPolicy::kRestart;          // auto-restart on failure
  job.protocol = daemon::CrProtocol::kStopAndSync;  // the paper's C/R protocol
  job.level = daemon::CkptLevel::kVm;               // heterogeneous-capable images
  job.ckpt_interval = sim::milliseconds(50);
  cluster.submit(job);
  std::printf("submitted '%s': %u ranks, policy=%s, protocol=%s\n", job.name.c_str(),
              job.nprocs, daemon::policy_name(job.policy),
              daemon::protocol_name(job.protocol));

  // Let it run 130 ms — a couple of checkpoints commit — then kill node 3.
  cluster.run_for(sim::milliseconds(130));
  std::printf("t=%.3fs: committed recovery line = epoch %llu\n",
              sim::to_seconds(cluster.engine().now()),
              static_cast<unsigned long long>(
                  cluster.store().latest_committed("demo").value_or(0)));
  std::printf("t=%.3fs: killing node 3 (hosts rank 3)\n",
              sim::to_seconds(cluster.engine().now()));
  cluster.crash_node(3);

  const bool ok = cluster.run_until_done("demo");
  std::printf("t=%.3fs: job %s\n", sim::to_seconds(cluster.engine().now()),
              ok ? "completed" : "FAILED");
  for (const auto& line : cluster.output("demo")) {
    std::printf("  app output: %s\n", line.c_str());
  }
  std::printf("restarts performed: %u; checkpoint files written: %zu (%s)\n",
              cluster.daemon_at(0).restarts_performed(), cluster.store().image_count(),
              util::format_bytes(cluster.store().bytes_written()).c_str());
  return ok ? 0 : 1;
}
