#!/usr/bin/env bash
# Sanitizer ctest configurations: builds separate instrumented trees and runs
# the full suite (including the chaos fault-injection tests) under each.
#
#   scripts/asan_ctest.sh            # ASan tree (build-asan/)
#   STARFISH_UBSAN=1 scripts/asan_ctest.sh   # additionally a UBSan tree
#                                            # (build-ubsan/, -DSTARFISH_UBSAN=ON)
#
# Extra arguments are passed through to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

# The ASan tree forces the VM's portable switch dispatch loop
# (-DSTARFISH_VM_SWITCH_DISPATCH=ON): together with the default
# computed-goto tree in build/, both dispatchers run the full suite —
# including the VM differential tests — under at least one configuration.
cmake -B build-asan -S . -DSTARFISH_SANITIZE=address -DSTARFISH_VM_SWITCH_DISPATCH=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j
# Leak checking is off: simulated host crashes abandon ucontext fiber stacks
# without unwinding, so locals parked on them are unreachable-but-expected.
# All other ASan checks (overflow, use-after-free, ...) remain fully active.
export ASAN_OPTIONS="detect_leaks=0:${ASAN_OPTIONS:-}"

if [[ "${STARFISH_UBSAN:-0}" != "0" ]]; then
  cmake -B build-ubsan -S . -DSTARFISH_UBSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-ubsan -j
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"
  (cd build-ubsan && ctest --output-on-failure -j "$@")
fi

cd build-asan
# The chaos suite must be present in the sanitized run: it is the tier that
# drives the GCS repair and recovery-line paths under injected faults.
# grep -c (not -q): -q would close the pipe early and pipefail would see
# ctest's SIGPIPE as a failure.
[ "$(ctest -N | grep -ci chaos)" -gt 0 ] || { echo "chaos tests missing from ctest registration" >&2; exit 1; }
# Observability tier with tracing force-enabled: STARFISH_OBS_FORCE installs
# a process-default hub with the tracer on, so the sanitizer sweeps the
# record/export paths that default-off runs never touch.
[ "$(ctest -N | grep -c "Obs")" -gt 0 ] || { echo "obs tests missing from ctest registration" >&2; exit 1; }
# The engine-overhaul goldens must run sanitized too: this tree compiles the
# ucontext fallback (STARFISH_FAST_CONTEXT is off under ASan), so a passing
# run here proves both context-switch implementations replay one history.
[ "$(ctest -N | grep -c "EngineGolden")" -gt 0 ] || { echo "engine golden tests missing from ctest registration" >&2; exit 1; }
# The VM differential suite must run under the sanitizer with the switch
# dispatcher forced: it pins fast-vs-checked and fused-vs-unfused
# equivalence, which is exactly what this tree's configuration exercises.
[ "$(ctest -N | grep -c "VmDifferential")" -gt 0 ] || { echo "vm differential tests missing from ctest registration" >&2; exit 1; }
# (-R before -j: ctest's -j greedily consumes the following argument.)
STARFISH_OBS_FORCE=1 ctest --output-on-failure -R '^Obs' -j "$@"
ctest --output-on-failure -j "$@"
# Chaos + replica tiers again with the diskless checkpoint backend: the
# env routes every cluster whose test did not pin a backend through the
# in-memory replication tier, sanitizing the put/get/crash-invalidation
# and commit-after-transfer paths under injected faults.
STARFISH_CKPT_BACKEND=replica ctest --output-on-failure -R 'Chaos|Replica' -j "$@"
# Group + chaos tiers again under the tree dissemination topology: the env
# routes every group whose config did not pin a topology through the k-ary
# tree path (ORDER relay, aggregated heartbeats, fragmentation fallback),
# sanitizing it under injected faults. The flat/tree differential suite
# rides along to pin stream equivalence in the instrumented tree.
[ "$(ctest -N | grep -c "GcsDifferential")" -gt 0 ] || { echo "gcs differential tests missing from ctest registration" >&2; exit 1; }
STARFISH_GCS_TOPOLOGY=tree ctest --output-on-failure -R 'Chaos|Group|GcsDifferential' -j "$@"
# Checkpoint tiers again across the compressed-epoch lever: `off` pins the
# uncoded pipeline even if the default ever moves, and `delta+lz` routes
# every cluster whose test did not pin a mode through lz-coded delta frames
# (chunked ship, chained restore), sanitizing the codec's encode/decode and
# the corrupt-chain fallback paths under injected faults. The codec property
# and store differential suites ride along in both tiers.
[ "$(ctest -N | grep -c "Codec")" -gt 0 ] || { echo "ckpt codec tests missing from ctest registration" >&2; exit 1; }
STARFISH_CKPT_COMPRESS=off ctest --output-on-failure -R 'Chaos|Replica|Codec|Compress|StoreFault' -j "$@"
STARFISH_CKPT_COMPRESS=delta+lz ctest --output-on-failure -R 'Chaos|Replica|Codec|Compress|StoreFault' -j "$@"
# Data-plane tiers again with SIMD dispatch forced to the scalar reference:
# the env repoints the kernel table, so the sanitizer sweeps the exact
# loops the vector kernels are differenced against (the differential suite
# itself still exercises every compiled level via simd::table()).
[ "$(ctest -N | grep -c "SimdDifferential")" -gt 0 ] || { echo "simd differential tests missing from ctest registration" >&2; exit 1; }
STARFISH_SIMD=scalar ctest --output-on-failure -R 'Simd|PortableImage|Datatype|Incremental' -j "$@"

# Perf smoke rides along on the non-sanitized Release tree: warn-only
# comparison of the engine hot-path benches vs scripts/perf_baseline.json.
# Disable with STARFISH_PERF_SMOKE=0 when only sanitizer coverage is wanted.
if [[ "${STARFISH_PERF_SMOKE:-1}" != "0" ]]; then
  cd ..
  scripts/perf_smoke.sh
fi
