#!/usr/bin/env bash
# AddressSanitizer ctest configuration: configures and builds a separate
# instrumented tree (build-asan/) with -DSTARFISH_SANITIZE=address and runs
# the full suite under it. Extra arguments are passed through to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DSTARFISH_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j
cd build-asan
# Leak checking is off: simulated host crashes abandon ucontext fiber stacks
# without unwinding, so locals parked on them are unreachable-but-expected.
# All other ASan checks (overflow, use-after-free, ...) remain fully active.
export ASAN_OPTIONS="detect_leaks=0:${ASAN_OPTIONS:-}"
exec ctest --output-on-failure -j "$@"
