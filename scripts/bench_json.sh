#!/usr/bin/env bash
# Machine-readable benchmark runner: builds a Release tree and writes a
# BENCH_*.json snapshot at the repo root (name = first argument, default
# BENCH_PR7.json), combining
#   - google-benchmark's native JSON for the host micro benches,
#   - the --json runner mode of fig3/fig4/fig5 (host wall-clock, simulated
#     ns and simulator events/sec per run),
#   - the scaling_nodes thread-scaling sweep (aggregate events/sec at
#     1/2/4 worker shards over the same 64-host workload), and
#   - the ablation_recovery diskless sweep (disk vs in-memory replicated
#     checkpoints: restore I/O per backend at 1..R holder crashes), and
#   - the ablation_gcs_scale membership sweep (flat vs tree dissemination:
#     sequencer sends per multicast, heartbeat datagrams per period,
#     marker-barrier and view-change latency at 16/64/256 members), and
#   - the ablation_incremental compressed-epoch sweep (disk bytes per
#     STARFISH_CKPT_COMPRESS mode plus the replica warm-ship reduction
#     under delta+lz).
# The figures' human-readable stdout is unchanged and discarded here.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_NAME="${1:-BENCH_PR10.json}"
BUILD=build-bench
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target \
  micro_benchmarks fig3_native_checkpoint fig4_vm_checkpoint fig5_roundtrip \
  scaling_nodes ablation_recovery ablation_gcs_scale ablation_incremental >/dev/null

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

"$BUILD"/bench/micro_benchmarks --benchmark_format=json >"$out/micro.json"
"$BUILD"/bench/fig3_native_checkpoint --json "$out/fig3.json" >/dev/null
"$BUILD"/bench/fig4_vm_checkpoint --json "$out/fig4.json" >/dev/null
"$BUILD"/bench/fig5_roundtrip --json "$out/fig5.json" >/dev/null
"$BUILD"/bench/scaling_nodes --threads 1,2,4 --json "$out/scaling.json" >/dev/null
"$BUILD"/bench/ablation_recovery --json "$out/recovery.json" >/dev/null
"$BUILD"/bench/ablation_gcs_scale --json "$out/gcs_scale.json" >/dev/null
"$BUILD"/bench/ablation_incremental --json "$out/incremental.json" >/dev/null

python3 - "$out" "$OUT_NAME" <<'EOF'
import json, os, sys

d = sys.argv[1]
merged = {
    "schema": "starfish-bench-v1",
    "figures": [json.load(open(os.path.join(d, f)))
                for f in ("fig3.json", "fig4.json", "fig5.json", "scaling.json",
                          "recovery.json", "gcs_scale.json", "incremental.json")],
    "micro": json.load(open(os.path.join(d, "micro.json"))),
}
with open(sys.argv[2], "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print("wrote", sys.argv[2])
EOF
