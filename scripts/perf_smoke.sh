#!/usr/bin/env bash
# Engine hot-path regression smoke: runs the engine/fiber/channel micro
# benches in a Release tree and compares host time per benchmark against the
# committed baseline (scripts/perf_baseline.json). A >20% slowdown prints a
# WARNING per offender and a nonzero-looking summary line, but exits 0 —
# wall-clock on shared machines is noisy, so the warning is the signal and a
# hard gate would flake.
#
#   scripts/perf_smoke.sh            # compare against the committed baseline
#   scripts/perf_smoke.sh --update   # rewrite the baseline from this host
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-bench
FILTER='BM_Engine|BM_Fiber|BM_Channel|BM_Vm'
BASELINE=scripts/perf_baseline.json

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target micro_benchmarks >/dev/null

out=$(mktemp)
trap 'rm -f "$out"' EXIT
"$BUILD"/bench/micro_benchmarks --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 --benchmark_format=json >"$out"

if [[ "${1:-}" == "--update" ]]; then
  python3 - "$out" "$BASELINE" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
base = {b["name"]: b["real_time"] for b in run["benchmarks"]}
with open(sys.argv[2], "w") as f:
    json.dump({"schema": "starfish-perf-baseline-v1",
               "note": "host ns/iteration; regenerate: scripts/perf_smoke.sh --update",
               "real_time_ns": base}, f, indent=1)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(base)} benchmarks)")
EOF
  exit 0
fi

python3 - "$out" "$BASELINE" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))["real_time_ns"]
worst = 0.0
for b in run["benchmarks"]:
    name, t = b["name"], b["real_time"]
    if name not in base:
        print(f"  (new)    {name}: {t:.0f} ns — not in baseline; run --update")
        continue
    ratio = t / base[name]
    worst = max(worst, ratio)
    tag = "WARNING" if ratio > 1.20 else "ok"
    print(f"  {tag:7s}  {name}: {t:.0f} ns vs baseline {base[name]:.0f} ns ({ratio:.2f}x)")
if worst > 1.20:
    print(f"perf smoke: WARNING — worst regression {worst:.2f}x exceeds the 1.20x budget")
else:
    print(f"perf smoke: ok (worst ratio {worst:.2f}x)")
EOF
