#!/usr/bin/env bash
# Engine hot-path regression smoke: runs the engine/fiber/channel micro
# benches plus the SIMD data-plane benches (fingerprint, image conversion,
# datatype pack) in a Release tree and compares host time per benchmark against the
# committed baseline (scripts/perf_baseline.json), then runs the sharded
# engine's thread-scaling workload (bench/scaling_nodes --threads 1,4) and
# compares sequential simulator throughput against the same baseline plus
# threaded-vs-sequential side by side. A >20% slowdown prints a WARNING per
# offender and a nonzero-looking summary line, but exits 0 — wall-clock on
# shared machines is noisy, so the warning is the signal and a hard gate
# would flake.
#
#   scripts/perf_smoke.sh            # compare against the committed baseline
#   scripts/perf_smoke.sh --update   # rewrite the baseline from this host
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-bench
FILTER='BM_Engine|BM_Fiber|BM_Channel|BM_Vm|BM_Fingerprint|BM_ImageConvert|BM_DatatypePack'
BASELINE=scripts/perf_baseline.json

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target micro_benchmarks scaling_nodes >/dev/null

out=$(mktemp)
scaling=$(mktemp)
trap 'rm -f "$out" "$scaling"' EXIT
"$BUILD"/bench/micro_benchmarks --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 --benchmark_format=json >"$out"
# Sequential vs. threaded run of the same 64-host workload (identical virtual
# history — only the host clock differs); events/s per thread count.
"$BUILD"/bench/scaling_nodes --threads 1,4 --json "$scaling" >/dev/null

if [[ "${1:-}" == "--update" ]]; then
  python3 - "$out" "$BASELINE" "$scaling" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
base = {b["name"]: b["real_time"] for b in run["benchmarks"]}
sweep = {r["name"]: r["value"] for r in json.load(open(sys.argv[3]))["runs"]
         if r["name"].startswith("scaling/threads=")}
with open(sys.argv[2], "w") as f:
    json.dump({"schema": "starfish-perf-baseline-v1",
               "note": "host ns/iteration; regenerate: scripts/perf_smoke.sh --update",
               "real_time_ns": base,
               "scaling_events_per_sec": sweep}, f, indent=1)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(base)} benchmarks, {len(sweep)} scaling points)")
EOF
  exit 0
fi

python3 - "$out" "$BASELINE" "$scaling" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))
base = baseline["real_time_ns"]
worst = 0.0
for b in run["benchmarks"]:
    name, t = b["name"], b["real_time"]
    if name not in base:
        print(f"  (new)    {name}: {t:.0f} ns — not in baseline; run --update")
        continue
    ratio = t / base[name]
    worst = max(worst, ratio)
    tag = "WARNING" if ratio > 1.20 else "ok"
    print(f"  {tag:7s}  {name}: {t:.0f} ns vs baseline {base[name]:.0f} ns ({ratio:.2f}x)")
if worst > 1.20:
    print(f"perf smoke: WARNING — worst regression {worst:.2f}x exceeds the 1.20x budget")
else:
    print(f"perf smoke: ok (worst ratio {worst:.2f}x)")

# Threaded vs. sequential simulator throughput on the 64-host workload.
sweep = {r["name"]: (r["value"], r.get("events")) for r in
         json.load(open(sys.argv[3]))["runs"] if r["name"].startswith("scaling/threads=")}
sweep_base = baseline.get("scaling_events_per_sec", {})
seq = threaded = None
print("threaded vs sequential (64-host group, 2 s virtual):")
for name, (eps, events) in sorted(sweep.items()):
    threads = int(name.split("threads=")[1].split("/")[0])
    if threads == 1:
        seq = eps
    else:
        threaded = eps
    line = f"  {name}: {eps:.3g} events/s ({events} events)"
    if name in sweep_base and sweep_base[name] > 0:
        ratio = sweep_base[name] / eps  # >1 = slower than baseline
        tag = "WARNING" if ratio > 1.20 else "ok"
        line += f" — {tag} vs baseline {sweep_base[name]:.3g} ({ratio:.2f}x slower)"
    print(line)
counts = {e for _, e in sweep.values()}
if len(counts) > 1:
    print("perf smoke: WARNING — event counts diverged across thread counts "
          "(determinism bug, see tests/shard_determinism_test.cpp)")
if seq and threaded:
    print(f"  threaded/sequential speedup: {threaded / seq:.2f}x "
          f"(bounded by this host's core count, not --threads)")
EOF
