#!/usr/bin/env bash
# ThreadSanitizer ctest configuration for the sharded engine: builds an
# instrumented tree (build-tsan/, -DSTARFISH_TSAN=ON) and runs the suite
# twice —
#   1. as-is: engine/golden/shard tests exercise their own 2/4/8-shard
#      configurations under TSan, and
#   2. with STARFISH_SHARDS=4 exported: every cluster-level tier (chaos,
#      scenario, resilience, obs, core) runs its whole simulation on four
#      worker threads, sweeping the cross-shard exchange, window barrier,
#      checkpoint-store and fault-lane paths for data races.
#
# Under TSan the sim layer automatically falls back from the hand-rolled
# context switch to swapcontext, whose TSan interceptor tracks the stack
# hop. The explicit __tsan_*_fiber annotations stay off by default — gcc's
# libtsan crashes when they are used (see src/sim/context.hpp).
#
# Extra arguments are passed through to ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DSTARFISH_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j

# halt_on_error: a race is a failure, not a log line. second_deadlock_stack
# helps on lock-order reports from the window barrier / checkpoint store.
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:${TSAN_OPTIONS:-}"

cd build-tsan
# The tiers this script exists for must actually be registered.
[ "$(ctest -N | grep -ci chaos)" -gt 0 ] || { echo "chaos tests missing from ctest registration" >&2; exit 1; }
[ "$(ctest -N | grep -ci shard)" -gt 0 ] || { echo "shard tests missing from ctest registration" >&2; exit 1; }

echo "== TSan pass 1: full suite (multi-shard tests self-configured) =="
ctest --output-on-failure -j "$@"

echo "== TSan pass 2: sim/chaos tiers at STARFISH_SHARDS=4 =="
# (-R before -j: ctest's -j greedily consumes the following argument, which
# would silently disable the filter and run the whole suite.)
STARFISH_SHARDS=4 ctest --output-on-failure \
  -R 'Chaos|Scenario|Resilience|Obs|Shard|Core|Property' -j "$@"

echo "== TSan pass 3: chaos/replica tiers, diskless backend, 4 shards =="
# The replica store is cluster-wide shared state reached from every worker
# shard; this pass races its put/get/rebalance/crash-invalidation paths on
# four threads with faults injected.
STARFISH_SHARDS=4 STARFISH_CKPT_BACKEND=replica ctest --output-on-failure \
  -R 'Chaos|Replica' -j "$@"

echo "== TSan pass 4: group/chaos tiers, tree dissemination topology, 4 shards =="
# Tree mode adds per-endpoint relay and gossip state touched from the
# endpoint's host shard; this pass races the rebuilt-tree paths (forwarding,
# heartbeat aggregation, fragmentation fallback) across worker threads.
STARFISH_SHARDS=4 STARFISH_GCS_TOPOLOGY=tree ctest --output-on-failure \
  -R 'Chaos|Group|GcsDifferential' -j "$@"

echo "== TSan pass 5: chaos/ckpt tiers, compressed epochs off vs delta+lz, 4 shards =="
# The codec runs on the putting rank's shard while the delta-base tracker
# and chain walker live in store-wide maps reached from every shard; these
# passes race encode/decode, base tracking and the corrupt-chain fallback
# across four worker threads with faults injected — once with the coded
# pipeline pinned off, once with lz-coded delta frames forced on.
STARFISH_SHARDS=4 STARFISH_CKPT_COMPRESS=off ctest --output-on-failure \
  -R 'Chaos|Replica|Codec|Compress|StoreFault' -j "$@"
STARFISH_SHARDS=4 STARFISH_CKPT_COMPRESS=delta+lz ctest --output-on-failure \
  -R 'Chaos|Replica|Codec|Compress|StoreFault' -j "$@"

echo "== TSan pass 6: data-plane tiers, SIMD dispatch forced scalar, 4 shards =="
# Checkpoint fingerprints run from every worker shard; this pass races the
# scalar reference kernels (the loops the vector paths are differenced
# against) through the same multi-shard checkpoint workload.
STARFISH_SHARDS=4 STARFISH_SIMD=scalar ctest --output-on-failure \
  -R 'Simd|PortableImage|Datatype|Incremental' -j "$@"
