#include "ckpt/codec.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "ckpt/incremental.hpp"
#include "obs/obs.hpp"
#include "util/codec/lz.hpp"
#include "util/simd/simd.hpp"

namespace starfish::ckpt {

namespace {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::Reader;
using util::Result;
using util::Status;
using util::Writer;
namespace simd = util::simd;

constexpr uint32_t kDeltaMagic = 0x314C4453;  // "SDL1" little-endian
constexpr uint8_t kDeltaVersion = 1;

Error codec_error(const std::string& what) { return Error::make("codec", "payload: " + what); }

size_t page_count(uint64_t len) { return static_cast<size_t>((len + kPageBytes - 1) / kPageBytes); }

void note_encode(obs::Hub* hub, uint64_t raw_len, uint64_t enc_len, uint64_t refs,
                 uint64_t literals) {
  if (hub == nullptr) return;
  hub->metrics.counter("ckpt.codec.raw_bytes").add(raw_len);
  hub->metrics.counter("ckpt.codec.encoded_bytes").add(enc_len);
  if (refs != 0) hub->metrics.counter("ckpt.codec.delta_page_refs").add(refs);
  if (literals != 0) hub->metrics.counter("ckpt.codec.delta_page_literals").add(literals);
  if (enc_len != 0) {
    // Compression ratio x100 (100 = pass-through, 300 = 3x smaller).
    hub->metrics
        .histogram("ckpt.codec.ratio_x100", obs::HistogramSpec::exponential(25, 2.0, 10))
        .record(raw_len * 100 / enc_len);
  }
}

Error note_decode_error(obs::Hub* hub, Error e) {
  if (hub != nullptr) hub->metrics.counter("ckpt.codec.decode_errors").add(1);
  return e;
}

/// Diffs `raw` against `base` page-by-page into a delta frame. Reference
/// pages must be byte-identical at the same offset — the compare is exact
/// (simd mismatch), not fingerprint-trusting, because the stored bytes
/// must reconstruct bit-identically and both payloads are in memory here.
Bytes delta_encode(BytesView raw, BytesView base, uint64_t* refs, uint64_t* literals) {
  Bytes out;
  Writer w(out);
  w.u32(kDeltaMagic);
  w.u8(kDeltaVersion);
  w.u64(raw.size());
  w.u64(base.size());
  w.u64(simd::fingerprint(base.data(), base.size()));
  const size_t count_at = out.size();
  w.u32(0);  // literal count, patched after the scan
  const simd::Ops& simd = simd::ops();
  const size_t n_pages = page_count(raw.size());
  uint32_t n_literals = 0;
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, raw.size() - off);
    const bool same = off + len <= base.size() &&
                      simd.mismatch(base.data() + off, raw.data() + off, len) == len;
    if (same) continue;
    ++n_literals;
    w.u32(static_cast<uint32_t>(p));
    w.bytes(raw.subspan(off, len));
  }
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    out[count_at + i] = static_cast<std::byte>((n_literals >> (8 * i)) & 0xff);
  }
  w.u64(simd::fingerprint(out.data(), out.size()));
  if (refs != nullptr) *refs = n_pages - n_literals;
  if (literals != nullptr) *literals = n_literals;
  return out;
}

struct DeltaHeader {
  uint64_t raw_len = 0;
  uint64_t base_len = 0;
  uint64_t base_check = 0;
};

struct DeltaLiteral {
  uint32_t page = 0;
  BytesView bytes;
};

/// Parses and checksum-verifies a delta frame; fills the header and the
/// literal list (views into `frame`). Base-independent: everything except
/// "does my base match" is validated here.
Result<DeltaHeader> parse_delta(BytesView frame, std::vector<DeltaLiteral>& literals) {
  if (frame.size() < sizeof(uint64_t)) return codec_error("delta frame too short");
  const size_t body_len = frame.size() - sizeof(uint64_t);
  Reader tail(frame.subspan(body_len));
  const uint64_t want = tail.u64().value();
  if (simd::fingerprint(frame.data(), body_len) != want) {
    return codec_error("delta frame checksum mismatch");
  }
  Reader r(frame.subspan(0, body_len));
  auto magic = r.u32();
  if (!magic || magic.value() != kDeltaMagic) return codec_error("bad delta magic");
  auto version = r.u8();
  if (!version || version.value() != kDeltaVersion) {
    return codec_error("unsupported delta version");
  }
  auto raw_len = r.u64();
  auto base_len = r.u64();
  auto base_check = r.u64();
  auto n_literals = r.u32();
  if (!raw_len || !base_len || !base_check || !n_literals) {
    return codec_error("truncated delta header");
  }
  const size_t n_pages = page_count(raw_len.value());
  if (n_literals.value() > n_pages) return codec_error("delta carries more pages than the payload");
  literals.clear();
  literals.reserve(n_literals.value());
  uint32_t prev_page = 0;
  for (uint32_t i = 0; i < n_literals.value(); ++i) {
    auto page = r.u32();
    if (!page) return codec_error("truncated delta literal");
    if (page.value() >= n_pages) return codec_error("delta literal page beyond payload");
    if (i != 0 && page.value() <= prev_page) {
      return codec_error("delta literal pages not strictly increasing");
    }
    prev_page = page.value();
    auto data = r.view();
    if (!data) return codec_error("truncated delta literal");
    const size_t off = static_cast<size_t>(page.value()) * kPageBytes;
    const size_t expected = std::min<size_t>(kPageBytes, static_cast<size_t>(raw_len.value()) - off);
    if (data.value().size() != expected) return codec_error("delta literal has wrong length");
    literals.push_back({page.value(), data.value()});
  }
  if (!r.exhausted()) return codec_error("trailing bytes in delta frame");
  // Every non-literal page is a base reference; references past the base's
  // end could never have been emitted by the encoder.
  size_t li = 0;
  for (size_t p = 0; p < n_pages; ++p) {
    if (li < literals.size() && literals[li].page == p) {
      ++li;
      continue;
    }
    const size_t off = p * kPageBytes;
    const size_t len = std::min<size_t>(kPageBytes, static_cast<size_t>(raw_len.value()) - off);
    if (off + len > base_len.value()) return codec_error("delta references page beyond base");
  }
  return DeltaHeader{raw_len.value(), base_len.value(), base_check.value()};
}

Result<Bytes> delta_decode(BytesView frame, BytesView base, uint64_t max_bytes) {
  std::vector<DeltaLiteral> literals;
  auto header = parse_delta(frame, literals);
  if (!header) return header.error();
  if (header.value().raw_len > max_bytes) {
    return codec_error("delta announces oversized payload (" +
                       std::to_string(header.value().raw_len) + " > " +
                       std::to_string(max_bytes) + " bytes)");
  }
  if (header.value().base_len != base.size() ||
      header.value().base_check != simd::fingerprint(base.data(), base.size())) {
    return codec_error("delta base payload mismatch");
  }
  const size_t raw_len = static_cast<size_t>(header.value().raw_len);
  const size_t n_pages = page_count(raw_len);
  Bytes out(raw_len);
  size_t li = 0;
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, raw_len - off);
    if (li < literals.size() && literals[li].page == p) {
      simd::copy(out.data() + off, literals[li].bytes.data(), len);
      ++li;
    } else {
      simd::copy(out.data() + off, base.data() + off, len);
    }
  }
  return out;
}

}  // namespace

const char* compress_mode_name(CompressMode mode) {
  switch (mode) {
    case CompressMode::kOff: return "off";
    case CompressMode::kLz: return "lz";
    case CompressMode::kDelta: return "delta";
    case CompressMode::kDeltaLz: return "delta+lz";
  }
  return "off";
}

std::optional<CompressMode> parse_compress_mode(std::string_view text) {
  if (text == "off") return CompressMode::kOff;
  if (text == "lz") return CompressMode::kLz;
  if (text == "delta") return CompressMode::kDelta;
  if (text == "delta+lz" || text == "delta_lz") return CompressMode::kDeltaLz;
  return std::nullopt;
}

CompressMode compress_mode_from_env() {
  const char* v = std::getenv("STARFISH_CKPT_COMPRESS");
  if (v == nullptr) return CompressMode::kOff;
  return parse_compress_mode(v).value_or(CompressMode::kOff);
}

EncodedPayload encode_payload(CompressMode mode, BytesView raw, BytesView base, obs::Hub* hub) {
  EncodedPayload result;
  result.raw_len = raw.size();
  const bool want_delta =
      (mode == CompressMode::kDelta || mode == CompressMode::kDeltaLz) && !base.empty();
  const bool want_lz = mode == CompressMode::kLz || mode == CompressMode::kDeltaLz;

  Bytes candidate;
  PayloadCodec codec = PayloadCodec::kRaw;
  uint64_t refs = 0;
  uint64_t literals = 0;
  if (want_delta) {
    candidate = delta_encode(raw, base, &refs, &literals);
    codec = PayloadCodec::kDelta;
    if (mode == CompressMode::kDeltaLz) {
      candidate = util::codec::lz_compress(util::as_bytes_view(candidate));
      codec = PayloadCodec::kDeltaLz;
    }
  } else if (want_lz) {
    candidate = util::codec::lz_compress(raw);
    codec = PayloadCodec::kLz;
  }

  if (codec != PayloadCodec::kRaw && candidate.size() < raw.size()) {
    result.bytes = std::move(candidate);
    result.codec = codec;
    result.delta_page_refs = refs;
    result.delta_page_literals = literals;
  } else {
    result.bytes.assign(raw.begin(), raw.end());
  }
  if (mode != CompressMode::kOff) {
    note_encode(hub, result.raw_len, result.bytes.size(), result.delta_page_refs,
                result.delta_page_literals);
  }
  return result;
}

Result<Bytes> decode_payload(PayloadCodec codec, BytesView encoded, BytesView base,
                             uint64_t max_bytes, obs::Hub* hub) {
  switch (codec) {
    case PayloadCodec::kRaw:
      if (encoded.size() > max_bytes) {
        return note_decode_error(hub, codec_error("raw payload exceeds size bound"));
      }
      return Bytes(encoded.begin(), encoded.end());
    case PayloadCodec::kLz: {
      auto out = util::codec::lz_decompress(encoded, max_bytes);
      if (!out) return note_decode_error(hub, out.error());
      return std::move(out).take();
    }
    case PayloadCodec::kDelta: {
      auto out = delta_decode(encoded, base, max_bytes);
      if (!out) return note_decode_error(hub, out.error());
      return std::move(out).take();
    }
    case PayloadCodec::kDeltaLz: {
      // The delta frame is at most raw + per-page framing; bound it loosely
      // against the same cap the payload itself carries.
      auto frame = util::codec::lz_decompress(encoded, max_bytes + max_bytes / 2 + 4096);
      if (!frame) return note_decode_error(hub, frame.error());
      auto out = delta_decode(util::as_bytes_view(frame.value()), base, max_bytes);
      if (!out) return note_decode_error(hub, out.error());
      return std::move(out).take();
    }
  }
  return note_decode_error(hub, codec_error("unknown payload codec"));
}

Status verify_payload(PayloadCodec codec, BytesView encoded) {
  switch (codec) {
    case PayloadCodec::kRaw:
      return Status::ok_status();
    case PayloadCodec::kLz:
      return util::codec::lz_verify(encoded);
    case PayloadCodec::kDelta: {
      std::vector<DeltaLiteral> literals;
      auto header = parse_delta(encoded, literals);
      if (!header) return header.error();
      return Status::ok_status();
    }
    case PayloadCodec::kDeltaLz: {
      // Verifying the inner delta needs the decompressed frame; the lz
      // layer's block checksums already cover the bytes, so a clean outer
      // verify plus a parseable inner frame is the full structural check.
      auto frame = util::codec::lz_decompress(encoded, kMaxIncrementalStateBytes);
      if (!frame) return frame.error();
      std::vector<DeltaLiteral> literals;
      auto header = parse_delta(util::as_bytes_view(frame.value()), literals);
      if (!header) return header.error();
      return Status::ok_status();
    }
  }
  return codec_error("unknown payload codec");
}

Result<uint64_t> payload_raw_size(PayloadCodec codec, BytesView encoded) {
  switch (codec) {
    case PayloadCodec::kRaw:
      return static_cast<uint64_t>(encoded.size());
    case PayloadCodec::kLz:
      return util::codec::lz_raw_size(encoded);
    case PayloadCodec::kDelta: {
      Reader r(encoded);
      auto magic = r.u32();
      if (!magic || magic.value() != kDeltaMagic) return codec_error("bad delta magic");
      auto version = r.u8();
      if (!version || version.value() != kDeltaVersion) {
        return codec_error("unsupported delta version");
      }
      auto raw_len = r.u64();
      if (!raw_len) return codec_error("truncated delta header");
      return raw_len.value();
    }
    case PayloadCodec::kDeltaLz: {
      auto frame = util::codec::lz_decompress(encoded, kMaxIncrementalStateBytes);
      if (!frame) return frame.error();
      return payload_raw_size(PayloadCodec::kDelta, util::as_bytes_view(frame.value()));
    }
  }
  return codec_error("unknown payload codec");
}

}  // namespace starfish::ckpt
