// Checkpoint payload compression: the epoch transfer codec (PR 10).
//
// Between the image encoders (image.hpp, incremental.hpp) and the storage
// backends (store.hpp, replica.hpp) sits an optional payload codec that
// shrinks what an epoch actually writes to disk or ships to replica
// holders. Two orthogonal reducers compose:
//
//   - "lz": the deterministic block codec of util/codec/lz.hpp, applied to
//     the payload bytes. Wins on run- and structure-heavy container bytes.
//   - "delta": pages of the payload that are byte-identical (same offset,
//     same bytes) to the previous durable epoch's payload are encoded as
//     references; only changed pages travel as literals. This is the
//     payload-level analogue of incremental checkpointing, but it applies
//     to the *stored/shipped* bytes, so it also collapses the parts of the
//     container that incremental app-state deltas cannot (tracker, channel
//     state, replay log framing).
//
// The mode is a CheckpointStore-level setting (STARFISH_CKPT_COMPRESS env
// or ClusterOptions), default off; encode falls back to raw whenever a
// coded payload would not beat the raw bytes, so enabling a mode never
// inflates an epoch. Every decode failure is a typed Error{"codec", ...}:
// callers fall back to the next recoverable epoch, never abort.
//
// Delta frame layout (little-endian; pages are ckpt::kPageBytes):
//   u32 magic "SDL1"   u8 version   u64 raw_len   u64 base_len
//   u64 base_check (fingerprint of the base payload)
//   u32 n_literals   per literal: u32 page_index; u32 len; page bytes
//   u64 check (fingerprint of every frame byte before this field)
// Pages absent from the literal list are references into the base payload
// at the same offset. "delta+lz" is lz(delta frame). The trailing
// fingerprint makes verification a single hash pass; the base fingerprint
// pins a delta to the exact payload it was diffed against, so a chain
// walker can detect a wrong or corrupted base before reconstruction.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::obs {
struct Hub;
}

namespace starfish::ckpt {

/// Store-level compression policy (what encode_payload tries).
enum class CompressMode : uint8_t { kOff = 0, kLz = 1, kDelta = 2, kDeltaLz = 3 };

/// How one stored payload is actually coded (what decode_payload needs).
/// A mode is a policy; a codec is a fact about one image's bytes — under
/// any mode an image degrades to kRaw when coding would not pay.
enum class PayloadCodec : uint8_t { kRaw = 0, kLz = 1, kDelta = 2, kDeltaLz = 3 };

const char* compress_mode_name(CompressMode mode);
/// Parses "off" | "lz" | "delta" | "delta+lz" (also accepts "delta_lz").
std::optional<CompressMode> parse_compress_mode(std::string_view text);
/// STARFISH_CKPT_COMPRESS, default kOff; unparseable values mean kOff.
CompressMode compress_mode_from_env();

/// Result of one encode_payload call.
struct EncodedPayload {
  util::Bytes bytes;                           ///< the stored/shipped bytes
  PayloadCodec codec = PayloadCodec::kRaw;     ///< how `bytes` is coded
  uint64_t raw_len = 0;                        ///< length of the raw payload
  uint64_t delta_page_refs = 0;                ///< pages coded as base references
  uint64_t delta_page_literals = 0;            ///< pages carried as literals
};

/// Encodes `raw` under `mode`. `base` is the previous durable epoch's raw
/// payload for the delta modes (pass {} when there is none — delta then
/// degrades to lz or raw). Falls back to PayloadCodec::kRaw whenever the
/// coded bytes would not be smaller than the raw bytes, so the result
/// never inflates. Deterministic for fixed inputs on every host/ISA.
/// `hub` (nullable) receives ckpt.codec.* counters and the ratio histogram.
EncodedPayload encode_payload(CompressMode mode, util::BytesView raw, util::BytesView base,
                              obs::Hub* hub);

/// Reconstructs the raw payload. `base` must be the raw payload of the
/// epoch the delta was diffed against (ignored for kRaw/kLz). `max_bytes`
/// bounds the announced raw size against forged headers. Corruption,
/// truncation or a base mismatch yields Error{"codec", ...} (and bumps
/// ckpt.codec.decode_errors when `hub` is set) — never an abort.
util::Result<util::Bytes> decode_payload(PayloadCodec codec, util::BytesView encoded,
                                         util::BytesView base, uint64_t max_bytes, obs::Hub* hub);

/// Structural + checksum validation without reconstructing the payload and
/// without the base: frame sanity, literal bounds, fingerprints. A frame
/// that verifies clean decodes clean against its matching base.
util::Status verify_payload(PayloadCodec codec, util::BytesView encoded);

/// The raw payload size a coded frame announces (header peek; trivially
/// encoded.size() for kRaw).
util::Result<uint64_t> payload_raw_size(PayloadCodec codec, util::BytesView encoded);

}  // namespace starfish::ckpt
