#include "ckpt/image.hpp"

namespace starfish::ckpt {

namespace {

using util::Endian;
using util::Reader;
using util::Writer;
using vm::Tag;
using vm::Value;

constexpr uint32_t kPortableMagic = 0x53465650;  // "SFVP"

/// Writes an integer in a saver-word-sized slot.
void put_word(Writer& w, int64_t v, uint8_t word_bytes) {
  if (word_bytes >= 8) {
    w.i64(v);
  } else {
    w.i32(static_cast<int32_t>(v));  // VM arithmetic already wrapped to 32 bits
  }
}

util::Result<int64_t> get_word(Reader& r, uint8_t word_bytes) {
  if (word_bytes >= 8) return r.i64();
  auto v = r.i32();
  if (!v) return v.error();
  return static_cast<int64_t>(v.value());
}

void put_value(Writer& w, const Value& v, uint8_t word_bytes) {
  w.u8(static_cast<uint8_t>(v.tag));
  switch (v.tag) {
    case Tag::kUnit: break;
    case Tag::kInt: put_word(w, v.i, word_bytes); break;
    case Tag::kFloat: w.f64(v.f); break;
    case Tag::kBool: w.u8(v.i ? 1 : 0); break;
    case Tag::kRef: w.u32(v.ref); break;
  }
}

util::Result<Value> get_value(Reader& r, uint8_t saver_word, const sim::Machine& target) {
  auto tag = r.u8();
  if (!tag) return tag.error();
  switch (static_cast<Tag>(tag.value())) {
    case Tag::kUnit: return Value::unit();
    case Tag::kInt: {
      auto v = get_word(r, saver_word);
      if (!v) return v.error();
      if (!vm::fits_word(v.value(), target)) {
        return util::Error::make(
            "narrow", "integer " + std::to_string(v.value()) +
                          " does not fit the target machine's " +
                          std::to_string(target.word_bytes * 8) + "-bit word");
      }
      return Value::integer(v.value());
    }
    case Tag::kFloat: {
      auto v = r.f64();
      if (!v) return v.error();
      return Value::real(v.value());
    }
    case Tag::kBool: {
      auto v = r.u8();
      if (!v) return v.error();
      return Value::boolean(v.value() != 0);
    }
    case Tag::kRef: {
      auto v = r.u32();
      if (!v) return v.error();
      return Value::reference(v.value());
    }
  }
  return util::Error::make("decode", "bad value tag");
}

}  // namespace

util::Endian repr_endian(uint16_t code) { return static_cast<Endian>(code >> 8); }
uint8_t repr_word_bytes(uint16_t code) { return static_cast<uint8_t>(code & 0xff); }

// ------------------------------------------------------------- native ----

Image native_encode(const sim::Machine& saver, std::span<const std::byte> memory) {
  Image img;
  img.kind = ImageKind::kNative;
  img.repr_code = saver.repr_code();
  img.payload.assign(memory.begin(), memory.end());
  img.file_bytes = kNativeBaseBytes + memory.size();
  return img;
}

util::Result<util::Bytes> native_decode(const Image& image, const sim::Machine& target) {
  if (image.kind != ImageKind::kNative) {
    return util::Error::make("kind", "not a native image");
  }
  if (image.repr_code != target.repr_code()) {
    return util::Error::make(
        "repr-mismatch",
        "native checkpoint requires an identical machine representation "
        "(saved repr=" + std::to_string(image.repr_code) +
            ", target repr=" + std::to_string(target.repr_code()) + ")");
  }
  return image.payload;
}

// ----------------------------------------------------------- portable ----

Image portable_encode(const sim::Machine& saver, const vm::VmState& state) {
  Image img;
  img.kind = ImageKind::kPortable;
  img.repr_code = saver.repr_code();

  Writer w(img.payload, saver.endian);
  const uint8_t word = saver.word_bytes;
  w.u32(kPortableMagic);
  w.u32(static_cast<uint32_t>(state.globals.size()));
  for (const auto& v : state.globals) put_value(w, v, word);
  w.u32(static_cast<uint32_t>(state.stack.size()));
  for (const auto& v : state.stack) put_value(w, v, word);
  w.u32(static_cast<uint32_t>(state.frames.size()));
  for (const auto& f : state.frames) {
    w.u32(f.function);
    w.u32(f.pc);
    w.u32(static_cast<uint32_t>(f.locals.size()));
    for (const auto& v : f.locals) put_value(w, v, word);
  }
  w.u32(static_cast<uint32_t>(state.heap.size()));
  for (const auto& obj : state.heap) {
    w.u8(static_cast<uint8_t>(obj.kind));
    if (obj.kind == vm::HeapObject::Kind::kArray) {
      w.u32(static_cast<uint32_t>(obj.fields.size()));
      for (const auto& v : obj.fields) put_value(w, v, word);
    } else {
      w.bytes(util::as_bytes_view(obj.bytes));
    }
  }
  w.u64(state.steps_executed);

  img.file_bytes = kPortableBaseBytes + img.payload.size();
  return img;
}

util::Result<vm::VmState> portable_decode(const Image& image, const sim::Machine& target) {
  if (image.kind != ImageKind::kPortable) {
    return util::Error::make("kind", "not a portable image");
  }
  const Endian endian = repr_endian(image.repr_code);
  const uint8_t word = repr_word_bytes(image.repr_code);
  Reader r(util::as_bytes_view(image.payload), endian);

  auto magic = r.u32();
  if (!magic) return magic.error();
  if (magic.value() != kPortableMagic) {
    return util::Error::make("decode", "bad portable image magic");
  }

  vm::VmState state;
  auto n_globals = r.u32();
  if (!n_globals) return n_globals.error();
  for (uint32_t i = 0; i < n_globals.value(); ++i) {
    auto v = get_value(r, word, target);
    if (!v) return v.error();
    state.globals.push_back(v.value());
  }
  auto n_stack = r.u32();
  if (!n_stack) return n_stack.error();
  for (uint32_t i = 0; i < n_stack.value(); ++i) {
    auto v = get_value(r, word, target);
    if (!v) return v.error();
    state.stack.push_back(v.value());
  }
  auto n_frames = r.u32();
  if (!n_frames) return n_frames.error();
  for (uint32_t i = 0; i < n_frames.value(); ++i) {
    vm::Frame f;
    auto fn = r.u32();
    if (!fn) return fn.error();
    f.function = fn.value();
    auto pc = r.u32();
    if (!pc) return pc.error();
    f.pc = pc.value();
    auto n_locals = r.u32();
    if (!n_locals) return n_locals.error();
    for (uint32_t k = 0; k < n_locals.value(); ++k) {
      auto v = get_value(r, word, target);
      if (!v) return v.error();
      f.locals.push_back(v.value());
    }
    state.frames.push_back(std::move(f));
  }
  auto n_heap = r.u32();
  if (!n_heap) return n_heap.error();
  for (uint32_t i = 0; i < n_heap.value(); ++i) {
    vm::HeapObject obj;
    auto kind = r.u8();
    if (!kind) return kind.error();
    obj.kind = static_cast<vm::HeapObject::Kind>(kind.value());
    if (obj.kind == vm::HeapObject::Kind::kArray) {
      auto n = r.u32();
      if (!n) return n.error();
      for (uint32_t k = 0; k < n.value(); ++k) {
        auto v = get_value(r, word, target);
        if (!v) return v.error();
        obj.fields.push_back(v.value());
      }
    } else {
      auto b = r.bytes();
      if (!b) return b.error();
      obj.bytes = std::move(b).take();
    }
    state.heap.push_back(std::move(obj));
  }
  auto steps = r.u64();
  if (!steps) return steps.error();
  state.steps_executed = steps.value();
  return state;
}

}  // namespace starfish::ckpt
