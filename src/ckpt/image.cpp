#include "ckpt/image.hpp"

#include <algorithm>
#include <cstddef>

#include "util/simd/simd.hpp"

namespace starfish::ckpt {

namespace simd = util::simd;

namespace {

using util::Endian;
using util::Reader;
using util::Writer;
using vm::Tag;
using vm::Value;

// "SFV2": the columnar portable layout (PR 9). Value sequences are stored
// struct-of-arrays — a tag byte per value, then the integer words, floats,
// bools and refs each as one contiguous homogeneous array — so the
// endianness and word-size conversion of heterogeneous checkpointing runs
// through the util/simd bulk kernels (byteswap, widen/narrow) instead of a
// per-value switch. The bytes are ISA-invariant: every kernel is
// bit-identical across scalar/AVX2/AVX-512/NEON (DESIGN.md §16).
constexpr uint32_t kPortableMagic = 0x53465632;

/// Gathered columns of one value sequence (encode side).
struct Columns {
  std::vector<int64_t> ints;
  std::vector<double> floats;
  util::Bytes bools;
  std::vector<uint32_t> refs;
};

/// Writes `vals` as tags + columns. Layout per sequence (count written by
/// the caller): u8 tags[count]; ints (saver-word-sized each, in value
/// order); f64 floats; u8 bools; u32 refs.
///
/// Single pass of tag-run-length gather: real sequences are long
/// homogeneous runs (a stack of ints, a heap array of floats), so the run
/// pre-pass turns the per-value tag switch + push_back into one dispatch
/// per run, a bulk std::fill of the run's tag bytes, and a tight
/// single-tag fill loop with no capacity checks. One streaming pass over
/// the (32-byte-stride) value array — a second full pass would be
/// memory-bound, not branch-bound, and cost more than the switch it
/// saves. The bytes are identical to the naive per-value walk: runs are
/// processed left to right, so each column keeps value order.
void put_values(Writer& w, std::span<const Value> vals, uint8_t word_bytes) {
  const size_t n = vals.size();
  util::Bytes tags(n);
  Columns c;
  // Runs are capped so the detection scan and the gather that re-reads the
  // same values stay L2-resident together (4096 values = 128 KB of Value);
  // an uncapped run over a multi-MB sequence would stream the array from
  // DRAM twice. Splitting a run changes nothing downstream — the fills and
  // appends are position-exact.
  constexpr size_t kRunCap = 4096;
  for (size_t k = 0; k < n;) {
    const Tag t = vals[k].tag;
    const size_t cap = std::min(n, k + kRunCap);
    size_t end = k + 1;
    while (end < cap && vals[end].tag == t) ++end;
    std::fill(tags.begin() + k, tags.begin() + end, static_cast<std::byte>(t));
    const size_t len = end - k;
    switch (t) {
      case Tag::kUnit:
        break;
      case Tag::kInt: {
        c.ints.resize(c.ints.size() + len);
        simd::gather64(reinterpret_cast<std::byte*>(c.ints.data() + (c.ints.size() - len)),
                       reinterpret_cast<const std::byte*>(&vals[k]) + offsetof(Value, i),
                       sizeof(Value), len);
        break;
      }
      case Tag::kFloat: {
        c.floats.resize(c.floats.size() + len);
        simd::gather64(reinterpret_cast<std::byte*>(c.floats.data() + (c.floats.size() - len)),
                       reinterpret_cast<const std::byte*>(&vals[k]) + offsetof(Value, f),
                       sizeof(Value), len);
        break;
      }
      case Tag::kBool: {
        c.bools.resize(c.bools.size() + len);
        std::byte* bp = c.bools.data() + (c.bools.size() - len);
        for (size_t j = k; j < end; ++j) {
          *bp++ = std::byte{vals[j].i ? uint8_t{1} : uint8_t{0}};
        }
        break;
      }
      case Tag::kRef: {
        c.refs.resize(c.refs.size() + len);
        uint32_t* rp = c.refs.data() + (c.refs.size() - len);
        for (size_t j = k; j < end; ++j) *rp++ = vals[j].ref;
        break;
      }
    }
    k = end;
  }
  w.raw(util::as_bytes_view(tags));
  if (word_bytes >= 8) {
    w.i64s(c.ints);
  } else {
    w.i32s_narrowed(c.ints);  // VM arithmetic already wrapped to 32 bits
  }
  w.f64s(c.floats);
  w.raw(util::as_bytes_view(c.bools));
  w.u32s(c.refs);
}

/// Reads `count` values written by put_values, converting the saver's word
/// size and checking every integer against the target machine's word.
util::Result<std::vector<Value>> get_values(Reader& r, uint32_t count, uint8_t saver_word,
                                            const sim::Machine& target) {
  auto tags = r.raw_view(count);
  if (!tags) return tags.error();
  size_t n_ints = 0, n_floats = 0, n_bools = 0, n_refs = 0;
  for (std::byte t : tags.value()) {
    switch (static_cast<Tag>(t)) {
      case Tag::kUnit: break;
      case Tag::kInt: ++n_ints; break;
      case Tag::kFloat: ++n_floats; break;
      case Tag::kBool: ++n_bools; break;
      case Tag::kRef: ++n_refs; break;
      default: return util::Error::make("decode", "bad value tag");
    }
  }
  std::vector<int64_t> ints(n_ints);
  if (saver_word >= 8) {
    if (auto s = r.read_i64s(ints); !s.ok()) return s.error();
  } else {
    if (auto s = r.read_i64s_widened(ints); !s.ok()) return s.error();
  }
  std::vector<double> floats(n_floats);
  if (auto s = r.read_f64s(floats); !s.ok()) return s.error();
  auto bools = r.raw_view(n_bools);
  if (!bools) return bools.error();
  std::vector<uint32_t> refs(n_refs);
  if (auto s = r.read_u32s(refs); !s.ok()) return s.error();

  // Run-length stitch: tags were validated above, so the reassembly walks
  // homogeneous tag runs (the tag bytes are contiguous in the payload —
  // run detection is a cheap byte scan) and appends each column span with
  // a tight single-tag loop instead of a per-value switch. Unit runs
  // bulk-append default (kUnit) values via resize. The narrowing check
  // hoists out entirely on 64-bit targets, where every i64 fits.
  std::vector<Value> out;
  out.reserve(count);
  const std::byte* tp = tags.value().data();
  const bool check_narrow = target.word_bytes < 8;
  size_t ii = 0, fi = 0, bi = 0, ri = 0;
  for (size_t k = 0; k < count;) {
    const Tag t = static_cast<Tag>(tp[k]);
    size_t end = k + 1;
    while (end < count && static_cast<Tag>(tp[end]) == t) ++end;
    switch (t) {
      case Tag::kUnit:
        out.resize(end - k + out.size());
        break;
      case Tag::kInt:
        if (check_narrow) {
          for (size_t j = k; j < end; ++j) {
            const int64_t v = ints[ii++];
            if (!vm::fits_word(v, target)) {
              return util::Error::make(
                  "narrow", "integer " + std::to_string(v) +
                                " does not fit the target machine's " +
                                std::to_string(target.word_bytes * 8) + "-bit word");
            }
            out.push_back(Value::integer(v));
          }
        } else {
          for (size_t j = k; j < end; ++j) out.push_back(Value::integer(ints[ii++]));
        }
        break;
      case Tag::kFloat:
        for (size_t j = k; j < end; ++j) out.push_back(Value::real(floats[fi++]));
        break;
      case Tag::kBool:
        for (size_t j = k; j < end; ++j) {
          out.push_back(Value::boolean(bools.value()[bi++] != std::byte{0}));
        }
        break;
      default:  // kRef (tags pre-validated)
        for (size_t j = k; j < end; ++j) out.push_back(Value::reference(refs[ri++]));
        break;
    }
    k = end;
  }
  return out;
}

}  // namespace

util::Endian repr_endian(uint16_t code) { return static_cast<Endian>(code >> 8); }
uint8_t repr_word_bytes(uint16_t code) { return static_cast<uint8_t>(code & 0xff); }

// ------------------------------------------------------------- native ----

Image native_encode(const sim::Machine& saver, std::span<const std::byte> memory) {
  Image img;
  img.kind = ImageKind::kNative;
  img.repr_code = saver.repr_code();
  img.payload.assign(memory.begin(), memory.end());
  img.file_bytes = kNativeBaseBytes + memory.size();
  return img;
}

util::Result<util::Bytes> native_decode(const Image& image, const sim::Machine& target) {
  if (image.kind != ImageKind::kNative) {
    return util::Error::make("kind", "not a native image");
  }
  if (image.repr_code != target.repr_code()) {
    return util::Error::make(
        "repr-mismatch",
        "native checkpoint requires an identical machine representation "
        "(saved repr=" + std::to_string(image.repr_code) +
            ", target repr=" + std::to_string(target.repr_code()) + ")");
  }
  return image.payload;
}

// ----------------------------------------------------------- portable ----

Image portable_encode(const sim::Machine& saver, const vm::VmState& state) {
  Image img;
  img.kind = ImageKind::kPortable;
  img.repr_code = saver.repr_code();

  Writer w(img.payload, saver.endian);
  const uint8_t word = saver.word_bytes;
  w.u32(kPortableMagic);
  w.u32(static_cast<uint32_t>(state.globals.size()));
  put_values(w, state.globals, word);
  w.u32(static_cast<uint32_t>(state.stack.size()));
  put_values(w, state.stack, word);
  w.u32(static_cast<uint32_t>(state.frames.size()));
  for (const auto& f : state.frames) {
    w.u32(f.function);
    w.u32(f.pc);
    w.u32(static_cast<uint32_t>(f.locals.size()));
    put_values(w, f.locals, word);
  }
  w.u32(static_cast<uint32_t>(state.heap.size()));
  for (const auto& obj : state.heap) {
    w.u8(static_cast<uint8_t>(obj.kind));
    if (obj.kind == vm::HeapObject::Kind::kArray) {
      w.u32(static_cast<uint32_t>(obj.fields.size()));
      put_values(w, obj.fields, word);
    } else {
      w.bytes(util::as_bytes_view(obj.bytes));
    }
  }
  w.u64(state.steps_executed);

  img.file_bytes = kPortableBaseBytes + img.payload.size();
  return img;
}

util::Result<vm::VmState> portable_decode(const Image& image, const sim::Machine& target) {
  if (image.kind != ImageKind::kPortable) {
    return util::Error::make("kind", "not a portable image");
  }
  const Endian endian = repr_endian(image.repr_code);
  const uint8_t word = repr_word_bytes(image.repr_code);
  Reader r(util::as_bytes_view(image.payload), endian);

  auto magic = r.u32();
  if (!magic) return magic.error();
  if (magic.value() != kPortableMagic) {
    return util::Error::make("decode", "bad portable image magic");
  }

  vm::VmState state;
  auto n_globals = r.u32();
  if (!n_globals) return n_globals.error();
  auto globals = get_values(r, n_globals.value(), word, target);
  if (!globals) return globals.error();
  state.globals = std::move(globals).take();
  auto n_stack = r.u32();
  if (!n_stack) return n_stack.error();
  auto stack = get_values(r, n_stack.value(), word, target);
  if (!stack) return stack.error();
  state.stack = std::move(stack).take();
  auto n_frames = r.u32();
  if (!n_frames) return n_frames.error();
  for (uint32_t i = 0; i < n_frames.value(); ++i) {
    vm::Frame f;
    auto fn = r.u32();
    if (!fn) return fn.error();
    f.function = fn.value();
    auto pc = r.u32();
    if (!pc) return pc.error();
    f.pc = pc.value();
    auto n_locals = r.u32();
    if (!n_locals) return n_locals.error();
    auto locals = get_values(r, n_locals.value(), word, target);
    if (!locals) return locals.error();
    f.locals = std::move(locals).take();
    state.frames.push_back(std::move(f));
  }
  auto n_heap = r.u32();
  if (!n_heap) return n_heap.error();
  for (uint32_t i = 0; i < n_heap.value(); ++i) {
    vm::HeapObject obj;
    auto kind = r.u8();
    if (!kind) return kind.error();
    obj.kind = static_cast<vm::HeapObject::Kind>(kind.value());
    if (obj.kind == vm::HeapObject::Kind::kArray) {
      auto n = r.u32();
      if (!n) return n.error();
      auto fields = get_values(r, n.value(), word, target);
      if (!fields) return fields.error();
      obj.fields = std::move(fields).take();
    } else {
      auto b = r.bytes();
      if (!b) return b.error();
      obj.bytes = std::move(b).take();
    }
    state.heap.push_back(std::move(obj));
  }
  auto steps = r.u64();
  if (!steps) return steps.error();
  state.steps_executed = steps.value();
  return state;
}

}  // namespace starfish::ckpt
