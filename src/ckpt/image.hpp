// Checkpoint images: native (homogeneous) and portable (heterogeneous).
//
// Native images model the paper's process-level checkpoint (dump the process
// core): an opaque byte snapshot tagged with the saving machine's
// representation, restorable *only* under an identical representation, and
// carrying the full run-time image — hence the 632 KB empty-program file of
// Figure 3.
//
// Portable images are the VM-level heterogeneous checkpoint of section 4 and
// [2]: the VM state is written in the saving machine's *native*
// representation (no conversion cost on the save path) together with a
// concise representation descriptor; the restore path converts endianness
// and word length to the target machine. An empty program costs only 260 KB
// (Figure 4) because the VM run-time itself is not part of the image.
//
// Since PR 9 the portable payload is columnar ("SFV2"): each value sequence
// stores a tag byte per value followed by the integer words, floats, bools
// and refs as contiguous homogeneous arrays, so both conversion directions
// run through the util/simd bulk kernels (byteswap, widen/narrow) and the
// payload bytes are identical at every dispatched ISA level.
//
// Images are defined over VmState in ORIGINAL bytecode coordinates. The
// interpreter's execution engine (vm/exec.hpp) never leaks its prepared or
// fused representation into frames, pcs or step counts, so the bytes
// portable_encode produces are identical across fast/checked/fused
// dispatch configurations — the differential tests pin this.
#pragma once

#include <cstdint>
#include <span>

#include "ckpt/codec.hpp"
#include "sim/machine.hpp"
#include "util/buffer.hpp"
#include "util/result.hpp"
#include "vm/value.hpp"

namespace starfish::ckpt {

enum class ImageKind : uint8_t { kNative = 0, kPortable = 1 };

/// Paper anchors for the run-time image included in each kind of checkpoint
/// file (the smallest data points of Figures 3 and 4).
constexpr uint64_t kNativeBaseBytes = 632ull * 1024;    ///< process + VM image
constexpr uint64_t kPortableBaseBytes = 260ull * 1024;  ///< VM-independent base

struct Image {
  ImageKind kind = ImageKind::kPortable;
  uint16_t repr_code = 0;  ///< representation descriptor of the saving machine
  util::Bytes payload;
  /// Simulated on-disk file size: payload plus the run-time image the real
  /// system would have dumped (not materialized in memory here).
  uint64_t file_bytes = 0;
  /// Incremental checkpointing (ckpt/incremental.hpp): this image's
  /// app-state is a page delta against `base_epoch`'s image.
  bool incremental = false;
  uint64_t base_epoch = 0;
  /// Payload compression (ckpt/codec.hpp): how `payload` is coded as
  /// stored/shipped. The storage layer codes on put and decodes on get, so
  /// everything above the store only ever sees kRaw images.
  PayloadCodec codec = PayloadCodec::kRaw;
  /// Length of the raw (decoded) payload when codec != kRaw.
  uint64_t raw_payload_bytes = 0;
  /// For kDelta/kDeltaLz: the epoch whose raw payload this delta references
  /// (same app/rank). Distinct from the incremental `base_epoch` chain — an
  /// image carries at most one of the two (codec deltas apply only to
  /// non-incremental images).
  uint64_t codec_base_epoch = 0;
};

// ----- native (homogeneous) path -----

/// Snapshots opaque process memory. O(size) copy, no conversion.
Image native_encode(const sim::Machine& saver, std::span<const std::byte> memory);
/// Fails with repr-mismatch unless `target` has the saving machine's exact
/// representation — the homogeneous restriction of section 4.
util::Result<util::Bytes> native_decode(const Image& image, const sim::Machine& target);

// ----- portable (heterogeneous, VM-level) path -----

/// Serializes VM state in `saver`'s native representation: saver-endian
/// fields, integers in saver-word-sized slots.
Image portable_encode(const sim::Machine& saver, const vm::VmState& state);
/// Reconstructs the state under `target`'s representation, converting
/// endianness and widening/narrowing integer slots. Narrowing a value that
/// does not fit the target word is a checked error.
util::Result<vm::VmState> portable_decode(const Image& image, const sim::Machine& target);

/// Representation descriptor helpers (inverse of Machine::repr_code).
util::Endian repr_endian(uint16_t code);
uint8_t repr_word_bytes(uint16_t code);

}  // namespace starfish::ckpt
