#include "ckpt/incremental.hpp"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define STARFISH_FP_AVX2 1
#include <immintrin.h>
#endif

namespace starfish::ckpt {

// Delta layout (little-endian): u64 new_total_len; u32 n_pages;
// n_pages x { u32 page_index; bytes page_data }.

namespace {

// XXH64 primes. A single multiply-chained hash (FNV and friends) runs at a
// quarter of memcmp speed because every step waits on the previous multiply;
// the four independent accumulators below pipeline, which is what makes
// hash-based change detection faster than re-comparing, not just equal.
constexpr uint64_t kPrime1 = 11400714785074694791ull;
constexpr uint64_t kPrime2 = 14029467366897019727ull;
constexpr uint64_t kPrime3 = 1609587929392839161ull;
constexpr uint64_t kPrime4 = 9650029242287828579ull;
constexpr uint64_t kPrime5 = 2870177450012600261ull;

uint64_t rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

uint64_t read64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t round_step(uint64_t acc, uint64_t lane) {
  return rotl(acc + lane * kPrime2, 31) * kPrime1;
}

uint64_t merge_round(uint64_t h, uint64_t acc) {
  h ^= round_step(0, acc);
  return h * kPrime1 + kPrime4;
}

uint64_t avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

size_t page_count(size_t len) { return (len + kPageBytes - 1) / kPageBytes; }

/// Portable fingerprint: XXH64 (seed 0). Pages are 4 KB except a possibly
/// shorter tail page; the length is folded in, so a page and its
/// zero-extension differ.
uint64_t fingerprint_scalar(const std::byte* p, size_t n) {
  size_t i = 0;
  uint64_t h;
  if (n >= 32) {
    uint64_t v1 = kPrime1 + kPrime2;
    uint64_t v2 = kPrime2;
    uint64_t v3 = 0;
    uint64_t v4 = 0ull - kPrime1;
    for (; i + 32 <= n; i += 32) {
      v1 = round_step(v1, read64(p + i));
      v2 = round_step(v2, read64(p + i + 8));
      v3 = round_step(v3, read64(p + i + 16));
      v4 = round_step(v4, read64(p + i + 24));
    }
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = kPrime5;
  }
  h += n;
  for (; i + 8 <= n; i += 8) {
    h = rotl(h ^ round_step(0, read64(p + i)), 27) * kPrime1 + kPrime4;
  }
  if (i + 4 <= n) {
    uint32_t v;
    std::memcpy(&v, p + i, sizeof(v));
    h = rotl(h ^ (v * kPrime1), 23) * kPrime2 + kPrime3;
    i += 4;
  }
  for (; i < n; ++i) {
    h = rotl(h ^ (static_cast<uint8_t>(p[i]) * kPrime5), 11) * kPrime1;
  }
  return avalanche(h);
}

#ifdef STARFISH_FP_AVX2

/// Wide fingerprint (XXH3-style accumulate): four 256-bit accumulators eat
/// 128 B per step, each 64-bit lane adding lo32*hi32 of (data ^ key) plus
/// the half-swapped data word. Roughly 2x scalar XXH64 here, which is what
/// pushes hash-based detection decisively past glibc's vectorized memcmp.
/// Only equality of fingerprints matters and the cache never leaves the
/// process, so the two kernels producing different values is fine.
__attribute__((target("avx2"))) inline __m256i accumulate256(__m256i acc, __m256i data,
                                                             __m256i key) {
  const __m256i mixed = _mm256_xor_si256(data, key);
  const __m256i product = _mm256_mul_epu32(mixed, _mm256_srli_epi64(mixed, 32));
  const __m256i swapped = _mm256_shuffle_epi32(data, _MM_SHUFFLE(1, 0, 3, 2));
  return _mm256_add_epi64(acc, _mm256_add_epi64(product, swapped));
}

__attribute__((target("avx2"))) uint64_t fingerprint_avx2(const std::byte* p, size_t n) {
  const __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(kPrime1));
  const __m256i k2 = _mm256_set1_epi64x(static_cast<long long>(kPrime2));
  const __m256i k3 = _mm256_set1_epi64x(static_cast<long long>(kPrime3));
  const __m256i k4 = _mm256_set1_epi64x(-static_cast<long long>(kPrime2));
  __m256i a0 = k3;
  __m256i a1 = _mm256_set1_epi64x(-static_cast<long long>(kPrime1));
  __m256i a2 = k1;
  __m256i a3 = k2;
  size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    a0 = accumulate256(a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), k1);
    a1 = accumulate256(a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 32)), k2);
    a2 = accumulate256(a2, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 64)), k3);
    a3 = accumulate256(a3, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 96)), k4);
  }
  for (; i + 32 <= n; i += 32) {
    a0 = accumulate256(a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), k1);
  }
  alignas(32) uint64_t lanes[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), a0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4), a1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 8), a2);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 12), a3);
  uint64_t h = static_cast<uint64_t>(n) * kPrime1;
  for (uint64_t lane : lanes) h = (h ^ lane) * kPrime1 + kPrime3;
  for (; i < n; ++i) {
    h = rotl(h ^ (static_cast<uint8_t>(p[i]) * kPrime5), 11) * kPrime1;
  }
  return avalanche(h);
}

bool have_avx2() {
  static const bool v = __builtin_cpu_supports("avx2");
  return v;
}

#endif  // STARFISH_FP_AVX2

}  // namespace

uint64_t page_fingerprint(util::BytesView page) {
#ifdef STARFISH_FP_AVX2
  if (have_avx2()) return fingerprint_avx2(page.data(), page.size());
#endif
  return fingerprint_scalar(page.data(), page.size());
}

void PageHashCache::rebuild(util::BytesView state) {
  const size_t n_pages = page_count(state.size());
  hashes.resize(n_pages);
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, state.size() - off);
    hashes[p] = page_fingerprint(state.subspan(off, len));
  }
  state_len = state.size();
  valid = true;
}

util::Bytes incremental_encode(const util::Bytes& prev, const util::Bytes& cur,
                               uint64_t* changed_pages, PageHashCache* cache,
                               EncodeStats* stats) {
  util::Bytes out;
  util::Writer w(out);
  w.u64(cur.size());
  const size_t count_at = out.size();
  w.u32(0);  // changed-page count, patched in place after the single pass
  const size_t n_pages = page_count(cur.size());
  // The cache is warm only if it fingerprints exactly the `prev` we are
  // diffing against; anything else (restore, first epoch, size drift) falls
  // back to one memcmp per page while the pass re-warms it for `cur`.
  const bool warm = cache != nullptr && cache->valid && cache->state_len == prev.size() &&
                    cache->hashes.size() == page_count(prev.size());
  std::vector<uint64_t> next_hashes;
  if (cache != nullptr) next_hashes.resize(n_pages);

  uint32_t changed = 0;
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, cur.size() - off);
    uint64_t fp = 0;
    if (cache != nullptr) {
      fp = page_fingerprint({cur.data() + off, len});
      next_hashes[p] = fp;
    }
    bool differs;
    if (off >= prev.size() || std::min(kPageBytes, prev.size() - off) != len) {
      differs = true;  // page is new or the tail length changed
    } else if (warm) {
      differs = cache->hashes[p] != fp;  // prev is not read at all
    } else {
      differs = std::memcmp(prev.data() + off, cur.data() + off, len) != 0;
    }
    if (differs) {
      ++changed;
      w.u32(static_cast<uint32_t>(p));
      w.bytes({cur.data() + off, len});
    }
  }
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    out[count_at + i] = static_cast<std::byte>((changed >> (8 * i)) & 0xff);
  }
  if (cache != nullptr) {
    cache->hashes = std::move(next_hashes);
    cache->state_len = cur.size();
    cache->valid = true;
  }
  if (changed_pages != nullptr) *changed_pages = changed;
  if (stats != nullptr) {
    stats->pages_scanned += n_pages;
    if (cache != nullptr) stats->pages_hashed += n_pages;
    stats->pages_dirty += changed;
  }
  return out;
}

util::Result<util::Bytes> incremental_apply(const util::Bytes& base, const util::Bytes& delta,
                                            uint64_t max_state_bytes) {
  util::Reader r(util::as_bytes_view(delta));
  auto total_r = r.u64();
  if (!total_r) return total_r.error();
  const uint64_t total = total_r.value();
  if (total > max_state_bytes) {
    return util::Error::make("decode", "incremental delta announces oversized state (" +
                                           std::to_string(total) + " > " +
                                           std::to_string(max_state_bytes) + " bytes)");
  }
  auto n = r.u32();
  if (!n) return n.error();
  const uint64_t total_pages = page_count(static_cast<size_t>(total));
  if (n.value() > total_pages) {
    return util::Error::make("decode", "incremental delta carries more pages than the state holds");
  }
  util::Bytes out = base;
  out.resize(static_cast<size_t>(total), std::byte{0});
  std::vector<bool> seen(total_pages, false);
  for (uint32_t i = 0; i < n.value(); ++i) {
    auto page = r.u32();
    if (!page) return page.error();
    const uint64_t p = page.value();
    if (p >= total_pages) {
      return util::Error::make("decode", "incremental delta page beyond state size");
    }
    if (seen[p]) {
      return util::Error::make("decode", "incremental delta repeats page " + std::to_string(p));
    }
    seen[p] = true;
    auto data = r.view();  // zero-copy window into the delta
    if (!data) return data.error();
    const size_t off = static_cast<size_t>(p) * kPageBytes;
    const size_t expected = std::min<size_t>(kPageBytes, static_cast<size_t>(total) - off);
    if (data.value().size() != expected) {
      return util::Error::make("decode", "incremental delta page has wrong length");
    }
    std::memcpy(out.data() + off, data.value().data(), data.value().size());
  }
  return out;
}

}  // namespace starfish::ckpt
