#include "ckpt/incremental.hpp"

#include <algorithm>
#include <cstring>

#include "util/simd/simd.hpp"

namespace starfish::ckpt {

// Delta layout (little-endian): u64 new_total_len; u32 n_pages;
// n_pages x { u32 page_index; bytes page_data }.

namespace {

size_t page_count(size_t len) { return (len + kPageBytes - 1) / kPageBytes; }

}  // namespace

// The fingerprint kernel itself lives in util/simd (one ISA-dispatched
// implementation tree, bit-identical across levels — see DESIGN.md §16).
// The pre-PR9 hand-rolled AVX2 kernel and its per-call-site
// __builtin_cpu_supports gate are gone; dispatch happens once, centrally.
uint64_t page_fingerprint(util::BytesView page) {
  return util::simd::fingerprint(page.data(), page.size());
}

void PageHashCache::rebuild(util::BytesView state) {
  const size_t n_pages = page_count(state.size());
  hashes.resize(n_pages);
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, state.size() - off);
    hashes[p] = page_fingerprint(state.subspan(off, len));
  }
  state_len = state.size();
  valid = true;
}

util::Bytes incremental_encode(const util::Bytes& prev, const util::Bytes& cur,
                               uint64_t* changed_pages, PageHashCache* cache,
                               EncodeStats* stats) {
  util::Bytes out;
  util::Writer w(out);
  w.u64(cur.size());
  const size_t count_at = out.size();
  w.u32(0);  // changed-page count, patched in place after the single pass
  const size_t n_pages = page_count(cur.size());
  // The cache is warm only if it fingerprints exactly the `prev` we are
  // diffing against; anything else (restore, first epoch, size drift) falls
  // back to one memcmp per page while the pass re-warms it for `cur`.
  const bool warm = cache != nullptr && cache->valid && cache->state_len == prev.size() &&
                    cache->hashes.size() == page_count(prev.size());
  std::vector<uint64_t> next_hashes;
  if (cache != nullptr) next_hashes.resize(n_pages);

  uint32_t changed = 0;
  // One dispatch lookup for the whole pass (not one atomic load + double
  // indirection per page — this loop runs once per 4 KB).
  const util::simd::Ops& simd = util::simd::ops();
  for (size_t p = 0; p < n_pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, cur.size() - off);
    uint64_t fp = 0;
    if (cache != nullptr) {
      fp = simd.fingerprint(cur.data() + off, len);
      next_hashes[p] = fp;
    }
    bool differs;
    if (off >= prev.size() || std::min(kPageBytes, prev.size() - off) != len) {
      differs = true;  // page is new or the tail length changed
    } else if (warm) {
      differs = cache->hashes[p] != fp;  // prev is not read at all
    } else {
      differs = simd.mismatch(prev.data() + off, cur.data() + off, len) != len;
    }
    if (differs) {
      ++changed;
      w.u32(static_cast<uint32_t>(p));
      w.bytes({cur.data() + off, len});
    }
  }
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    out[count_at + i] = static_cast<std::byte>((changed >> (8 * i)) & 0xff);
  }
  if (cache != nullptr) {
    cache->hashes = std::move(next_hashes);
    cache->state_len = cur.size();
    cache->valid = true;
  }
  if (changed_pages != nullptr) *changed_pages = changed;
  if (stats != nullptr) {
    stats->pages_scanned += n_pages;
    if (cache != nullptr) stats->pages_hashed += n_pages;
    stats->pages_dirty += changed;
  }
  return out;
}

util::Result<util::Bytes> incremental_apply(const util::Bytes& base, const util::Bytes& delta,
                                            uint64_t max_state_bytes) {
  util::Reader r(util::as_bytes_view(delta));
  auto total_r = r.u64();
  if (!total_r) return total_r.error();
  const uint64_t total = total_r.value();
  if (total > max_state_bytes) {
    return util::Error::make("decode", "incremental delta announces oversized state (" +
                                           std::to_string(total) + " > " +
                                           std::to_string(max_state_bytes) + " bytes)");
  }
  auto n = r.u32();
  if (!n) return n.error();
  const uint64_t total_pages = page_count(static_cast<size_t>(total));
  if (n.value() > total_pages) {
    return util::Error::make("decode", "incremental delta carries more pages than the state holds");
  }
  util::Bytes out = base;
  out.resize(static_cast<size_t>(total), std::byte{0});
  std::vector<bool> seen(total_pages, false);
  for (uint32_t i = 0; i < n.value(); ++i) {
    auto page = r.u32();
    if (!page) return page.error();
    const uint64_t p = page.value();
    if (p >= total_pages) {
      return util::Error::make("decode", "incremental delta page beyond state size");
    }
    if (seen[p]) {
      return util::Error::make("decode", "incremental delta repeats page " + std::to_string(p));
    }
    seen[p] = true;
    auto data = r.view();  // zero-copy window into the delta
    if (!data) return data.error();
    const size_t off = static_cast<size_t>(p) * kPageBytes;
    const size_t expected = std::min<size_t>(kPageBytes, static_cast<size_t>(total) - off);
    if (data.value().size() != expected) {
      return util::Error::make("decode", "incremental delta page has wrong length");
    }
    util::simd::copy(out.data() + off, data.value().data(), data.value().size());
  }
  return out;
}

}  // namespace starfish::ckpt
