#include "ckpt/incremental.hpp"

#include <algorithm>
#include <cstring>

namespace starfish::ckpt {

// Delta layout (little-endian): u64 new_total_len; u32 n_pages;
// n_pages x { u32 page_index; bytes page_data }.

util::Bytes incremental_encode(const util::Bytes& prev, const util::Bytes& cur,
                               uint64_t* changed_pages) {
  util::Bytes out;
  util::Writer w(out);
  w.u64(cur.size());
  const size_t n_pages = (cur.size() + kPageBytes - 1) / kPageBytes;
  // First pass: count; second pass: emit (count prefix keeps decode simple).
  uint32_t changed = 0;
  auto page_differs = [&](size_t p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, cur.size() - off);
    if (off >= prev.size()) return true;
    const size_t prev_len = std::min(kPageBytes, prev.size() - off);
    if (prev_len != len) return true;
    return std::memcmp(prev.data() + off, cur.data() + off, len) != 0;
  };
  for (size_t p = 0; p < n_pages; ++p) {
    if (page_differs(p)) ++changed;
  }
  w.u32(changed);
  for (size_t p = 0; p < n_pages; ++p) {
    if (!page_differs(p)) continue;
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, cur.size() - off);
    w.u32(static_cast<uint32_t>(p));
    w.bytes({cur.data() + off, len});
  }
  if (changed_pages != nullptr) *changed_pages = changed;
  return out;
}

util::Result<util::Bytes> incremental_apply(const util::Bytes& base,
                                            const util::Bytes& delta) {
  util::Reader r(util::as_bytes_view(delta));
  auto total = r.u64();
  if (!total) return total.error();
  util::Bytes out = base;
  out.resize(total.value(), std::byte{0});
  auto n = r.u32();
  if (!n) return n.error();
  for (uint32_t i = 0; i < n.value(); ++i) {
    auto page = r.u32();
    if (!page) return page.error();
    auto data = r.bytes();
    if (!data) return data.error();
    const size_t off = static_cast<size_t>(page.value()) * kPageBytes;
    if (off + data.value().size() > out.size()) {
      return util::Error::make("decode", "incremental delta page beyond state size");
    }
    std::memcpy(out.data() + off, data.value().data(), data.value().size());
  }
  return out;
}

}  // namespace starfish::ckpt
