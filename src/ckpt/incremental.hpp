// Incremental checkpointing (after libckpt [33], discussed in paper §6).
//
// Instead of writing the full state every epoch, an incremental image holds
// only the 4 KB pages that changed since the previous epoch, anchored by a
// periodic full image. Restores resolve the chain: full image + deltas in
// epoch order. Checkpoint garbage collection must keep everything back to
// the most recent full image (the CrModule handles that).
//
// Change detection is hash-based: the encoder keeps a per-page 64-bit
// fingerprint of the previous epoch's state (PageHashCache, owned by the
// CrModule and carried between epochs). With a warm cache an unchanged page
// costs one hash of the current page plus one integer compare — the
// previous state is never re-read — instead of the naive two full memcmp
// passes. The encoder is single-pass: the changed-page count is patched
// into the header after the scan rather than recomputed by a second sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::ckpt {

constexpr size_t kPageBytes = 4096;

/// Chain anchoring grid, shared by incremental checkpointing (CrModule) and
/// the payload delta codec (store.hpp + codec.hpp): every kFullEvery-th
/// epoch (1, 5, 9, ...) is self-contained, bounding restore-chain length,
/// and checkpoint gc must keep everything back to the last full epoch while
/// any chained encoding is active.
constexpr uint64_t kFullEvery = 4;
constexpr bool is_full_epoch(uint64_t epoch) { return epoch % kFullEvery == 1; }
/// Latest full epoch <= `epoch` (epoch must be >= 1).
constexpr uint64_t last_full_at_or_before(uint64_t epoch) {
  return ((epoch - 1) / kFullEvery) * kFullEvery + 1;
}
/// On-disk metadata of an incremental image (page table, headers) — the
/// "base" cost replacing the full run-time dump.
constexpr uint64_t kIncrementalBaseBytes = 64ull * 1024;

/// Upper bound incremental_apply accepts for a delta's announced state size
/// unless the caller passes a tighter one: a corrupt or hostile delta must
/// not drive a multi-gigabyte allocation before any other validation runs.
constexpr uint64_t kMaxIncrementalStateBytes = 8ull * 1024 * 1024 * 1024;

/// 64-bit per-page fingerprint (the util/simd wide hash: eight XXH3-style
/// lanes, runtime-dispatched over scalar/AVX2/AVX-512/NEON with bit-identical
/// outputs, so the cache is ISA-independent). Collisions
/// would silently drop a changed page, so the mixing must be strong; at
/// 64 bits the chance over any realistic checkpoint stream is negligible —
/// the same trade libckpt-style dirty-page hashing makes.
uint64_t page_fingerprint(util::BytesView page);

/// Per-page fingerprints of one epoch's state, carried between epochs by
/// the owner (CrModule). `valid` is false after a restore or protocol
/// change; the next encode then falls back to single-memcmp detection and
/// re-warms the cache in the same pass.
struct PageHashCache {
  std::vector<uint64_t> hashes;  ///< hashes[p] fingerprints page p
  uint64_t state_len = 0;        ///< length of the state the hashes describe
  bool valid = false;

  /// Recomputes the fingerprints so the cache describes `state`. Used after
  /// full epochs and restores, where no incremental_encode pass runs to warm
  /// the cache as a side effect.
  void rebuild(util::BytesView state);
};

/// Per-pass accounting of one incremental_encode call, for the obs layer:
/// how much work the scan did and how much of the state was dirty.
struct EncodeStats {
  uint64_t pages_scanned = 0;  ///< pages of `cur` examined
  uint64_t pages_hashed = 0;   ///< fingerprints computed (cache present)
  uint64_t pages_dirty = 0;    ///< changed pages emitted into the delta
};

/// Encodes the pages of `cur` that differ from `prev` (or lie beyond its
/// end) in one pass over `cur`. With a warm `cache` (describing `prev`),
/// unchanged pages are detected by fingerprint compare and `prev` is not
/// read at all; cold or absent caches fall back to one memcmp per page.
/// On return the cache describes `cur`, warm for the next epoch.
/// Optionally reports how many pages changed and the pass accounting.
util::Bytes incremental_encode(const util::Bytes& prev, const util::Bytes& cur,
                               uint64_t* changed_pages = nullptr,
                               PageHashCache* cache = nullptr, EncodeStats* stats = nullptr);

/// Reconstructs the full state from `base` plus one delta. Rejects deltas
/// whose announced size exceeds `max_state_bytes`, whose page indices are
/// duplicated or out of range, or whose page data does not fit the
/// announced state — a corrupt chain surfaces as a decode error, never as
/// a huge allocation or out-of-bounds write.
util::Result<util::Bytes> incremental_apply(
    const util::Bytes& base, const util::Bytes& delta,
    uint64_t max_state_bytes = kMaxIncrementalStateBytes);

}  // namespace starfish::ckpt
