// Incremental checkpointing (after libckpt [33], discussed in paper §6).
//
// Instead of writing the full state every epoch, an incremental image holds
// only the 4 KB pages that changed since the previous epoch, anchored by a
// periodic full image. Restores resolve the chain: full image + deltas in
// epoch order. Checkpoint garbage collection must keep everything back to
// the most recent full image (the CrModule handles that).
#pragma once

#include <cstdint>

#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::ckpt {

constexpr size_t kPageBytes = 4096;
/// On-disk metadata of an incremental image (page table, headers) — the
/// "base" cost replacing the full run-time dump.
constexpr uint64_t kIncrementalBaseBytes = 64ull * 1024;

/// Encodes the pages of `cur` that differ from `prev` (or lie beyond its
/// end). Optionally reports how many pages changed.
util::Bytes incremental_encode(const util::Bytes& prev, const util::Bytes& cur,
                               uint64_t* changed_pages = nullptr);

/// Reconstructs the full state from `base` plus one delta.
util::Result<util::Bytes> incremental_apply(const util::Bytes& base,
                                            const util::Bytes& delta);

}  // namespace starfish::ckpt
