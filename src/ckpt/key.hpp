// Checkpoint naming, shared by every storage backend (store.hpp's disk
// model and replica.hpp's in-memory replication tier).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace starfish::ckpt {

struct CkptKey {
  std::string app;
  uint32_t rank = 0;
  uint64_t epoch = 0;  ///< coordinated: epoch; uncoordinated: checkpoint index
  auto operator<=>(const CkptKey&) const = default;
};

}  // namespace starfish::ckpt
