#include "ckpt/recovery.hpp"

#include <algorithm>

namespace starfish::ckpt {

util::Bytes DependencyTracker::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u32(rank_);
  w.u32(interval_);
  w.u32(static_cast<uint32_t>(received_.size()));
  for (const auto& r : received_) {
    w.u32(r.rank);
    w.u32(r.interval);
  }
  return out;
}

DependencyTracker DependencyTracker::decode(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  DependencyTracker t(r.u32().value_or(0));
  t.interval_ = r.u32().value_or(0);
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) {
    IntervalId id;
    id.rank = r.u32().value_or(0);
    id.interval = r.u32().value_or(0);
    t.received_.push_back(id);
  }
  return t;
}

std::map<uint32_t, uint32_t> compute_recovery_line(const std::vector<CheckpointMeta>& metas,
                                                   const std::map<uint32_t, uint32_t>& latest) {
  // Index metas by (rank, index) for dependency lookups.
  std::map<std::pair<uint32_t, uint32_t>, const CheckpointMeta*> by_key;
  for (const auto& m : metas) by_key[{m.rank, m.index}] = &m;

  auto deps_of = [&](uint32_t rank, uint32_t index) -> const std::vector<IntervalId>* {
    static const std::vector<IntervalId> kEmpty;
    if (index == 0) return &kEmpty;  // initial state depends on nothing
    auto it = by_key.find({rank, index});
    return it == by_key.end() ? &kEmpty : &it->second->depends_on;
  };

  std::map<uint32_t, uint32_t> line = latest;

  // Fixpoint: while some chosen checkpoint has an orphan dependency, move
  // that process one checkpoint earlier. Indices only decrease and stop at
  // 0 (no dependencies), so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [rank, index] : line) {
      const auto* deps = deps_of(rank, index);
      for (const auto& d : *deps) {
        auto it = line.find(d.rank);
        if (it == line.end()) continue;  // unknown peer: not constrained
        if (d.interval >= it->second) {
          // Orphan: the send (interval d.interval of d.rank) would be undone.
          --index;  // index > 0 here because index 0 has no deps
          changed = true;
          break;
        }
      }
    }
  }
  return line;
}

uint64_t rollback_distance(const std::map<uint32_t, uint32_t>& line,
                           const std::map<uint32_t, uint32_t>& latest) {
  uint64_t total = 0;
  for (const auto& [rank, index] : line) {
    auto it = latest.find(rank);
    if (it != latest.end() && it->second > index) total += it->second - index;
  }
  return total;
}

}  // namespace starfish::ckpt
