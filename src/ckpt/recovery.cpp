#include "ckpt/recovery.hpp"

#include <algorithm>

namespace starfish::ckpt {

// Bit 31 of the leading rank word flags the extended layout that appends the
// per-peer send-count section. With no sends recorded the encoding is
// byte-identical to the original layout, so coordinated-protocol containers
// (whose default tracker never counts) keep their exact historical size, yet
// a present-but-truncated send section still fails decode instead of
// silently degrading to "sent nothing".
constexpr uint32_t kHasSendsFlag = 0x8000'0000u;

util::Bytes DependencyTracker::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u32(sent_.empty() ? rank_ : (rank_ | kHasSendsFlag));
  w.u32(interval_);
  w.u32(static_cast<uint32_t>(received_.size()));
  for (const auto& r : received_) {
    w.u32(r.rank);
    w.u32(r.interval);
  }
  if (!sent_.empty()) {
    w.u32(static_cast<uint32_t>(sent_.size()));
    for (const auto& [peer, count] : sent_) {
      w.u32(peer);
      w.u32(count);
    }
  }
  return out;
}

util::Result<DependencyTracker> DependencyTracker::decode(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  auto rank = r.u32();
  if (!rank) return rank.error();
  const bool has_sends = (rank.value() & kHasSendsFlag) != 0;
  DependencyTracker t(rank.value() & ~kHasSendsFlag);
  auto interval = r.u32();
  if (!interval) return interval.error();
  t.interval_ = interval.value();
  auto n = r.u32();
  if (!n) return n.error();
  // Validate the announced count against what the buffer actually holds
  // (each entry is two u32s) before trusting it for a reserve/read loop.
  if (static_cast<uint64_t>(n.value()) * 8 > r.remaining()) {
    return util::Error::make(
        "decode", "dependency set announces " + std::to_string(n.value()) +
                      " entries but the buffer holds " + std::to_string(r.remaining()) + " bytes");
  }
  t.received_.reserve(n.value());
  for (uint32_t i = 0; i < n.value(); ++i) {
    auto dep_rank = r.u32();
    if (!dep_rank) return dep_rank.error();
    auto dep_interval = r.u32();
    if (!dep_interval) return dep_interval.error();
    t.received_.push_back(IntervalId{dep_rank.value(), dep_interval.value()});
  }
  if (has_sends) {
    auto ns = r.u32();
    if (!ns) return ns.error();
    if (static_cast<uint64_t>(ns.value()) * 8 > r.remaining()) {
      return util::Error::make(
          "decode", "send-count section announces " + std::to_string(ns.value()) +
                        " entries but the buffer holds " + std::to_string(r.remaining()) +
                        " bytes");
    }
    for (uint32_t i = 0; i < ns.value(); ++i) {
      auto peer = r.u32();
      if (!peer) return peer.error();
      auto count = r.u32();
      if (!count) return count.error();
      t.sent_[peer.value()] += count.value();
    }
  }
  if (!r.exhausted()) {
    return util::Error::make("decode", "trailing bytes after dependency tracker");
  }
  return t;
}

std::map<uint32_t, uint32_t> compute_recovery_line(const std::vector<CheckpointMeta>& metas,
                                                   const std::map<uint32_t, uint32_t>& latest) {
  // Index metas by (rank, index) for dependency lookups.
  std::map<std::pair<uint32_t, uint32_t>, const CheckpointMeta*> by_key;
  for (const auto& m : metas) by_key[{m.rank, m.index}] = &m;

  auto deps_of = [&](uint32_t rank, uint32_t index) -> const std::vector<IntervalId>* {
    static const std::vector<IntervalId> kEmpty;
    if (index == 0) return &kEmpty;  // initial state depends on nothing
    auto it = by_key.find({rank, index});
    return it == by_key.end() ? &kEmpty : &it->second->depends_on;
  };
  auto meta_of = [&](uint32_t rank, uint32_t index) -> const CheckpointMeta* {
    if (index == 0) return nullptr;  // initial state sent nothing
    auto it = by_key.find({rank, index});
    return it == by_key.end() ? nullptr : it->second;
  };

  std::map<uint32_t, uint32_t> line = latest;

  // Fixpoint: while some chosen checkpoint has an orphan dependency or a
  // lost send, move the offending process one checkpoint earlier. Indices
  // only decrease and stop at 0 (no dependencies, no sends), so this
  // terminates; both conditions are monotone in the chosen indices, so the
  // set of consistent cuts is closed under componentwise max and the
  // fixpoint lands on its unique maximum.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [rank, index] : line) {
      const auto* deps = deps_of(rank, index);
      for (const auto& d : *deps) {
        auto it = line.find(d.rank);
        if (it == line.end()) continue;  // unknown peer: not constrained
        if (d.interval >= it->second) {
          // Orphan: the send (interval d.interval of d.rank) would be undone.
          --index;  // index > 0 here because index 0 has no deps
          changed = true;
          break;
        }
      }
    }
    for (auto& [rank, index] : line) {
      const auto* m = meta_of(rank, index);
      if (m == nullptr) continue;
      for (const auto& [peer, sent_count] : m->sent) {
        auto it = line.find(peer);
        if (it == line.end()) continue;  // unknown peer: not constrained
        uint32_t consumed = 0;
        for (const auto& d : *deps_of(peer, it->second)) {
          if (d.rank == rank) ++consumed;
        }
        if (sent_count > consumed) {
          // Lost message: this state already sent more to `peer` than the
          // peer's restored state will ever see again. Undo the send — the
          // re-execution regenerates the message.
          --index;
          changed = true;
          break;
        }
      }
    }
  }
  return line;
}

uint64_t rollback_distance(const std::map<uint32_t, uint32_t>& line,
                           const std::map<uint32_t, uint32_t>& latest) {
  uint64_t total = 0;
  for (const auto& [rank, index] : line) {
    auto it = latest.find(rank);
    if (it != latest.end() && it->second > index) total += it->second - index;
  }
  return total;
}

}  // namespace starfish::ckpt
