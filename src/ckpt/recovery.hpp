// Recovery-line computation for uncoordinated (independent) checkpointing.
//
// With independent checkpoints, a failure may force surviving processes to
// roll back too: a message whose *receive* is remembered by some checkpoint
// but whose *send* would be undone by the rollback is an orphan, and the
// receiver must roll back past it — possibly cascading (the domino effect
// [14,32,34]). This module tracks the send/receive dependencies that
// uncoordinated protocols piggyback on data messages and computes the latest
// consistent cut (recovery line) over the stored checkpoints.
//
// Conventions:
//  * Checkpoint index c = 0 is the initial state (always available, empty).
//  * Interval i of process p is the execution between p's checkpoints i and
//    i+1; a message sent there carries IntervalId{p, i}.
//  * Checkpoint c of p depends on (q, j) iff p received, before taking c, a
//    message q sent during its interval j.
//  * A cut {c_p} is consistent iff
//      - no dependency (q, j) of any chosen c_p has j >= c_q (such a receive
//        would be an orphan: q's restored state has not yet sent the
//        message), and
//      - for every pair p -> q, the number of messages p's chosen state has
//        sent to q does not exceed the number q's chosen state has consumed
//        from p. A violating message is *lost*: p's restored state will not
//        resend it and q never saw it, so the computation wedges. Without
//        sender-side message logging the only remedy is to roll the sender
//        back past the send, which is why the tracker also counts sends.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/buffer.hpp"

namespace starfish::ckpt {

struct IntervalId {
  uint32_t rank = 0;
  uint32_t interval = 0;
  auto operator<=>(const IntervalId&) const = default;
};

/// Per-process runtime tracker. The process calls on_send() to obtain the
/// tag to piggyback, on_recv() with the peer's tag, and cut_checkpoint()
/// when it takes an independent checkpoint.
class DependencyTracker {
 public:
  explicit DependencyTracker(uint32_t rank) : rank_(rank) {}

  uint32_t rank() const { return rank_; }
  /// Current interval index == number of checkpoints taken so far.
  uint32_t current_interval() const { return interval_; }

  IntervalId on_send() const { return {rank_, interval_}; }
  /// Counts one application message toward `dst` (lost-message accounting;
  /// call once per app-level send, not per protocol frame).
  void note_send(uint32_t dst) { ++sent_[dst]; }
  void on_recv(IntervalId sender_interval) { received_.push_back(sender_interval); }

  /// Cumulative receive dependencies (one entry per consumed message).
  const std::vector<IntervalId>& received() const { return received_; }
  /// Cumulative per-peer application-message send counts.
  const std::map<uint32_t, uint32_t>& sent() const { return sent_; }

  /// Ends the current interval; returns the new checkpoint's index and its
  /// cumulative dependency set (everything received so far).
  std::pair<uint32_t, std::vector<IntervalId>> cut_checkpoint() {
    ++interval_;
    return {interval_, received_};
  }

  /// Rolls the tracker back to checkpoint `index` with that checkpoint's
  /// dependency set (after a recovery).
  void reset_to(uint32_t index, std::vector<IntervalId> deps,
                std::map<uint32_t, uint32_t> sent = {}) {
    interval_ = index;
    received_ = std::move(deps);
    sent_ = std::move(sent);
  }

  util::Bytes encode() const;
  /// Bounds-checked: a truncated or over-announcing buffer (e.g. a corrupt
  /// checkpoint container) surfaces as a decode error instead of silently
  /// yielding a zeroed dependency set — which would fabricate a recovery
  /// line unconstrained by the dependencies that were actually recorded.
  static util::Result<DependencyTracker> decode(const util::Bytes& bytes);

 private:
  uint32_t rank_;
  uint32_t interval_ = 0;
  std::vector<IntervalId> received_;
  std::map<uint32_t, uint32_t> sent_;
};

/// Metadata of one stored checkpoint.
struct CheckpointMeta {
  uint32_t rank = 0;
  uint32_t index = 0;  ///< 0 = initial state
  std::vector<IntervalId> depends_on;
  /// Cumulative per-peer send counts at the cut (empty = sent nothing or a
  /// pre-send-tracking blob; either way it imposes no lost-message bound).
  std::map<uint32_t, uint32_t> sent;
};

/// Computes the recovery line. `latest` gives, per rank, the newest usable
/// checkpoint index (for a failed process: its last *saved* checkpoint; for
/// a survivor that could keep running: also its last saved checkpoint, since
/// uncoordinated recovery restarts from stable storage). Checkpoints not
/// listed in `metas` are assumed nonexistent; index 0 always exists with no
/// dependencies. Returns rank -> checkpoint index to restore.
std::map<uint32_t, uint32_t> compute_recovery_line(const std::vector<CheckpointMeta>& metas,
                                                   const std::map<uint32_t, uint32_t>& latest);

/// Number of lost intervals summed over processes for a given line (how far
/// the computation rolled back) — the metric of ablation A.
uint64_t rollback_distance(const std::map<uint32_t, uint32_t>& line,
                           const std::map<uint32_t, uint32_t>& latest);

}  // namespace starfish::ckpt
