#include "ckpt/replica.hpp"

#include <algorithm>
#include <cassert>

#include "ckpt/codec.hpp"
#include "net/chunk.hpp"
#include "obs/obs.hpp"

namespace starfish::ckpt {

namespace {

sim::Duration loopback_time(uint64_t bytes) {
  return net::kLoopbackOneWay +
         sim::seconds(static_cast<double>(bytes) / (net::kLoopbackBandwidthMbS * 1e6));
}

}  // namespace

std::vector<sim::HostId> replica_holders(const std::vector<sim::HostId>& rank_hosts,
                                         uint32_t rank, uint32_t replication) {
  const sim::HostId owner =
      rank < rank_hosts.size() ? rank_hosts[rank] : sim::kInvalidHost;
  // Pool of distinct placed hosts, sorted: every writer sees the same ring.
  std::vector<sim::HostId> pool;
  for (sim::HostId h : rank_hosts) {
    if (h != sim::kInvalidHost) pool.push_back(h);
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  if (pool.empty()) return {};
  if (owner == sim::kInvalidHost || pool.size() == 1) {
    // Unplaced rank or single-host world: one copy on the only candidate
    // (a self-copy buys no durability — recovery then rests on the disk
    // path — but documents the degenerate case instead of storing nothing).
    return {pool.front()};
  }
  // Ring of the other hosts, starting just past the owner; rotating the
  // window start by the rank index spreads co-located ranks' copies across
  // different successors instead of piling them on the same hosts.
  const size_t start = static_cast<size_t>(
      std::lower_bound(pool.begin(), pool.end(), owner) - pool.begin());
  std::vector<sim::HostId> others;
  for (size_t i = 1; i < pool.size(); ++i) others.push_back(pool[(start + i) % pool.size()]);
  const size_t copies = std::min<size_t>(replication, others.size());
  std::vector<sim::HostId> out;
  for (size_t i = 0; i < copies; ++i) out.push_back(others[(rank + i) % others.size()]);
  std::sort(out.begin(), out.end());
  return out;
}

ReplicaStore::ReplicaStore(sim::Engine& engine, ReplicaOptions options,
                           std::function<bool(sim::HostId)> alive)
    : engine_(engine), options_(options), alive_(std::move(alive)) {
  assert(options_.replication >= 1);
}

uint64_t ReplicaStore::pages_to_ship(const util::Bytes& payload, const HolderCache* cache,
                                     std::vector<uint64_t>& fresh, uint64_t* ship_bytes) {
  const size_t pages = (payload.size() + kPageBytes - 1) / kPageBytes;
  fresh.resize(pages);
  uint64_t ship = 0;
  uint64_t bytes = 0;
  for (size_t p = 0; p < pages; ++p) {
    const size_t off = p * kPageBytes;
    const size_t len = std::min(kPageBytes, payload.size() - off);
    fresh[p] = page_fingerprint(util::BytesView(payload.data() + off, len));
    if (cache == nullptr || p >= cache->hashes.size() || cache->hashes[p] != fresh[p]) {
      ++ship;
      bytes += len;
    }
  }
  if (ship_bytes != nullptr) *ship_bytes = bytes;
  return ship;
}

void ReplicaStore::put(sim::Host& writer, const CkptKey& key, Image image,
                       const std::vector<sim::HostId>& holders) {
  const sim::Time start = engine_.now();
  const net::TransportModel& model = net::model_for(options_.transport);

  // Phase 1 (locked, read-only): price each copy. Warm holders receive only
  // the payload pages whose fingerprint changed since the image they
  // already hold; cold holders receive the full payload. No state mutates
  // here — the transfer has not happened yet.
  std::vector<uint64_t> fresh_hashes;
  uint64_t total_bytes = 0;
  uint64_t pages_shipped = 0, pages_skipped = 0;
  sim::Duration transfer = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++puts_started_;
    for (sim::HostId holder : holders) {
      const HolderCache* cache = nullptr;
      auto it = holder_caches_.find({holder, key.app, key.rank});
      if (it != holder_caches_.end()) cache = &it->second;
      std::vector<uint64_t> hashes;
      const uint64_t pages = (image.payload.size() + kPageBytes - 1) / kPageBytes;
      uint64_t ship_bytes = 0;
      const uint64_t ship = pages_to_ship(image.payload, cache, hashes, &ship_bytes);
      if (fresh_hashes.empty()) fresh_hashes = std::move(hashes);
      const uint64_t bytes = kReplicaHeaderBytes + ship_bytes;
      total_bytes += bytes;
      pages_shipped += ship;
      pages_skipped += pages - ship;
      transfer += holder == writer.id() ? loopback_time(bytes)
                                        : model.one_way_fixed() + model.wire_time(bytes);
    }
  }

  // Phase 2 (unlocked): the transfer itself, streamed in bounded chunks
  // (net/chunk.hpp) — the in-flight window stays a few hundred KB however
  // large the epoch is, and the chunk sleeps sum exactly to the monolithic
  // time. A writer crash lands here — the fiber is killed inside a chunk
  // sleep and phase 3 never runs, so no partial copy can exist
  // (commit-after-transfer).
  net::chunked_sleep(engine_, transfer, total_bytes);

  // Phase 3 (locked): install. Holders that died during the transfer are
  // dropped; their memory is gone. Mutations are commutative: identical
  // re-puts overwrite with identical content, holder sets union, caches
  // install under epoch-max.
  uint64_t survivors = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++puts_committed_;
    Entry* entry = nullptr;
    for (sim::HostId holder : holders) {
      if (!alive_(holder)) continue;
      ++survivors;
      if (entry == nullptr) {
        entry = &entries_[key];
        entry->image = image;
      }
      entry->holders.insert(holder);
      HolderCache& cache = holder_caches_[{holder, key.app, key.rank}];
      if (key.epoch >= cache.epoch) {
        cache.hashes = fresh_hashes;
        cache.payload_len = image.payload.size();
        cache.epoch = key.epoch;
      }
    }
    bytes_shipped_ += total_bytes;
  }

  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.replica.puts").add(1);
    hub->metrics.counter("ckpt.replica.bytes_shipped").add(total_bytes);
    hub->metrics.counter("ckpt.replica.pages_shipped").add(pages_shipped);
    hub->metrics.counter("ckpt.replica.pages_skipped_warm").add(pages_skipped);
    if (survivors == 0) hub->metrics.counter("ckpt.replica.puts_no_survivor").add(1);
    hub->metrics.histogram("ckpt.replica.put_ns")
        .record(static_cast<uint64_t>(engine_.now() - start));
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "replicate " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           writer.id());
    }
  }
}

std::optional<Image> ReplicaStore::get(sim::Host& reader, const CkptKey& key) {
  std::optional<Image> found;
  bool local = false;
  uint64_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.holders.empty()) return std::nullopt;
    found = it->second.image;
    local = it->second.holders.contains(reader.id());
    bytes = kReplicaHeaderBytes + found->payload.size();
  }
  // An in-memory copy ships its actual bytes (payload + header) — no
  // run-time dump accompanies it, unlike the modeled disk file. Remote
  // fetch pays request + response fixed costs plus the wire.
  const sim::Time start = engine_.now();
  const net::TransportModel& model = net::model_for(options_.transport);
  net::chunked_sleep(engine_,
                     local ? loopback_time(bytes)
                           : 2 * model.one_way_fixed() + model.wire_time(bytes),
                     bytes);
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.replica.gets").add(1);
    hub->metrics.counter("ckpt.replica.bytes_fetched").add(bytes);
    hub->metrics.histogram("ckpt.replica.get_ns")
        .record(static_cast<uint64_t>(engine_.now() - start));
  }
  return found;
}

bool ReplicaStore::contains(const CkptKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it != entries_.end() && !it->second.holders.empty();
}

std::optional<uint64_t> ReplicaStore::file_bytes(const CkptKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.holders.empty()) return std::nullopt;
  return it->second.image.file_bytes;
}

void ReplicaStore::put_meta(const CkptKey& key, util::Bytes meta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // no copy to ride with; caller keeps disk meta
  it->second.meta = std::move(meta);
}

std::optional<util::Bytes> ReplicaStore::checkpoint_meta(const CkptKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.meta) return std::nullopt;
  return it->second.meta;
}

std::optional<uint64_t> ReplicaStore::latest_stored(const std::string& app,
                                                    uint32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<uint64_t> best;
  for (const auto& [key, entry] : entries_) {
    if (key.app == app && key.rank == rank && !entry.holders.empty()) {
      if (!best || key.epoch > *best) best = key.epoch;
    }
  }
  return best;
}

bool ReplicaStore::recoverable_locked(const CkptKey& key) const {
  CkptKey at = key;
  for (;;) {
    auto it = entries_.find(at);
    if (it == entries_.end() || it->second.holders.empty()) return false;
    const Image& img = it->second.image;
    // A surviving but corrupt copy cannot rebuild state — structural codec
    // verification (fingerprint pass, no decode) disqualifies it here.
    if (!verify_payload(img.codec, util::as_bytes_view(img.payload)).ok()) return false;
    if (img.incremental) {
      at.epoch = img.base_epoch;
      continue;
    }
    if (img.codec == PayloadCodec::kDelta || img.codec == PayloadCodec::kDeltaLz) {
      if (img.codec_base_epoch >= at.epoch) return false;
      at.epoch = img.codec_base_epoch;
      continue;
    }
    return true;
  }
}

bool ReplicaStore::recoverable(const CkptKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return recoverable_locked(key);
}

bool ReplicaStore::corrupt_payload(const CkptKey& key, size_t offset, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.holders.empty()) return false;
  util::Bytes& payload = it->second.image.payload;
  if (payload.empty()) return false;
  if (truncate) {
    payload.resize(std::min(offset, payload.size() - 1));
  } else {
    payload[offset % payload.size()] ^= std::byte{0x40};
  }
  return true;
}

void ReplicaStore::on_host_crash(sim::HostId host) {
  uint64_t lost = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      lost += it->second.holders.erase(host);
      if (it->second.holders.empty()) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = holder_caches_.begin(); it != holder_caches_.end();) {
      if (std::get<0>(it->first) == host) {
        it = holder_caches_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.replica.copies_invalidated").add(lost);
  }
}

void ReplicaStore::rebalance(sim::Host& shipper, const std::string& app, uint32_t rank,
                             const std::vector<sim::HostId>& holders) {
  // Phase 1 (locked, read-only): which (entry, holder) copies are missing,
  // and what each costs. Warm caches make repeat rebalances cheap.
  struct Shipment {
    CkptKey key;
    sim::HostId holder;
    uint64_t bytes;
    std::vector<uint64_t> hashes;
  };
  std::vector<Shipment> ships;
  sim::Duration transfer = 0;
  const net::TransportModel& model = net::model_for(options_.transport);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : entries_) {
      if (key.app != app || key.rank != rank || entry.holders.empty()) continue;
      for (sim::HostId holder : holders) {
        if (entry.holders.contains(holder) || !alive_(holder)) continue;
        const HolderCache* cache = nullptr;
        auto it = holder_caches_.find({holder, app, rank});
        if (it != holder_caches_.end()) cache = &it->second;
        Shipment s;
        s.key = key;
        s.holder = holder;
        uint64_t ship_bytes = 0;
        pages_to_ship(entry.image.payload, cache, s.hashes, &ship_bytes);
        s.bytes = kReplicaHeaderBytes + ship_bytes;
        transfer += holder == shipper.id()
                        ? loopback_time(s.bytes)
                        : model.one_way_fixed() + model.wire_time(s.bytes);
        ships.push_back(std::move(s));
      }
    }
  }
  if (ships.empty()) return;

  // Phase 2 (unlocked): the transfer, streamed in bounded chunks. Same
  // commit-after-transfer rule as put — a crashed shipper leaves the
  // holder sets untouched.
  uint64_t planned_bytes = 0;
  for (const Shipment& s : ships) planned_bytes += s.bytes;
  net::chunked_sleep(engine_, transfer, planned_bytes);

  // Phase 3 (locked): union the new holders in. Entries gc'd or
  // invalidated during the transfer are skipped (nothing to extend).
  uint64_t shipped_bytes = 0, copies = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Shipment& s : ships) {
      auto it = entries_.find(s.key);
      if (it == entries_.end() || it->second.holders.empty()) continue;
      if (!alive_(s.holder)) continue;
      it->second.holders.insert(s.holder);
      HolderCache& cache = holder_caches_[{s.holder, app, rank}];
      if (s.key.epoch >= cache.epoch) {
        cache.hashes = s.hashes;
        cache.payload_len = it->second.image.payload.size();
        cache.epoch = s.key.epoch;
      }
      shipped_bytes += s.bytes;
      ++copies;
    }
    bytes_shipped_ += shipped_bytes;
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.replica.rebalance_ships").add(copies);
    hub->metrics.counter("ckpt.replica.bytes_shipped").add(shipped_bytes);
  }
}

size_t ReplicaStore::gc(const std::string& app, uint64_t keep_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  return std::erase_if(entries_, [&](const auto& entry) {
    return entry.first.app == app && entry.first.epoch < keep_epoch;
  });
}

uint64_t ReplicaStore::content_hash() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  for (const auto& [key, entry] : entries_) {
    mix(key.app.data(), key.app.size());
    mix(&key.rank, sizeof key.rank);
    mix(&key.epoch, sizeof key.epoch);
    mix(&entry.image.kind, sizeof entry.image.kind);
    mix(&entry.image.repr_code, sizeof entry.image.repr_code);
    mix(&entry.image.file_bytes, sizeof entry.image.file_bytes);
    mix(entry.image.payload.data(), entry.image.payload.size());
    for (sim::HostId holder : entry.holders) mix(&holder, sizeof holder);
    if (entry.meta) mix(entry.meta->data(), entry.meta->size());
  }
  for (const auto& [hk, cache] : holder_caches_) {
    const auto& [host, app, rank] = hk;
    mix(&host, sizeof host);
    mix(app.data(), app.size());
    mix(&rank, sizeof rank);
    mix(&cache.epoch, sizeof cache.epoch);
    mix(&cache.payload_len, sizeof cache.payload_len);
    mix(cache.hashes.data(), cache.hashes.size() * sizeof(uint64_t));
  }
  return h;
}

size_t ReplicaStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t ReplicaStore::bytes_shipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_shipped_;
}

uint64_t ReplicaStore::puts_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_started_;
}

uint64_t ReplicaStore::puts_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_committed_;
}

bool ReplicaStore::validate(std::string* why) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    const std::string name =
        key.app + "/r" + std::to_string(key.rank) + "/e" + std::to_string(key.epoch);
    if (entry.holders.empty()) {
      if (why) *why = "entry " + name + " has no holders";
      return false;
    }
    for (sim::HostId holder : entry.holders) {
      if (!alive_(holder)) {
        if (why) *why = "entry " + name + " held by dead host " + std::to_string(holder);
        return false;
      }
    }
  }
  return true;
}

}  // namespace starfish::ckpt
