// Diskless checkpoint storage: in-memory replication across peer hosts.
//
// The disk store (store.hpp) models the paper's shared-filesystem
// substitution — every image survives any crash for free, and every restore
// pays a full local-disk read. ReStore (arXiv:2203.01107) shows the
// alternative this module implements: each host keeps copies of its peers'
// checkpoint data *in memory*, so recovery reads travel the fast data
// network instead of an IDE spindle — but the copies now share fate with
// the hosts that hold them. A crash invalidates exactly the replicas the
// dead host held; recovery from the replica tier succeeds iff at least one
// copy of every image in the restore chain survives, and otherwise falls
// back to the disk path (when disk images exist) or reports the epoch
// unrecoverable. FTHP-MPI (arXiv:2504.09989) motivates surfacing that
// replication-factor-vs-surviving-copies tradeoff as a first-class failure
// model rather than an afterthought; DESIGN.md section 14 records ours.
//
// Placement is a pure function of the application's rank -> host map (the
// placement every daemon and process already derives deterministically from
// the GCS view), so *writers compute holder sets locally* — no shared
// placement state exists to race on. The store itself is cluster-wide
// shared memory reached from every engine shard; the same contract as the
// disk store applies: a mutex guards the maps, network time is charged
// strictly outside the lock, and all mutations are commutative (holder-set
// unions, epoch-max cache installs, content-identical overwrites) so the
// final state is bit-identical at any STARFISH_SHARDS value.
//
// Durability rule (commit-after-transfer): a put mutates nothing until the
// full transfer time has elapsed. The putter crashing mid-transfer kills
// its fiber inside the sleep, so the in-flight copy simply never appears —
// a partially-written replica can never satisfy recovery. Holders that
// died during the transfer are dropped at install time for the same
// reason: their memory is gone.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/key.hpp"
#include "net/model_params.hpp"
#include "sim/host.hpp"

namespace starfish::ckpt {

struct ReplicaOptions {
  /// Copies per image, on hosts other than the checkpointing rank's own
  /// (its memory dies with it, so a self-copy would add no durability).
  uint32_t replication = 2;
  /// Transport charged for replica transfer (the MPI fast data network).
  net::TransportKind transport = net::TransportKind::kBipMyrinet;
};

/// Fixed per-image metadata shipped alongside replica pages (page table,
/// header) — the in-memory analogue of kIncrementalBaseBytes, far smaller
/// because no run-time dump accompanies an in-memory copy.
constexpr uint64_t kReplicaHeaderBytes = 4ull * 1024;

/// The deterministic placement function: which hosts hold rank `rank`'s
/// copies, given every rank's current host (`rank_hosts[r]`, kInvalidHost
/// for dead/unplaced ranks) and the replication factor. The holder set is
/// the `replication` distinct live hosts that follow the owner in the
/// sorted unique host list (wrapping), never including the owner itself;
/// when fewer other hosts exist, all of them; when the owner is alone (or
/// unplaced), just the owner — a degenerate self-copy that documents "no
/// durability available" rather than silently storing nothing. Every
/// writer and every daemon evaluates this identically from its own view.
std::vector<sim::HostId> replica_holders(const std::vector<sim::HostId>& rank_hosts,
                                         uint32_t rank, uint32_t replication);

class ReplicaStore {
 public:
  /// `alive` tells the store which hosts still hold memory; it must only
  /// change during serial control phases (host crashes are control-plane
  /// operations), so reads from parallel phases are stable.
  ReplicaStore(sim::Engine& engine, ReplicaOptions options,
               std::function<bool(sim::HostId)> alive);

  const ReplicaOptions& options() const { return options_; }

  /// Replicates `image` to `holders`, charging the writer's fiber the
  /// network time to ship every copy. Warm path: when a holder already
  /// holds this rank's previous image, only the 4 KB pages of the payload
  /// whose fingerprint changed are shipped (PageHashCache). Nothing is
  /// installed until the transfer completes (commit-after-transfer);
  /// holders that died mid-transfer are dropped at install.
  void put(sim::Host& writer, const CkptKey& key, Image image,
           const std::vector<sim::HostId>& holders);

  /// Fetches a surviving copy, charging the reader the network round trip
  /// (loopback when the reader itself is a holder). nullopt when no copy
  /// survives — the caller then falls back to the disk path.
  std::optional<Image> get(sim::Host& reader, const CkptKey& key);

  bool contains(const CkptKey& key) const;
  std::optional<uint64_t> file_bytes(const CkptKey& key) const;

  /// Side-band metadata rides with the entry: it shares fate with the
  /// copies (a meta whose image is gone is useless for recovery).
  void put_meta(const CkptKey& key, util::Bytes meta);
  std::optional<util::Bytes> checkpoint_meta(const CkptKey& key) const;

  /// Highest surviving epoch/index for (app, rank), if any copy survives.
  std::optional<uint64_t> latest_stored(const std::string& app, uint32_t rank) const;

  /// True iff `key` and its whole restore chain (incremental bases and
  /// codec delta bases) each have >= 1 surviving copy whose payload passes
  /// structural verification — the replica tier alone can rebuild this
  /// state.
  bool recoverable(const CkptKey& key) const;

  /// Test-only fault injection: flips one byte of (or truncates) the
  /// stored payload of `key`'s entry. Returns false when no copy survives
  /// here. Mirrors CheckpointStore::corrupt_payload.
  bool corrupt_payload(const CkptKey& key, size_t offset, bool truncate = false);

  /// Crash invalidation: drops every copy `host` held (its memory is
  /// gone) and forgets its warm-transfer caches. Entries left with no
  /// holder are erased. Serial control phases only (same contract as
  /// Network::crash_host, which drives this through the crash hook).
  void on_host_crash(sim::HostId host);

  /// Re-replication after a placement change: ships every surviving entry
  /// of (app, rank) to the holders in `holders` that lack a copy, charging
  /// `shipper`'s fiber the network time. Idempotent and commutative —
  /// concurrent rebalances toward the same target placement union to the
  /// same holder sets.
  void rebalance(sim::Host& shipper, const std::string& app, uint32_t rank,
                 const std::vector<sim::HostId>& holders);

  /// Drops every entry of `app` with epoch < keep_epoch (mirrors the disk
  /// store's checkpoint garbage collection).
  size_t gc(const std::string& app, uint64_t keep_epoch);

  /// FNV-1a over every entry (key, image fields, payload, sorted holders,
  /// meta) plus the warm-transfer caches, in map order. Zero-cost; the
  /// shard-determinism suite compares it across STARFISH_SHARDS values.
  uint64_t content_hash() const;

  size_t entry_count() const;
  uint64_t bytes_shipped() const;
  /// Commit-after-transfer accounting: puts that began vs. puts whose
  /// install completed. The difference counts transfers aborted by a
  /// crash (the chaos suite asserts those left no copy behind).
  uint64_t puts_started() const;
  uint64_t puts_committed() const;
  /// Invariant check for the chaos suite: every entry has >= 1 holder and
  /// every holder is alive (a dead host appearing as a holder would mean
  /// a mid-transfer crash leaked a partial copy). Returns false and fills
  /// `why` on violation.
  bool validate(std::string* why = nullptr) const;

 private:
  /// Warm-transfer state: fingerprints of the payload this holder last
  /// received for (app, rank), plus the epoch it describes. Epoch-max
  /// install keeps the contents independent of wall-clock interleaving.
  struct HolderCache {
    std::vector<uint64_t> hashes;
    uint64_t payload_len = 0;
    uint64_t epoch = 0;
  };
  struct Entry {
    Image image;
    std::set<sim::HostId> holders;
    std::optional<util::Bytes> meta;
  };
  using HolderKey = std::tuple<sim::HostId, std::string, uint32_t>;

  /// Pages of `payload` a holder with `cache` still needs (changed or new
  /// fingerprints); fills `fresh` with the payload's full fingerprint set
  /// and `ship_bytes` with the actual byte total of the shipped pages
  /// (tail pages count their real length, not a full 4 KB).
  static uint64_t pages_to_ship(const util::Bytes& payload, const HolderCache* cache,
                                std::vector<uint64_t>& fresh, uint64_t* ship_bytes);
  bool recoverable_locked(const CkptKey& key) const;

  sim::Engine& engine_;
  ReplicaOptions options_;
  std::function<bool(sim::HostId)> alive_;
  mutable std::mutex mu_;
  std::map<CkptKey, Entry> entries_;
  std::map<HolderKey, HolderCache> holder_caches_;
  uint64_t bytes_shipped_ = 0;
  uint64_t puts_started_ = 0;
  uint64_t puts_committed_ = 0;
};

}  // namespace starfish::ckpt
