#include "ckpt/store.hpp"

#include <cassert>

namespace starfish::ckpt {

void CheckpointStore::put(sim::Host& host, const CkptKey& key, Image image) {
  const uint64_t bytes = image.file_bytes;
  const sim::Time start = engine_.now();
  // Charge the disk before taking the lock: sleep/write block the fiber,
  // and the window barrier must never wait on a held mutex.
  if (image.kind == ImageKind::kNative) {
    engine_.sleep(kNativeDumpSetup);
    host.disk().write(bytes);
  } else {
    host.disk().write_buffered(bytes);
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.images_written").add(1);
    hub->metrics.counter("ckpt.store.bytes_written").add(bytes);
    hub->metrics.histogram("ckpt.store.put_ns").record(static_cast<uint64_t>(engine_.now() - start));
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "put " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           host.id());
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_ += bytes;
  images_[key] = std::move(image);
}

std::optional<Image> CheckpointStore::get(sim::Host& host, const CkptKey& key) {
  std::optional<Image> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = images_.find(key);
    if (it == images_.end()) return std::nullopt;
    found = it->second;
  }
  const sim::Time start = engine_.now();
  host.disk().read(found->file_bytes);  // outside the lock: blocks the fiber
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.images_read").add(1);
    hub->metrics.counter("ckpt.store.bytes_read").add(found->file_bytes);
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "get " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           host.id());
    }
  }
  return found;
}

std::optional<uint64_t> CheckpointStore::file_bytes(const CkptKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = images_.find(key);
  if (it == images_.end()) return std::nullopt;
  return it->second.file_bytes;
}

void CheckpointStore::commit(const std::string& app, uint64_t epoch) {
  const sim::Time now = engine_.now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Monotone: a stale commit (e.g. from a coordinator that was about to
    // die) never moves the recovery line backwards.
    auto it = committed_.find(app);
    if (it == committed_.end() || it->second < epoch) committed_[app] = epoch;
    // Min-combine: concurrent duplicate commits record the earliest virtual
    // time regardless of wall-clock arrival order.
    auto [t, inserted] = commit_times_.try_emplace(std::make_pair(app, epoch), now);
    if (!inserted && now < t->second) t->second = now;
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.epochs_committed").add(1);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(now), "ckpt",
                          "commit " + app + "/e" + std::to_string(epoch), 0);
    }
  }
}

void CheckpointStore::note_begin(const std::string& app, uint64_t epoch) {
  const sim::Time now = engine_.now();
  std::lock_guard<std::mutex> lock(mu_);
  // Earliest virtual begin wins (min-combine, same reasoning as commit()).
  auto [it, inserted] = begin_times_.try_emplace(std::make_pair(app, epoch), now);
  if (!inserted && now < it->second) it->second = now;
}

std::optional<sim::Duration> CheckpointStore::epoch_duration(const std::string& app,
                                                             uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto b = begin_times_.find({app, epoch});
  auto c = commit_times_.find({app, epoch});
  if (b == begin_times_.end() || c == commit_times_.end()) return std::nullopt;
  return c->second - b->second;
}

std::optional<uint64_t> CheckpointStore::latest_committed(const std::string& app) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = committed_.find(app);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::optional<uint64_t> CheckpointStore::latest_stored(const std::string& app,
                                                       uint32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<uint64_t> best;
  for (const auto& [key, image] : images_) {
    if (key.app == app && key.rank == rank) {
      if (!best || key.epoch > *best) best = key.epoch;
    }
  }
  return best;
}

uint64_t CheckpointStore::content_hash() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_key = [&](const CkptKey& key) {
    mix(key.app.data(), key.app.size());
    mix(&key.rank, sizeof key.rank);
    mix(&key.epoch, sizeof key.epoch);
  };
  for (const auto& [key, image] : images_) {
    mix_key(key);
    mix(&image.kind, sizeof image.kind);
    mix(&image.repr_code, sizeof image.repr_code);
    mix(&image.file_bytes, sizeof image.file_bytes);
    mix(image.payload.data(), image.payload.size());
  }
  for (const auto& [key, meta] : metas_) {
    mix_key(key);
    mix(meta.data(), meta.size());
  }
  for (const auto& [app, epoch] : committed_) {
    mix(app.data(), app.size());
    mix(&epoch, sizeof epoch);
  }
  return h;
}

size_t CheckpointStore::gc(const std::string& app, uint64_t keep_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(metas_, [&](const auto& entry) {
    return entry.first.app == app && entry.first.epoch < keep_epoch;
  });
  return std::erase_if(images_, [&](const auto& entry) {
    return entry.first.app == app && entry.first.epoch < keep_epoch;
  });
}

}  // namespace starfish::ckpt
