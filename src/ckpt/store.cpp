#include "ckpt/store.hpp"

#include <cassert>

namespace starfish::ckpt {

void CheckpointStore::put(sim::Host& host, const CkptKey& key, Image image) {
  const uint64_t bytes = image.file_bytes;
  const sim::Time start = engine_.now();
  if (image.kind == ImageKind::kNative) {
    engine_.sleep(kNativeDumpSetup);
    host.disk().write(bytes);
  } else {
    host.disk().write_buffered(bytes);
  }
  bytes_written_ += bytes;
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.images_written").add(1);
    hub->metrics.counter("ckpt.store.bytes_written").add(bytes);
    hub->metrics.histogram("ckpt.store.put_ns").record(static_cast<uint64_t>(engine_.now() - start));
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "put " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           host.id());
    }
  }
  images_[key] = std::move(image);
}

std::optional<Image> CheckpointStore::get(sim::Host& host, const CkptKey& key) {
  auto it = images_.find(key);
  if (it == images_.end()) return std::nullopt;
  const sim::Time start = engine_.now();
  host.disk().read(it->second.file_bytes);
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.images_read").add(1);
    hub->metrics.counter("ckpt.store.bytes_read").add(it->second.file_bytes);
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "get " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           host.id());
    }
  }
  return it->second;
}

std::optional<uint64_t> CheckpointStore::file_bytes(const CkptKey& key) const {
  auto it = images_.find(key);
  if (it == images_.end()) return std::nullopt;
  return it->second.file_bytes;
}

void CheckpointStore::commit(const std::string& app, uint64_t epoch) {
  // Monotone: a stale commit (e.g. from a coordinator that was about to die)
  // never moves the recovery line backwards.
  auto it = committed_.find(app);
  if (it == committed_.end() || it->second < epoch) committed_[app] = epoch;
  commit_times_.emplace(std::make_pair(app, epoch), engine_.now());
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.epochs_committed").add(1);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(engine_.now()), "ckpt",
                          "commit " + app + "/e" + std::to_string(epoch), 0);
    }
  }
}

void CheckpointStore::note_begin(const std::string& app, uint64_t epoch) {
  begin_times_.emplace(std::make_pair(app, epoch), engine_.now());  // first note wins
}

std::optional<sim::Duration> CheckpointStore::epoch_duration(const std::string& app,
                                                             uint64_t epoch) const {
  auto b = begin_times_.find({app, epoch});
  auto c = commit_times_.find({app, epoch});
  if (b == begin_times_.end() || c == commit_times_.end()) return std::nullopt;
  return c->second - b->second;
}

std::optional<uint64_t> CheckpointStore::latest_committed(const std::string& app) const {
  auto it = committed_.find(app);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::optional<uint64_t> CheckpointStore::latest_stored(const std::string& app,
                                                       uint32_t rank) const {
  std::optional<uint64_t> best;
  for (const auto& [key, image] : images_) {
    if (key.app == app && key.rank == rank) {
      if (!best || key.epoch > *best) best = key.epoch;
    }
  }
  return best;
}

size_t CheckpointStore::gc(const std::string& app, uint64_t keep_epoch) {
  std::erase_if(metas_, [&](const auto& entry) {
    return entry.first.app == app && entry.first.epoch < keep_epoch;
  });
  return std::erase_if(images_, [&](const auto& entry) {
    return entry.first.app == app && entry.first.epoch < keep_epoch;
  });
}

}  // namespace starfish::ckpt
