#include "ckpt/store.hpp"

#include <algorithm>
#include <cassert>

#include "ckpt/incremental.hpp"
#include "net/network.hpp"

namespace starfish::ckpt {

namespace {

bool codec_is_delta(PayloadCodec codec) {
  return codec == PayloadCodec::kDelta || codec == PayloadCodec::kDeltaLz;
}

}  // namespace

void CheckpointStore::encode_for_store(const CkptKey& key, Image& image) {
  if (compress_ == CompressMode::kOff) return;
  // Pick the delta base under the lock, then encode outside it: the codec
  // pass is CPU work that must not serialize every shard on mu_. The base
  // pointer stays valid because std::map nodes are address-stable and an
  // (app, rank)'s entry is only rewritten by that rank's own puts, which
  // are sequential (one checkpoint at a time per process).
  const LastPayload* base_entry = nullptr;
  if (compress_chained() && !image.incremental && !is_full_epoch(key.epoch)) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = last_payloads_.find({key.app, key.rank});
    // A usable base is newer than the gc keep line of this epoch's commit
    // (so it survives) and still stored (so decode can resolve the chain).
    if (it != last_payloads_.end() && it->second.epoch < key.epoch &&
        it->second.epoch >= last_full_at_or_before(key.epoch) &&
        (images_.contains({key.app, key.rank, it->second.epoch}) ||
         (replica_ && replica_->contains({key.app, key.rank, it->second.epoch})))) {
      base_entry = &it->second;
    }
  }
  // Capture the base epoch now: the tracking block below may rewrite the very
  // map entry base_entry points at (this rank's slot) with the new epoch.
  const uint64_t base_epoch = base_entry ? base_entry->epoch : 0;
  const util::BytesView base =
      base_entry ? util::as_bytes_view(base_entry->raw) : util::BytesView{};
  EncodedPayload coded =
      encode_payload(compress_, util::as_bytes_view(image.payload), base, engine_.obs());

  // Track this epoch's raw payload as the next delta base; incremental
  // images are excluded (their payloads are already app-state deltas — a
  // codec delta would add a second base chain to the same image).
  if (compress_chained() && !image.incremental) {
    std::lock_guard<std::mutex> lock(mu_);
    LastPayload& lp = last_payloads_[{key.app, key.rank}];
    if (key.epoch >= lp.epoch) {
      lp.epoch = key.epoch;
      lp.raw = image.payload;
    }
  }
  if (coded.codec == PayloadCodec::kRaw) return;  // coding did not pay off
  image.codec = coded.codec;
  image.raw_payload_bytes = image.payload.size();
  image.codec_base_epoch = codec_is_delta(coded.codec) ? base_epoch : 0;
  image.file_bytes = image.file_bytes - image.payload.size() + coded.bytes.size();
  image.payload = std::move(coded.bytes);
}

void CheckpointStore::enable_replica_backend(net::Network& net, ReplicaOptions options) {
  if (replica_) return;
  replica_ = std::make_unique<ReplicaStore>(
      engine_, options, [&net](sim::HostId h) { return net.host(h)->alive(); });
  // Crash invalidation: the copies a dead host held are gone the instant it
  // dies, before any recovery logic runs (crash_host is a serial phase).
  net.add_crash_hook([this](sim::HostId h) { replica_->on_host_crash(h); });
}

void CheckpointStore::put(sim::Host& host, const CkptKey& key, Image image) {
  // Code the payload first: the smaller file is what the disk write below
  // is charged for — the whole point of the compressed epoch pipeline.
  if (image.codec == PayloadCodec::kRaw) encode_for_store(key, image);
  const uint64_t bytes = image.file_bytes;
  const sim::Time start = engine_.now();
  // Charge the disk before taking the lock: sleep/write block the fiber,
  // and the window barrier must never wait on a held mutex.
  if (image.kind == ImageKind::kNative) {
    engine_.sleep(kNativeDumpSetup);
    host.disk().write(bytes);
  } else {
    host.disk().write_buffered(bytes);
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.images_written").add(1);
    hub->metrics.counter("ckpt.store.bytes_written").add(bytes);
    hub->metrics.histogram("ckpt.store.put_ns").record(static_cast<uint64_t>(engine_.now() - start));
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "put " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           host.id());
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_ += bytes;
  images_[key] = std::move(image);
}

void CheckpointStore::put(sim::Host& host, const CkptKey& key, Image image,
                          const std::vector<sim::HostId>& holders) {
  if (backend_ == CkptBackend::kReplica && replica_ && !holders.empty()) {
    encode_for_store(key, image);  // ship the coded bytes, not the raw epoch
    replica_->put(host, key, std::move(image), holders);
    return;
  }
  put(host, key, std::move(image));
}

std::optional<Image> CheckpointStore::get(sim::Host& host, const CkptKey& key) {
  std::optional<Image> found = fetch_stored(host, key);
  if (!found || found->codec == PayloadCodec::kRaw) return found;
  // Coded image: resolve the raw payload before handing it up. Delta
  // chains fetch their base epoch through this same path — each ancestor
  // read charges its real tier cost, mirroring incremental restore chains
  // — and terminate because every link's base epoch is strictly smaller.
  util::Bytes base;
  if (codec_is_delta(found->codec)) {
    if (found->codec_base_epoch >= key.epoch) {
      if (obs::Hub* hub = engine_.obs()) {
        hub->metrics.counter("ckpt.codec.decode_errors").add(1);
      }
      return std::nullopt;
    }
    auto b = get(host, CkptKey{key.app, key.rank, found->codec_base_epoch});
    if (!b) {
      if (obs::Hub* hub = engine_.obs()) {
        hub->metrics.counter("ckpt.codec.chain_breaks").add(1);
      }
      return std::nullopt;
    }
    base = std::move(b->payload);
  }
  auto raw = decode_payload(found->codec, util::as_bytes_view(found->payload),
                            util::as_bytes_view(base), kMaxIncrementalStateBytes, engine_.obs());
  if (!raw.ok()) return std::nullopt;  // corrupt: caller falls back, never aborts
  found->file_bytes = found->file_bytes - found->payload.size() + raw.value().size();
  found->payload = std::move(raw).take();
  found->codec = PayloadCodec::kRaw;
  found->raw_payload_bytes = 0;
  found->codec_base_epoch = 0;
  return found;
}

std::optional<Image> CheckpointStore::fetch_stored(sim::Host& host, const CkptKey& key) {
  if (replica_) {
    if (auto found = replica_->get(host, key)) return found;
    if (backend_ == CkptBackend::kReplica) {
      // The replica tier was the write path but holds no surviving copy:
      // fall back to whatever the disk tier has (counted so degraded-mode
      // recovery is visible in the obs snapshot).
      if (obs::Hub* hub = engine_.obs()) {
        hub->metrics.counter("ckpt.replica.disk_fallbacks").add(1);
      }
    }
  }
  std::optional<Image> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = images_.find(key);
    if (it == images_.end()) return std::nullopt;
    found = it->second;
  }
  const sim::Time start = engine_.now();
  host.disk().read(found->file_bytes);  // outside the lock: blocks the fiber
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.images_read").add(1);
    hub->metrics.counter("ckpt.store.bytes_read").add(found->file_bytes);
    hub->metrics.histogram("ckpt.store.read_ns")
        .record(static_cast<uint64_t>(engine_.now() - start));
    if (hub->tracer.enabled()) {
      hub->tracer.complete(static_cast<uint64_t>(start),
                           static_cast<uint64_t>(engine_.now() - start), "ckpt",
                           "get " + key.app + "/r" + std::to_string(key.rank) + "/e" +
                               std::to_string(key.epoch),
                           host.id());
    }
  }
  return found;
}

std::optional<uint64_t> CheckpointStore::file_bytes(const CkptKey& key) const {
  if (replica_) {
    if (auto b = replica_->file_bytes(key)) return b;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = images_.find(key);
  if (it == images_.end()) return std::nullopt;
  return it->second.file_bytes;
}

void CheckpointStore::put_meta(const CkptKey& key, util::Bytes meta) {
  if (backend_ == CkptBackend::kReplica && replica_ && replica_->contains(key)) {
    replica_->put_meta(key, std::move(meta));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  metas_[key] = std::move(meta);
}

std::optional<util::Bytes> CheckpointStore::checkpoint_meta(const CkptKey& key) const {
  if (replica_) {
    if (auto m = replica_->checkpoint_meta(key)) return m;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metas_.find(key);
  if (it == metas_.end()) return std::nullopt;
  return it->second;
}

void CheckpointStore::commit(const std::string& app, uint64_t epoch) {
  const sim::Time now = engine_.now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Monotone: a stale commit (e.g. from a coordinator that was about to
    // die) never moves the recovery line backwards.
    auto it = committed_.find(app);
    if (it == committed_.end() || it->second < epoch) committed_[app] = epoch;
    // Min-combine: concurrent duplicate commits record the earliest virtual
    // time regardless of wall-clock arrival order.
    auto [t, inserted] = commit_times_.try_emplace(std::make_pair(app, epoch), now);
    if (!inserted && now < t->second) t->second = now;
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter("ckpt.store.epochs_committed").add(1);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(now), "ckpt",
                          "commit " + app + "/e" + std::to_string(epoch), 0);
    }
  }
}

void CheckpointStore::note_begin(const std::string& app, uint64_t epoch) {
  const sim::Time now = engine_.now();
  std::lock_guard<std::mutex> lock(mu_);
  // Earliest virtual begin wins (min-combine, same reasoning as commit()).
  auto [it, inserted] = begin_times_.try_emplace(std::make_pair(app, epoch), now);
  if (!inserted && now < it->second) it->second = now;
}

void CheckpointStore::note_abort(const std::string& app) {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = std::erase_if(begin_times_, [&](const auto& entry) {
      return entry.first.first == app && !commit_times_.contains(entry.first);
    });
  }
  if (dropped > 0) {
    if (obs::Hub* hub = engine_.obs()) {
      hub->metrics.counter("ckpt.store.epochs_aborted").add(dropped);
    }
  }
}

std::optional<sim::Duration> CheckpointStore::epoch_duration(const std::string& app,
                                                             uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto b = begin_times_.find({app, epoch});
  auto c = commit_times_.find({app, epoch});
  if (b == begin_times_.end() || c == commit_times_.end()) return std::nullopt;
  return c->second - b->second;
}

CheckpointStore::EpochStats CheckpointStore::epoch_stats(const std::string& app) const {
  std::lock_guard<std::mutex> lock(mu_);
  EpochStats stats;
  if (auto it = duration_agg_.find(app); it != duration_agg_.end()) stats = it->second;
  for (const auto& [key, commit] : commit_times_) {
    if (key.first != app) continue;
    auto b = begin_times_.find(key);
    if (b == begin_times_.end()) continue;
    ++stats.epochs;
    stats.total += commit - b->second;
  }
  return stats;
}

std::optional<uint64_t> CheckpointStore::latest_committed(const std::string& app) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = committed_.find(app);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

bool CheckpointStore::disk_chain_complete_locked(const CkptKey& key) const {
  CkptKey at = key;
  for (;;) {
    auto it = images_.find(at);
    if (it == images_.end()) return false;
    const Image& img = it->second;
    // A stored-but-corrupt link is as unrecoverable as a missing one; the
    // structural verify is a fingerprint pass, no decode.
    if (!verify_payload(img.codec, util::as_bytes_view(img.payload)).ok()) return false;
    if (img.incremental) {
      at.epoch = img.base_epoch;
      continue;
    }
    if (codec_is_delta(img.codec)) {
      if (img.codec_base_epoch >= at.epoch) return false;
      at.epoch = img.codec_base_epoch;
      continue;
    }
    return true;
  }
}

std::optional<uint64_t> CheckpointStore::latest_recoverable(const std::string& app,
                                                            uint32_t nprocs) const {
  auto committed = latest_committed(app);
  if (!committed) return std::nullopt;
  const bool replica_backend = backend_ == CkptBackend::kReplica && replica_ != nullptr;
  // Disk images survive anything, and with compression off their payloads
  // cannot have a broken codec frame either — latest_committed is the line.
  if (!replica_backend && compress_ == CompressMode::kOff) return committed;
  // Walk committed epochs newest-first; an epoch is recoverable when every
  // rank's restore chain survives *verifiably* in at least one tier (a
  // corrupted codec frame disqualifies its chain the same way a dead
  // holder does). Older epochs are usually gc'd, so the walk is short.
  for (uint64_t epoch = *committed; epoch >= 1; --epoch) {
    bool all = true;
    for (uint32_t rank = 0; rank < nprocs && all; ++rank) {
      const CkptKey key{app, rank, epoch};
      if (replica_backend && replica_->recoverable(key)) continue;
      std::lock_guard<std::mutex> lock(mu_);
      all = disk_chain_complete_locked(key);
    }
    if (all) {
      if (epoch != *committed) {
        if (obs::Hub* hub = engine_.obs()) {
          hub->metrics
              .counter(replica_backend ? "ckpt.replica.degraded_lines"
                                       : "ckpt.store.degraded_lines")
              .add(1);
        }
      }
      return epoch;
    }
  }
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics
        .counter(replica_backend ? "ckpt.replica.unrecoverable_lines"
                                 : "ckpt.store.unrecoverable_lines")
        .add(1);
  }
  return std::nullopt;
}

std::optional<uint64_t> CheckpointStore::latest_stored(const std::string& app,
                                                       uint32_t rank) const {
  std::optional<uint64_t> best;
  if (replica_) best = replica_->latest_stored(app, rank);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, image] : images_) {
    if (key.app == app && key.rank == rank) {
      if (!best || key.epoch > *best) best = key.epoch;
    }
  }
  return best;
}

bool CheckpointStore::raw_payload_locked(const CkptKey& key, util::Bytes& out,
                                         int depth) const {
  if (depth > static_cast<int>(kFullEvery) * 2) return false;  // corrupt chain guard
  auto it = images_.find(key);
  if (it == images_.end()) return false;
  const Image& img = it->second;
  if (img.codec == PayloadCodec::kRaw) {
    out = img.payload;
    return true;
  }
  util::Bytes base;
  if (codec_is_delta(img.codec)) {
    if (img.codec_base_epoch >= key.epoch) return false;
    if (!raw_payload_locked({key.app, key.rank, img.codec_base_epoch}, base, depth + 1)) {
      return false;
    }
  }
  auto raw = decode_payload(img.codec, util::as_bytes_view(img.payload),
                            util::as_bytes_view(base), kMaxIncrementalStateBytes, nullptr);
  if (!raw.ok()) return false;
  out = std::move(raw).take();
  return true;
}

uint64_t CheckpointStore::content_hash() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_key = [&](const CkptKey& key) {
    mix(key.app.data(), key.app.size());
    mix(&key.rank, sizeof key.rank);
    mix(&key.epoch, sizeof key.epoch);
  };
  for (const auto& [key, image] : images_) {
    mix_key(key);
    mix(&image.kind, sizeof image.kind);
    mix(&image.repr_code, sizeof image.repr_code);
    // Hash the *logical* image — decoded payload, pre-codec file size — so
    // the hash is invariant across compression modes: the differential
    // suite compares stores coded off/lz/delta/delta+lz byte-for-byte. A
    // payload whose chain no longer resolves hashes as stored (a corrupted
    // store must not hash equal to a clean one).
    uint64_t file_bytes = image.file_bytes;
    const util::Bytes* payload = &image.payload;
    util::Bytes raw;
    if (image.codec != PayloadCodec::kRaw && raw_payload_locked(key, raw, 0)) {
      file_bytes = file_bytes - image.payload.size() + raw.size();
      payload = &raw;
    }
    mix(&file_bytes, sizeof file_bytes);
    mix(payload->data(), payload->size());
  }
  for (const auto& [key, meta] : metas_) {
    mix_key(key);
    mix(meta.data(), meta.size());
  }
  for (const auto& [app, epoch] : committed_) {
    mix(app.data(), app.size());
    mix(&epoch, sizeof epoch);
  }
  return h;
}

size_t CheckpointStore::gc(const std::string& app, uint64_t keep_epoch) {
  size_t removed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase_if(metas_, [&](const auto& entry) {
      return entry.first.app == app && entry.first.epoch < keep_epoch;
    });
    removed = std::erase_if(images_, [&](const auto& entry) {
      return entry.first.app == app && entry.first.epoch < keep_epoch;
    });
    // Fold completed epoch timings below the line into the aggregate and
    // drop their per-epoch entries; a begin below the line with no commit
    // was aborted and can never complete, so it is dropped too. Without
    // this the instrumentation maps grow forever across long chaos runs.
    for (auto it = commit_times_.begin(); it != commit_times_.end();) {
      if (it->first.first != app || it->first.second >= keep_epoch) {
        ++it;
        continue;
      }
      if (auto b = begin_times_.find(it->first); b != begin_times_.end()) {
        EpochStats& agg = duration_agg_[app];
        ++agg.epochs;
        agg.total += it->second - b->second;
        begin_times_.erase(b);
      }
      it = commit_times_.erase(it);
    }
    std::erase_if(begin_times_, [&](const auto& entry) {
      return entry.first.first == app && entry.first.second < keep_epoch;
    });
  }
  if (replica_) removed += replica_->gc(app, keep_epoch);
  return removed;
}

bool CheckpointStore::corrupt_payload(const CkptKey& key, size_t offset, bool truncate) {
  if (replica_ && replica_->corrupt_payload(key, offset, truncate)) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = images_.find(key);
  if (it == images_.end() || it->second.payload.empty()) return false;
  util::Bytes& payload = it->second.payload;
  if (truncate) {
    payload.resize(std::min(offset, payload.size() - 1));
  } else {
    payload[offset % payload.size()] ^= std::byte{0x40};
  }
  return true;
}

}  // namespace starfish::ckpt
