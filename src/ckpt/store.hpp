// Checkpoint store with epoch bookkeeping.
//
// The paper writes checkpoints to each node's local disk; restarting a
// process on a *different* node implies the images are reachable cluster-wide
// (the Technion cluster used a shared filesystem). We model that: data is
// held in one logical store that survives node crashes, while the *cost* of
// every put/get is charged to the acting node's local disk — which is what
// Figures 3 and 4 measure. DESIGN.md records this substitution.
//
// Epochs: coordinated protocols write every process's image under one epoch
// number, then atomically commit it, making that epoch the recovery line.
// Uncoordinated protocols store per-process checkpoints keyed by their own
// indices and never commit epochs; recovery lines are computed from
// dependency metadata instead (recovery.hpp).
//
// The store is cluster-wide shared state, so hosts on different engine
// shards reach it concurrently: a mutex guards the maps, and disk time is
// always charged *outside* the lock (holding an OS mutex across a fiber
// block would deadlock the window barrier). Timestamp bookkeeping uses
// min-combines so the recorded values depend only on virtual time, never
// on which shard won a wall-clock race.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/image.hpp"
#include "sim/host.hpp"

namespace starfish::ckpt {

struct CkptKey {
  std::string app;
  uint32_t rank = 0;
  uint64_t epoch = 0;  ///< coordinated: epoch; uncoordinated: checkpoint index
  auto operator<=>(const CkptKey&) const = default;
};

/// Extra setup charged for a native (process-core-dump) checkpoint: stopping
/// the process, walking its segments, kernel dump machinery. Calibrated so a
/// 632 KB native image takes ~0.104 s on one node (Figure 3 anchor).
constexpr sim::Duration kNativeDumpSetup = sim::milliseconds(75);

class CheckpointStore {
 public:
  explicit CheckpointStore(sim::Engine& engine) : engine_(engine) {}

  /// Writes an image, blocking the calling fiber for the local disk time
  /// (synchronous + dump setup for native images, buffered for portable).
  void put(sim::Host& host, const CkptKey& key, Image image);

  /// Reads an image back, charging read time to `host`'s disk.
  std::optional<Image> get(sim::Host& host, const CkptKey& key);

  /// Zero-cost existence/metadata checks (directory lookups are not what the
  /// paper measures).
  bool contains(const CkptKey& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return images_.contains(key);
  }
  std::optional<uint64_t> file_bytes(const CkptKey& key) const;

  /// Small side-band metadata per checkpoint (dependency-tracker blobs for
  /// the uncoordinated protocol). Zero-cost access.
  void put_meta(const CkptKey& key, util::Bytes meta) {
    std::lock_guard<std::mutex> lock(mu_);
    metas_[key] = std::move(meta);
  }
  std::optional<util::Bytes> checkpoint_meta(const CkptKey& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = metas_.find(key);
    if (it == metas_.end()) return std::nullopt;
    return it->second;
  }

  /// Marks `epoch` as the committed recovery line for `app` (coordinated
  /// protocols; must be monotonically nondecreasing).
  void commit(const std::string& app, uint64_t epoch);
  std::optional<uint64_t> latest_committed(const std::string& app) const;

  /// Instrumentation: protocol initiators note when a distributed
  /// checkpoint begins; commit() records when it ends. Benches report
  /// end-to-end checkpoint times (Figures 3/4) from these.
  void note_begin(const std::string& app, uint64_t epoch);
  /// Duration begin -> commit for an epoch, if both were recorded.
  std::optional<sim::Duration> epoch_duration(const std::string& app, uint64_t epoch) const;

  /// Highest stored epoch/index for (app, rank), if any.
  std::optional<uint64_t> latest_stored(const std::string& app, uint32_t rank) const;

  /// Drops every image of `app` with epoch < keep_epoch. Returns the number
  /// of files removed (checkpoint garbage collection).
  size_t gc(const std::string& app, uint64_t keep_epoch);

  size_t image_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return images_.size();
  }
  /// FNV-1a over every stored image and meta blob (keys, kinds, payload
  /// bytes) in key order. Zero-cost (no disk charge): determinism tests
  /// compare whole stores across runs without perturbing them.
  uint64_t content_hash() const;
  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }

 private:
  sim::Engine& engine_;
  mutable std::mutex mu_;
  std::map<CkptKey, Image> images_;
  std::map<CkptKey, util::Bytes> metas_;
  std::map<std::string, uint64_t> committed_;
  std::map<std::pair<std::string, uint64_t>, sim::Time> begin_times_;
  std::map<std::pair<std::string, uint64_t>, sim::Time> commit_times_;
  uint64_t bytes_written_ = 0;
};

}  // namespace starfish::ckpt
