// Checkpoint store with epoch bookkeeping.
//
// The paper writes checkpoints to each node's local disk; restarting a
// process on a *different* node implies the images are reachable cluster-wide
// (the Technion cluster used a shared filesystem). We model that: data is
// held in one logical store that survives node crashes, while the *cost* of
// every put/get is charged to the acting node's local disk — which is what
// Figures 3 and 4 measure. DESIGN.md records this substitution.
//
// A second, diskless backend (replica.hpp, selected per cluster via
// ClusterOptions::ckpt_backend or STARFISH_CKPT_BACKEND=replica) replicates
// images in peer-host memory instead: puts charge network transfer to R
// replica holders, gets fetch a surviving copy over the network, and copies
// die with the hosts that held them. The disk maps then serve as the
// fallback tier — reads consult the replica store first and fall back to
// any disk image (e.g. written before a set_backend switch); when neither
// tier can rebuild a chain, latest_recoverable reports the epoch as
// unrecoverable and the daemons restart from scratch instead of
// deadlocking. DESIGN.md section 14 describes the full failure model.
//
// Epochs: coordinated protocols write every process's image under one epoch
// number, then atomically commit it, making that epoch the recovery line.
// Uncoordinated protocols store per-process checkpoints keyed by their own
// indices and never commit epochs; recovery lines are computed from
// dependency metadata instead (recovery.hpp).
//
// The store is cluster-wide shared state, so hosts on different engine
// shards reach it concurrently: a mutex guards the maps, and disk time is
// always charged *outside* the lock (holding an OS mutex across a fiber
// block would deadlock the window barrier). Timestamp bookkeeping uses
// min-combines so the recorded values depend only on virtual time, never
// on which shard won a wall-clock race.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/image.hpp"
#include "ckpt/key.hpp"
#include "ckpt/replica.hpp"
#include "sim/host.hpp"

namespace starfish::net {
class Network;
}

namespace starfish::ckpt {

/// Extra setup charged for a native (process-core-dump) checkpoint: stopping
/// the process, walking its segments, kernel dump machinery. Calibrated so a
/// 632 KB native image takes ~0.104 s on one node (Figure 3 anchor).
constexpr sim::Duration kNativeDumpSetup = sim::milliseconds(75);

/// Which tier absorbs checkpoint writes. Reads always consult the replica
/// tier first (when enabled) and fall back to the disk maps.
enum class CkptBackend : uint8_t { kDisk = 0, kReplica = 1 };

class CheckpointStore {
 public:
  explicit CheckpointStore(sim::Engine& engine) : engine_(engine) {}

  /// Builds the in-memory replication tier and hooks host-crash
  /// invalidation into the network. Does not switch the write path by
  /// itself — combine with set_backend(CkptBackend::kReplica).
  void enable_replica_backend(net::Network& net, ReplicaOptions options = {});
  void set_backend(CkptBackend backend) { backend_ = backend; }
  CkptBackend backend() const { return backend_; }
  /// The replication tier, if enable_replica_backend ran (else nullptr).
  ReplicaStore* replicas() { return replica_.get(); }
  const ReplicaStore* replicas() const { return replica_.get(); }

  /// Payload compression policy (ckpt/codec.hpp): puts code payloads on
  /// their way into either tier, gets decode transparently, so callers
  /// above the store never see coded bytes. Configure before any put
  /// (Cluster does, from ClusterOptions/STARFISH_CKPT_COMPRESS).
  void set_compress_mode(CompressMode mode) { compress_ = mode; }
  CompressMode compress_mode() const { return compress_; }
  /// True when the mode produces cross-epoch chains (delta references):
  /// checkpoint gc must then keep everything back to the last full epoch,
  /// exactly like incremental checkpointing.
  bool compress_chained() const {
    return compress_ == CompressMode::kDelta || compress_ == CompressMode::kDeltaLz;
  }

  /// Writes an image, blocking the calling fiber for the local disk time
  /// (synchronous + dump setup for native images, buffered for portable).
  void put(sim::Host& host, const CkptKey& key, Image image);
  /// Backend-routing write: under the replica backend the image ships to
  /// `holders` over the network (replica.hpp) and never touches disk;
  /// under the disk backend `holders` is ignored and this is put().
  void put(sim::Host& host, const CkptKey& key, Image image,
           const std::vector<sim::HostId>& holders);

  /// Reads an image back: a surviving replica copy first (network cost),
  /// else the disk tier (read time charged to `host`'s disk).
  std::optional<Image> get(sim::Host& host, const CkptKey& key);

  /// Zero-cost existence/metadata checks (directory lookups are not what the
  /// paper measures).
  bool contains(const CkptKey& key) const {
    if (replica_ && replica_->contains(key)) return true;
    std::lock_guard<std::mutex> lock(mu_);
    return images_.contains(key);
  }
  std::optional<uint64_t> file_bytes(const CkptKey& key) const;

  /// Small side-band metadata per checkpoint (dependency-tracker blobs for
  /// the uncoordinated protocol). Zero-cost access. Under the replica
  /// backend the blob rides with the replicated entry and shares its fate.
  void put_meta(const CkptKey& key, util::Bytes meta);
  std::optional<util::Bytes> checkpoint_meta(const CkptKey& key) const;

  /// Marks `epoch` as the committed recovery line for `app` (coordinated
  /// protocols; must be monotonically nondecreasing).
  void commit(const std::string& app, uint64_t epoch);
  std::optional<uint64_t> latest_committed(const std::string& app) const;

  /// The newest committed epoch every rank can actually restore: under the
  /// disk backend that is latest_committed (disk images survive anything);
  /// under the replica backend an epoch counts only if each rank's chain
  /// has >= 1 surviving replica copy per image or a complete disk chain.
  /// nullopt: no epoch is recoverable — restart from scratch.
  std::optional<uint64_t> latest_recoverable(const std::string& app, uint32_t nprocs) const;

  /// Instrumentation: protocol initiators note when a distributed
  /// checkpoint begins; commit() records when it ends. Benches report
  /// end-to-end checkpoint times (Figures 3/4) from these.
  void note_begin(const std::string& app, uint64_t epoch);
  /// Duration begin -> commit for an epoch, if both were recorded (and the
  /// epoch has not been folded into epoch_stats() by gc).
  std::optional<sim::Duration> epoch_duration(const std::string& app, uint64_t epoch) const;
  /// Drops begin timestamps of epochs that never committed — a view change
  /// aborted the checkpoint wave mid-flight. Without this a re-initiated
  /// epoch keeps the stale (earlier) begin and misreports epoch_duration.
  void note_abort(const std::string& app);

  /// Aggregate of every completed begin->commit pair, including epochs
  /// whose per-epoch timestamps gc() already folded away.
  struct EpochStats {
    uint64_t epochs = 0;
    sim::Duration total = 0;
  };
  EpochStats epoch_stats(const std::string& app) const;

  /// Highest stored epoch/index for (app, rank), if any (either tier).
  std::optional<uint64_t> latest_stored(const std::string& app, uint32_t rank) const;

  /// Drops every image of `app` with epoch < keep_epoch in both tiers.
  /// Returns the number of images removed (checkpoint garbage collection).
  /// Completed epoch timings below the line are folded into epoch_stats()
  /// and their per-epoch entries erased — long chaos runs must not grow
  /// the instrumentation maps without bound.
  size_t gc(const std::string& app, uint64_t keep_epoch);

  size_t image_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return images_.size();
  }
  /// FNV-1a over every stored image and meta blob (keys, kinds, payload
  /// bytes) in key order. Zero-cost (no disk charge): determinism tests
  /// compare whole stores across runs without perturbing them.
  uint64_t content_hash() const;
  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }

  /// Fault injection for the recovery tests: flips one payload byte (or
  /// truncates the payload at `offset`) of the stored image in whichever
  /// tier holds it. Returns false when the key is stored nowhere. The
  /// damage is exactly what latest_recoverable / get must survive by
  /// falling back — production code never calls this.
  bool corrupt_payload(const CkptKey& key, size_t offset, bool truncate = false);

 private:
  /// True iff `key`'s restore chain (incremental bases and codec delta
  /// bases) is complete in the disk maps and every link's payload passes
  /// structural verification.
  bool disk_chain_complete_locked(const CkptKey& key) const;
  /// Codes `image`'s payload per compress_ (delta base = the raw payload
  /// of this rank's previous stored epoch) and tracks the raw payload for
  /// the next epoch's delta. No-op when the mode is kOff.
  void encode_for_store(const CkptKey& key, Image& image);
  /// The tier fetch of the old get(): returns the image as stored (payload
  /// possibly coded), charging the tier's read cost.
  std::optional<Image> fetch_stored(sim::Host& host, const CkptKey& key);
  /// Resolves `key`'s raw payload from the disk maps alone (follows codec
  /// chains, no cost) — content_hash uses this so the hash is invariant
  /// across compression modes.
  bool raw_payload_locked(const CkptKey& key, util::Bytes& out, int depth) const;

  /// The raw payload of the newest epoch put for one (app, rank) — the
  /// delta base for that rank's next epoch. Node-stable map: puts for the
  /// same rank are sequential (one writer fiber), so an entry is only ever
  /// rewritten by its own rank while other ranks insert siblings.
  struct LastPayload {
    uint64_t epoch = 0;
    util::Bytes raw;
  };

  sim::Engine& engine_;
  mutable std::mutex mu_;
  std::map<CkptKey, Image> images_;
  std::map<std::pair<std::string, uint32_t>, LastPayload> last_payloads_;
  std::map<CkptKey, util::Bytes> metas_;
  std::map<std::string, uint64_t> committed_;
  std::map<std::pair<std::string, uint64_t>, sim::Time> begin_times_;
  std::map<std::pair<std::string, uint64_t>, sim::Time> commit_times_;
  std::map<std::string, EpochStats> duration_agg_;
  uint64_t bytes_written_ = 0;
  CkptBackend backend_ = CkptBackend::kDisk;
  CompressMode compress_ = CompressMode::kOff;
  std::unique_ptr<ReplicaStore> replica_;
};

}  // namespace starfish::ckpt
