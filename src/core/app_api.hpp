// The application-facing API: what user code (native C++ apps) programs
// against, and the registry mapping job "binaries" to runnable code.
//
// Starfish extends standard MPI with upcalls and downcalls (paper section 1):
// every upcall has a default (ignore), so unmodified MPI-style programs run
// as-is; programs that use the extensions gain view notifications, user-
// initiated checkpointing, and restart awareness.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "util/buffer.hpp"
#include "vm/bytecode.hpp"

namespace starfish::core {

class ApplicationProcess;

/// Handed to native application functions. Valid only for the app's run.
class AppContext {
 public:
  explicit AppContext(ApplicationProcess& process) : process_(process) {}

  uint32_t rank() const;
  uint32_t size() const;
  /// COMM_WORLD. Standard MPI operations (send/recv/collectives) live here.
  mpi::Comm& world();
  sim::Engine& engine();
  const std::vector<std::string>& args() const;

  /// Emits one line of application output (collected by the daemon).
  void print(const std::string& text);
  /// Models `duration` of pure computation; periodically yields so the C/R
  /// and suspend gates can take effect.
  void compute(sim::Duration duration);
  /// Checkpoint/suspend gate: call between work units in long loops.
  void progress();

  // --- Starfish extension downcalls ---
  /// User-initiated checkpoint (returns once the local part is done for
  /// uncoordinated; once initiated for coordinated protocols).
  void request_checkpoint();
  /// MPI-2 dynamic process management: asks Starfish to add `extra`
  /// processes to this application. The grown world arrives asynchronously:
  /// size() grows and the view handler fires once the new ranks are wired.
  void spawn_ranks(uint32_t extra);

  // --- Starfish extension upcalls (defaults: ignored) ---
  /// Called when the live-rank set changes (FtPolicy::kNotifyViews).
  void set_view_handler(std::function<void(const std::vector<uint32_t>& live_ranks)> fn);
  /// State hooks used by native-level C/R: capture must return a blob the
  /// restore hook can resume from at a communication boundary.
  void set_state_capture(std::function<util::Bytes()> fn);
  void set_state_restore(std::function<void(const util::Bytes&)> fn);
  /// True when this run was restored from a checkpoint (the restore hook has
  /// already been invoked with the saved blob).
  bool restored() const;

 private:
  ApplicationProcess& process_;
};

using NativeAppFn = std::function<void(AppContext&)>;

/// Maps JobSpec::binary to runnable code: either a native C++ function or an
/// assembled VM program.
class AppRegistry {
 public:
  void register_native(const std::string& name, NativeAppFn fn) {
    native_[name] = std::move(fn);
  }
  /// Assembles and registers a VM program (asserts on assembly errors).
  void register_vm(const std::string& name, const std::string& asm_source);

  const NativeAppFn* native(const std::string& name) const {
    auto it = native_.find(name);
    return it == native_.end() ? nullptr : &it->second;
  }
  const vm::Program* program(const std::string& name) const {
    auto it = vm_.find(name);
    return it == vm_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, NativeAppFn> native_;
  std::map<std::string, vm::Program> vm_;
};

}  // namespace starfish::core
