// The object bus (paper section 2.2).
//
// Modules inside an application process — group handler, application module,
// checkpoint/restart module, MPI module — communicate by posting events that
// invoke the handlers of every listening module. The bus decouples the
// modules completely and allows one event to fan out to several listeners.
// Data messages deliberately do NOT travel on the bus: they use the fast
// path between the application module and the MPI module (mpi::Proc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "daemon/wire.hpp"

namespace starfish::core {

enum class EventKind : uint8_t {
  kConfigure = 0,       ///< world wiring arrived (payload: LinkMsg)
  kAppView,             ///< dynamicity upcall: live-rank set changed
  kCoord,               ///< opaque coordination payload (C/R protocol traffic)
  kSuspend,
  kResume,
  kCheckpointRequest,   ///< user downcall: take a checkpoint now
  kCheckpointDone,      ///< C/R module finished an epoch
  kTerminate,
};

struct Event {
  EventKind kind = EventKind::kCoord;
  daemon::LinkMsg link;   ///< original link message for link-derived events
  uint64_t value = 0;     ///< e.g. the epoch for kCheckpointDone
};

/// Synchronous pub/sub: post() invokes every listener of the event's kind in
/// subscription order, on the caller's fiber.
class ObjectBus {
 public:
  using Handler = std::function<void(const Event&)>;

  void subscribe(EventKind kind, Handler handler) {
    listeners_[kind].push_back(std::move(handler));
  }

  void post(const Event& event) {
    auto it = listeners_.find(event.kind);
    if (it == listeners_.end()) return;
    // Iterate over a copy: handlers may subscribe further listeners.
    auto handlers = it->second;
    for (auto& h : handlers) h(event);
    ++events_posted_;
  }

  uint64_t events_posted() const { return events_posted_; }

 private:
  std::map<EventKind, std::vector<Handler>> listeners_;
  uint64_t events_posted_ = 0;
};

}  // namespace starfish::core
