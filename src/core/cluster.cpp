#include "core/cluster.hpp"

#include <cstdlib>

namespace starfish::core {

namespace {
/// STARFISH_SHARDS=N overrides the default shard count for every cluster
/// whose options did not pick one explicitly. Shard count never changes the
/// simulation (see tests/shard_determinism_test.cpp), so CI tiers — notably
/// scripts/tsan_ctest.sh — use this to drive the whole cluster suite
/// through the parallel scheduler without editing each test.
unsigned shards_from_env(unsigned from_options) {
  if (from_options != 1) return from_options;
  const char* env = std::getenv("STARFISH_SHARDS");
  if (env == nullptr) return from_options;
  const long n = std::strtol(env, nullptr, 10);
  return n > 1 ? static_cast<unsigned>(n) : from_options;
}

/// STARFISH_CKPT_BACKEND=replica routes checkpoints through the in-memory
/// replication tier (ckpt/replica.hpp) for every cluster whose options did
/// not pin a backend explicitly; STARFISH_CKPT_REPLICAS=N adjusts the
/// replication factor the same way. CI uses these to drive the chaos suite
/// through the diskless recovery path without editing each test.
ckpt::CkptBackend backend_from_env(const std::optional<ckpt::CkptBackend>& from_options) {
  if (from_options) return *from_options;
  const char* env = std::getenv("STARFISH_CKPT_BACKEND");
  if (env != nullptr && std::string(env) == "replica") return ckpt::CkptBackend::kReplica;
  return ckpt::CkptBackend::kDisk;
}

uint32_t replication_from_env(const std::optional<ckpt::CkptBackend>& from_options,
                              uint32_t replication) {
  if (from_options) return replication;
  const char* env = std::getenv("STARFISH_CKPT_REPLICAS");
  if (env == nullptr) return replication;
  const long n = std::strtol(env, nullptr, 10);
  return n >= 1 ? static_cast<uint32_t>(n) : replication;
}

/// STARFISH_CKPT_COMPRESS=off|lz|delta|delta+lz codes checkpoint payloads
/// in the store for every cluster whose options did not pin a mode — same
/// contract as the backend lever above. The goldens pin kOff explicitly.
ckpt::CompressMode compress_from_env(const std::optional<ckpt::CompressMode>& from_options) {
  if (from_options) return *from_options;
  return ckpt::compress_mode_from_env();
}
}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), engine_(options_.seed), network_(engine_), store_(engine_) {
  // Before any host registers its node.
  engine_.set_shards(shards_from_env(options_.shards));
  store_.set_compress_mode(compress_from_env(options_.ckpt_compress));
  if (backend_from_env(options_.ckpt_backend) == ckpt::CkptBackend::kReplica) {
    ckpt::ReplicaOptions ropts;
    ropts.replication = replication_from_env(options_.ckpt_backend, options_.ckpt_replication);
    ropts.transport = options_.process.data_transport;
    store_.enable_replica_backend(network_, ropts);
    store_.set_backend(ckpt::CkptBackend::kReplica);
  }
  launcher_ = std::make_unique<Launcher>(network_, store_, registry_, options_.process);
  for (size_t i = 0; i < options_.nodes; ++i) {
    const sim::Machine& machine =
        options_.machines.empty() ? sim::default_machine()
                                  : options_.machines[i % options_.machines.size()];
    auto host = network_.add_host("node" + std::to_string(i), machine);
    daemons_.push_back(
        std::make_unique<daemon::Daemon>(network_, *host, store_, *launcher_, options_.daemon));
  }
  client_host_ = network_.add_host("client");
}

Cluster::~Cluster() = default;

void Cluster::boot() {
  if (booted_) return;
  booted_ = true;
  std::vector<net::NetAddr> founders;
  for (const auto& d : daemons_) {
    founders.push_back({d->host_id(), options_.daemon.group.control_port});
  }
  for (auto& d : daemons_) d->start_founding(founders);
  engine_.run_for(sim::milliseconds(5));
}

sim::HostId Cluster::add_node() {
  const sim::Machine& machine =
      options_.machines.empty()
          ? sim::default_machine()
          : options_.machines[daemons_.size() % options_.machines.size()];
  auto host = network_.add_host("node" + std::to_string(daemons_.size()), machine);
  daemons_.push_back(
      std::make_unique<daemon::Daemon>(network_, *host, store_, *launcher_, options_.daemon));
  std::vector<net::NetAddr> seeds;
  for (size_t i = 0; i + 1 < daemons_.size(); ++i) {
    seeds.push_back({daemons_[i]->host_id(), options_.daemon.group.control_port});
  }
  daemons_.back()->start_joining(seeds);
  return host->id();
}

void Cluster::submit(const daemon::JobSpec& job) {
  boot();
  daemons_[0]->submit(job);
}

bool Cluster::run_until_done(const std::string& app, sim::Duration timeout) {
  const sim::Time deadline = engine_.now() + timeout;
  while (engine_.now() < deadline) {
    engine_.run_for(sim::milliseconds(20));
    const auto p = phase(app);
    if (p == daemon::AppPhase::kCompleted) return true;
    if (p == daemon::AppPhase::kFailed || p == daemon::AppPhase::kDeleted) return false;
  }
  return false;
}

daemon::AppPhase Cluster::phase(const std::string& app) const {
  // Terminal phases win; otherwise the most advanced non-terminal phase any
  // live daemon reports.
  daemon::AppPhase best = daemon::AppPhase::kPlacing;
  for (const auto& d : daemons_) {
    if (!network_.host(d->host_id())->alive() || !d->knows_app(app)) continue;
    const auto p = d->app_phase(app);
    if (p == daemon::AppPhase::kCompleted || p == daemon::AppPhase::kFailed ||
        p == daemon::AppPhase::kDeleted) {
      return p;
    }
    if (static_cast<int>(p) > static_cast<int>(best)) best = p;
  }
  return best;
}

std::vector<std::string> Cluster::output(const std::string& app) const {
  std::vector<std::string> out;
  for (const auto& d : daemons_) {
    if (!network_.host(d->host_id())->alive()) continue;
    const auto& lines = d->app_output(app);
    out.insert(out.end(), lines.begin(), lines.end());
  }
  return out;
}

std::vector<std::string> Cluster::client_session(sim::HostId via, std::vector<std::string> lines) {
  boot();
  auto replies = std::make_shared<std::vector<std::string>>();
  bool done = false;
  client_host_->spawn("mgmt-client", [this, via, lines = std::move(lines), replies, &done] {
    auto conn = network_.connect(client_host_->id(), {via, options_.daemon.mgmt_port},
                                 net::TransportKind::kTcpIp);
    if (conn == nullptr) {
      replies->push_back("ERR connect failed");
      done = true;
      return;
    }
    auto greeting = conn->recv();
    if (greeting.ok()) {
      replies->push_back(std::string(reinterpret_cast<const char*>(greeting.value->data()),
                                     greeting.value->size()));
    }
    for (const auto& line : lines) {
      util::Bytes b(reinterpret_cast<const std::byte*>(line.data()),
                    reinterpret_cast<const std::byte*>(line.data() + line.size()));
      if (!conn->send(std::move(b))) break;
      auto r = conn->recv();
      if (!r.ok()) break;
      replies->push_back(std::string(reinterpret_cast<const char*>(r.value->data()),
                                     r.value->size()));
    }
    conn->close();
    done = true;
  });
  while (!done && !engine_.idle()) engine_.run_for(sim::milliseconds(10));
  return *replies;
}

}  // namespace starfish::core
