// Cluster: the whole Starfish deployment in one object.
//
// Builds the simulated workstations, boots one daemon per node (founding the
// Starfish group), owns the shared checkpoint store and the application
// registry, and offers the operations a user of the real system would have:
// submit jobs, open management sessions, pull results — plus the fault
// injection levers the evaluation needs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "core/process.hpp"
#include "daemon/daemon.hpp"

namespace starfish::core {

struct ClusterOptions {
  size_t nodes = 4;
  /// Machine type per node (cycled if shorter than `nodes`); defaults to the
  /// paper's homogeneous PII/Linux cluster.
  std::vector<sim::Machine> machines;
  ProcessOptions process;
  daemon::DaemonConfig daemon;
  /// Seed of the engine's RNG (fault-injection draws; 0 is a valid seed).
  /// Two clusters built with the same options and seed replay identically.
  uint64_t seed = 0;
  /// Engine worker shards (sim::Engine::set_shards): 1 = sequential. Any
  /// value yields the bit-identical simulation; >1 runs hosts on that many
  /// threads under conservative time windows (DESIGN.md section 13).
  unsigned shards = 1;
  /// Checkpoint storage backend (DESIGN.md section 14). Unset: disk, unless
  /// STARFISH_CKPT_BACKEND=replica is exported — the CI lever that drives
  /// whole suites through the diskless path. Set explicitly to pin a
  /// backend regardless of environment.
  std::optional<ckpt::CkptBackend> ckpt_backend;
  /// Copies per checkpoint image under the replica backend (overridable by
  /// STARFISH_CKPT_REPLICAS when ckpt_backend was not set explicitly).
  uint32_t ckpt_replication = 2;
  /// Checkpoint payload compression (DESIGN.md section 17). Unset: off,
  /// unless STARFISH_CKPT_COMPRESS=lz|delta|delta+lz is exported — the CI
  /// lever that drives whole suites through the coded epoch pipeline. Set
  /// explicitly to pin a mode regardless of environment.
  std::optional<ckpt::CompressMode> ckpt_compress;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return network_; }
  ckpt::CheckpointStore& store() { return store_; }
  AppRegistry& registry() { return registry_; }
  daemon::Daemon& daemon_at(size_t i) { return *daemons_[i]; }
  /// The daemon running on a given host (host ids and daemon indices
  /// diverge once the client workstation and late-added nodes exist).
  daemon::Daemon& daemon_for_host(sim::HostId host) {
    for (auto& d : daemons_) {
      if (d->host_id() == host) return *d;
    }
    return *daemons_.front();
  }
  size_t node_count() const { return daemons_.size(); }

  /// Founds the daemon group and lets the initial view settle.
  void boot();

  /// Adds a fresh workstation at runtime; its daemon joins the group.
  sim::HostId add_node();

  void submit(const daemon::JobSpec& job);

  /// Advances virtual time until the app completes/fails or `timeout`
  /// elapses. Returns true if it completed cleanly.
  bool run_until_done(const std::string& app, sim::Duration timeout = sim::seconds(120.0));
  void run_for(sim::Duration d) { engine_.run_for(d); }

  /// Most advanced phase reported by any live daemon.
  daemon::AppPhase phase(const std::string& app) const;
  /// Application output lines merged across all live daemons.
  std::vector<std::string> output(const std::string& app) const;

  /// Fail-stop node crash (kills the daemon and every hosted process).
  void crash_node(sim::HostId id) { network_.crash_host(id); }

  // --- message-level fault injection (chaos harness) ---
  net::FaultInjector& faults() { return network_.faults(); }
  /// Cuts every link between group `a` and group `b` (both directions when
  /// `symmetric`); heal() reconnects. Scoped sugar over faults().
  void partition(const std::vector<sim::HostId>& a, const std::vector<sim::HostId>& b,
                 bool symmetric = true) {
    network_.faults().partition(a, b, symmetric);
  }
  void heal() { network_.faults().heal(); }

  /// Runs an ASCII management-protocol session against node `via` from the
  /// dedicated client workstation; returns one response per command line
  /// (plus the greeting as element 0).
  std::vector<std::string> client_session(sim::HostId via, std::vector<std::string> lines);

 private:
  ClusterOptions options_;
  sim::Engine engine_;
  net::Network network_;
  ckpt::CheckpointStore store_;
  AppRegistry registry_;
  std::unique_ptr<Launcher> launcher_;
  std::vector<std::unique_ptr<daemon::Daemon>> daemons_;
  sim::HostPtr client_host_;
  bool booted_ = false;
};

}  // namespace starfish::core
