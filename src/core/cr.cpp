#include "core/cr.hpp"

#include "core/process.hpp"
#include "util/log.hpp"

namespace starfish::core {

namespace {
constexpr const char* kLog = "cr";

/// Stop-and-sync coordination cost per *remote* member, charged serially at
/// the initiator while it collects acknowledgements: stopping a remote
/// process, draining its channels and collecting its ack took the paper's
/// prototype noticeable wall-clock per node (1999 Linux signal delivery +
/// loaded control plane). Calibrated against Figure 4's node-count deltas:
/// 1 -> 2 nodes adds ~13 ms and 2 -> 4 adds ~32 ms (we charge 15 ms per
/// remote member: +15 ms at n=2, +45 ms at n=4, matching Figure 4 within a
/// few ms and Figure 3 within ~10 ms).
constexpr sim::Duration kPerMemberSyncCost = sim::milliseconds(15);

/// Cost of the fork + copy-on-write setup in forked checkpointing
/// (page-table duplication on a late-90s workstation).
constexpr sim::Duration kForkCost = sim::milliseconds(3);

// The full-epoch grid (every kFullEvery-th epoch is self-contained) lives
// in ckpt/incremental.hpp since PR 10: the store's payload delta codec
// anchors on the same grid, so both layers must agree on it.
using ckpt::is_full_epoch;
using ckpt::last_full_at_or_before;

util::Bytes encode_epoch(uint64_t epoch) {
  util::Bytes b;
  util::Writer w(b);
  w.u64(epoch);
  return b;
}

uint64_t decode_epoch(util::BytesView b) {
  util::Reader r(b);
  return r.u64().value_or(0);
}

/// Container layout of a checkpoint image payload (fixed little-endian
/// framing; the inner app_state carries its own representation).
struct Container {
  util::Bytes tracker;
  util::Bytes app_state;
  util::Bytes channel_state;
  std::vector<mpi::Envelope> recorded;

  util::Bytes encode() const {
    util::Bytes out;
    util::Writer w(out);
    w.bytes(util::as_bytes_view(tracker));
    w.bytes(util::as_bytes_view(app_state));
    w.bytes(util::as_bytes_view(channel_state));
    w.u32(static_cast<uint32_t>(recorded.size()));
    for (const auto& e : recorded) {
      w.u32(e.comm);
      w.u32(e.src);
      w.i32(e.tag);
      w.u32(e.send_interval);
      w.bytes(util::as_bytes_view(e.data));
    }
    return out;
  }

  static util::Result<Container> decode(const util::Bytes& bytes) {
    util::Reader r(util::as_bytes_view(bytes));
    Container c;
    auto tracker = r.bytes();
    if (!tracker) return tracker.error();
    c.tracker = std::move(tracker).take();
    auto app_state = r.bytes();
    if (!app_state) return app_state.error();
    c.app_state = std::move(app_state).take();
    auto channel = r.bytes();
    if (!channel) return channel.error();
    c.channel_state = std::move(channel).take();
    const uint32_t n = r.u32().value_or(0);
    for (uint32_t i = 0; i < n; ++i) {
      mpi::Envelope e;
      e.comm = r.u32().value_or(0);
      e.src = r.u32().value_or(0);
      e.tag = r.i32().value_or(0);
      e.send_interval = r.u32().value_or(0);
      auto data = r.bytes();
      if (!data) return data.error();
      e.data = std::move(data).take();
      c.recorded.push_back(std::move(e));
    }
    return c;
  }
};

}  // namespace

CrModule::CrModule(ApplicationProcess& process)
    : process_(process), tracker_(process.rank()) {}

void CrModule::start() {
  const auto protocol = process_.job().protocol;
  const sim::Duration interval = process_.job().ckpt_interval;
  if (protocol == daemon::CrProtocol::kNone || interval <= 0) return;
  if (protocol == daemon::CrProtocol::kUncoordinated) {
    // Independent timers, staggered so nodes don't hammer their disks in
    // lockstep (and to make interesting dependency patterns likely).
    const sim::Duration offset =
        interval * static_cast<sim::Duration>(process_.rank()) /
        static_cast<sim::Duration>(std::max(1u, process_.nprocs()));
    process_.spawn_owned("cr-timer", [this, interval, offset] {
      process_.engine().sleep(offset);
      while (!process_.done()) {
        process_.engine().sleep(interval);
        if (!process_.done()) take_uncoordinated_checkpoint();
      }
    });
    return;
  }
  // Coordinated protocols: rank 0 initiates on the period.
  if (process_.rank() != 0) return;
  process_.spawn_owned("cr-timer", [this, interval] {
    while (!process_.done()) {
      process_.engine().sleep(interval);
      if (!process_.done()) request_checkpoint();
    }
  });
}

void CrModule::request_checkpoint() {
  switch (process_.job().protocol) {
    case daemon::CrProtocol::kNone:
      return;
    case daemon::CrProtocol::kUncoordinated:
      take_uncoordinated_checkpoint();
      return;
    case daemon::CrProtocol::kStopAndSync: {
      if (active_epoch_ != 0) return;  // one at a time
      const uint64_t epoch = last_committed_ + 1;
      initiating_ = true;
      acks_.clear();
      process_.store().note_begin(process_.job().name, epoch);
      send_coord(CoordKind::kPrepare, epoch);
      // We begin like everyone else when our own PREPARE is relayed back.
      return;
    }
    case daemon::CrProtocol::kChandyLamport: {
      if (active_epoch_ != 0) return;
      process_.store().note_begin(process_.job().name, last_committed_ + 1);
      begin_chandy_lamport(last_committed_ + 1, /*initiator=*/true);
      return;
    }
  }
}

// ----------------------------------------------------------- messaging ----

void CrModule::send_coord(CoordKind kind, uint64_t epoch) {
  util::Bytes payload;
  util::Writer w(payload);
  w.u8(static_cast<uint8_t>(kind));
  w.u64(epoch);
  w.u32(process_.rank());
  daemon::LinkMsg msg;
  msg.kind = daemon::LinkKind::kCoordSend;
  msg.payload = std::move(payload);
  process_.send_uplink(std::move(msg));
}

void CrModule::on_coord(const util::Bytes& payload) {
  util::Reader r(util::as_bytes_view(payload));
  const auto kind = static_cast<CoordKind>(r.u8().value_or(0));
  const uint64_t epoch = r.u64().value_or(0);
  const uint32_t from = r.u32().value_or(0);

  switch (kind) {
    case CoordKind::kPrepare:
      if (epoch <= last_committed_ || active_epoch_ == epoch) return;
      if (process_.job().protocol == daemon::CrProtocol::kStopAndSync) {
        begin_stop_and_sync(epoch);
      }
      return;
    case CoordKind::kAck:
      handle_ack(epoch, from);
      return;
    case CoordKind::kCommit:
      if (epoch <= last_committed_) return;
      last_committed_ = epoch;
      active_epoch_ = 0;
      if (frozen_by_us_) {
        process_.proc().thaw();
        blocked_time_ += process_.engine().now() - freeze_started_;
        frozen_by_us_ = false;
      }
      process_.bus().post(Event{EventKind::kCheckpointDone, {}, epoch});
      return;
  }
}

void CrModule::handle_ack(uint64_t epoch, uint32_t from) {
  if (!initiating_ || epoch != active_epoch_) return;
  if (!acks_.contains(from) && from != process_.rank() &&
      process_.job().protocol == daemon::CrProtocol::kStopAndSync) {
    process_.engine().advance(kPerMemberSyncCost);
    if (!initiating_ || epoch != active_epoch_) return;  // re-check after blocking
  }
  acks_.insert(from);
  if (acks_.size() < process_.nprocs()) return;
  // Every rank's image is on stable storage: commit the recovery line and
  // garbage-collect older epochs. Incremental chains keep everything back
  // to the most recent full image.
  process_.store().commit(process_.job().name, epoch);
  // Chained encodings (incremental app-state deltas, payload codec deltas)
  // need their base images back to the last full epoch to stay restorable.
  const bool chained =
      process_.job().incremental_ckpt || process_.store().compress_chained();
  const uint64_t keep = chained ? last_full_at_or_before(epoch) : epoch;
  process_.store().gc(process_.job().name, keep);
  initiating_ = false;
  send_coord(CoordKind::kCommit, epoch);
}

// --------------------------------------------------------- stop & sync ----

void CrModule::begin_stop_and_sync(uint64_t epoch) {
  active_epoch_ = epoch;
  sync_captured_ = false;
  freeze_started_ = process_.engine().now();
  process_.proc().freeze();
  frozen_by_us_ = true;
  process_.proc().send_marker(mpi::FrameKind::kFlushMarker, mpi::kWorldCommId,
                              encode_epoch(epoch));
  maybe_capture_stop_and_sync();
}

void CrModule::on_control_frame(const mpi::Frame& frame) {
  if (frame.kind == mpi::FrameKind::kFlushMarker) {
    const uint64_t epoch = decode_epoch(frame.payload);
    markers_seen_[epoch].insert(frame.src_rank);
    if (epoch == active_epoch_) maybe_capture_stop_and_sync();
    return;
  }
  if (frame.kind == mpi::FrameKind::kClMarker) {
    const uint64_t epoch = decode_epoch(frame.payload);
    if (process_.job().protocol != daemon::CrProtocol::kChandyLamport) return;
    if (!cl_active_ && epoch > last_committed_) {
      begin_chandy_lamport(epoch, /*initiator=*/false);
    }
    if (epoch != active_epoch_) return;
    cl_markers_from_.insert(frame.src_rank);
    if (cl_markers_from_.size() >= process_.nprocs() - 1) finish_chandy_lamport();
    return;
  }
}

void CrModule::maybe_capture_stop_and_sync() {
  if (!frozen_by_us_ || sync_captured_ || active_epoch_ == 0) return;
  const auto& seen = markers_seen_[active_epoch_];
  if (seen.size() < process_.nprocs() - 1) return;
  // Channels are drained (every peer's data preceded its marker, FIFO).
  sync_captured_ = true;
  markers_seen_.erase(active_epoch_);
  process_.proc().wait_rendezvous_drained();

  if (process_.job().forked_ckpt) {
    // Forked (copy-on-write) checkpointing [33]: snapshot in memory, resume
    // the application immediately, write to disk in the background. The
    // blocking time shrinks from disk-write-dominated to fork-dominated.
    util::Bytes app_state = process_.capture_app_state();
    util::Bytes channel_state = process_.proc().capture_channel_state();
    process_.engine().advance(kForkCost);
    process_.proc().thaw();
    blocked_time_ += process_.engine().now() - freeze_started_;
    frozen_by_us_ = false;
    const uint64_t epoch = active_epoch_;
    process_.spawn_owned("ckpt-writer",
                         [this, epoch, app_state = std::move(app_state),
                          channel_state = std::move(channel_state)]() mutable {
                           store_image(epoch, std::move(app_state), std::move(channel_state),
                                       {});
                           send_coord(CoordKind::kAck, epoch);
                         });
    return;
  }

  store_image(active_epoch_, process_.capture_app_state(),
              process_.proc().capture_channel_state(), {});
  send_coord(CoordKind::kAck, active_epoch_);
}

// ------------------------------------------------------ chandy-lamport ----

void CrModule::begin_chandy_lamport(uint64_t epoch, bool initiator) {
  active_epoch_ = epoch;
  initiating_ = initiator;
  if (initiator) acks_.clear();
  cl_active_ = true;
  cl_markers_from_.clear();
  cl_recorded_.clear();
  // Local snapshot, taken immediately — the application is NOT stopped.
  process_.proc().drain_for_snapshot();
  cl_app_state_ = process_.capture_app_state();
  cl_channel_state_ = process_.proc().capture_channel_state();
  process_.proc().send_marker(mpi::FrameKind::kClMarker, mpi::kWorldCommId,
                              encode_epoch(epoch));
  if (process_.nprocs() == 1) finish_chandy_lamport();
}

void CrModule::on_recv_tap(const mpi::Envelope& env) {
  if (!cl_active_ || env.is_rts) return;
  if (cl_markers_from_.contains(env.src)) return;  // channel already cut
  cl_recorded_.push_back(env);
}

void CrModule::finish_chandy_lamport() {
  cl_active_ = false;
  store_image(active_epoch_, cl_app_state_, cl_channel_state_, cl_recorded_);
  send_coord(CoordKind::kAck, active_epoch_);
  cl_recorded_.clear();
  cl_app_state_.clear();
  cl_channel_state_.clear();
}

// ------------------------------------------------------- uncoordinated ----

void CrModule::take_uncoordinated_checkpoint() {
  const sim::Time start = process_.engine().now();
  process_.proc().freeze();
  process_.proc().wait_rendezvous_drained();
  const auto [index, deps] = tracker_.cut_checkpoint();
  (void)deps;
  // Deliberately no channel capture: an unconsumed inbox message is neither
  // in the dependency set (on_recv fires at consumption) nor in the sender's
  // surviving send ledger once the line rolls the sender back — restoring a
  // stored copy AND replaying the rolled-back send would duplicate it. The
  // recovery line instead treats everything unconsumed at the cut as
  // in-flight: the lost-message rule rolls the sender back and the
  // re-execution regenerates it exactly once.
  store_image(index, process_.capture_app_state(), {}, {});
  process_.store().put_meta(
      ckpt::CkptKey{process_.job().name, process_.rank(), index}, tracker_.encode());
  process_.proc().thaw();
  blocked_time_ += process_.engine().now() - start;
}

// -------------------------------------------------------------- images ----

void CrModule::store_image(uint64_t epoch, util::Bytes app_state, util::Bytes channel_state,
                           const std::vector<mpi::Envelope>& recorded) {
  ckpt::Image img;
  const bool portable =
      process_.job().level == daemon::CkptLevel::kVm && process_.is_vm_app();

  Container c;
  c.tracker = tracker_.encode();
  c.channel_state = std::move(channel_state);
  c.recorded = recorded;
  const auto state_pages =
      (app_state.size() + ckpt::kPageBytes - 1) / ckpt::kPageBytes;
  if (process_.job().incremental_ckpt && have_prev_ && !is_full_epoch(epoch)) {
    // Warm cache: one fingerprint pass over app_state, prev_app_state_ is
    // not read; the pass leaves the cache describing app_state.
    ckpt::EncodeStats enc;
    c.app_state =
        ckpt::incremental_encode(prev_app_state_, app_state, nullptr, &page_cache_, &enc);
    img.incremental = true;
    img.base_epoch = prev_epoch_;
    if (obs::Hub* hub = process_.engine().obs()) {
      hub->metrics.counter("ckpt.pages_scanned").add(enc.pages_scanned);
      hub->metrics.counter("ckpt.pages_hashed").add(enc.pages_hashed);
      hub->metrics.counter("ckpt.pages_dirty").add(enc.pages_dirty);
      hub->metrics.counter("ckpt.pages_written").add(enc.pages_dirty);
    }
  } else {
    c.app_state = app_state;
    // Full epoch: no encode pass ran, so warm the cache here — otherwise the
    // next delta epoch would fall back to the memcmp path.
    if (process_.job().incremental_ckpt) page_cache_.rebuild(app_state);
    if (obs::Hub* hub = process_.engine().obs()) {
      if (process_.job().incremental_ckpt) {
        hub->metrics.counter("ckpt.pages_hashed").add(state_pages);
      }
      hub->metrics.counter("ckpt.pages_written").add(state_pages);
    }
  }
  if (process_.job().incremental_ckpt) {
    prev_app_state_ = std::move(app_state);
    prev_epoch_ = epoch;
    have_prev_ = true;
  }

  img.kind = portable ? ckpt::ImageKind::kPortable : ckpt::ImageKind::kNative;
  img.repr_code = process_.host().machine().repr_code();
  img.payload = c.encode();
  img.file_bytes = (img.incremental
                        ? ckpt::kIncrementalBaseBytes
                        : (portable ? ckpt::kPortableBaseBytes : ckpt::kNativeBaseBytes)) +
                   img.payload.size();

  const ckpt::CkptKey key{process_.job().name, process_.rank(), epoch};
  if (process_.store().backend() == ckpt::CkptBackend::kReplica &&
      process_.store().replicas() != nullptr) {
    // Diskless path: place copies on the peers that follow this rank's
    // host in the placement ring. Computed from this process's own world
    // view, so every shard interleaving derives the same holder set.
    std::vector<sim::HostId> hosts = process_.rank_hosts();
    if (hosts.empty()) hosts = std::vector<sim::HostId>{process_.host().id()};
    const auto holders = ckpt::replica_holders(
        hosts, process_.rank(), process_.store().replicas()->options().replication);
    process_.store().put(process_.host(), key, std::move(img), holders);
  } else {
    process_.store().put(process_.host(), key, std::move(img));
  }
  ++checkpoints_taken_;
  if (obs::Hub* hub = process_.engine().obs()) {
    hub->metrics.counter("ckpt.checkpoints_taken").add(1);
  }
  STARFISH_LOG(kDebug, kLog) << process_.job().name << " rank " << process_.rank()
                             << " stored checkpoint " << epoch;
}

// ------------------------------------------------------------- restore ----

util::Result<RestoredState> CrModule::restore(uint64_t epoch) {
  auto img = process_.store().get(process_.host(),
                                  ckpt::CkptKey{process_.job().name, process_.rank(), epoch});
  if (!img) {
    return util::Error::make("missing", "no checkpoint at epoch " + std::to_string(epoch));
  }
  if (img->kind == ckpt::ImageKind::kNative &&
      img->repr_code != process_.host().machine().repr_code()) {
    return util::Error::make(
        "repr-mismatch",
        "native checkpoint cannot restore on a different machine representation");
  }
  auto container = Container::decode(img->payload);
  if (!container.ok()) return container.error();
  Container c = std::move(container).take();

  if (img->incremental) {
    // Resolve the delta chain: read ancestors back to the last full image
    // (each read is a real disk read), then apply deltas oldest-first.
    std::vector<util::Bytes> deltas = {std::move(c.app_state)};
    uint64_t at = img->base_epoch;
    util::Bytes base;
    for (;;) {
      auto ancestor = process_.store().get(
          process_.host(), ckpt::CkptKey{process_.job().name, process_.rank(), at});
      if (!ancestor) {
        return util::Error::make("missing", "incremental chain broken at epoch " +
                                                std::to_string(at));
      }
      auto anc_container = Container::decode(ancestor->payload);
      if (!anc_container.ok()) return anc_container.error();
      if (!ancestor->incremental) {
        base = std::move(anc_container.value().app_state);
        break;
      }
      deltas.push_back(std::move(anc_container.value().app_state));
      at = ancestor->base_epoch;
    }
    for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
      auto applied = ckpt::incremental_apply(base, *it);
      if (!applied.ok()) return applied.error();
      base = std::move(applied).take();
    }
    c.app_state = std::move(base);
  }
  // Seed the incremental chain so post-restore epochs diff against the
  // restored state.
  if (process_.job().incremental_ckpt) {
    prev_app_state_ = c.app_state;
    page_cache_.rebuild(prev_app_state_);
    prev_epoch_ = epoch;
    have_prev_ = true;
  }

  auto tracker = ckpt::DependencyTracker::decode(c.tracker);
  if (!tracker.ok()) return tracker.error();
  tracker_ = std::move(tracker).take();
  process_.proc().set_dependency_tracker(&tracker_);
  process_.proc().restore_channel_state(c.channel_state, std::move(c.recorded));
  if (process_.job().protocol != daemon::CrProtocol::kUncoordinated) {
    last_committed_ = epoch;
  }

  RestoredState out;
  out.kind = img->kind;
  out.repr_code = img->repr_code;
  out.app_state = std::move(c.app_state);
  return out;
}

}  // namespace starfish::core
