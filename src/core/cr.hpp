// The checkpoint/restart module of an application process (paper fig. 1).
//
// Implements three distributed C/R protocols over the same hooks — the
// architectural point of the paper (section 3.2.2: coordinated and
// uncoordinated protocols run side by side in one framework):
//
//  * stop-and-sync (coordinated, blocking) — the protocol measured in
//    Figures 3 and 4. PREPARE flows through the daemons' lightweight group;
//    every process freezes its sends, exchanges flush markers on the data
//    channels, saves state + drained channel contents, acks; the initiator
//    commits the epoch and broadcasts RESUME.
//  * Chandy–Lamport (coordinated, non-blocking) — marker-triggered local
//    snapshots with per-channel recording of post-snapshot traffic; the
//    application is never frozen.
//  * uncoordinated (independent) — per-process timers, dependency metadata
//    piggybacked on every data frame; recovery lines are computed by the
//    daemons from stored metadata (ckpt/recovery.hpp).
//
// Coordination messages are opaque to the daemons that relay them, exactly
// as the paper specifies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/recovery.hpp"
#include "daemon/job.hpp"
#include "mpi/proc.hpp"

namespace starfish::core {

class ApplicationProcess;

/// What CrModule::restore yields: the saved application-state blob (the
/// caller decodes VM state / native state from it) plus its provenance.
struct RestoredState {
  ckpt::ImageKind kind = ckpt::ImageKind::kPortable;
  uint16_t repr_code = 0;
  util::Bytes app_state;
};

class CrModule {
 public:
  explicit CrModule(ApplicationProcess& process);

  /// Starts protocol timers (after the process is configured):
  /// coordinated protocols tick on rank 0; uncoordinated ticks everywhere,
  /// staggered by rank.
  void start();

  /// User/system downcall: initiate a checkpoint now.
  void request_checkpoint();

  // --- wiring (invoked by the owning process) ---
  void on_coord(const util::Bytes& payload);
  void on_control_frame(const mpi::Frame& frame);
  void on_recv_tap(const mpi::Envelope& env);

  /// Loads checkpoint `epoch`, restores the channel state and dependency
  /// tracker, re-injects recorded in-transit messages, and returns the
  /// application-state blob. Fails on representation mismatch for native
  /// images (the homogeneous restriction).
  util::Result<RestoredState> restore(uint64_t epoch);

  ckpt::DependencyTracker& tracker() { return tracker_; }

  // --- stats (ablation A) ---
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t last_committed() const { return last_committed_; }
  sim::Duration blocked_time() const { return blocked_time_; }

 private:
  enum class CoordKind : uint8_t { kPrepare = 1, kAck = 2, kCommit = 3 };

  void send_coord(CoordKind kind, uint64_t epoch);
  void begin_stop_and_sync(uint64_t epoch);
  void maybe_capture_stop_and_sync();
  void begin_chandy_lamport(uint64_t epoch, bool initiator);
  void finish_chandy_lamport();
  void take_uncoordinated_checkpoint();
  /// Serializes {tracker, app state, channel state, recorded messages} into
  /// one image and writes it to the store under `epoch`.
  void store_image(uint64_t epoch, util::Bytes app_state, util::Bytes channel_state,
                   const std::vector<mpi::Envelope>& recorded);
  void handle_ack(uint64_t epoch, uint32_t from);

  ApplicationProcess& process_;
  ckpt::DependencyTracker tracker_;

  uint64_t last_committed_ = 0;  ///< 0 = none
  uint64_t active_epoch_ = 0;    ///< 0 = idle

  // Stop-and-sync state.
  bool frozen_by_us_ = false;
  sim::Time freeze_started_ = 0;
  std::map<uint64_t, std::set<uint32_t>> markers_seen_;  ///< epoch -> peers
  bool sync_captured_ = false;

  // Initiator state (either protocol).
  bool initiating_ = false;
  std::set<uint32_t> acks_;

  // Chandy–Lamport state.
  bool cl_active_ = false;
  util::Bytes cl_app_state_;      ///< snapshot taken at marker/initiation
  util::Bytes cl_channel_state_;
  std::set<uint32_t> cl_markers_from_;
  std::vector<mpi::Envelope> cl_recorded_;

  // Incremental checkpointing state (previous epoch's resolved app state,
  // plus its per-page fingerprints so delta epochs never re-read it).
  util::Bytes prev_app_state_;
  ckpt::PageHashCache page_cache_;
  uint64_t prev_epoch_ = 0;
  bool have_prev_ = false;

  // Stats.
  uint64_t checkpoints_taken_ = 0;
  sim::Duration blocked_time_ = 0;
};

}  // namespace starfish::core
