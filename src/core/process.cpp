#include "core/process.hpp"

#include <cassert>

#include "ckpt/image.hpp"
#include "vm/verify.hpp"
#include "util/log.hpp"

namespace starfish::core {

namespace {
constexpr const char* kLog = "proc";
}

// ------------------------------------------------------------ registry ----

void AppRegistry::register_vm(const std::string& name, const std::string& asm_source) {
  auto prog = vm::assemble(asm_source);
  if (!prog.ok()) {
    STARFISH_LOG(kError, "registry") << "assembly of '" << name
                                     << "' failed: " << prog.error().to_string();
    assert(false && "VM program failed to assemble");
    return;
  }
  // Reject structurally broken programs at registration time rather than
  // trapping mid-job.
  auto ok = vm::validate(prog.value());
  if (!ok.ok()) {
    STARFISH_LOG(kError, "registry") << "validation of '" << name
                                     << "' failed: " << ok.error().to_string();
    assert(false && "VM program failed validation");
    return;
  }
  vm_[name] = std::move(prog).take();
}

// ---------------------------------------------------------- AppContext ----

uint32_t AppContext::rank() const { return process_.rank(); }
uint32_t AppContext::size() const { return process_.nprocs(); }
mpi::Comm& AppContext::world() { return process_.world(); }
sim::Engine& AppContext::engine() { return process_.engine(); }
const std::vector<std::string>& AppContext::args() const { return process_.app_args(); }

void AppContext::print(const std::string& text) {
  daemon::LinkMsg msg;
  msg.kind = daemon::LinkKind::kOutput;
  msg.text = text;
  process_.send_uplink(std::move(msg));
}

void AppContext::compute(sim::Duration duration) {
  // Split long computations so suspend/checkpoint gates stay responsive.
  constexpr sim::Duration kChunk = sim::milliseconds(10);
  while (duration > 0) {
    const sim::Duration step = duration < kChunk ? duration : kChunk;
    process_.engine().advance(step);
    duration -= step;
    process_.gate_check();
  }
}

void AppContext::progress() { process_.gate_check(); }
void AppContext::request_checkpoint() { process_.cr().request_checkpoint(); }
void AppContext::spawn_ranks(uint32_t extra) {
  daemon::LinkMsg msg;
  msg.kind = daemon::LinkKind::kSpawnReq;
  msg.spawn_extra = extra;
  process_.send_uplink(std::move(msg));
}
void AppContext::set_view_handler(std::function<void(const std::vector<uint32_t>&)> fn) {
  process_.set_view_handler(std::move(fn));
}
void AppContext::set_state_capture(std::function<util::Bytes()> fn) {
  process_.set_state_capture(std::move(fn));
}
void AppContext::set_state_restore(std::function<void(const util::Bytes&)> fn) {
  process_.set_state_restore(std::move(fn));
}
bool AppContext::restored() const { return process_.restored_from_checkpoint(); }

// -------------------------------------------------- ApplicationProcess ----

ApplicationProcess::ApplicationProcess(net::Network& net, sim::Host& host,
                                       ckpt::CheckpointStore& store, const AppRegistry& registry,
                                       const daemon::LaunchRequest& request,
                                       std::function<void(const daemon::LinkMsg&)> uplink,
                                       ProcessOptions options)
    : net_(net),
      host_(host),
      store_(store),
      registry_(registry),
      request_(request),
      uplink_(std::move(uplink)),
      options_(options),
      inbox_(net.engine()),
      state_cv_(net.engine()) {
  proc_ = std::make_unique<mpi::Proc>(net, host, options_.data_transport, options_.mpi,
                                      options_.polling);
  cr_ = std::make_unique<CrModule>(*this);
  if (const vm::Program* prog = registry_.program(request_.job.binary)) {
    interp_ = std::make_unique<vm::Interpreter>(*prog, host.machine());
    interp_->set_obs(net.engine().obs());  // sim.vm.* dispatch counters
  }

  // Wire the modules together over the bus and the MPI control hooks.
  proc_->set_control_handler([this](const mpi::Frame& f) { cr_->on_control_frame(f); });
  proc_->set_recv_tap([this](const mpi::Envelope& e) { cr_->on_recv_tap(e); });
  if (request_.job.protocol == daemon::CrProtocol::kUncoordinated) {
    proc_->set_dependency_tracker(&cr_->tracker());
  }
  bus_.subscribe(EventKind::kCoord,
                 [this](const Event& e) { cr_->on_coord(e.link.payload); });
  bus_.subscribe(EventKind::kAppView, [this](const Event& e) {
    live_ranks_ = e.link.live_ranks;
    if (view_handler_) view_handler_(live_ranks_);
  });

  spawn_owned("group-handler", [this] { group_handler_loop(); });
  spawn_owned("app", [this] { app_main(); });

  // Announce the data-path address so the daemons can wire the world.
  daemon::LinkMsg ready;
  ready.kind = daemon::LinkKind::kReady;
  ready.vni_addr = proc_->addr();
  send_uplink(std::move(ready));
}

ApplicationProcess::~ApplicationProcess() { terminate(); }

void ApplicationProcess::send_uplink(daemon::LinkMsg msg) {
  if (uplink_) uplink_(msg);
}

void ApplicationProcess::deliver(const daemon::LinkMsg& msg) { inbox_.send(msg); }

void ApplicationProcess::terminate() {
  if (!alive_) return;
  alive_ = false;
  inbox_.close();
  // Kill every module fiber BEFORE the process object can be destroyed —
  // a surviving fiber would run against a dangling `this`.
  for (auto& f : owned_fibers_) engine().kill(f);
  owned_fibers_.clear();
  proc_->shutdown();
}

void ApplicationProcess::set_state_restore(std::function<void(const util::Bytes&)> fn) {
  // Native apps register the hook from inside their body; if a restore blob
  // is already pending (we ARE a restarted process), apply it immediately.
  if (have_pending_restore_) {
    fn(pending_restore_blob_);
    restored_ = true;
    have_pending_restore_ = false;
  }
}

void ApplicationProcess::gate_check() {
  state_cv_.wait([this] { return !suspended_; });
}

// ------------------------------------------------------- group handler ----

void ApplicationProcess::group_handler_loop() {
  for (;;) {
    auto r = inbox_.recv();
    if (!r.ok()) return;
    handle_link(*r.value);
  }
}

void ApplicationProcess::handle_link(const daemon::LinkMsg& msg) {
  switch (msg.kind) {
    case daemon::LinkKind::kConfigure: {
      if (configured_ && msg.wiring_epoch <= config_epoch_) return;  // stale
      config_epoch_ = msg.wiring_epoch;
      proc_->configure_world(request_.rank, msg.world);
      live_ranks_.clear();
      for (uint32_t rk = 0; rk < msg.world.size(); ++rk) {
        if (msg.world[rk].host != sim::kInvalidHost) live_ranks_.push_back(rk);
      }
      if (!configured_) {
        world_.emplace(mpi::Comm::world(*proc_));
        configured_ = true;
        state_cv_.notify_all();
        return;
      }
      // Dynamic reconfiguration (MPI-2 spawn grew the world): refresh
      // COMM_WORLD in place and deliver a view upcall.
      world_->refresh_world();
      if (view_handler_) view_handler_(live_ranks_);
      return;
    }
    case daemon::LinkKind::kAppView: {
      Event e{EventKind::kAppView, msg, 0};
      bus_.post(e);
      return;
    }
    case daemon::LinkKind::kCoord: {
      Event e{EventKind::kCoord, msg, 0};
      bus_.post(e);
      return;
    }
    case daemon::LinkKind::kSuspend:
      suspended_ = true;
      proc_->freeze();
      return;
    case daemon::LinkKind::kResume:
      proc_->thaw();
      suspended_ = false;
      state_cv_.notify_all();
      return;
    case daemon::LinkKind::kTerminate:
      terminate();
      return;
    case daemon::LinkKind::kCheckpointNow:
      // System-initiated checkpoint (e.g. ahead of a migration). Rank 0
      // initiates for coordinated protocols; other ranks ignore it.
      if (rank() == 0 && configured_) cr_->request_checkpoint();
      return;
    default:
      return;
  }
}

// ----------------------------------------------------------- app module ----

util::Bytes ApplicationProcess::capture_app_state() {
  if (interp_) {
    return ckpt::portable_encode(host_.machine(), interp_->state()).payload;
  }
  return state_capture_ ? state_capture_() : util::Bytes{};
}

bool ApplicationProcess::apply_restore() {
  auto restored = cr_->restore(request_.restore_epoch);
  if (!restored.ok()) {
    fail_app("restore failed: " + restored.error().to_string());
    return false;
  }
  if (interp_) {
    ckpt::Image inner;
    inner.kind = restored.value().kind == ckpt::ImageKind::kNative
                     ? ckpt::ImageKind::kPortable  // same encoding; repr was verified
                     : restored.value().kind;
    inner.repr_code = restored.value().repr_code;
    inner.payload = restored.value().app_state;
    auto state = ckpt::portable_decode(inner, host_.machine());
    if (!state.ok()) {
      fail_app("VM state conversion failed: " + state.error().to_string());
      return false;
    }
    interp_->set_state(std::move(state).take());
    restored_ = true;
    STARFISH_LOG(kDebug, kLog) << request_.job.name << " rank " << rank()
                               << " restored VM state from epoch " << request_.restore_epoch;
    return true;
  }
  // Native app: stash the blob; the app body claims it via its restore hook.
  pending_restore_blob_ = restored.value().app_state;
  have_pending_restore_ = true;
  restored_ = true;
  return true;
}

void ApplicationProcess::fail_app(const std::string& reason) {
  if (done_) return;
  done_ = true;
  daemon::LinkMsg msg;
  msg.kind = daemon::LinkKind::kDone;
  msg.ok = false;
  msg.text = reason;
  send_uplink(std::move(msg));
}

void ApplicationProcess::app_main() {
  // Wait for the world wiring (the kConfigure message).
  state_cv_.wait([this] { return configured_; });

  if (request_.restore_epoch != daemon::kNoRestore) {
    if (!apply_restore()) return;
  }
  cr_->start();

  const vm::Program* program = registry_.program(request_.job.binary);
  const NativeAppFn* native = registry_.native(request_.job.binary);
  if (program != nullptr) {
    run_vm_app(*program);
  } else if (native != nullptr) {
    run_native_app(*native);
  } else {
    fail_app("unknown binary '" + request_.job.binary + "'");
    return;
  }
}

void ApplicationProcess::run_native_app(const NativeAppFn& fn) {
  AppContext ctx(*this);
  try {
    fn(ctx);
  } catch (const sim::FiberKilled&) {
    throw;
  } catch (const std::exception& e) {
    fail_app(std::string("exception: ") + e.what());
    return;
  }
  done_ = true;
  daemon::LinkMsg msg;
  msg.kind = daemon::LinkKind::kDone;
  msg.ok = true;
  send_uplink(std::move(msg));
}

void ApplicationProcess::run_vm_app(const vm::Program&) {
  // A restored image can hold a VM that never began executing: the wiring
  // message and the checkpoint freeze can land in the same instant, so the
  // epoch captures the interpreter before start() ran. Resuming such an
  // image means starting from the entry point — running it as-is would
  // report an instant (bogus) completion.
  const bool never_started =
      interp_->state().frames.empty() && interp_->state().steps_executed == 0;
  if (!restored_ || never_started) interp_->start("main");
  for (;;) {
    gate_check();
    const uint64_t before = interp_->state().steps_executed;
    auto r = interp_->run(options_.vm_slice);
    const uint64_t executed = interp_->state().steps_executed - before;
    if (executed > 0) {
      engine().advance(options_.vm_step_cost * static_cast<sim::Duration>(executed));
    }
    switch (r.status) {
      case vm::RunStatus::kHalted: {
        done_ = true;
        daemon::LinkMsg msg;
        msg.kind = daemon::LinkKind::kDone;
        msg.ok = true;
        send_uplink(std::move(msg));
        return;
      }
      case vm::RunStatus::kTrap:
        fail_app("vm trap: " + r.trap);
        return;
      case vm::RunStatus::kSyscall:
        service_syscall(*interp_, r.syscall);
        break;
      case vm::RunStatus::kRunning:
        break;
    }
  }
}

void ApplicationProcess::service_syscall(vm::Interpreter& interp, vm::Syscall syscall) {
  // Restartability discipline: for syscalls that may block (and so may be
  // captured mid-operation by a checkpoint), arguments are *peeked* and the
  // stack/pc only mutate at completion. A restored image whose pc points at
  // the syscall simply re-executes it against the replayed channel state.
  using vm::Syscall;
  using vm::Tag;
  using vm::Value;
  // Arity precheck: every argument a syscall consumes must actually be on
  // the operand stack. Peeking past the end yields unit — which for
  // recv_from would silently turn an underflow into an any-source receive
  // that can block forever — and popping past the end is a protocol
  // violation the interpreter reports as a trap. Fail loudly instead.
  const auto arity = [](Syscall s) -> size_t {
    switch (s) {
      case Syscall::kPrint:
      case Syscall::kRecvFrom:
      case Syscall::kSleepMs:
      case Syscall::kSpin:
      case Syscall::kAllreduceSum:
        return 1;
      case Syscall::kSendTo:
        return 2;
      default:
        return 0;
    }
  };
  if (interp.stack_depth() < arity(syscall)) {
    fail_app("syscall operand underflow");
    throw sim::FiberKilled{};
  }
  switch (syscall) {
    case Syscall::kPrint: {
      Value v = interp.pop_value();
      interp.complete_syscall();
      daemon::LinkMsg msg;
      msg.kind = daemon::LinkKind::kOutput;
      msg.text = v.to_string();
      send_uplink(std::move(msg));
      return;
    }
    case Syscall::kRank:
      interp.push_value(Value::integer(rank()));
      interp.complete_syscall();
      return;
    case Syscall::kWorldSize:
      interp.push_value(Value::integer(nprocs()));
      interp.complete_syscall();
      return;
    case Syscall::kSendTo: {
      // Stack: ... dest value  (value on top).
      Value v = interp.peek_value(0);
      Value dest = interp.peek_value(1);
      if (dest.tag != Tag::kInt || dest.i < 0 || dest.i >= static_cast<int64_t>(nprocs())) {
        fail_app("send_to: bad destination rank");
        throw sim::FiberKilled{};  // unwind the app fiber cleanly
      }
      util::Bytes data;
      util::Writer w(data);
      w.u8(static_cast<uint8_t>(v.tag));
      w.i64(v.i);
      w.f64(v.f);
      world().send(static_cast<int>(dest.i), 0, std::move(data));  // may block
      (void)interp.pop_value();
      (void)interp.pop_value();
      interp.complete_syscall();
      return;
    }
    case Syscall::kRecvFrom: {
      Value src = interp.peek_value(0);
      const int from = (src.tag == Tag::kInt && src.i >= 0) ? static_cast<int>(src.i)
                                                            : mpi::kAnySource;
      util::Bytes data = world().recv(from, 0);  // may block indefinitely
      util::Reader r(util::as_bytes_view(data));
      Value v;
      v.tag = static_cast<Tag>(r.u8().value_or(0));
      v.i = r.i64().value_or(0);
      v.f = r.f64().value_or(0.0);
      (void)interp.pop_value();
      interp.push_value(v);
      interp.complete_syscall();
      return;
    }
    case Syscall::kCheckpoint:
      // Complete first: the checkpoint must capture the post-downcall state,
      // otherwise a restore would re-trigger the same checkpoint forever.
      interp.push_value(Value::unit());
      interp.complete_syscall();
      cr_->request_checkpoint();
      return;
    case Syscall::kSleepMs: {
      Value n = interp.peek_value(0);
      if (n.tag == Tag::kInt && n.i > 0) engine().sleep(sim::milliseconds(n.i));
      (void)interp.pop_value();
      interp.complete_syscall();
      return;
    }
    case Syscall::kSpin: {
      Value n = interp.peek_value(0);
      if (n.tag == Tag::kInt && n.i > 0) {
        engine().advance(options_.vm_step_cost * n.i);
      }
      (void)interp.pop_value();
      interp.complete_syscall();
      return;
    }
    case Syscall::kBarrier:
      world().barrier();  // blocks; restartable (re-executes after restore)
      interp.complete_syscall();
      return;
    case Syscall::kAllreduceSum: {
      Value v = interp.peek_value(0);
      if (v.tag != Tag::kInt) {
        fail_app("allreduce_sum: non-int operand");
        throw sim::FiberKilled{};
      }
      auto sum = world().allreduce(std::vector<int64_t>{v.i}, mpi::ReduceOp::kSum);
      (void)interp.pop_value();
      interp.push_value(Value::integer(sum.empty() ? 0 : sum[0]));
      interp.complete_syscall();
      return;
    }
  }
}

}  // namespace starfish::core
