// The assembled application process (paper figure 1): group handler,
// application module (native C++ function or VM program), checkpoint/restart
// module, MPI module and VNI, glued by the object bus — with the fast data
// path (mpi::Proc over the VNI) bypassing the bus entirely.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "core/app_api.hpp"
#include "core/bus.hpp"
#include "core/cr.hpp"
#include "daemon/launcher.hpp"
#include "mpi/comm.hpp"
#include "mpi/proc.hpp"
#include "vm/interp.hpp"

namespace starfish::core {

struct ProcessOptions {
  net::TransportKind data_transport = net::TransportKind::kBipMyrinet;
  bool polling = true;
  mpi::ProcConfig mpi;
  /// Virtual CPU cost of one VM bytecode instruction (PII-300 bytecode).
  sim::Duration vm_step_cost = sim::nanoseconds(50);
  /// Instructions per scheduling slice.
  uint64_t vm_slice = 20'000;
};

class ApplicationProcess : public daemon::ProcessHandle {
 public:
  ApplicationProcess(net::Network& net, sim::Host& host, ckpt::CheckpointStore& store,
                     const AppRegistry& registry, const daemon::LaunchRequest& request,
                     std::function<void(const daemon::LinkMsg&)> uplink,
                     ProcessOptions options = {});
  ~ApplicationProcess() override;

  // --- daemon::ProcessHandle ---
  void deliver(const daemon::LinkMsg& msg) override;
  void terminate() override;
  bool alive() const override { return alive_; }

  // --- module access (AppContext / CrModule) ---
  const daemon::JobSpec& job() const { return request_.job; }
  uint32_t rank() const { return request_.rank; }
  /// Current world size — grows on MPI-2 dynamic spawn.
  uint32_t nprocs() const { return configured_ ? proc_->size() : request_.job.nprocs; }
  mpi::Proc& proc() { return *proc_; }
  mpi::Comm& world() { return *world_; }
  ckpt::CheckpointStore& store() { return store_; }
  /// Each world rank's current host, from this process's own configured
  /// wiring (empty before the first kConfigure). Deterministic input to
  /// the replica-placement function regardless of shard interleaving.
  std::vector<sim::HostId> rank_hosts() const {
    std::vector<sim::HostId> out;
    if (!configured_) return out;
    for (const net::NetAddr& peer : proc_->peers()) out.push_back(peer.host);
    return out;
  }
  sim::Host& host() { return host_; }
  sim::Engine& engine() { return net_.engine(); }
  ObjectBus& bus() { return bus_; }
  CrModule& cr() { return *cr_; }
  void send_uplink(daemon::LinkMsg msg);

  /// Serializes the application module's state (VM portable payload or the
  /// native capture hook's blob). Called by the C/R module at safe points.
  util::Bytes capture_app_state();

  /// True once the process finished (cleanly or not).
  bool done() const { return done_; }
  bool is_vm_app() const { return interp_ != nullptr; }
  bool restored_from_checkpoint() const { return restored_; }
  const std::vector<uint32_t>& live_ranks() const { return live_ranks_; }

  // AppContext support (native apps).
  void set_view_handler(std::function<void(const std::vector<uint32_t>&)> fn) {
    view_handler_ = std::move(fn);
  }
  void set_state_capture(std::function<util::Bytes()> fn) { state_capture_ = std::move(fn); }
  void set_state_restore(std::function<void(const util::Bytes&)> fn);
  const std::vector<std::string>& app_args() const { return request_.job.args; }
  void gate_check();  ///< parks while suspended
  void fail_app(const std::string& reason);

  /// Spawns a fiber owned by this process: terminate() kills it, so no
  /// module fiber can outlive (and dangle into) a dead process.
  sim::FiberPtr spawn_owned(std::string name, std::function<void()> body) {
    auto f = host_.spawn(std::move(name), std::move(body));
    owned_fibers_.push_back(f);
    return f;
  }

 private:
  void group_handler_loop();
  void handle_link(const daemon::LinkMsg& msg);
  void app_main();
  void run_vm_app(const vm::Program& program);
  void run_native_app(const NativeAppFn& fn);
  bool apply_restore();
  void service_syscall(vm::Interpreter& interp, vm::Syscall syscall);

  net::Network& net_;
  sim::Host& host_;
  ckpt::CheckpointStore& store_;
  const AppRegistry& registry_;
  daemon::LaunchRequest request_;
  std::function<void(const daemon::LinkMsg&)> uplink_;
  ProcessOptions options_;

  ObjectBus bus_;
  std::unique_ptr<mpi::Proc> proc_;
  std::optional<mpi::Comm> world_;
  std::unique_ptr<CrModule> cr_;
  std::unique_ptr<vm::Interpreter> interp_;  ///< VM apps only

  sim::Channel<daemon::LinkMsg> inbox_;
  std::vector<sim::FiberPtr> owned_fibers_;
  sim::CondVar state_cv_;

  bool configured_ = false;
  uint32_t config_epoch_ = 0;
  bool suspended_ = false;
  bool alive_ = true;
  bool done_ = false;
  bool restored_ = false;
  util::Bytes pending_restore_blob_;  ///< native apps: blob awaiting the hook
  bool have_pending_restore_ = false;
  std::vector<uint32_t> live_ranks_;
  std::function<void(const std::vector<uint32_t>&)> view_handler_;
  std::function<util::Bytes()> state_capture_;
};

/// The launcher the daemons use; owned by the Cluster.
class Launcher : public daemon::ProcessLauncher {
 public:
  Launcher(net::Network& net, ckpt::CheckpointStore& store, const AppRegistry& registry,
           ProcessOptions options = {})
      : net_(net), store_(store), registry_(registry), options_(options) {}

  std::unique_ptr<daemon::ProcessHandle> launch(
      sim::Host& host, const daemon::LaunchRequest& request,
      std::function<void(const daemon::LinkMsg&)> uplink) override {
    return std::make_unique<ApplicationProcess>(net_, host, store_, registry_, request,
                                                std::move(uplink), options_);
  }

  ProcessOptions& options() { return options_; }

 private:
  net::Network& net_;
  ckpt::CheckpointStore& store_;
  const AppRegistry& registry_;
  ProcessOptions options_;
};

}  // namespace starfish::core
