#include "daemon/daemon.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace starfish::daemon {

namespace {
constexpr const char* kLog = "daemon";
constexpr uint32_t kMaxRestarts = 3;
}  // namespace

const char* phase_name(AppPhase p) {
  switch (p) {
    case AppPhase::kPlacing: return "placing";
    case AppPhase::kRunning: return "running";
    case AppPhase::kSuspended: return "suspended";
    case AppPhase::kCompleted: return "completed";
    case AppPhase::kFailed: return "failed";
    case AppPhase::kDeleted: return "deleted";
  }
  return "?";
}

Daemon::Daemon(net::Network& net, sim::Host& host, ckpt::CheckpointStore& store,
               ProcessLauncher& launcher, DaemonConfig config)
    : net_(net), host_(host), store_(store), launcher_(launcher), config_(std::move(config)) {
  group_ = std::make_unique<gcs::GroupEndpoint>(net, host, config_.group, gcs::Callbacks{});
  gcs::Callbacks heavy;
  heavy.on_view = [this](const gcs::View& v) { on_heavy_view(v); };
  heavy.on_message = [this](gcs::MemberId origin, const util::Bytes& payload) {
    on_heavy_message(origin, payload);
  };
  heavy.get_state = [this] {
    // Replicated-state snapshot for daemons joining the cluster: the cluster
    // configuration plus every app record.
    util::Bytes out;
    util::Writer w(out);
    w.u32(static_cast<uint32_t>(cluster_config_.size()));
    for (const auto& [k, v] : cluster_config_) {
      w.str(k);
      w.str(v);
    }
    w.u32(static_cast<uint32_t>(disabled_nodes_.size()));
    for (auto h : disabled_nodes_) w.u32(h);
    w.u32(static_cast<uint32_t>(apps_.size()));
    for (const auto& [name, app] : apps_) {
      w.bytes(util::as_bytes_view(app.job.encode()));
      w.u8(static_cast<uint8_t>(app.phase));
      w.u32(app.wiring_epoch);
      w.u32(static_cast<uint32_t>(app.placement.size()));
      for (const auto& [rank, member] : app.placement) {
        w.u32(rank);
        w.u32(member.host);
        w.u32(member.incarnation);
      }
    }
    return out;
  };
  heavy.set_state = [this](const util::Bytes& blob) {
    util::Reader r(util::as_bytes_view(blob));
    cluster_config_.clear();
    const uint32_t n_cfg = r.u32().value_or(0);
    for (uint32_t i = 0; i < n_cfg; ++i) {
      auto k = r.str().value_or("");
      cluster_config_[k] = r.str().value_or("");
    }
    disabled_nodes_.clear();
    const uint32_t n_dis = r.u32().value_or(0);
    for (uint32_t i = 0; i < n_dis; ++i) disabled_nodes_.insert(r.u32().value_or(0));
    const uint32_t n_apps = r.u32().value_or(0);
    for (uint32_t i = 0; i < n_apps; ++i) {
      auto job_bytes = r.bytes().value_or({});
      util::Reader jr(util::as_bytes_view(job_bytes));
      auto job = JobSpec::decode(jr);
      if (!job.ok()) continue;
      AppState state;
      state.job = job.value();
      state.phase = static_cast<AppPhase>(r.u8().value_or(0));
      state.wiring_epoch = r.u32().value_or(1);
      const uint32_t n_place = r.u32().value_or(0);
      for (uint32_t k = 0; k < n_place; ++k) {
        const uint32_t rank = r.u32().value_or(0);
        gcs::MemberId m;
        m.host = r.u32().value_or(0);
        m.incarnation = r.u32().value_or(0);
        state.placement[rank] = m;
      }
      apps_[state.job.name] = std::move(state);
    }
  };
  lw_ = std::make_unique<gcs::LightweightGroups>(*group_, std::move(heavy));

  mgmt_acceptor_ = net.listen(host.id(), config_.mgmt_port, net::TransportKind::kTcpIp);
  accept_fiber_ = host.spawn("mgmt-accept", [this] { accept_loop(); });
}

Daemon::~Daemon() {
  shut_down_ = true;
  if (mgmt_acceptor_) mgmt_acceptor_->close();
}

void Daemon::start_founding(const std::vector<net::NetAddr>& founders) {
  group_->start_founding(founders);
}

void Daemon::start_joining(const std::vector<net::NetAddr>& seeds) {
  group_->start_joining(seeds);
}

// --------------------------------------------------------- client ops ----

void Daemon::submit(const JobSpec& job) {
  HeavyMsg msg;
  msg.kind = HeavyKind::kSubmit;
  msg.job = job;
  lw_->heavy_multicast(msg.encode());
}

void Daemon::delete_app(const std::string& app) {
  HeavyMsg msg;
  msg.kind = HeavyKind::kDeleteApp;
  msg.app = app;
  lw_->heavy_multicast(msg.encode());
}

void Daemon::suspend_app(const std::string& app) {
  HeavyMsg msg;
  msg.kind = HeavyKind::kSuspendApp;
  msg.app = app;
  lw_->heavy_multicast(msg.encode());
}

void Daemon::resume_app(const std::string& app) {
  HeavyMsg msg;
  msg.kind = HeavyKind::kResumeApp;
  msg.app = app;
  lw_->heavy_multicast(msg.encode());
}

void Daemon::set_config(const std::string& key, const std::string& value) {
  HeavyMsg msg;
  msg.kind = HeavyKind::kSetConfig;
  msg.key = key;
  msg.value = value;
  lw_->heavy_multicast(msg.encode());
}

std::optional<std::string> Daemon::get_config(const std::string& key) const {
  auto it = cluster_config_.find(key);
  if (it == cluster_config_.end()) return std::nullopt;
  return it->second;
}

void Daemon::node_ctl(sim::HostId host, bool enable) {
  HeavyMsg msg;
  msg.kind = HeavyKind::kNodeCtl;
  msg.host = host;
  msg.enable = enable;
  lw_->heavy_multicast(msg.encode());
}

void Daemon::migrate(const std::string& app, uint32_t rank, sim::HostId dest) {
  auto it = apps_.find(app);
  if (it == apps_.end() || !it->second.hosting ||
      it->second.job.protocol == CrProtocol::kNone ||
      it->second.job.protocol == CrProtocol::kUncoordinated) {
    STARFISH_LOG(kWarn, kLog) << "migrate: '" << app
                              << "' not hosted here or lacks a coordinated C/R protocol";
    return;
  }
  const uint64_t before = store_.latest_committed(app).value_or(0);
  // Phase 1: drive a fresh coordinated checkpoint through the app's group.
  AppMsg now;
  now.kind = AppKind::kCheckpointNow;
  lw_->lw_multicast(app, now.encode());

  host_.spawn("migrate", [this, app, rank, dest, before] {
    // Phase 2: wait for the new recovery line to commit.
    const sim::Time deadline = net_.engine().now() + sim::seconds(30.0);
    while (net_.engine().now() < deadline) {
      net_.engine().sleep(sim::milliseconds(10));
      auto committed = store_.latest_committed(app);
      auto it2 = apps_.find(app);
      if (it2 == apps_.end() || it2->second.phase == AppPhase::kCompleted) return;
      if (committed && *committed > before) {
        // Phase 3: execute the move cluster-wide.
        HeavyMsg msg;
        msg.kind = HeavyKind::kMigrateExec;
        msg.app = app;
        msg.rank = rank;
        msg.host = dest;
        msg.epoch = *committed;
        msg.wepoch = it2->second.wiring_epoch + 1;
        lw_->heavy_multicast(msg.encode());
        return;
      }
    }
    STARFISH_LOG(kWarn, kLog) << "migrate: checkpoint for '" << app << "' never committed";
  });
}

AppPhase Daemon::app_phase(const std::string& app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? AppPhase::kDeleted : it->second.phase;
}

std::vector<uint32_t> Daemon::local_ranks(const std::string& app) const {
  std::vector<uint32_t> out;
  auto it = apps_.find(app);
  if (it == apps_.end()) return out;
  for (const auto& [rank, proc] : it->second.locals) out.push_back(rank);
  return out;
}

const std::vector<std::string>& Daemon::app_output(const std::string& app) const {
  static const std::vector<std::string> kEmpty;
  auto it = apps_.find(app);
  return it == apps_.end() ? kEmpty : it->second.output;
}

// ----------------------------------------------------- heavy handlers ----

void Daemon::on_heavy_view(const gcs::View& view) {
  last_heavy_view_ = view;
}

void Daemon::on_heavy_message(gcs::MemberId origin, const util::Bytes& payload) {
  (void)origin;
  auto decoded = HeavyMsg::decode(payload);
  if (!decoded.ok()) return;
  const HeavyMsg& msg = decoded.value();
  switch (msg.kind) {
    case HeavyKind::kSubmit:
      handle_submit(msg.job);
      return;
    case HeavyKind::kSetConfig:
      cluster_config_[msg.key] = msg.value;
      return;
    case HeavyKind::kNodeCtl:
      if (msg.enable) {
        disabled_nodes_.erase(msg.host);
      } else {
        disabled_nodes_.insert(msg.host);
      }
      return;
    case HeavyKind::kDeleteApp: {
      auto it = apps_.find(msg.app);
      if (it == apps_.end()) return;
      AppState& state = it->second;
      retire_locals(state);
      if (state.hosting) lw_->lw_leave(msg.app);
      state.hosting = false;
      state.phase = AppPhase::kDeleted;
      return;
    }
    case HeavyKind::kSuspendApp: {
      auto it = apps_.find(msg.app);
      if (it == apps_.end() || it->second.phase != AppPhase::kRunning) return;
      it->second.phase = AppPhase::kSuspended;
      LinkMsg suspend;
      suspend.kind = LinkKind::kSuspend;
      broadcast_to_procs(it->second, suspend);
      return;
    }
    case HeavyKind::kResumeApp: {
      auto it = apps_.find(msg.app);
      if (it == apps_.end() || it->second.phase != AppPhase::kSuspended) return;
      it->second.phase = AppPhase::kRunning;
      LinkMsg resume;
      resume.kind = LinkKind::kResume;
      broadcast_to_procs(it->second, resume);
      return;
    }
    case HeavyKind::kMigrateExec: {
      auto it = apps_.find(msg.app);
      if (it == apps_.end()) return;
      AppState& state = it->second;
      // Stale move (a restart raced the migration) — drop it.
      if (state.hosting && msg.wepoch != state.wiring_epoch + 1) return;
      if (msg.rank >= state.job.nprocs) return;
      const gcs::Member* dest = nullptr;
      for (const auto& m : last_heavy_view_.members) {
        if (m.id.host == msg.host) dest = &m;
      }
      if (dest == nullptr) return;  // destination node is gone

      state.wiring_epoch = msg.wepoch;
      state.addrs.clear();
      state.placement[msg.rank] = dest->id;
      const gcs::MemberId self = group_->self();
      const bool now_hosting = std::any_of(
          state.placement.begin(), state.placement.end(),
          [&](const auto& kv) { return kv.second == self; });
      if (now_hosting && !state.hosting) {
        // This daemon joins the application's lightweight group.
        const std::string name = msg.app;
        gcs::LwCallbacks cbs;
        cbs.on_view = [this, name](const gcs::LwView& v) { on_lw_view(name, v); };
        cbs.on_message = [this, name](gcs::MemberId origin, const util::Bytes& payload) {
          on_lw_message(name, origin, payload);
        };
        lw_->lw_join(name, std::move(cbs));
      } else if (!now_hosting && state.hosting) {
        lw_->lw_leave(msg.app);
      }
      state.hosting = now_hosting;

      // The whole application rolls back to the freshly committed epoch
      // under the new placement (the moved rank restores on its new node).
      retire_locals(state);
      if (!state.hosting) return;
      for (const auto& [rank, member] : state.placement) {
        if (member != self || state.done_ranks.contains(rank)) continue;
        launch_rank(state, rank, msg.epoch);
      }
      // The moved rank's replica holders are derived from its host; the
      // migration changed that, so re-replicate toward the new ring.
      rebalance_replicas(state);
      if (state.phase == AppPhase::kRunning) state.phase = AppPhase::kPlacing;
      return;
    }
    case HeavyKind::kGrowApp: {
      auto it = apps_.find(msg.app);
      if (it == apps_.end() || msg.rank == 0) return;
      AppState& state = it->second;
      if (state.hosting && msg.wepoch != state.wiring_epoch + 1) return;  // stale
      if (state.phase != AppPhase::kRunning && state.phase != AppPhase::kPlacing) return;
      auto eligible = eligible_members();
      if (eligible.empty()) return;

      const uint32_t old_nprocs = state.job.nprocs;
      state.job.nprocs += msg.rank;
      state.wiring_epoch = msg.wepoch;
      state.addrs.clear();
      for (uint32_t r = old_nprocs; r < state.job.nprocs; ++r) {
        state.placement[r] = eligible[r % eligible.size()].id;
      }
      const gcs::MemberId self = group_->self();
      const bool now_hosting = std::any_of(
          state.placement.begin(), state.placement.end(),
          [&](const auto& kv) { return kv.second == self; });
      if (now_hosting && !state.hosting) {
        const std::string name = msg.app;
        gcs::LwCallbacks cbs;
        cbs.on_view = [this, name](const gcs::LwView& v) { on_lw_view(name, v); };
        cbs.on_message = [this, name](gcs::MemberId origin, const util::Bytes& payload) {
          on_lw_message(name, origin, payload);
        };
        lw_->lw_join(name, std::move(cbs));
      }
      state.hosting = now_hosting;
      if (!state.hosting) return;

      // Re-announce existing local processes under the new wiring epoch and
      // launch the freshly spawned ranks.
      for (auto& [rank, proc] : state.locals) {
        if (!proc.ready || proc.done) continue;
        AppMsg addr;
        addr.kind = AppKind::kAddr;
        addr.wiring_epoch = state.wiring_epoch;
        addr.rank = rank;
        addr.addr = proc.vni_addr;
        lw_->lw_multicast(msg.app, addr.encode());
      }
      for (uint32_t r = old_nprocs; r < state.job.nprocs; ++r) {
        if (state.placement[r] == self) launch_rank(state, r, kNoRestore);
      }
      return;
    }
  }
}

bool Daemon::node_enabled(sim::HostId host) const { return !disabled_nodes_.contains(host); }

std::vector<gcs::Member> Daemon::eligible_members() const {
  std::vector<gcs::Member> out;
  for (const auto& m : last_heavy_view_.members) {
    if (node_enabled(m.id.host)) out.push_back(m);
  }
  return out;
}

void Daemon::handle_submit(const JobSpec& job) {
  if (apps_.contains(job.name)) {
    STARFISH_LOG(kWarn, kLog) << "duplicate submission of '" << job.name << "' ignored";
    return;
  }
  if (obs::Hub* hub = net_.engine().obs()) hub->metrics.counter("daemon.jobs_submitted").add(1);
  AppState state;
  state.job = job;
  // Deterministic placement: every daemon computes the same map from the
  // same replicated inputs (heavy view at delivery + disabled set).
  auto eligible = eligible_members();
  if (eligible.empty()) {
    STARFISH_LOG(kError, kLog) << "no eligible nodes for '" << job.name << "'";
    state.phase = AppPhase::kFailed;
    apps_[job.name] = std::move(state);
    return;
  }
  // Placement strategy comes from the replicated cluster configuration, so
  // every daemon computes the identical map. "roundrobin" (default) spreads
  // ranks; "packed" fills nodes in order (capacity from "placement.slots",
  // default 2 ranks per node before spilling to the next).
  const std::string strategy =
      get_config("placement.strategy").value_or("roundrobin");
  if (strategy == "packed") {
    uint32_t slots = 2;
    if (auto s = get_config("placement.slots")) {
      if (auto v = util::parse_int(*s); v && *v > 0) slots = static_cast<uint32_t>(*v);
    }
    for (uint32_t rank = 0; rank < job.nprocs; ++rank) {
      state.placement[rank] = eligible[(rank / slots) % eligible.size()].id;
    }
  } else {
    for (uint32_t rank = 0; rank < job.nprocs; ++rank) {
      state.placement[rank] = eligible[rank % eligible.size()].id;
    }
  }
  const gcs::MemberId self = group_->self();
  state.hosting = std::any_of(state.placement.begin(), state.placement.end(),
                              [&](const auto& kv) { return kv.second == self; });
  auto [it, inserted] = apps_.emplace(job.name, std::move(state));
  AppState& app = it->second;
  if (!app.hosting) return;

  const std::string name = job.name;
  gcs::LwCallbacks cbs;
  cbs.on_view = [this, name](const gcs::LwView& v) { on_lw_view(name, v); };
  cbs.on_message = [this, name](gcs::MemberId origin, const util::Bytes& payload) {
    on_lw_message(name, origin, payload);
  };
  lw_->lw_join(name, std::move(cbs));

  for (const auto& [rank, member] : app.placement) {
    if (member == self) launch_rank(app, rank, kNoRestore);
  }
}

// ------------------------------------------------------- lw handlers ----

void Daemon::on_lw_view(const std::string& app, const gcs::LwView& view) {
  auto it = apps_.find(app);
  if (it == apps_.end() || !it->second.hosting) return;
  AppState& state = it->second;

  // Members lost since the last view we saw (ignore gradual formation:
  // only members previously *present* can be lost).
  std::set<gcs::MemberId> lost;
  for (const auto& m : state.lw_present) {
    if (!view.contains(m)) lost.insert(m);
  }
  for (const auto& m : view.members) state.lw_present.insert(m);
  for (const auto& m : lost) state.lw_present.erase(m);

  if (lost.empty()) return;
  std::set<uint32_t> newly_dead;
  for (const auto& [rank, member] : state.placement) {
    if (state.done_ranks.contains(rank) || state.dead_ranks.contains(rank)) continue;
    if (lost.contains(member)) newly_dead.insert(rank);
  }
  if (!newly_dead.empty()) failure_event(app, newly_dead);
}

void Daemon::on_lw_message(const std::string& app, gcs::MemberId origin,
                           const util::Bytes& payload) {
  (void)origin;
  auto it = apps_.find(app);
  if (it == apps_.end() || !it->second.hosting) return;
  AppState& state = it->second;
  auto decoded = AppMsg::decode(payload);
  if (!decoded.ok()) return;
  const AppMsg& msg = decoded.value();
  switch (msg.kind) {
    case AppKind::kAddr:
      if (msg.wiring_epoch != state.wiring_epoch) return;  // stale exchange
      state.addrs[msg.rank] = msg.addr;
      maybe_configure(state);
      return;
    case AppKind::kCoord: {
      LinkMsg relay;
      relay.kind = LinkKind::kCoord;
      relay.payload = msg.payload;
      broadcast_to_procs(state, relay);
      return;
    }
    case AppKind::kProcFailed:
      failure_event(app, {msg.rank});
      return;
    case AppKind::kCheckpointNow: {
      LinkMsg relay;
      relay.kind = LinkKind::kCheckpointNow;
      broadcast_to_procs(state, relay);
      return;
    }
    case AppKind::kRankDone:
      state.done_ranks.insert(msg.rank);
      if (state.done_ranks.size() + state.dead_ranks.size() >= state.job.nprocs &&
          state.phase == AppPhase::kRunning) {
        state.phase = AppPhase::kCompleted;
      }
      return;
  }
}

// -------------------------------------------------------- local procs ----

void Daemon::launch_rank(AppState& state, uint32_t rank, uint64_t restore_epoch) {
  if (obs::Hub* hub = net_.engine().obs()) {
    hub->metrics.counter("daemon.launches").add(1);
    if (restore_epoch != kNoRestore) hub->metrics.counter("daemon.restores").add(1);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(net_.engine().now()), "daemon",
                          "launch " + state.job.name + "/r" + std::to_string(rank), host_.id());
    }
  }
  LaunchRequest req;
  req.job = state.job;
  req.rank = rank;
  req.wiring_epoch = state.wiring_epoch;
  req.restore_epoch = restore_epoch;
  const std::string app = state.job.name;
  const uint32_t token = next_proc_token_++;
  auto uplink = [this, app, rank, token](const LinkMsg& msg) {
    // Local link latency, process -> daemon direction. Messages from an
    // older launch of this rank (killed during a restart/migration) carry a
    // stale token and are dropped.
    net_.engine().schedule(config_.link_delay, [this, app, rank, token, msg] {
      if (shut_down_ || !host_.alive()) return;
      auto it = apps_.find(app);
      if (it == apps_.end()) return;
      auto local = it->second.locals.find(rank);
      if (local == it->second.locals.end() || local->second.token != token) return;
      handle_uplink(app, rank, msg);
    });
  };
  LocalProc proc;
  proc.rank = rank;
  proc.restore_epoch = restore_epoch;
  proc.token = token;
  proc.handle = launcher_.launch(host_, req, std::move(uplink));
  state.locals[rank] = std::move(proc);
}

void Daemon::send_to_proc(AppState& state, LocalProc& proc, LinkMsg msg) {
  if (!proc.handle || !proc.handle->alive()) return;
  ProcessHandle* handle = proc.handle.get();
  (void)state;
  net_.engine().schedule(config_.link_delay, [handle, msg = std::move(msg)] {
    if (handle->alive()) handle->deliver(msg);
  });
}

void Daemon::broadcast_to_procs(AppState& state, const LinkMsg& msg) {
  for (auto& [rank, proc] : state.locals) send_to_proc(state, proc, msg);
}

void Daemon::maybe_configure(AppState& state) {
  // Configure once every *live* rank's data-path address is known.
  size_t expected = 0;
  for (const auto& [rank, member] : state.placement) {
    if (!state.dead_ranks.contains(rank) && !state.done_ranks.contains(rank)) ++expected;
  }
  if (state.addrs.size() < expected || expected == 0) return;

  std::vector<net::NetAddr> world(state.job.nprocs);
  for (const auto& [rank, addr] : state.addrs) world[rank] = addr;
  for (auto& [rank, proc] : state.locals) {
    LinkMsg cfg;
    cfg.kind = LinkKind::kConfigure;
    cfg.wiring_epoch = state.wiring_epoch;
    cfg.world = world;
    cfg.restore_epoch = proc.restore_epoch;
    send_to_proc(state, proc, std::move(cfg));
  }
  if (state.phase == AppPhase::kPlacing) state.phase = AppPhase::kRunning;
}

void Daemon::handle_uplink(const std::string& app, uint32_t rank, const LinkMsg& msg) {
  auto it = apps_.find(app);
  if (it == apps_.end()) return;
  AppState& state = it->second;
  auto local = state.locals.find(rank);
  if (local == state.locals.end()) return;

  switch (msg.kind) {
    case LinkKind::kReady: {
      local->second.ready = true;
      local->second.vni_addr = msg.vni_addr;
      AppMsg addr;
      addr.kind = AppKind::kAddr;
      addr.wiring_epoch = state.wiring_epoch;
      addr.rank = rank;
      addr.addr = msg.vni_addr;
      lw_->lw_multicast(app, addr.encode());
      return;
    }
    case LinkKind::kCoordSend: {
      AppMsg coord;
      coord.kind = AppKind::kCoord;
      coord.payload = msg.payload;
      lw_->lw_multicast(app, coord.encode());
      return;
    }
    case LinkKind::kDone: {
      local->second.done = true;
      AppMsg done;
      done.kind = msg.ok ? AppKind::kRankDone : AppKind::kProcFailed;
      done.rank = rank;
      if (!msg.ok) {
        state.output.push_back("rank " + std::to_string(rank) + " failed: " + msg.text);
      }
      lw_->lw_multicast(app, done.encode());
      return;
    }
    case LinkKind::kOutput:
      state.output.push_back(msg.text);
      return;
    case LinkKind::kSpawnReq: {
      // MPI-2 dynamic process management: grow the world. Routed through
      // the totally ordered heavy group so every daemon applies the same
      // placement at the same point in the event stream.
      HeavyMsg grow;
      grow.kind = HeavyKind::kGrowApp;
      grow.app = app;
      grow.rank = msg.spawn_extra;
      grow.wepoch = state.wiring_epoch + 1;
      lw_->heavy_multicast(grow.encode());
      return;
    }
    default:
      return;
  }
}

// ------------------------------------------------------------ failure ----

void Daemon::failure_event(const std::string& app, const std::set<uint32_t>& newly_dead) {
  auto it = apps_.find(app);
  if (it == apps_.end() || !it->second.hosting) return;
  AppState& state = it->second;
  if (state.phase == AppPhase::kDeleted || state.phase == AppPhase::kFailed ||
      state.phase == AppPhase::kCompleted) {
    return;
  }
  std::set<uint32_t> fresh;
  for (uint32_t r : newly_dead) {
    if (!state.dead_ranks.contains(r) && !state.done_ranks.contains(r)) fresh.insert(r);
  }
  if (fresh.empty()) return;
  STARFISH_LOG(kInfo, kLog) << "host" << host_.id() << ": app '" << app << "' lost "
                            << fresh.size() << " process(es), policy "
                            << policy_name(state.job.policy);

  switch (state.job.policy) {
    case FtPolicy::kKill:
      retire_locals(state);
      state.phase = AppPhase::kFailed;
      return;

    case FtPolicy::kNotifyViews: {
      state.dead_ranks.insert(fresh.begin(), fresh.end());
      ++state.view_seq;
      LinkMsg view;
      view.kind = LinkKind::kAppView;
      view.view_seq = state.view_seq;
      for (uint32_t r = 0; r < state.job.nprocs; ++r) {
        if (!state.dead_ranks.contains(r) && !state.done_ranks.contains(r)) {
          view.live_ranks.push_back(r);
        }
      }
      broadcast_to_procs(state, view);
      return;
    }

    case FtPolicy::kRestart: {
      // Mark the dead ranks so placement reassigns them, then roll the whole
      // application back to the recovery line. The cap breaks deterministic
      // crash loops (e.g. a trap that replays identically from the image).
      if (state.restart_count >= kMaxRestarts) {
        state.phase = AppPhase::kFailed;
        return;
      }
      state.dead_ranks.insert(fresh.begin(), fresh.end());
      restart_app(state);
      return;
    }
  }
}

std::map<uint32_t, uint64_t> Daemon::compute_restore_epochs(const AppState& state) const {
  std::map<uint32_t, uint64_t> out;
  const std::string& app = state.job.name;
  if (state.job.protocol == CrProtocol::kUncoordinated) {
    // Recovery line over the stored independent checkpoints.
    std::vector<ckpt::CheckpointMeta> metas;
    std::map<uint32_t, uint32_t> latest;
    for (uint32_t rank = 0; rank < state.job.nprocs; ++rank) {
      latest[rank] = 0;
      auto newest = store_.latest_stored(app, rank);
      if (newest) latest[rank] = static_cast<uint32_t>(*newest);
      for (uint32_t idx = 1; idx <= latest[rank]; ++idx) {
        auto meta_blob = store_.checkpoint_meta(ckpt::CkptKey{app, rank, idx});
        if (!meta_blob) continue;
        // The blob is a DependencyTracker encoding. A corrupt blob makes the
        // checkpoint unusable as a line candidate — treating it as "no
        // recorded constraints" would fabricate a line the dependencies
        // never supported, so skip it (like a missing meta).
        auto tracker = ckpt::DependencyTracker::decode(*meta_blob);
        if (!tracker.ok()) continue;
        ckpt::CheckpointMeta meta;
        meta.rank = rank;
        meta.index = idx;
        meta.depends_on = tracker.value().received();
        meta.sent = tracker.value().sent();
        metas.push_back(std::move(meta));
      }
    }
    auto line = ckpt::compute_recovery_line(metas, latest);
    if (obs::Hub* hub = net_.engine().obs()) {
      hub->metrics.counter("ckpt.recovery_lines").add(1);
      hub->metrics.counter("ckpt.rollback_intervals")
          .add(ckpt::rollback_distance(line, latest));
    }
    for (const auto& [rank, idx] : line) {
      out[rank] = idx == 0 ? kNoRestore : idx;
    }
    return out;
  }
  // Coordinated protocols: the committed epoch is the recovery line — but
  // only if it can still be read back. Under the disk backend that is
  // always latest_committed; under the replica backend host crashes may
  // have destroyed copies, so the line drops to the newest epoch whose
  // chains survive in some tier, or to a from-scratch restart (kNoRestore)
  // when nothing does — never a deadlock on unreadable images.
  auto committed = store_.latest_recoverable(app, state.job.nprocs);
  for (uint32_t rank = 0; rank < state.job.nprocs; ++rank) {
    out[rank] = committed.value_or(kNoRestore);
  }
  return out;
}

void Daemon::rebalance_replicas(AppState& state) {
  if (store_.backend() != ckpt::CkptBackend::kReplica || store_.replicas() == nullptr) {
    return;
  }
  // The new placement's rank -> host map, identical at every daemon (the
  // placement itself is the deterministically agreed state).
  std::vector<sim::HostId> hosts(state.job.nprocs, sim::kInvalidHost);
  for (const auto& [rank, member] : state.placement) {
    if (rank < hosts.size()) hosts[rank] = member.host;
  }
  const gcs::MemberId self = group_->self();
  const uint32_t replication = store_.replicas()->options().replication;
  for (const auto& [rank, member] : state.placement) {
    if (member != self || state.done_ranks.contains(rank)) continue;
    auto holders = ckpt::replica_holders(hosts, rank, replication);
    // Background fiber: re-replication rides the network alongside the
    // restart and must not delay relaunch (recovery reads existing copies).
    host_.spawn("replica-rebalance",
                [this, app = state.job.name, rank, holders = std::move(holders)] {
                  store_.replicas()->rebalance(host_, app, rank, holders);
                });
  }
}

void Daemon::retire_locals(AppState& state) {
  for (auto& [rank, proc] : state.locals) {
    if (!proc.handle) continue;
    proc.handle->terminate();
    // Park the handle: kill-unwinds of its fibers land after this call, so
    // the object must outlive them (freed only with the daemon).
    graveyard_.push_back(std::move(proc.handle));
  }
  state.locals.clear();
}

void Daemon::restart_app(AppState& state) {
  if (obs::Hub* hub = net_.engine().obs()) {
    hub->metrics.counter("daemon.restarts").add(1);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(net_.engine().now()), "daemon",
                          "restart " + state.job.name, host_.id());
    }
  }
  ++restarts_performed_;
  ++state.restart_count;
  ++state.wiring_epoch;
  state.addrs.clear();

  // Reassign dead ranks over the surviving lightweight members,
  // deterministically (same computation at every surviving daemon).
  auto view = lw_->lw_view(state.job.name);
  if (!view || view->members.empty()) {
    state.phase = AppPhase::kFailed;
    return;
  }
  std::vector<gcs::MemberId> survivors = view->members;
  std::sort(survivors.begin(), survivors.end());
  std::vector<uint32_t> to_reassign(state.dead_ranks.begin(), state.dead_ranks.end());
  for (size_t i = 0; i < to_reassign.size(); ++i) {
    state.placement[to_reassign[i]] = survivors[i % survivors.size()];
  }
  state.dead_ranks.clear();

  // A checkpoint wave in flight at the crash is aborted by the restart;
  // drop its begin timestamps so a re-initiated epoch records fresh ones
  // (epoch_duration must not span the crash).
  store_.note_abort(state.job.name);

  const auto restore = compute_restore_epochs(state);

  // Kill every local process and relaunch my slice of the new placement
  // from the recovery line.
  retire_locals(state);
  const gcs::MemberId self = group_->self();
  for (const auto& [rank, member] : state.placement) {
    if (member != self || state.done_ranks.contains(rank)) continue;
    auto it = restore.find(rank);
    launch_rank(state, rank, it == restore.end() ? kNoRestore : it->second);
  }
  // Surviving copies of ranks moving to new hosts must regain full
  // replication under the new placement (view-change re-balance).
  rebalance_replicas(state);
  state.phase = AppPhase::kPlacing;
}

}  // namespace starfish::daemon
