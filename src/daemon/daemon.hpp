// The Starfish daemon (paper sections 2.1 and 3).
//
// One daemon per node. All daemons form the Starfish group (gcs); each
// running application corresponds to a lightweight group whose members are
// the daemons hosting its processes. The daemon is built from the paper's
// modules:
//  * management module — replicated cluster configuration and job records,
//    kept coherent by totally ordered heavy-group messages; serves the ASCII
//    management/user protocol on the management port.
//  * lightweight membership module — the LightweightGroups layer.
//  * lightweight endpoint modules — one per local application process: the
//    local link, address exchange, coordination relay, failure reporting.
//
// Failure handling is initiator-free: every daemon of an affected
// application observes the same totally ordered event stream (lightweight
// views + messages), so all of them deterministically compute the same new
// placement / recovery line and act on their local slice of it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ckpt/recovery.hpp"
#include "ckpt/store.hpp"
#include "daemon/launcher.hpp"
#include "daemon/wire.hpp"
#include "gcs/endpoint.hpp"
#include "gcs/lightweight.hpp"

namespace starfish::daemon {

struct DaemonConfig {
  gcs::GroupConfig group;
  net::Port mgmt_port = 2;
  std::string admin_password = "starfish";
  /// One-way latency of the local daemon<->process link (local TCP).
  sim::Duration link_delay = sim::microseconds(50);
};

/// Lifecycle phase of an application, as seen by one daemon.
enum class AppPhase : uint8_t {
  kPlacing = 0,   ///< submitted; waiting for every rank's address
  kRunning,
  kSuspended,
  kCompleted,
  kFailed,        ///< killed by policy or unrecoverable
  kDeleted,
};

const char* phase_name(AppPhase p);

class Daemon {
 public:
  Daemon(net::Network& net, sim::Host& host, ckpt::CheckpointStore& store,
         ProcessLauncher& launcher, DaemonConfig config = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start_founding(const std::vector<net::NetAddr>& founder_control_addrs);
  void start_joining(const std::vector<net::NetAddr>& seeds);

  // --- programmatic client operations (the ASCII protocol calls these) ---
  void submit(const JobSpec& job);
  void delete_app(const std::string& app);
  void suspend_app(const std::string& app);
  void resume_app(const std::string& app);
  void set_config(const std::string& key, const std::string& value);
  std::optional<std::string> get_config(const std::string& key) const;
  void node_ctl(sim::HostId host, bool enable);

  /// Migrates one rank to another node (paper section 3.2.1): requests a
  /// coordinated checkpoint, waits for it to commit, then moves the rank by
  /// restoring the whole application with the new placement. Must be called
  /// on a daemon currently hosting part of the app; requires a coordinated
  /// C/R protocol. Asynchronous — drives itself on a fiber.
  void migrate(const std::string& app, uint32_t rank, sim::HostId dest);

  // --- introspection ---
  sim::HostId host_id() const { return host_.id(); }
  gcs::GroupEndpoint& group() { return *group_; }
  gcs::LightweightGroups& lightweight() { return *lw_; }
  AppPhase app_phase(const std::string& app) const;
  bool knows_app(const std::string& app) const { return apps_.contains(app); }
  /// Ranks this daemon currently hosts for `app`.
  std::vector<uint32_t> local_ranks(const std::string& app) const;
  /// Console output collected from local processes of `app`.
  const std::vector<std::string>& app_output(const std::string& app) const;
  uint32_t restarts_performed() const { return restarts_performed_; }

  /// Management/user session entry point for an already-accepted
  /// connection; normally driven by the internal acceptor fiber. Public so
  /// tests can drive the protocol directly over a manual connection.
  void serve_session(net::ConnectionPtr conn);

 private:
  struct LocalProc {
    uint32_t rank = 0;
    std::unique_ptr<ProcessHandle> handle;
    uint64_t restore_epoch = kNoRestore;
    net::NetAddr vni_addr;  ///< cached from kReady (re-announced on growth)
    /// Identity of this launch: uplink messages from an older (terminated)
    /// process of the same rank carry a stale token and are dropped.
    uint32_t token = 0;
    bool ready = false;
    bool done = false;
  };

  struct AppState {
    JobSpec job;
    AppPhase phase = AppPhase::kPlacing;
    uint32_t wiring_epoch = 1;
    /// rank -> daemon member hosting it (identical at every daemon).
    std::map<uint32_t, gcs::MemberId> placement;
    std::map<uint32_t, LocalProc> locals;          ///< my ranks
    std::map<uint32_t, net::NetAddr> addrs;        ///< collected this epoch
    std::set<uint32_t> done_ranks;
    std::set<uint32_t> dead_ranks;                 ///< cumulative (notify policy)
    /// Lightweight members we have actually seen in the group; loss is only
    /// meaningful for members that had joined (the group forms gradually).
    std::set<gcs::MemberId> lw_present;
    uint32_t restart_count = 0;
    uint64_t view_seq = 0;
    std::vector<std::string> output;
    bool hosting = false;
  };

  // Heavy-group plumbing.
  void on_heavy_view(const gcs::View& view);
  void on_heavy_message(gcs::MemberId origin, const util::Bytes& payload);
  void handle_submit(const JobSpec& job);
  // Lightweight-group plumbing (one subscription per hosted app).
  void on_lw_view(const std::string& app, const gcs::LwView& view);
  void on_lw_message(const std::string& app, gcs::MemberId origin, const util::Bytes& payload);

  // Local process management.
  void launch_rank(AppState& state, uint32_t rank, uint64_t restore_epoch);
  void handle_uplink(const std::string& app, uint32_t rank, const LinkMsg& msg);
  void send_to_proc(AppState& state, LocalProc& proc, LinkMsg msg);
  void broadcast_to_procs(AppState& state, const LinkMsg& msg);
  void maybe_configure(AppState& state);

  // Failure machinery.
  void failure_event(const std::string& app, const std::set<uint32_t>& newly_dead);
  void restart_app(AppState& state);
  /// Replica backend only: after a placement change, re-replicate my local
  /// ranks' surviving checkpoint chains toward the holder sets the new
  /// placement implies (background fibers; replica.hpp rebalance).
  void rebalance_replicas(AppState& state);
  /// Terminates every local process of `state` and parks the handles.
  void retire_locals(AppState& state);
  std::map<uint32_t, uint64_t> compute_restore_epochs(const AppState& state) const;

  bool node_enabled(sim::HostId host) const;
  std::vector<gcs::Member> eligible_members() const;

  // Management protocol.
  void accept_loop();
  std::string handle_command(const std::string& line, bool& admin, bool& logged_in,
                             std::string& user, bool& quit);

  net::Network& net_;
  sim::Host& host_;
  ckpt::CheckpointStore& store_;
  ProcessLauncher& launcher_;
  DaemonConfig config_;

  std::unique_ptr<gcs::GroupEndpoint> group_;
  std::unique_ptr<gcs::LightweightGroups> lw_;
  net::AcceptorPtr mgmt_acceptor_;
  sim::FiberPtr accept_fiber_;

  /// Replicated cluster configuration (totally ordered updates).
  std::map<std::string, std::string> cluster_config_;
  std::set<sim::HostId> disabled_nodes_;
  std::map<std::string, AppState> apps_;
  gcs::View last_heavy_view_;
  /// Terminated process handles are parked here instead of destroyed:
  /// fiber kill-unwinds are asynchronous, so a handle must stay alive until
  /// the simulation drains (destroyed with the daemon).
  std::vector<std::unique_ptr<ProcessHandle>> graveyard_;
  uint32_t restarts_performed_ = 0;
  uint32_t next_proc_token_ = 1;
  bool shut_down_ = false;
};

}  // namespace starfish::daemon
