// Job descriptions and fault-tolerance policies (paper section 3.2.2: the
// client chooses the policy when submitting an application).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::daemon {

/// What Starfish does when an application loses a process.
enum class FtPolicy : uint8_t {
  kKill = 0,         ///< compatibility mode: kill the whole application
  kRestart = 1,      ///< automatic restart from the recovery line
  kNotifyViews = 2,  ///< deliver a view upcall; the app repartitions itself
};

/// Distributed checkpointing protocol for the job.
enum class CrProtocol : uint8_t {
  kNone = 0,
  kStopAndSync = 1,    ///< coordinated, blocking (Figures 3/4)
  kChandyLamport = 2,  ///< coordinated, non-blocking marker protocol
  kUncoordinated = 3,  ///< independent checkpoints + recovery-line rollback
};

/// Local checkpoint mechanism (paper section 4).
enum class CkptLevel : uint8_t {
  kNative = 0,  ///< process-level dump; homogeneous restore only
  kVm = 1,      ///< VM-level portable image; heterogeneous restore
};

struct JobSpec {
  std::string name;     ///< unique application name (lightweight group name)
  std::string binary;   ///< app-registry key
  uint32_t nprocs = 1;
  FtPolicy policy = FtPolicy::kKill;
  CrProtocol protocol = CrProtocol::kNone;
  CkptLevel level = CkptLevel::kVm;
  /// > 0: system-initiated checkpoints at this period (rank 0 drives
  /// coordinated protocols; every rank drives its own for uncoordinated).
  sim::Duration ckpt_interval = 0;
  /// Forked (copy-on-write) checkpointing, after libckpt [33]: under
  /// stop-and-sync the application resumes as soon as its state is
  /// snapshotted in memory; the disk write proceeds in the background and
  /// the epoch commits once every image is stable. Cuts the blocking time
  /// from disk-write-dominated to snapshot-dominated.
  bool forked_ckpt = false;
  /// Incremental checkpointing, after libckpt [33]: native images store
  /// only the pages changed since the previous epoch (a full image every
  /// few epochs anchors the chain). Cuts bytes written for apps whose
  /// state mutates sparsely.
  bool incremental_ckpt = false;
  std::vector<std::string> args;
  std::string owner = "user";  ///< submitting user (suspend/delete rights)

  util::Bytes encode() const;
  static util::Result<JobSpec> decode(util::Reader& r);
};

const char* policy_name(FtPolicy p);
const char* protocol_name(CrProtocol p);

}  // namespace starfish::daemon
