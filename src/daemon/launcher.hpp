// Interface the daemon uses to spawn and talk to application processes.
// Implemented by starfish::core (which assembles the real application
// process); tests may implement fakes.
//
// The daemon<->process link models the paper's local TCP connection between
// the lightweight endpoint module and the process's group handler: both
// directions are queued callbacks with a small loopback delay, FIFO per
// direction.
#pragma once

#include <functional>
#include <memory>

#include "daemon/wire.hpp"
#include "sim/host.hpp"

namespace starfish::daemon {

class ProcessHandle {
 public:
  virtual ~ProcessHandle() = default;
  /// Daemon -> process message (already delayed by the link model).
  virtual void deliver(const LinkMsg& msg) = 0;
  /// Hard-kill the process (its node stays up).
  virtual void terminate() = 0;
  virtual bool alive() const = 0;
};

struct LaunchRequest {
  JobSpec job;
  uint32_t rank = 0;
  uint32_t wiring_epoch = 1;
  uint64_t restore_epoch = kNoRestore;
};

class ProcessLauncher {
 public:
  virtual ~ProcessLauncher() = default;
  /// Starts an application process on `host`. `uplink` carries process ->
  /// daemon messages (the daemon wraps it with the link delay).
  virtual std::unique_ptr<ProcessHandle> launch(
      sim::Host& host, const LaunchRequest& request,
      std::function<void(const LinkMsg&)> uplink) = 0;
};

}  // namespace starfish::daemon
