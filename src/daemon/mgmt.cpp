// The ASCII management/user protocol (paper section 3.1.1).
//
// Clients (including the Java GUI the paper describes, replaced here by
// examples/management_cli) open a TCP connection to any daemon and speak a
// line-oriented text protocol. A session starts with LOGIN, identifying
// itself as a management (ADMIN) or user (USER) session; management sessions
// may reconfigure the cluster, user sessions are limited to submitting and
// controlling their own applications.
#include "daemon/daemon.hpp"
#include "util/strings.hpp"

namespace starfish::daemon {

namespace {

util::Bytes line_bytes(const std::string& s) {
  return util::Bytes(reinterpret_cast<const std::byte*>(s.data()),
                     reinterpret_cast<const std::byte*>(s.data() + s.size()));
}

std::string line_text(util::BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace

void Daemon::accept_loop() {
  for (;;) {
    auto r = mgmt_acceptor_->accept();
    if (!r.ok()) return;  // daemon shutdown or host crash
    auto conn = *r.value;
    host_.spawn("mgmt-session", [this, conn] { serve_session(conn); });
  }
}

void Daemon::serve_session(net::ConnectionPtr conn) {
  bool admin = false;
  bool logged_in = false;
  bool quit = false;
  std::string user;
  conn->send(line_bytes("STARFISH " + std::to_string(host_.id()) + " READY"));
  while (!quit) {
    auto r = conn->recv();
    if (!r.ok()) break;
    const std::string line = line_text(*r.value);
    const std::string reply = handle_command(line, admin, logged_in, user, quit);
    if (!conn->send(line_bytes(reply))) break;
  }
  conn->close();
}

std::string Daemon::handle_command(const std::string& line, bool& admin, bool& logged_in,
                                   std::string& user, bool& quit) {
  auto tokens = util::split_ws(line);
  if (tokens.empty()) return "ERR empty command";
  const std::string cmd = util::to_upper(tokens[0]);

  if (cmd == "QUIT") {
    quit = true;
    return "OK bye";
  }

  if (cmd == "LOGIN") {
    // LOGIN <user> <password> [ADMIN|USER]
    if (tokens.size() < 3) return "ERR usage: LOGIN user password [ADMIN|USER]";
    const bool wants_admin = tokens.size() >= 4 && util::to_upper(tokens[3]) == "ADMIN";
    if (wants_admin && tokens[2] != config_.admin_password) {
      return "ERR bad admin credentials";
    }
    user = tokens[1];
    admin = wants_admin;
    logged_in = true;
    return std::string("OK session ") + (admin ? "management" : "user");
  }

  if (!logged_in) return "ERR login first";

  if (cmd == "SUBMIT") {
    // SUBMIT <name> <binary> <nprocs> [POLICY=kill|restart|notify]
    //        [PROTOCOL=none|sync|cl|unco] [LEVEL=native|vm] [INTERVAL_MS=n]
    if (tokens.size() < 4) return "ERR usage: SUBMIT name binary nprocs [opts]";
    JobSpec job;
    job.name = tokens[1];
    job.binary = tokens[2];
    auto n = util::parse_int(tokens[3]);
    if (!n || *n < 1) return "ERR bad nprocs";
    job.nprocs = static_cast<uint32_t>(*n);
    job.owner = user;
    for (size_t i = 4; i < tokens.size(); ++i) {
      auto kv = util::split(tokens[i], '=');
      if (kv.size() != 2) return "ERR bad option '" + tokens[i] + "'";
      const std::string key = util::to_upper(kv[0]);
      const std::string val = util::to_lower(kv[1]);
      if (key == "POLICY") {
        if (val == "kill") {
          job.policy = FtPolicy::kKill;
        } else if (val == "restart") {
          job.policy = FtPolicy::kRestart;
        } else if (val == "notify") {
          job.policy = FtPolicy::kNotifyViews;
        } else {
          return "ERR unknown policy";
        }
      } else if (key == "PROTOCOL") {
        if (val == "none") {
          job.protocol = CrProtocol::kNone;
        } else if (val == "sync") {
          job.protocol = CrProtocol::kStopAndSync;
        } else if (val == "cl") {
          job.protocol = CrProtocol::kChandyLamport;
        } else if (val == "unco") {
          job.protocol = CrProtocol::kUncoordinated;
        } else {
          return "ERR unknown protocol";
        }
      } else if (key == "LEVEL") {
        if (val == "native") {
          job.level = CkptLevel::kNative;
        } else if (val == "vm") {
          job.level = CkptLevel::kVm;
        } else {
          return "ERR unknown level";
        }
      } else if (key == "INTERVAL_MS") {
        auto ms = util::parse_int(val);
        if (!ms || *ms < 0) return "ERR bad interval";
        job.ckpt_interval = sim::milliseconds(*ms);
      } else {
        return "ERR unknown option '" + key + "'";
      }
    }
    if (apps_.contains(job.name)) return "ERR job name in use";
    submit(job);
    return "OK submitted " + job.name;
  }

  if (cmd == "PS") {
    std::string out = "OK " + std::to_string(apps_.size()) + " job(s)";
    for (const auto& [name, state] : apps_) {
      out += "\n" + name + " " + state.job.binary + " np=" +
             std::to_string(state.job.nprocs) + " " + phase_name(state.phase) + " policy=" +
             policy_name(state.job.policy) + " owner=" + state.job.owner;
    }
    return out;
  }

  if (cmd == "STATUS") {
    if (tokens.size() != 2) return "ERR usage: STATUS name";
    auto it = apps_.find(tokens[1]);
    if (it == apps_.end()) return "ERR no such job";
    const AppState& s = it->second;
    std::string out = "OK " + tokens[1] + " phase=" + phase_name(s.phase) +
                      " done=" + std::to_string(s.done_ranks.size()) + "/" +
                      std::to_string(s.job.nprocs) +
                      " restarts=" + std::to_string(s.restart_count);
    if (s.hosting) {
      out += " local_ranks=";
      bool first = true;
      for (const auto& [rank, proc] : s.locals) {
        if (!first) out += ",";
        out += std::to_string(rank);
        first = false;
      }
    }
    return out;
  }

  if (cmd == "NODES") {
    std::string out = "OK " + std::to_string(last_heavy_view_.members.size()) + " node(s)";
    for (const auto& m : last_heavy_view_.members) {
      out += "\nhost" + std::to_string(m.id.host) +
             (node_enabled(m.id.host) ? " enabled" : " disabled") +
             (m.id == group_->self() ? " *" : "");
    }
    return out;
  }

  // The remaining commands mutate application or cluster state.
  auto check_owner = [&](const std::string& app) -> std::optional<std::string> {
    auto it = apps_.find(app);
    if (it == apps_.end()) return "ERR no such job";
    if (!admin && it->second.job.owner != user) return "ERR not your job";
    return std::nullopt;
  };

  if (cmd == "SUSPEND" || cmd == "RESUME" || cmd == "DELETE") {
    if (tokens.size() != 2) return "ERR usage: " + cmd + " name";
    if (auto err = check_owner(tokens[1])) return *err;
    if (cmd == "SUSPEND") suspend_app(tokens[1]);
    if (cmd == "RESUME") resume_app(tokens[1]);
    if (cmd == "DELETE") delete_app(tokens[1]);
    return "OK " + util::to_lower(cmd) + " requested";
  }

  if (cmd == "SET") {
    if (!admin) return "ERR management session required";
    if (tokens.size() != 3) return "ERR usage: SET key value";
    set_config(tokens[1], tokens[2]);
    return "OK set requested";
  }

  if (cmd == "GET") {
    if (tokens.size() != 2) return "ERR usage: GET key";
    auto v = get_config(tokens[1]);
    return v ? "OK " + *v : "ERR unset";
  }

  if (cmd == "MIGRATE") {
    // MIGRATE <app> <rank> <dest-node> — admin or owner; requires a
    // coordinated C/R protocol and must be issued to a hosting daemon.
    if (tokens.size() != 4) return "ERR usage: MIGRATE app rank node";
    if (auto err = check_owner(tokens[1])) return *err;
    auto rank = util::parse_int(tokens[2]);
    auto node = util::parse_int(tokens[3]);
    if (!rank || *rank < 0 || !node || *node < 0) return "ERR bad rank or node";
    auto it = apps_.find(tokens[1]);
    if (!it->second.hosting) return "ERR not hosted on this daemon; connect to a hosting node";
    migrate(tokens[1], static_cast<uint32_t>(*rank), static_cast<sim::HostId>(*node));
    return "OK migration started";
  }

  if (cmd == "NODE") {
    if (!admin) return "ERR management session required";
    if (tokens.size() != 3) return "ERR usage: NODE ENABLE|DISABLE id";
    auto id = util::parse_int(tokens[2]);
    if (!id || *id < 0) return "ERR bad node id";
    const std::string action = util::to_upper(tokens[1]);
    if (action == "ENABLE") {
      node_ctl(static_cast<sim::HostId>(*id), true);
    } else if (action == "DISABLE") {
      node_ctl(static_cast<sim::HostId>(*id), false);
    } else {
      return "ERR usage: NODE ENABLE|DISABLE id";
    }
    return "OK node control requested";
  }

  return "ERR unknown command '" + cmd + "'";
}

}  // namespace starfish::daemon
