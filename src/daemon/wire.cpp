#include "daemon/wire.hpp"

namespace starfish::daemon {

namespace {

void put_addr(util::Writer& w, const net::NetAddr& a) {
  w.u32(a.host);
  w.u32(a.port);
}

net::NetAddr get_addr(util::Reader& r) {
  net::NetAddr a;
  a.host = r.u32().value_or(sim::kInvalidHost);
  a.port = r.u32().value_or(0);
  return a;
}

}  // namespace

// ------------------------------------------------------------------ job ----

util::Bytes JobSpec::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.str(name);
  w.str(binary);
  w.u32(nprocs);
  w.u8(static_cast<uint8_t>(policy));
  w.u8(static_cast<uint8_t>(protocol));
  w.u8(static_cast<uint8_t>(level));
  w.i64(ckpt_interval);
  w.u32(static_cast<uint32_t>(args.size()));
  for (const auto& a : args) w.str(a);
  w.str(owner);
  w.boolean(forked_ckpt);
  w.boolean(incremental_ckpt);
  return out;
}

util::Result<JobSpec> JobSpec::decode(util::Reader& r) {
  JobSpec j;
  auto name = r.str();
  if (!name) return name.error();
  j.name = name.value();
  auto binary = r.str();
  if (!binary) return binary.error();
  j.binary = binary.value();
  j.nprocs = r.u32().value_or(1);
  j.policy = static_cast<FtPolicy>(r.u8().value_or(0));
  j.protocol = static_cast<CrProtocol>(r.u8().value_or(0));
  j.level = static_cast<CkptLevel>(r.u8().value_or(1));
  j.ckpt_interval = r.i64().value_or(0);
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) j.args.push_back(r.str().value_or(""));
  j.owner = r.str().value_or("user");
  j.forked_ckpt = r.boolean().value_or(false);
  j.incremental_ckpt = r.boolean().value_or(false);
  return j;
}

const char* policy_name(FtPolicy p) {
  switch (p) {
    case FtPolicy::kKill: return "kill";
    case FtPolicy::kRestart: return "restart";
    case FtPolicy::kNotifyViews: return "notify";
  }
  return "?";
}

const char* protocol_name(CrProtocol p) {
  switch (p) {
    case CrProtocol::kNone: return "none";
    case CrProtocol::kStopAndSync: return "stop-and-sync";
    case CrProtocol::kChandyLamport: return "chandy-lamport";
    case CrProtocol::kUncoordinated: return "uncoordinated";
  }
  return "?";
}

// ---------------------------------------------------------------- heavy ----

util::Bytes HeavyMsg::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(kind));
  w.bytes(util::as_bytes_view(job.encode()));
  w.str(key);
  w.str(value);
  w.u32(host);
  w.boolean(enable);
  w.str(app);
  w.u32(rank);
  w.u64(epoch);
  w.u32(wepoch);
  return out;
}

util::Result<HeavyMsg> HeavyMsg::decode(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  HeavyMsg m;
  m.kind = static_cast<HeavyKind>(r.u8().value_or(0));
  auto job_bytes = r.bytes();
  if (!job_bytes) return job_bytes.error();
  util::Reader jr(util::as_bytes_view(job_bytes.value()));
  auto job = JobSpec::decode(jr);
  if (!job) return job.error();
  m.job = std::move(job).take();
  m.key = r.str().value_or("");
  m.value = r.str().value_or("");
  m.host = r.u32().value_or(0);
  m.enable = r.boolean().value_or(true);
  m.app = r.str().value_or("");
  m.rank = r.u32().value_or(0);
  m.epoch = r.u64().value_or(0);
  m.wepoch = r.u32().value_or(0);
  return m;
}

// ------------------------------------------------------------------ app ----

util::Bytes AppMsg::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(kind));
  w.u32(wiring_epoch);
  w.u32(rank);
  put_addr(w, addr);
  w.bytes(util::as_bytes_view(payload));
  return out;
}

util::Result<AppMsg> AppMsg::decode(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  AppMsg m;
  m.kind = static_cast<AppKind>(r.u8().value_or(0));
  m.wiring_epoch = r.u32().value_or(0);
  m.rank = r.u32().value_or(0);
  m.addr = get_addr(r);
  auto payload = r.bytes();
  if (!payload) return payload.error();
  m.payload = std::move(payload).take();
  return m;
}

// ----------------------------------------------------------------- link ----

util::Bytes LinkMsg::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(kind));
  w.u32(wiring_epoch);
  w.u32(static_cast<uint32_t>(world.size()));
  for (const auto& a : world) put_addr(w, a);
  w.u64(restore_epoch);
  w.u64(view_seq);
  w.u32(static_cast<uint32_t>(live_ranks.size()));
  for (uint32_t r : live_ranks) w.u32(r);
  w.bytes(util::as_bytes_view(payload));
  put_addr(w, vni_addr);
  w.boolean(ok);
  w.str(text);
  w.u32(spawn_extra);
  return out;
}

util::Result<LinkMsg> LinkMsg::decode(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  LinkMsg m;
  m.kind = static_cast<LinkKind>(r.u8().value_or(0));
  m.wiring_epoch = r.u32().value_or(0);
  const uint32_t nw = r.u32().value_or(0);
  for (uint32_t i = 0; i < nw; ++i) m.world.push_back(get_addr(r));
  m.restore_epoch = r.u64().value_or(kNoRestore);
  m.view_seq = r.u64().value_or(0);
  const uint32_t nl = r.u32().value_or(0);
  for (uint32_t i = 0; i < nl; ++i) m.live_ranks.push_back(r.u32().value_or(0));
  auto payload = r.bytes();
  if (!payload) return payload.error();
  m.payload = std::move(payload).take();
  m.vni_addr = get_addr(r);
  m.ok = r.boolean().value_or(true);
  m.text = r.str().value_or("");
  m.spawn_extra = r.u32().value_or(0);
  return m;
}

}  // namespace starfish::daemon
