// Message formats of the daemon plane (paper table 1):
//  * HeavyMsg   — "control messages" between daemons, totally ordered in the
//                 Starfish group (submissions, cluster configuration).
//  * AppMsg     — per-application messages in the app's lightweight group
//                 (address exchange, relayed coordination, failure events).
//                 Coordination payloads are opaque to daemons, as the paper
//                 requires.
//  * LinkMsg    — the local "TCP" connection between a daemon's lightweight
//                 endpoint module and its application process's group
//                 handler (configuration + lightweight membership messages,
//                 paper section 2.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "daemon/job.hpp"
#include "net/network.hpp"
#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::daemon {

constexpr uint64_t kNoRestore = UINT64_MAX;

// ---------------------------------------------------------------- heavy ----

enum class HeavyKind : uint8_t {
  kSubmit = 1,
  kSetConfig = 2,
  kNodeCtl = 3,
  kDeleteApp = 4,
  kSuspendApp = 5,
  kResumeApp = 6,
  kMigrateExec = 7,  ///< move one rank to another node, restoring `epoch`
  kGrowApp = 8,      ///< MPI-2 dynamic spawn: add `rank` new ranks to `app`
};

struct HeavyMsg {
  HeavyKind kind = HeavyKind::kSubmit;
  JobSpec job;          ///< kSubmit
  std::string key;      ///< kSetConfig
  std::string value;    ///< kSetConfig
  uint32_t host = 0;    ///< kNodeCtl / kMigrateExec: destination node
  bool enable = true;   ///< kNodeCtl
  std::string app;      ///< kDeleteApp / kSuspendApp / kResumeApp / kMigrateExec
  uint32_t rank = 0;    ///< kMigrateExec: rank to move; kGrowApp: extra ranks
  uint64_t epoch = 0;   ///< kMigrateExec: committed epoch to restore
  uint32_t wepoch = 0;  ///< kMigrateExec: the wiring epoch this move creates

  util::Bytes encode() const;
  static util::Result<HeavyMsg> decode(const util::Bytes& bytes);
};

// ------------------------------------------------------------------ app ----

enum class AppKind : uint8_t {
  kAddr = 1,        ///< data-path address of one rank (wiring exchange)
  kCoord = 2,       ///< opaque C/R or application coordination payload
  kProcFailed = 3,  ///< a process died without its node dying
  kRankDone = 4,    ///< a rank finished cleanly
  kCheckpointNow = 5,  ///< system-initiated checkpoint request (migration)
};

struct AppMsg {
  AppKind kind = AppKind::kCoord;
  uint32_t wiring_epoch = 0;  ///< kAddr
  uint32_t rank = 0;          ///< kAddr / kProcFailed / kRankDone
  net::NetAddr addr;          ///< kAddr
  util::Bytes payload;        ///< kCoord (opaque)

  util::Bytes encode() const;
  static util::Result<AppMsg> decode(const util::Bytes& bytes);
};

// ----------------------------------------------------------------- link ----

enum class LinkKind : uint8_t {
  // daemon -> process
  kConfigure = 1,  ///< world wiring (+ restore directive on restart)
  kAppView = 2,    ///< dynamicity upcall: set of live ranks changed
  kCoord = 3,      ///< relayed coordination payload
  kSuspend = 4,
  kResume = 5,
  kTerminate = 6,
  // process -> daemon
  kReady = 7,      ///< process booted; reports its VNI address
  kCoordSend = 8,  ///< please multicast this payload in the app's group
  kDone = 9,       ///< application code finished (ok or trap)
  kOutput = 10,    ///< application console output
  kCheckpointNow = 11,  ///< daemon -> process: take a checkpoint now
  kSpawnReq = 12,       ///< process -> daemon: MPI-2 spawn downcall
};

struct LinkMsg {
  LinkKind kind = LinkKind::kReady;
  // kConfigure
  uint32_t wiring_epoch = 0;
  std::vector<net::NetAddr> world;  ///< VNI address per rank
  uint64_t restore_epoch = kNoRestore;
  // kAppView
  uint64_t view_seq = 0;
  std::vector<uint32_t> live_ranks;
  // kCoord / kCoordSend
  util::Bytes payload;
  // kReady
  net::NetAddr vni_addr;
  // kSpawnReq
  uint32_t spawn_extra = 0;
  // kDone / kOutput
  bool ok = true;
  std::string text;

  util::Bytes encode() const;
  static util::Result<LinkMsg> decode(const util::Bytes& bytes);
};

}  // namespace starfish::daemon
