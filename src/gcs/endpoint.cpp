#include "gcs/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "util/log.hpp"

namespace starfish::gcs {

namespace {
constexpr const char* kLog = "gcs";

/// STARFISH_GCS_TOPOLOGY=flat|tree picks the dissemination topology for
/// every endpoint whose config did not pin one explicitly. Topology never
/// changes the delivered stream (tests/gcs_differential_test.cpp), so CI
/// tiers use this to drive the whole suite down the tree path without
/// editing each test.
Topology topology_from_env(const std::optional<Topology>& from_config) {
  if (from_config) return *from_config;
  const char* env = std::getenv("STARFISH_GCS_TOPOLOGY");
  if (env != nullptr && std::string_view(env) == "tree") return Topology::kTree;
  return Topology::kFlat;
}

/// STARFISH_GCS_FANOUT=k overrides the tree fan-out when the config keeps
/// the default.
uint32_t fanout_from_env(uint32_t from_config) {
  if (from_config != GroupConfig{}.tree_fanout) return from_config;
  const char* env = std::getenv("STARFISH_GCS_FANOUT");
  if (env == nullptr) return from_config;
  const long k = std::strtol(env, nullptr, 10);
  return k >= 2 ? static_cast<uint32_t>(k) : from_config;
}

std::pair<uint64_t, uint32_t> marker(uint64_t view_id, uint32_t attempt) {
  return {view_id, attempt};
}

/// Cap on ORDER resends per heartbeat when repairing a stalled member, so a
/// huge gap is streamed out a window at a time instead of in one burst.
constexpr int kMaxGapRepair = 64;

/// Moves m[from] to m[to], keeping the larger value if both keys exist.
template <typename V>
void remap_key(std::map<MemberId, V>& m, const MemberId& from, const MemberId& to) {
  auto it = m.find(from);
  if (it == m.end()) return;
  V& slot = m[to];
  slot = std::max(slot, it->second);
  m.erase(from);
}
}  // namespace

std::string View::to_string() const {
  std::string s = "view" + std::to_string(view_id) + "{";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i) s += ",";
    s += members[i].id.to_string();
  }
  return s + "}";
}

GroupEndpoint::GroupEndpoint(net::Network& net, sim::Host& host, GroupConfig config,
                             Callbacks callbacks)
    : net_(net),
      host_(host),
      config_(config),
      callbacks_(std::move(callbacks)),
      self_{host.id(), host.incarnation()},
      topology_(topology_from_env(config.topology)),
      fanout_(fanout_from_env(config.tree_fanout)),
      endpoint_(net.bind(host.id(), config.control_port, config.transport)) {
  obs_refresh();
}

GroupEndpoint::~GroupEndpoint() { shutdown(); }

void GroupEndpoint::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  endpoint_->close();
  // close() only *schedules* the parked rx fiber; it resumes at a later
  // engine step, by which time this object may already be destroyed (a
  // graceful teardown-and-rebind does exactly that). Kill both fibers so
  // they unwind via FiberKilled at their blocking points instead of
  // re-entering loops that read freed members. The rx fiber's spawn
  // lambda pins the datagram endpoint, so its wait-list self-removal on
  // the unwind path touches a live channel even after we are gone.
  if (rx_fiber_) net_.engine().kill(rx_fiber_);
  if (tick_fiber_) net_.engine().kill(tick_fiber_);
}

void GroupEndpoint::start_founding(const std::vector<net::NetAddr>& founders) {
  View v;
  v.view_id = 1;
  for (size_t i = 0; i < founders.size(); ++i) {
    // Our own entry carries our real incarnation (a founder restarted after
    // a crash is not incarnation 0); peers start at 0 and are upgraded by
    // resolve_incarnation() on first contact.
    const MemberId id =
        founders[i] == addr() ? self_ : MemberId{founders[i].host, 0};
    v.members.push_back(Member{id, static_cast<uint32_t>(i), founders[i]});
  }
  assert(v.contains(self_) && "founding list must include this endpoint");
  // Synthesize the INSTALL of the founding view so laggard re-teaching
  // (kInstallReq / stale kPrepare) works from view 1 onwards.
  last_install_ = base_msg(MsgKind::kInstall);
  last_install_.view_id = v.view_id;
  last_install_.members = v.members;
  view_ = v;
  in_view_ = true;
  change_view_id_ = v.view_id;
  change_attempt_ = 0;
  const sim::Time now = net_.engine().now();
  for (const auto& m : view_.members) last_heard_[m.id] = now;
  views_installed_ = 1;
  rebuild_tree();

  // `ep` pins the channel the fiber parks on: a shutdown-then-destroy from
  // the serial phase must leave the wait-list alive until the killed fiber
  // resumes and removes its own entry (see shutdown()).
  rx_fiber_ = host_.spawn("gcs-rx", [this, ep = endpoint_] {
    if (callbacks_.on_view) callbacks_.on_view(view_);
    rx_loop();
  });
  tick_fiber_ = host_.spawn("gcs-tick", [this] { tick_loop(); });
}

void GroupEndpoint::start_joining(const std::vector<net::NetAddr>& seeds) {
  join_seeds_ = seeds;
  rx_fiber_ = host_.spawn("gcs-rx", [this, ep = endpoint_] { rx_loop(); });
  tick_fiber_ = host_.spawn("gcs-tick", [this] { tick_loop(); });
}

void GroupEndpoint::leave() {
  if (!in_view_ || leaving_) return;
  leaving_ = true;
  if (is_coordinator()) {
    leavers_.insert(self_);
    if (phase_ == Phase::kNormal) initiate_change();
    return;
  }
  WireMsg msg = base_msg(MsgKind::kLeaveReq);
  msg.view_id = view_.view_id;  // lets the coordinator discard stale copies
  send_to_member(view_.coordinator(), msg);
  // tick_loop() re-sends every beat until the view without us installs, so
  // a LEAVE_REQ lost on the wire cannot wedge the departure forever.
}

void GroupEndpoint::multicast(util::Bytes payload) {
  const uint64_t id = ++next_msg_id_;
  pending_.emplace_back(id, payload);
  pending_sent_at_ = net_.engine().now();
  if (in_view_ && phase_ == Phase::kNormal) {
    WireMsg msg = base_msg(MsgKind::kOrderReq);
    msg.msg_id = id;
    msg.payload = std::move(payload);
    send_to_member(view_.coordinator(), msg);
  }
  // Otherwise held; resend_pending() submits it after the next install.
}

// ------------------------------------------------------------- fibers ----

void GroupEndpoint::rx_loop() {
  for (;;) {
    auto r = endpoint_->recv();
    if (!r.ok()) return;  // endpoint closed: shutdown or host crash
    auto decoded = WireMsg::decode(r.value->payload);
    if (!decoded.ok()) {
      STARFISH_LOG(kWarn, kLog) << self_.to_string()
                                << " dropping undecodable control message: "
                                << decoded.error().to_string();
      continue;
    }
    handle(decoded.value());
  }
}

void GroupEndpoint::tick_loop() {
  while (!shut_down_) {
    net_.engine().sleep(config_.heartbeat_period);
    if (shut_down_) return;
    const sim::Time now = net_.engine().now();

    if (!in_view_) {
      if (!join_seeds_.empty() && !leaving_) {
        WireMsg msg = base_msg(MsgKind::kJoinReq);
        for (const auto& seed : join_seeds_) {
          if (seed != addr()) send_to(seed, msg);
        }
      }
      continue;
    }

    // Heartbeats advertising our view and delivery progress so peers can
    // garbage-collect stable messages (and so laggards notice a view they
    // missed). Flat: all-to-all. Tree: one aggregated summary up to the
    // nearest live ancestor plus the full table down to each child, so the
    // coordinator sees O(k) streams instead of O(n).
    WireMsg hb = base_msg(MsgKind::kHeartbeat);
    hb.view_id = view_.view_id;
    hb.delivered = delivered_gseq_;
    if (topology_ == Topology::kTree && view_.size() > 1) {
      send_tree_heartbeats(hb);
    } else {
      for (const auto& m : view_.members) {
        if (m.id != self_) send_to_member(m, hb);
      }
    }
    check_failures();

    // A departure request outstanding across a whole beat means the
    // LEAVE_REQ (or the resulting INSTALL) was lost; re-ask. The view tag
    // makes duplicates harmless and stale copies discardable.
    if (leaving_ && in_view_ && !is_coordinator() && phase_ == Phase::kNormal) {
      WireMsg lv = base_msg(MsgKind::kLeaveReq);
      lv.view_id = view_.view_id;
      send_to_member(view_.coordinator(), lv);
    }

    // A multicast outstanding for multiple beats means its ORDER_REQ was
    // lost on the way to the sequencer (the heartbeat gap repair covers the
    // ORDER coming back). Resubmit; per-origin msg ids dedupe.
    if (phase_ == Phase::kNormal && !pending_.empty() &&
        now - pending_sent_at_ >= 2 * config_.heartbeat_period) {
      resend_pending();
    }

    // A flush stalled for multiple beats means PREPAREs or FLUSH_OKs were
    // lost; repropose to the members that have not answered yet.
    if (self_is_change_coordinator() && !flush_waiting_.empty() && now <= flush_deadline_ &&
        now - flush_started_ >= 2 * config_.heartbeat_period) {
      WireMsg prep = base_msg(MsgKind::kPrepare);
      prep.view_id = change_view_id_;
      prep.attempt = change_attempt_;
      prep.members = proposed_members_;
      prep.coord_delivered = delivered_gseq_;
      for (const auto& m : view_.members) {
        if (flush_waiting_.contains(m.id)) send_to_member(m, prep);
      }
    }

    // Flush stuck? The change coordinator must have died mid-change.
    if (phase_ == Phase::kFlushing && now > flush_deadline_) {
      if (change_coordinator_ != self_) suspects_.insert(change_coordinator_);
      maybe_initiate_change();
    }

    // Admit pending joiners / process leavers when quiescent.
    if (phase_ == Phase::kNormal && is_coordinator() &&
        (!joiners_.empty() || !leavers_.empty())) {
      initiate_change();
    }
  }
}

void GroupEndpoint::check_failures() {
  const sim::Time now = net_.engine().now();
  const bool tree = topology_ == Topology::kTree;
  // Tree mode: non-neighbors are only heard through gossip, which lags up
  // to a beat per tree level; pad their timeout accordingly so a healthy
  // member several hops away is not suspected on gossip latency alone.
  // (Direct-neighbor crashes still trip the base timeout, and the neighbor's
  // suspicion rumor reaches everyone at gossip speed, so detection latency
  // stays near-flat.)
  const sim::Duration gossip_slack =
      tree ? (2 * tree_depth_ + 2) * config_.heartbeat_period : 0;
  bool new_suspicion = false;
  for (const auto& m : view_.members) {
    if (m.id == self_) continue;
    auto it = last_heard_.find(m.id);
    const sim::Time heard = it == last_heard_.end() ? 0 : it->second;
    const sim::Duration timeout =
        tree && !tree_neighbor(m.id) ? config_.suspect_timeout + gossip_slack
                                     : config_.suspect_timeout;
    if (now - heard > timeout && !suspects_.contains(m.id)) {
      suspects_.insert(m.id);
      new_suspicion = true;
      STARFISH_LOG(kInfo, kLog) << self_.to_string() << " suspects " << m.id.to_string();
    }
  }
  if (new_suspicion) maybe_initiate_change();
}

void GroupEndpoint::maybe_initiate_change() {
  if (!in_view_) return;
  // Only the lowest-ranked unsuspected member drives a change.
  const Member* leader = nullptr;
  for (const auto& m : view_.members) {
    if (!suspects_.contains(m.id)) {
      leader = &m;
      break;
    }
  }
  if (leader == nullptr || leader->id != self_) return;
  bool needed = !joiners_.empty() || !leavers_.empty();
  for (const auto& m : view_.members) {
    if (suspects_.contains(m.id)) needed = true;
  }
  if (phase_ == Phase::kFlushing && change_coordinator_ == self_ &&
      net_.engine().now() <= flush_deadline_) {
    return;  // our own change is still in progress
  }
  if (needed) initiate_change();
}

void GroupEndpoint::initiate_change() {
  if (obs::Hub* hub = net_.engine().obs()) {
    hub->metrics.counter("gcs.flush_rounds").add(1);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(net_.engine().now()), "gcs",
                          "flush-start view" + std::to_string(view_.view_id + 1), host_.id());
    }
  }
  change_view_id_ = view_.view_id + 1;
  ++change_attempt_;
  change_coordinator_ = self_;
  phase_ = Phase::kFlushing;
  flush_started_ = net_.engine().now();
  flush_deadline_ = flush_started_ + config_.flush_timeout;

  // Snapshot the joiners/leavers this change covers; requests arriving
  // during the flush are kept for the next change.
  change_joiners_ = joiners_;
  change_leavers_ = leavers_;

  // New membership: survivors minus leavers plus joiners.
  proposed_members_.clear();
  uint32_t max_rank = 0;
  for (const auto& m : view_.members) {
    max_rank = std::max(max_rank, m.rank);
    if (suspects_.contains(m.id) || change_leavers_.contains(m.id)) continue;
    proposed_members_.push_back(m);
  }
  std::vector<std::pair<MemberId, net::NetAddr>> joiners(change_joiners_.begin(),
                                                         change_joiners_.end());
  for (size_t i = 0; i < joiners.size(); ++i) {
    proposed_members_.push_back(
        Member{joiners[i].first, max_rank + 1 + static_cast<uint32_t>(i), joiners[i].second});
  }

  // Everyone alive in the old view must flush (including departing leavers —
  // they may hold messages the survivors still need).
  flush_waiting_.clear();
  for (const auto& m : view_.members) {
    if (m.id == self_ || suspects_.contains(m.id)) continue;
    flush_waiting_.insert(m.id);
  }
  // Floor of the retransmission tail: the lowest delivered gseq any flush
  // reports. Starts at "no report yet", NOT at our own delivered gseq — a
  // change coordinator that is itself the laggard would otherwise pin the
  // floor below every peer and re-ship messages all survivors already
  // delivered on every back-to-back view change. finish_change_if_ready()
  // clamps against our own (post-merge) delivered gseq.
  flush_min_delivered_ = std::numeric_limits<uint64_t>::max();

  WireMsg prep = base_msg(MsgKind::kPrepare);
  prep.view_id = change_view_id_;
  prep.attempt = change_attempt_;
  prep.members = proposed_members_;
  prep.coord_delivered = delivered_gseq_;
  for (const auto& m : view_.members) {
    if (flush_waiting_.contains(m.id)) send_to_member(m, prep);
  }
  STARFISH_LOG(kInfo, kLog) << self_.to_string() << " initiating view "
                            << change_view_id_ << " attempt " << change_attempt_;
  finish_change_if_ready();  // no peers to wait for on a 1-member group
}

void GroupEndpoint::finish_change_if_ready() {
  if (!self_is_change_coordinator() || !flush_waiting_.empty()) return;

  // Everything any survivor delivered is now in our log (virtual synchrony).
  deliver_ready();

  // Retransmit only above the view-wide stable point: the min delivered
  // gseq any flush advertised, clamped by our own now that the merge is
  // done (a 1-member flush has no reports; survivors never need messages
  // below what every one of them reported delivered).
  const uint64_t stable_floor = std::min(flush_min_delivered_, delivered_gseq_);
  std::vector<OrderedMsg> retransmit;
  for (const auto& [gseq, om] : delivered_) {
    if (gseq > stable_floor) retransmit.push_back(om);
  }
  obs_refresh();
  if (obs_install_retransmit_ != nullptr) obs_install_retransmit_->add(retransmit.size());

  WireMsg inst = base_msg(MsgKind::kInstall);
  inst.view_id = change_view_id_;
  inst.attempt = change_attempt_;
  inst.members = proposed_members_;
  inst.retransmit = retransmit;
  last_install_ = inst;  // kept to re-teach members whose copy is lost

  // Old members (and leavers) get the plain install; joiners also receive
  // the replicated-state snapshot.
  util::Bytes state;
  if (!change_joiners_.empty() && callbacks_.get_state) state = callbacks_.get_state();
  for (const auto& m : proposed_members_) {
    if (m.id == self_) continue;
    if (change_joiners_.contains(m.id)) {
      WireMsg with_state = inst;
      with_state.has_state = true;
      with_state.state = state;
      send_to_member(m, with_state);
    } else {
      send_to_member(m, inst);
    }
  }
  // Every old-view member missing from the new view — graceful leaver or
  // suspect — is taught the install that excludes it. For a real crash the
  // datagram lands on a dead host and is wasted; for a false suspicion it
  // is essential: nobody heartbeats the excluded member anymore, so without
  // this INSTALL it would suspect everyone in turn, wedge itself into a
  // singleton view and never trigger the auto-rejoin path.
  const View next_view{change_view_id_, proposed_members_};
  for (const auto& m : view_.members) {
    if (m.id != self_ && !next_view.contains(m.id)) send_to_member(m, inst);
  }

  for (const auto& [id, a] : change_joiners_) joiners_.erase(id);
  for (const auto& id : change_leavers_) leavers_.erase(id);
  change_joiners_.clear();
  change_leavers_.clear();
  install_view(View{change_view_id_, proposed_members_}, {});
}

// ------------------------------------------------------------ handlers ----

void GroupEndpoint::handle(const WireMsg& msg) {
  // Joins are the one message an endpoint legitimately sends before it is a
  // member, so they never resolve an incarnation (a rebooted host must be
  // excluded and re-admitted, not aliased onto its dead predecessor).
  if (msg.kind != MsgKind::kJoinReq) resolve_incarnation(msg);
  switch (msg.kind) {
    case MsgKind::kHeartbeat: handle_heartbeat(msg); break;
    case MsgKind::kJoinReq: handle_join_req(msg); break;
    case MsgKind::kLeaveReq: handle_leave_req(msg); break;
    case MsgKind::kOrderReq: handle_order_req(msg); break;
    case MsgKind::kOrder: handle_order(msg); break;
    case MsgKind::kPrepare: handle_prepare(msg); break;
    case MsgKind::kFlushOk: handle_flush_ok(msg); break;
    case MsgKind::kInstall: handle_install(msg); break;
    case MsgKind::kInstallReq: handle_install_req(msg); break;
  }
}

void GroupEndpoint::resolve_incarnation(const WireMsg& msg) {
  if (!in_view_ || view_.contains(msg.from)) return;
  for (auto& m : view_.members) {
    if (m.addr != msg.from_addr || m.id.host != msg.from.host ||
        m.id.incarnation >= msg.from.incarnation) {
      continue;
    }
    // The view records this host/address under an older incarnation (a
    // founding list assumes 0); the first message from the live endpoint
    // reveals the real one. Upgrade in place so failure detection, flushes
    // and sequencing address the member that actually exists.
    adopt_incarnation(m, msg.from);
    return;
  }
}

void GroupEndpoint::adopt_incarnation(Member& m, MemberId fresh) {
  const MemberId old = m.id;
  m.id = fresh;
  remap_key(last_heard_, old, m.id);
  remap_key(peer_delivered_, old, m.id);
  remap_key(hb_prev_delivered_, old, m.id);
  remap_key(last_delivered_msg_id_, old, m.id);
  remap_key(last_sequenced_msg_id_, old, m.id);
  if (suspects_.erase(old) > 0) suspects_.insert(m.id);
  if (flush_waiting_.erase(old) > 0) flush_waiting_.insert(m.id);
  if (change_coordinator_ == old) change_coordinator_ = m.id;
  for (auto& pm : proposed_members_) {
    if (pm.id == old) pm.id = m.id;
  }
  // The tree caches Member copies and the gossip table is keyed by id;
  // rebuild both against the upgraded view.
  rebuild_tree();
  STARFISH_LOG(kInfo, kLog) << self_.to_string() << " resolved member " << old.to_string()
                            << " -> " << m.id.to_string();
}

void GroupEndpoint::handle_heartbeat(const WireMsg& msg) {
  const sim::Time now = net_.engine().now();
  last_heard_[msg.from] = now;
  if (in_view_ && msg.view_id > view_.view_id) {
    // The sender installed a view we never saw: our INSTALL was lost. Give
    // it one beat of grace (the install may simply still be in flight),
    // then ask the sender to re-teach it.
    if (behind_since_ == 0) {
      behind_since_ = now;
    } else if (now - behind_since_ >= config_.heartbeat_period) {
      WireMsg req = base_msg(MsgKind::kInstallReq);
      req.view_id = view_.view_id;
      send_to(msg.from_addr, req);
      behind_since_ = now;
    }
    return;  // the sender's gseq space is not ours: no stability / repair
  }
  if (msg.view_id < view_.view_id) return;  // stale: old gseq space
  behind_since_ = 0;
  obs_refresh();
  // Stability bookkeeping: a message every view member has delivered can
  // never be requested during a flush, so it is prunable from the log.
  peer_delivered_[msg.from] = std::max(peer_delivered_[msg.from], msg.delivered);

  // Tree mode: the beat aggregates observations about members we never hear
  // directly. Merge them (liveness, progress, suspicion rumors) and note
  // which ones carry a genuinely new observation — only those feed the
  // sequencer's stall repair, so gossip lag can't fake a repeated value.
  std::vector<std::pair<MemberId, uint64_t>> fresh_gossip;
  if (topology_ == Topology::kTree) {
    merge_hb_entry(
        HbEntry{msg.from, msg.view_id, msg.delivered, static_cast<uint64_t>(now), false});
    bool rumor = false;
    for (const auto& e : msg.hb_entries) {
      if (e.member == self_) continue;
      const bool fresh = merge_hb_entry(e);
      if (e.view_id != view_.view_id) continue;
      if (fresh) fresh_gossip.emplace_back(e.member, e.delivered);
      if (e.suspected && view_.contains(e.member) && !suspects_.contains(e.member)) {
        suspects_.insert(e.member);
        rumor = true;
        STARFISH_LOG(kInfo, kLog) << self_.to_string() << " adopts suspicion of "
                                  << e.member.to_string() << " (rumor from "
                                  << msg.from.to_string() << ")";
      }
    }
    if (rumor) maybe_initiate_change();
  }

  if (phase_ != Phase::kNormal) return;
  gc_stable();

  // Gap repair (sequencer side): a peer whose advertised delivered repeats
  // while it was already behind us a full beat ago lost an ORDER; fault-free
  // a fan-out always lands well inside one beat, so this can only fire when
  // the wire actually dropped it. Resend the suffix it is missing. Tree
  // mode runs the same detector over freshly gossiped observations, so the
  // root repairs members it never hears directly (e.g. a subtree orphaned
  // by an interior crash).
  note_progress_and_repair(msg.from, msg.delivered);
  for (const auto& [member, delivered] : fresh_gossip) {
    if (member != msg.from) note_progress_and_repair(member, delivered);
  }
}

void GroupEndpoint::note_progress_and_repair(MemberId from, uint64_t advertised) {
  if (is_coordinator() && delivered_gseq_ > advertised) {
    const auto prev = hb_prev_delivered_.find(from);
    const bool stalled = prev != hb_prev_delivered_.end() &&
                         prev->second.first == advertised && prev->second.second > advertised;
    hb_prev_delivered_[from] = {advertised, delivered_gseq_};
    const Member* m = member_by_id(from);
    if (stalled && m != nullptr && m->id != self_) {
      int resent = 0;
      for (auto it = delivered_.upper_bound(advertised);
           it != delivered_.end() && resent < kMaxGapRepair; ++it, ++resent) {
        WireMsg order = base_msg(MsgKind::kOrder);
        order.gseq = it->first;
        order.origin = it->second.origin;
        order.msg_id = it->second.msg_id;
        order.payload = it->second.payload;
        order.view_id = view_.view_id;
        if (topology_ == Topology::kTree) order.delivered = delivered_gseq_;
        send_to_member(*m, order);
      }
      if (resent > 0 && obs_repairs_ != nullptr) obs_repairs_->add(resent);
    }
  } else {
    hb_prev_delivered_.erase(from);
  }
}

void GroupEndpoint::gc_stable() {
  uint64_t stable = delivered_gseq_;
  for (const auto& m : view_.members) {
    if (m.id == self_) continue;
    auto it = peer_delivered_.find(m.id);
    stable = std::min(stable, it == peer_delivered_.end() ? 0 : it->second);
  }
  if (stable > 0) delivered_.erase(delivered_.begin(), delivered_.lower_bound(stable));
}

bool GroupEndpoint::merge_hb_entry(const HbEntry& e) {
  auto it = hb_table_.find(e.member);
  if (it == hb_table_.end()) {
    // A gossiped row can reveal a live incarnation this member has never
    // heard from directly: in tree mode non-neighbors exchange no datagrams,
    // so a founder that rebooted before the group formed only ever reaches
    // us through aggregated tables. Upgrade the view entry exactly as a
    // direct message would (incarnations are monotone, so this is safe).
    for (auto& m : view_.members) {
      if (m.id.host == e.member.host && m.id.incarnation < e.member.incarnation) {
        adopt_incarnation(m, e.member);
        it = hb_table_.find(e.member);  // rebuild_tree() reseeded the table
        break;
      }
    }
    if (it == hb_table_.end()) return false;  // not a member of this view
  }
  HbEntry& slot = it->second;
  bool fresh = false;
  if (e.heard_at > slot.heard_at) {
    slot.view_id = e.view_id;
    slot.delivered = e.delivered;
    slot.heard_at = e.heard_at;
    fresh = true;
  }
  // Suspicion is monotonic within a view, so the flag ORs in regardless of
  // the observation's age (the rumor rides an entry whose heard_at froze
  // the moment its neighbor stopped hearing it).
  if (e.suspected && e.view_id == view_.view_id && !slot.suspected) {
    slot.suspected = true;
    fresh = true;
  }
  auto& heard = last_heard_[e.member];
  heard = std::max(heard, static_cast<sim::Time>(e.heard_at));
  if (e.view_id == view_.view_id) {
    peer_delivered_[e.member] = std::max(peer_delivered_[e.member], e.delivered);
  }
  return fresh;
}

void GroupEndpoint::handle_join_req(const WireMsg& msg) {
  if (!in_view_ || !is_coordinator()) return;
  if (view_.contains(msg.from) || joiners_.contains(msg.from)) return;
  joiners_[msg.from] = msg.from_addr;
  STARFISH_LOG(kInfo, kLog) << self_.to_string() << " join request from "
                            << msg.from.to_string();
  if (phase_ == Phase::kNormal) initiate_change();
}

void GroupEndpoint::handle_leave_req(const WireMsg& msg) {
  if (!in_view_ || !is_coordinator()) return;
  if (!view_.contains(msg.from)) return;
  // A LEAVE_REQ from an earlier view is a stale duplicate (the member
  // re-sends every beat until the departure installs); honoring it after
  // the member rejoined would kick it out again.
  if (msg.view_id != view_.view_id) return;
  leavers_.insert(msg.from);
  if (phase_ == Phase::kNormal) initiate_change();
}

void GroupEndpoint::handle_order_req(const WireMsg& msg) {
  if (!in_view_ || !is_coordinator() || phase_ != Phase::kNormal) return;
  if (!view_.contains(msg.from)) return;
  // Idempotent re-sequencing after view changes: skip anything this origin
  // already had sequenced or delivered.
  auto seq_it = last_sequenced_msg_id_.find(msg.from);
  if (seq_it != last_sequenced_msg_id_.end() && msg.msg_id <= seq_it->second) return;
  auto del_it = last_delivered_msg_id_.find(msg.from);
  if (del_it != last_delivered_msg_id_.end() && msg.msg_id <= del_it->second) return;
  sequence_and_fanout(msg.from, msg.msg_id, msg.payload);
}

void GroupEndpoint::sequence_and_fanout(MemberId origin, uint64_t msg_id, util::Bytes payload) {
  last_sequenced_msg_id_[origin] = msg_id;
  WireMsg order = base_msg(MsgKind::kOrder);
  order.gseq = ++next_gseq_;
  order.origin = origin;
  order.msg_id = msg_id;
  order.view_id = view_.view_id;
  order.payload = std::move(payload);
  // Note: no blocking point inside this fan-out, so it is atomic with
  // respect to crashes of this coordinator — all live members receive it.
  obs_refresh();
  if (topology_ == Topology::kTree) {
    // Down the tree: ourselves (the root delivers through the same receive
    // path as everyone else) plus our direct children, who relay onward —
    // O(k) wire messages at the sequencer instead of O(n).
    order.delivered = delivered_gseq_;
    send_to(endpoint_->addr(), order);
    for (const auto& c : tree_children_) send_to_member(c, order);
    if (obs_seq_sends_ != nullptr) obs_seq_sends_->add(1 + tree_children_.size());
  } else {
    for (const auto& m : view_.members) send_to_member(m, order);
    if (obs_seq_sends_ != nullptr) obs_seq_sends_->add(view_.members.size());
  }
}

void GroupEndpoint::forward_order(const WireMsg& msg) {
  if (tree_children_.empty()) return;
  WireMsg relay = msg;
  relay.from = self_;
  relay.from_addr = endpoint_->addr();
  // Piggybacked ack: our delivered gseq rides every relayed ORDER, so
  // stability advances along the tree without dedicated ack messages.
  relay.delivered = delivered_gseq_;
  for (const auto& c : tree_children_) send_to_member(c, relay);
  if (obs_tree_forwards_ != nullptr) obs_tree_forwards_->add(tree_children_.size());
}

void GroupEndpoint::handle_order(const WireMsg& msg) {
  if (!in_view_ || phase_ != Phase::kNormal) return;
  // gseq spaces restart per view: a stale ORDER from an earlier view (its
  // sender crashed before installing, or the packet outlived the view) must
  // not park in — let alone shadow — this view's holdback slots.
  if (msg.view_id != view_.view_id) return;
  if (msg.gseq <= delivered_gseq_) return;  // duplicate
  if (holdback_.contains(msg.gseq)) return;  // duplicate (flush vs. repair overlap)
  obs_refresh();
  if (topology_ == Topology::kTree && msg.from != self_) {
    // Relay down the tree exactly once per gseq (the duplicate guards above
    // dedupe coordinator flushes against peer repairs), and bank the
    // sender's piggybacked delivered gseq for stability.
    peer_delivered_[msg.from] = std::max(peer_delivered_[msg.from], msg.delivered);
    forward_order(msg);
  }
  OrderedMsg om{msg.gseq, msg.origin, msg.msg_id, msg.payload};
  holdback_[om.gseq] = std::move(om);
  // Depth at its high-water point: just after queuing, before draining.
  if (obs_holdback_depth_ != nullptr) obs_holdback_depth_->record(holdback_.size());
  deliver_ready();
}

void GroupEndpoint::deliver_ready() {
  for (auto it = holdback_.begin();
       it != holdback_.end() && it->first == delivered_gseq_ + 1; it = holdback_.begin()) {
    OrderedMsg om = std::move(it->second);
    holdback_.erase(it);
    deliver(om);
  }
}

void GroupEndpoint::deliver(const OrderedMsg& msg) {
  delivered_gseq_ = msg.gseq;
  delivered_[msg.gseq] = msg;
  auto& last = last_delivered_msg_id_[msg.origin];
  last = std::max(last, msg.msg_id);
  if (msg.origin == self_) {
    while (!pending_.empty() && pending_.front().first <= msg.msg_id) pending_.pop_front();
  }
  ++messages_delivered_;
  obs_refresh();
  if (obs_delivered_ != nullptr) obs_delivered_->add(1);
  if (callbacks_.on_message) callbacks_.on_message(msg.origin, msg.payload);
}

void GroupEndpoint::handle_prepare(const WireMsg& msg) {
  if (!in_view_) return;
  if (msg.view_id <= view_.view_id) {
    // The proposer missed the INSTALL that completed this (or an earlier)
    // change — it may even have been excluded by it. Re-teach it the current
    // view instead of letting it propose ever-higher attempts forever.
    if (phase_ == Phase::kNormal && last_install_.view_id == view_.view_id) {
      send_to(msg.from_addr, last_install_);
    }
    return;
  }
  if (msg.view_id > view_.view_id + 1) {
    // We are at least one whole view behind the proposer; our buffered
    // messages belong to an older gseq space and would corrupt the flush.
    // Ask for the INSTALL we missed instead of answering.
    WireMsg req = base_msg(MsgKind::kInstallReq);
    req.view_id = view_.view_id;
    send_to(msg.from_addr, req);
    return;
  }
  const auto incoming = marker(msg.view_id, msg.attempt);
  const auto current = marker(change_view_id_, change_attempt_);
  if (incoming < current) return;
  if (incoming == current &&
      !(phase_ == Phase::kFlushing && change_coordinator_ == msg.from)) {
    return;
  }
  // An equal marker re-sent by the current change coordinator means our
  // FLUSH_OK was lost; answering again is idempotent.
  phase_ = Phase::kFlushing;
  change_view_id_ = msg.view_id;
  change_attempt_ = msg.attempt;
  change_coordinator_ = msg.from;
  flush_deadline_ = net_.engine().now() + config_.flush_timeout;

  WireMsg flush = base_msg(MsgKind::kFlushOk);
  flush.view_id = msg.view_id;
  flush.attempt = msg.attempt;
  flush.delivered = delivered_gseq_;
  for (const auto& [gseq, om] : delivered_) {
    if (gseq > msg.coord_delivered) flush.buffered.push_back(om);
  }
  // Forward the undelivered holdback too: messages parked behind a sequence
  // gap on our side must not die with the view — the coordinator may be
  // able to fill the gap from another member's flush and deliver them
  // (virtual synchrony), where discarding them would lose the message for
  // everyone if we were the only receiver.
  for (const auto& [gseq, om] : holdback_) {
    if (gseq > msg.coord_delivered) flush.buffered.push_back(om);
  }
  send_to(msg.from_addr, flush);
}

void GroupEndpoint::handle_flush_ok(const WireMsg& msg) {
  if (!self_is_change_coordinator()) return;
  if (msg.view_id != change_view_id_ || msg.attempt != change_attempt_) return;
  if (!flush_waiting_.contains(msg.from)) return;
  flush_waiting_.erase(msg.from);
  flush_min_delivered_ = std::min(flush_min_delivered_, msg.delivered);
  for (const auto& om : msg.buffered) {
    if (om.gseq > delivered_gseq_ && !holdback_.contains(om.gseq)) holdback_[om.gseq] = om;
  }
  deliver_ready();
  finish_change_if_ready();
}

void GroupEndpoint::handle_install(const WireMsg& msg) {
  if (msg.view_id <= view_.view_id) return;  // stale
  // Complete the old view: deliver the retransmission tail in order. The
  // tail only makes sense for the view directly below the one installed —
  // gseq spaces restart per view, so a member that skipped a whole view
  // must not merge a foreign sequence space into its holdback.
  if (in_view_ && msg.view_id == view_.view_id + 1) {
    for (const auto& om : msg.retransmit) {
      if (om.gseq > delivered_gseq_ && !holdback_.contains(om.gseq)) holdback_[om.gseq] = om;
    }
    deliver_ready();
  }

  if (msg.has_state && callbacks_.set_state) callbacks_.set_state(msg.state);

  // Remember the install (snapshot stripped) for laggard re-teaching.
  last_install_ = msg;
  last_install_.has_state = false;
  last_install_.state.clear();
  behind_since_ = 0;

  View v{msg.view_id, msg.members};
  if (!v.contains(self_)) {
    // Excluded: we asked to leave, or a false suspicion cut us off.
    in_view_ = false;
    phase_ = Phase::kNormal;
    change_view_id_ = msg.view_id;
    change_attempt_ = msg.attempt;
    // Drop the old view's per-peer bookkeeping: staleness timestamps,
    // progress floors and suspicion state must not leak into a later
    // re-admission (a rejoiner inheriting a stale last-heard entry would be
    // suspected the moment it is back).
    last_heard_.clear();
    peer_delivered_.clear();
    hb_prev_delivered_.clear();
    suspects_.clear();
    holdback_.clear();
    flush_waiting_.clear();
    tree_index_ = -1;
    tree_children_.clear();
    tree_subtree_.clear();
    hb_table_.clear();
    if (!leaving_) {
      // We never asked to leave (our heartbeats must have been lost):
      // rejoin through the survivors instead of silently dropping off.
      join_seeds_.clear();
      for (const auto& m : v.members) join_seeds_.push_back(m.addr);
    }
    if (callbacks_.on_view) callbacks_.on_view(v);
    return;
  }
  install_view(v, msg.retransmit);
}

void GroupEndpoint::handle_install_req(const WireMsg& msg) {
  if (!in_view_ || phase_ != Phase::kNormal) return;
  if (msg.view_id >= view_.view_id) return;  // requester is not behind us
  if (last_install_.view_id != view_.view_id) return;
  send_to(msg.from_addr, last_install_);
}

void GroupEndpoint::install_view(const View& v, const std::vector<OrderedMsg>&) {
  if (obs::Hub* hub = net_.engine().obs()) {
    hub->metrics.counter("gcs.views_installed").add(1);
    if (obs::Tracer* t = net_.engine().tracer()) {
      const auto now = static_cast<uint64_t>(net_.engine().now());
      // Flushing members render the whole blocked window as a span; members
      // installed without flushing (joiners) get an instant marker.
      if (phase_ == Phase::kFlushing && flush_started_ > 0) {
        t->complete(static_cast<uint64_t>(flush_started_),
                    now - static_cast<uint64_t>(flush_started_), "gcs",
                    "view-change view" + std::to_string(v.view_id), host_.id());
      } else {
        t->instant(now, "gcs", "view-installed view" + std::to_string(v.view_id), host_.id());
      }
    }
  }
  // Members joining in this view start their per-origin msg-id counters
  // afresh: a member that left gracefully and later rejoined under the same
  // incarnation numbers its multicasts from 1 again, and a stale high-water
  // mark from its previous tenure would silently discard every one of them.
  for (const auto& m : v.members) {
    if (!view_.contains(m.id)) last_delivered_msg_id_.erase(m.id);
  }
  view_ = v;
  in_view_ = true;
  delivered_gseq_ = 0;
  next_gseq_ = 0;
  holdback_.clear();
  delivered_.clear();
  last_sequenced_msg_id_ = last_delivered_msg_id_;
  phase_ = Phase::kNormal;
  change_view_id_ = v.view_id;
  change_attempt_ = 0;
  suspects_.clear();
  last_heard_.clear();
  peer_delivered_.clear();
  hb_prev_delivered_.clear();
  behind_since_ = 0;
  const sim::Time now = net_.engine().now();
  for (const auto& m : view_.members) last_heard_[m.id] = now;
  rebuild_tree();
  ++views_installed_;
  STARFISH_LOG(kInfo, kLog) << self_.to_string() << " installed " << view_.to_string();
  if (callbacks_.on_view) callbacks_.on_view(view_);
  resend_pending();
}

void GroupEndpoint::resend_pending() {
  if (!in_view_ || pending_.empty()) return;
  pending_sent_at_ = net_.engine().now();
  for (const auto& [id, payload] : pending_) {
    WireMsg msg = base_msg(MsgKind::kOrderReq);
    msg.msg_id = id;
    msg.payload = payload;
    send_to_member(view_.coordinator(), msg);
  }
}

// ------------------------------------------------------------- helpers ----

void GroupEndpoint::send_to(const net::NetAddr& addr, const WireMsg& msg) {
  endpoint_->send(addr, msg.encode());
}

WireMsg GroupEndpoint::base_msg(MsgKind kind) const {
  WireMsg msg;
  msg.kind = kind;
  msg.from = self_;
  msg.from_addr = endpoint_->addr();
  return msg;
}

const Member* GroupEndpoint::member_by_id(MemberId id) const {
  for (const auto& m : view_.members) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

bool GroupEndpoint::self_is_change_coordinator() const {
  return phase_ == Phase::kFlushing && change_coordinator_ == self_;
}

// ------------------------------------------------- dissemination tree ----

uint32_t GroupEndpoint::node_depth(size_t index) const {
  uint32_t d = 0;
  for (size_t i = index; i > 0; i = (i - 1) / fanout_) ++d;
  return d;
}

void GroupEndpoint::rebuild_tree() {
  tree_index_ = view_.index_of(self_);
  tree_depth_ = 0;
  tree_children_.clear();
  tree_subtree_.clear();
  hb_table_.clear();
  if (topology_ != Topology::kTree || tree_index_ < 0) return;
  const size_t n = view_.members.size();
  const size_t k = fanout_;
  const size_t self_index = static_cast<size_t>(tree_index_);
  tree_depth_ = node_depth(n - 1);
  for (size_t c = k * self_index + 1; c <= k * self_index + k && c < n; ++c) {
    tree_children_.push_back(view_.members[c]);
  }
  std::vector<size_t> stack{self_index};
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    tree_subtree_.push_back(view_.members[i].id);
    for (size_t c = k * i + 1; c <= k * i + k && c < n; ++c) stack.push_back(c);
  }
  const auto now = static_cast<uint64_t>(net_.engine().now());
  for (const auto& m : view_.members) {
    hb_table_[m.id] = HbEntry{m.id, view_.view_id, 0, now, false};
  }
}

const Member* GroupEndpoint::tree_parent() const {
  if (topology_ != Topology::kTree || tree_index_ <= 0) return nullptr;
  return &view_.members[(static_cast<size_t>(tree_index_) - 1) / fanout_];
}

const Member* GroupEndpoint::up_target() const {
  if (topology_ != Topology::kTree || tree_index_ <= 0) return nullptr;
  size_t i = static_cast<size_t>(tree_index_);
  while (i > 0) {
    i = (i - 1) / fanout_;
    const Member& m = view_.members[i];
    // Skip over crashed interior ancestors so our subtree's summaries keep
    // reaching the root while the view change is still in flight.
    if (!suspects_.contains(m.id)) return &m;
  }
  return nullptr;
}

bool GroupEndpoint::tree_neighbor(MemberId id) const {
  if (const Member* p = tree_parent(); p != nullptr && p->id == id) return true;
  for (const auto& c : tree_children_) {
    if (c.id == id) return true;
  }
  return false;
}

void GroupEndpoint::send_tree_heartbeats(const WireMsg& hb) {
  const auto now = static_cast<uint64_t>(net_.engine().now());
  // Refresh our own row; mark our direct suspicions so they gossip outward
  // as rumors (the coordinator adopts them instead of waiting out its
  // gossip-lag-padded timeout).
  if (auto it = hb_table_.find(self_); it != hb_table_.end()) {
    it->second.view_id = view_.view_id;
    it->second.delivered = delivered_gseq_;
    it->second.heard_at = now;
  }
  for (const MemberId& s : suspects_) {
    if (auto it = hb_table_.find(s); it != hb_table_.end()) it->second.suspected = true;
  }
  obs_refresh();
  // Fragmentation fallback: a suspect means the tree is broken somewhere —
  // a dead interior node cuts its whole subtree off from the gossip flow,
  // and a dead root cuts *everyone* off (its other children stop receiving
  // any traffic at all and would falsely suspect the entire group in turn).
  // Until the view change installs a repaired tree, beat every unsuspected
  // member directly with the full table: connectivity degrades to flat for
  // the bounded failure window instead of shattering into
  // mutual-false-suspicion islands.
  if (!suspects_.empty()) {
    WireMsg m = hb;
    m.hb_entries.reserve(hb_table_.size());
    for (const auto& [id, e] : hb_table_) m.hb_entries.push_back(e);
    uint64_t sent = 0;
    for (const auto& mem : view_.members) {
      if (mem.id == self_ || suspects_.contains(mem.id)) continue;
      send_to_member(mem, m);
      ++sent;
    }
    if (sent > 0 && obs_hb_down_ != nullptr) obs_hb_down_->add(sent);
    return;
  }
  if (const Member* up = up_target()) {
    WireMsg m = hb;
    m.hb_entries.reserve(tree_subtree_.size());
    for (const MemberId& id : tree_subtree_) {
      if (auto it = hb_table_.find(id); it != hb_table_.end()) {
        m.hb_entries.push_back(it->second);
      }
    }
    send_to_member(*up, m);
    if (obs_hb_up_ != nullptr) obs_hb_up_->add(1);
  }
  if (!tree_children_.empty()) {
    WireMsg m = hb;
    m.hb_entries.reserve(hb_table_.size());
    for (const auto& [id, e] : hb_table_) m.hb_entries.push_back(e);
    uint64_t sent = 0;
    for (const auto& c : tree_children_) {
      if (suspects_.contains(c.id)) continue;  // dead child: nothing to teach
      send_to_member(c, m);
      ++sent;
    }
    if (sent > 0 && obs_hb_down_ != nullptr) obs_hb_down_->add(sent);
  }
}

void GroupEndpoint::obs_refresh() {
  obs::Hub* hub = net_.engine().obs();
  if (hub == obs_hub_) return;
  obs_hub_ = hub;
  if (hub == nullptr) {
    obs_delivered_ = nullptr;
    obs_holdback_depth_ = nullptr;
    obs_seq_sends_ = nullptr;
    obs_tree_forwards_ = nullptr;
    obs_hb_up_ = nullptr;
    obs_hb_down_ = nullptr;
    obs_repairs_ = nullptr;
    obs_install_retransmit_ = nullptr;
    return;
  }
  obs_delivered_ = &hub->metrics.counter("gcs.messages_delivered");
  obs_holdback_depth_ =
      &hub->metrics.histogram("gcs.holdback_depth", obs::HistogramSpec::exponential(1, 2.0, 12));
  obs_seq_sends_ = &hub->metrics.counter("gcs.seq.order_sends");
  obs_tree_forwards_ = &hub->metrics.counter("gcs.tree.order_forwards");
  obs_hb_up_ = &hub->metrics.counter("gcs.tree.hb_up_msgs");
  obs_hb_down_ = &hub->metrics.counter("gcs.tree.hb_down_msgs");
  obs_repairs_ = &hub->metrics.counter("gcs.seq.order_repairs");
  obs_install_retransmit_ = &hub->metrics.counter("gcs.install_retransmit_msgs");
}

}  // namespace starfish::gcs
