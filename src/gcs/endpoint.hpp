// GroupEndpoint: virtually synchronous group membership with reliable,
// totally ordered multicast — the Ensemble subset Starfish builds on.
//
// Protocol summary (DESIGN.md section 5.1):
//  * The lowest-ranked live member of the current view coordinates.
//  * multicast(): sender -> coordinator ORDER_REQ; coordinator stamps a
//    global sequence number and fans out ORDER to all members; members
//    deliver in sequence order. FIFO links (the fabric guarantees per-pair
//    ordering) make each member's received sequence a prefix.
//  * Heartbeats all-to-all feed a timeout failure detector. The simulated
//    fabric neither drops nor delays control traffic beyond its model, so a
//    suspicion implies a real crash (no false suspicion); this is the
//    classic synchronous-cluster assumption and is documented in DESIGN.md.
//  * View change: coordinator sends PREPARE; members stop acquiring new
//    orderings, reply FLUSH_OK carrying their delivered sequence number and
//    any sequenced messages the coordinator is missing; the coordinator
//    merges (virtual synchrony: every message delivered by any survivor is
//    delivered by all) and sends INSTALL with the retransmission tail, the
//    new membership, and — for joiners — the replicated state snapshot.
//  * Senders keep unacknowledged multicasts and re-submit them to the new
//    coordinator after a view change; per-origin message ids make
//    re-sequencing idempotent.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "gcs/types.hpp"
#include "gcs/wire.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/host.hpp"

namespace starfish::obs {
struct Hub;
}

namespace starfish::gcs {

class GroupEndpoint {
 public:
  GroupEndpoint(net::Network& net, sim::Host& host, GroupConfig config, Callbacks callbacks);
  ~GroupEndpoint();
  GroupEndpoint(const GroupEndpoint&) = delete;
  GroupEndpoint& operator=(const GroupEndpoint&) = delete;

  /// Replaces the upcall set. Must be called before start_founding /
  /// start_joining (used by layers that interpose on the raw group stream,
  /// e.g. LightweightGroups).
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Founding boot: every founder is given the same address list (in the
  /// same order) and installs the identical initial view without running
  /// the protocol. Only valid on fresh hosts at cluster start.
  void start_founding(const std::vector<net::NetAddr>& founders);

  /// Late join: keeps sending JOIN_REQ to the seed addresses until some
  /// coordinator admits us via a view change.
  void start_joining(const std::vector<net::NetAddr>& seeds);

  /// Graceful departure: asks the coordinator to exclude us. The endpoint
  /// stops delivering once a view without us is installed.
  void leave();

  /// Totally ordered, virtually synchronous multicast to the current view.
  /// Must be called from a fiber on this endpoint's host.
  void multicast(util::Bytes payload);

  MemberId self() const { return self_; }
  net::NetAddr addr() const { return endpoint_->addr(); }
  const View& view() const { return view_; }
  bool in_view() const { return in_view_; }
  bool is_coordinator() const {
    return in_view_ && !view_.members.empty() && view_.coordinator().id == self_;
  }

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t views_installed() const { return views_installed_; }
  /// Size of the per-view retransmission log (bounded by stability GC).
  size_t retransmission_log_size() const { return delivered_.size(); }
  /// Resolved dissemination topology (config or STARFISH_GCS_TOPOLOGY).
  Topology topology() const { return topology_; }
  /// Our depth in the dissemination tree of the current view (0 under kFlat
  /// or at the root).
  uint32_t tree_depth() const { return tree_index_ <= 0 ? 0 : node_depth(tree_index_); }

  /// Stops fibers and closes the control endpoint (used by tests; a host
  /// crash achieves the same through the fabric).
  void shutdown();

 private:
  enum class Phase : uint8_t { kNormal, kFlushing };

  void rx_loop();
  void tick_loop();
  void handle(const WireMsg& msg);
  void handle_heartbeat(const WireMsg& msg);
  void handle_join_req(const WireMsg& msg);
  void handle_leave_req(const WireMsg& msg);
  void handle_order_req(const WireMsg& msg);
  void handle_order(const WireMsg& msg);
  void handle_prepare(const WireMsg& msg);
  void handle_flush_ok(const WireMsg& msg);
  void handle_install(const WireMsg& msg);
  void handle_install_req(const WireMsg& msg);
  /// Upgrades a view member recorded under an older incarnation of the same
  /// host/address when a message reveals the real one (founding views record
  /// peers as incarnation 0 until first contact).
  void resolve_incarnation(const WireMsg& msg);
  void adopt_incarnation(Member& m, MemberId fresh);

  void deliver_ready();
  void deliver(const OrderedMsg& msg);
  void sequence_and_fanout(MemberId origin, uint64_t msg_id, util::Bytes payload);
  /// Tree mode: relay a freshly received ORDER to our tree children.
  void forward_order(const WireMsg& msg);
  /// Updates peer progress bookkeeping and, on the sequencer, resends the
  /// missing ORDER suffix to a member whose advertised delivered gseq is
  /// stuck (the flat heartbeat repair path, shared with tree gossip).
  void note_progress_and_repair(MemberId from, uint64_t advertised);
  /// Prunes the retransmission log below the view-wide stable gseq.
  void gc_stable();
  /// Merges one gossiped liveness entry (tree mode); returns true when the
  /// observation is fresher than what we already held.
  bool merge_hb_entry(const HbEntry& e);
  /// Tree mode: one up-summary to the nearest live ancestor plus the full
  /// table down to each child, instead of n-1 point-to-point beats.
  void send_tree_heartbeats(const WireMsg& hb);
  void check_failures();
  void maybe_initiate_change();
  void initiate_change();
  void finish_change_if_ready();
  void install_view(const View& v, const std::vector<OrderedMsg>& retransmit);
  void resend_pending();
  void send_to(const net::NetAddr& addr, const WireMsg& msg);
  void send_to_member(const Member& m, const WireMsg& msg) { send_to(m.addr, msg); }
  WireMsg base_msg(MsgKind kind) const;
  const Member* member_by_id(MemberId id) const;
  bool self_is_change_coordinator() const;

  // --- dissemination tree (Topology::kTree) over the rank-sorted view ---
  // Array-heap layout: member index i has parent (i-1)/k and children
  // k*i+1 .. k*i+k; index 0 is the coordinator/sequencer at the root.
  void rebuild_tree();
  uint32_t node_depth(size_t index) const;
  /// Our parent in the tree, or nullptr at the root / under kFlat.
  const Member* tree_parent() const;
  /// Nearest unsuspected ancestor for up-heartbeats (skips over crashed
  /// interior nodes so orphaned subtrees stay visible at the root).
  const Member* up_target() const;
  /// Parent or direct child — members we exchange direct beats with.
  bool tree_neighbor(MemberId id) const;
  /// Lazily (re-)resolves cached metric handles when the engine's hub
  /// changes; one pointer compare on the hot path (net/vni.cpp idiom).
  void obs_refresh();

  net::Network& net_;
  sim::Host& host_;
  GroupConfig config_;
  Callbacks callbacks_;
  MemberId self_;
  /// Resolved once at construction (config override, else environment).
  Topology topology_ = Topology::kFlat;
  uint32_t fanout_ = 4;
  net::DatagramEndpointPtr endpoint_;
  sim::FiberPtr rx_fiber_;
  sim::FiberPtr tick_fiber_;
  bool shut_down_ = false;

  // Membership.
  View view_;
  bool in_view_ = false;
  bool leaving_ = false;
  std::vector<net::NetAddr> join_seeds_;

  // Delivery state (reset per view).
  uint64_t delivered_gseq_ = 0;
  std::map<uint64_t, OrderedMsg> holdback_;   ///< received, not yet deliverable
  std::map<uint64_t, OrderedMsg> delivered_;  ///< this view's log (flush retransmission)
  /// Highest msg_id delivered per origin (survives view changes): makes
  /// post-view-change re-sequencing idempotent.
  std::map<MemberId, uint64_t> last_delivered_msg_id_;

  // Sender state.
  uint64_t next_msg_id_ = 0;
  std::deque<std::pair<uint64_t, util::Bytes>> pending_;  ///< not yet self-delivered
  /// When the pending queue was last (re)submitted to the sequencer; a queue
  /// outstanding for multiple beats means the ORDER_REQ was lost on the wire.
  sim::Time pending_sent_at_ = 0;

  // Coordinator (sequencer) state.
  uint64_t next_gseq_ = 0;
  std::map<MemberId, uint64_t> last_sequenced_msg_id_;

  // Failure detection.
  std::map<MemberId, sim::Time> last_heard_;
  std::set<MemberId> suspects_;
  /// Latest delivered gseq each peer advertised via heartbeats; entries of
  /// the retransmission log below the view-wide minimum are stable and can
  /// be pruned (messages everyone delivered are never needed in a flush).
  std::map<MemberId, uint64_t> peer_delivered_;
  /// Sequencer-side stall detector: (peer's advertised delivered, our own
  /// delivered) at that peer's previous heartbeat. A peer whose advertised
  /// value repeats while it was already behind us a full beat ago is stuck
  /// behind a lost ORDER and gets the missing suffix resent.
  std::map<MemberId, std::pair<uint64_t, uint64_t>> hb_prev_delivered_;
  /// Since when heartbeats advertise a view newer than ours (0 = not
  /// behind); after a beat of grace we ask a peer to resend the INSTALL.
  sim::Time behind_since_ = 0;

  // Dissemination tree (rebuilt on every view install; empty under kFlat).
  int tree_index_ = -1;                 ///< our index in the rank-sorted view
  uint32_t tree_depth_ = 0;             ///< depth of the deepest tree node
  std::vector<Member> tree_children_;   ///< our direct children
  std::vector<MemberId> tree_subtree_;  ///< members at/below us (incl. self)
  /// Aggregated liveness/progress table (tree mode): one slot per view
  /// member, refreshed by direct beats and gossiped summaries. Up-beats
  /// carry our subtree's rows, down-beats the whole table.
  std::map<MemberId, HbEntry> hb_table_;

  // View change state.
  Phase phase_ = Phase::kNormal;
  uint64_t change_view_id_ = 0;
  uint32_t change_attempt_ = 0;
  MemberId change_coordinator_;
  sim::Time flush_started_ = 0;
  sim::Time flush_deadline_ = 0;
  /// INSTALL of the current view (state snapshot stripped), kept to re-teach
  /// members whose copy was lost on the wire.
  WireMsg last_install_;
  // As change coordinator:
  std::map<MemberId, net::NetAddr> joiners_;
  std::set<MemberId> leavers_;
  /// Joiners/leavers snapshotted into the in-flight change.
  std::map<MemberId, net::NetAddr> change_joiners_;
  std::set<MemberId> change_leavers_;
  std::vector<Member> proposed_members_;
  std::set<MemberId> flush_waiting_;  ///< old members we still need FLUSH_OK from
  uint64_t flush_min_delivered_ = 0;

  // Stats.
  uint64_t messages_delivered_ = 0;
  uint64_t views_installed_ = 0;

  // Cached observability handles. Registry lookups take a lock (and the
  // histogram one re-parses its bucket spec), so per-message paths resolve
  // them once per hub and re-resolve only when the hub pointer changes.
  obs::Hub* obs_hub_ = nullptr;
  obs::Counter* obs_delivered_ = nullptr;
  obs::Histogram* obs_holdback_depth_ = nullptr;
  obs::Counter* obs_seq_sends_ = nullptr;
  obs::Counter* obs_tree_forwards_ = nullptr;
  obs::Counter* obs_hb_up_ = nullptr;
  obs::Counter* obs_hb_down_ = nullptr;
  obs::Counter* obs_repairs_ = nullptr;
  obs::Counter* obs_install_retransmit_ = nullptr;
};

}  // namespace starfish::gcs
