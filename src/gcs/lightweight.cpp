#include "gcs/lightweight.hpp"

#include <algorithm>

namespace starfish::gcs {

namespace {

void put_member_id(util::Writer& w, const MemberId& id) {
  w.u32(id.host);
  w.u32(id.incarnation);
}

MemberId get_member_id(util::Reader& r) {
  MemberId id;
  id.host = r.u32().value_or(sim::kInvalidHost);
  id.incarnation = r.u32().value_or(0);
  return id;
}

}  // namespace

LightweightGroups::LightweightGroups(GroupEndpoint& heavy, Callbacks app)
    : heavy_(heavy), app_(std::move(app)) {
  Callbacks wired;
  wired.on_view = [this](const View& v) { on_heavy_view(v); };
  wired.on_message = [this](MemberId origin, const util::Bytes& payload) {
    on_heavy_message(origin, payload);
  };
  wired.get_state = [this] { return encode_state(); };
  wired.set_state = [this](const util::Bytes& blob) { apply_state(blob); };
  heavy.set_callbacks(std::move(wired));
}

void LightweightGroups::lw_join(const std::string& name, LwCallbacks callbacks) {
  if (local_subs_.contains(name)) return;
  local_subs_[name] = std::move(callbacks);
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(Tag::kLwJoin));
  w.str(name);
  heavy_.multicast(std::move(out));
}

void LightweightGroups::lw_leave(const std::string& name) {
  if (!local_subs_.contains(name)) return;
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(Tag::kLwLeave));
  w.str(name);
  heavy_.multicast(std::move(out));
  // Local upcalls stop immediately; the replicated membership updates when
  // the ordered leave message is delivered.
  local_subs_.erase(name);
}

void LightweightGroups::lw_multicast(const std::string& name, util::Bytes payload) {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(Tag::kLwMsg));
  w.str(name);
  w.bytes(util::as_bytes_view(payload));
  heavy_.multicast(std::move(out));
}

void LightweightGroups::heavy_multicast(util::Bytes payload) {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(Tag::kApp));
  w.bytes(util::as_bytes_view(payload));
  heavy_.multicast(std::move(out));
}

std::optional<LwView> LightweightGroups::lw_view(const std::string& name) const {
  auto it = groups_.find(name);
  if (it == groups_.end()) return std::nullopt;
  return LwView{it->second.lw_view_id, name, it->second.members};
}

std::vector<std::string> LightweightGroups::local_groups() const {
  std::vector<std::string> out;
  out.reserve(local_subs_.size());
  for (const auto& [name, cbs] : local_subs_) out.push_back(name);
  return out;
}

void LightweightGroups::on_heavy_view(const View& view) {
  // Project the heavy membership change onto every lightweight group; only
  // groups that actually lost members change views (paper: a node failure
  // is reported only inside the lightweight groups it affects).
  std::vector<std::string> dead_groups;
  for (auto& [name, group] : groups_) {
    const size_t before = group.members.size();
    std::erase_if(group.members, [&](const MemberId& m) { return !view.contains(m); });
    if (group.members.size() != before) {
      if (group.members.empty()) {
        dead_groups.push_back(name);
      } else {
        bump_and_deliver(name);
      }
    }
  }
  for (const auto& name : dead_groups) groups_.erase(name);
  if (app_.on_view) app_.on_view(view);
}

void LightweightGroups::on_heavy_message(MemberId origin, const util::Bytes& payload) {
  util::Reader r(util::as_bytes_view(payload));
  auto tag = r.u8();
  if (!tag.ok()) return;
  switch (static_cast<Tag>(tag.value())) {
    case Tag::kApp: {
      auto body = r.bytes();
      if (body.ok() && app_.on_message) app_.on_message(origin, body.value());
      return;
    }
    case Tag::kLwJoin: {
      auto name = r.str();
      if (!name.ok()) return;
      auto& group = groups_[name.value()];
      if (std::find(group.members.begin(), group.members.end(), origin) ==
          group.members.end()) {
        group.members.push_back(origin);
        bump_and_deliver(name.value());
      }
      return;
    }
    case Tag::kLwLeave: {
      auto name = r.str();
      if (!name.ok()) return;
      auto it = groups_.find(name.value());
      if (it == groups_.end()) return;
      const size_t before = it->second.members.size();
      std::erase(it->second.members, origin);
      if (it->second.members.size() != before) {
        if (it->second.members.empty()) {
          groups_.erase(it);
        } else {
          bump_and_deliver(name.value());
        }
      }
      return;
    }
    case Tag::kLwMsg: {
      auto name = r.str();
      if (!name.ok()) return;
      auto body = r.bytes();
      if (!body.ok()) return;
      auto sub = local_subs_.find(name.value());
      // Delivered only within the lightweight group: everyone else's daemon
      // filters the frame here.
      if (sub == local_subs_.end() || !sub->second.on_message) {
        ++lw_messages_filtered_;
        return;
      }
      sub->second.on_message(origin, body.value());
      return;
    }
  }
}

void LightweightGroups::bump_and_deliver(const std::string& name) {
  auto& group = groups_[name];
  ++group.lw_view_id;
  auto sub = local_subs_.find(name);
  if (sub != local_subs_.end() && sub->second.on_view) {
    ++lw_view_events_delivered_;
    sub->second.on_view(LwView{group.lw_view_id, name, group.members});
  }
}

util::Bytes LightweightGroups::encode_state() const {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(groups_.size()));
  for (const auto& [name, group] : groups_) {
    w.str(name);
    w.u64(group.lw_view_id);
    w.u32(static_cast<uint32_t>(group.members.size()));
    for (const auto& m : group.members) put_member_id(w, m);
  }
  if (app_.get_state) {
    w.boolean(true);
    w.bytes(util::as_bytes_view(app_.get_state()));
  } else {
    w.boolean(false);
  }
  return out;
}

void LightweightGroups::apply_state(const util::Bytes& blob) {
  util::Reader r(util::as_bytes_view(blob));
  groups_.clear();
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) {
    auto name = r.str();
    if (!name.ok()) return;
    Group group;
    group.lw_view_id = r.u64().value_or(0);
    const uint32_t members = r.u32().value_or(0);
    for (uint32_t k = 0; k < members; ++k) group.members.push_back(get_member_id(r));
    groups_[name.value()] = std::move(group);
  }
  auto has_app = r.boolean();
  if (has_app.ok() && has_app.value() && app_.set_state) {
    auto body = r.bytes();
    if (body.ok()) app_.set_state(body.value());
  }
}

}  // namespace starfish::gcs
