// Lightweight groups (paper section 2.1, figure 2), after Guo & Rodrigues'
// dynamic light-weight groups [19] and the Maestro group daemon [9].
//
// One *heavy* group spans all Starfish daemons. Each application gets a
// *lightweight* group named after it, whose members are the daemons hosting
// its processes. Lightweight membership is not a separate protocol: joins,
// leaves and lightweight multicasts ride the heavy group's totally ordered
// stream, and heavy view changes are projected onto every lightweight group.
// Because every member consumes the identical ordered stream, all members
// compute identical lightweight views with no extra agreement rounds — and a
// membership event in one application's group never disturbs the others
// (the efficiency argument of the paper; measured in ablation C).
//
// This class interposes on a GroupEndpoint's callbacks: construct it, then
// start the endpoint. Application-level heavy messages still flow through
// the `app` callbacks passed here.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gcs/endpoint.hpp"
#include "gcs/types.hpp"

namespace starfish::gcs {

struct LwView {
  uint64_t lw_view_id = 0;
  std::string group;
  std::vector<MemberId> members;  ///< join order

  bool contains(MemberId id) const {
    for (const auto& m : members) {
      if (m == id) return true;
    }
    return false;
  }
};

struct LwCallbacks {
  std::function<void(const LwView&)> on_view;
  std::function<void(MemberId origin, const util::Bytes& payload)> on_message;
};

class LightweightGroups {
 public:
  /// Interposes on `heavy`'s callbacks. `app` receives heavy views and
  /// plain heavy messages (sent via heavy_multicast).
  LightweightGroups(GroupEndpoint& heavy, Callbacks app);

  /// Announces this member's membership in lightweight group `name` and
  /// registers the local upcalls. Idempotent per name.
  void lw_join(const std::string& name, LwCallbacks callbacks);
  /// Announces departure from `name` and drops the local upcalls.
  void lw_leave(const std::string& name);
  /// Totally ordered multicast delivered only within lightweight group
  /// `name` (non-members' daemons filter it out).
  void lw_multicast(const std::string& name, util::Bytes payload);
  /// Plain heavy-group multicast (daemon control messages).
  void heavy_multicast(util::Bytes payload);

  /// Current lightweight view of `name`, if the group exists.
  std::optional<LwView> lw_view(const std::string& name) const;
  /// All lightweight groups this member's daemon currently belongs to.
  std::vector<std::string> local_groups() const;

  // Stats (ablation C).
  uint64_t lw_view_events_delivered() const { return lw_view_events_delivered_; }
  uint64_t lw_messages_filtered() const { return lw_messages_filtered_; }

 private:
  enum class Tag : uint8_t { kApp = 0, kLwJoin = 1, kLwLeave = 2, kLwMsg = 3 };

  struct Group {
    uint64_t lw_view_id = 0;
    std::vector<MemberId> members;
  };

  void on_heavy_view(const View& view);
  void on_heavy_message(MemberId origin, const util::Bytes& payload);
  void bump_and_deliver(const std::string& name);
  util::Bytes encode_state() const;
  void apply_state(const util::Bytes& blob);

  GroupEndpoint& heavy_;
  Callbacks app_;
  std::map<std::string, Group> groups_;             ///< replicated across members
  std::map<std::string, LwCallbacks> local_subs_;   ///< this member's interests
  uint64_t lw_view_events_delivered_ = 0;
  uint64_t lw_messages_filtered_ = 0;
};

}  // namespace starfish::gcs
