// Group communication core types: members, views, configuration.
//
// starfish::gcs reimplements the subset of the Ensemble toolkit [20,38] that
// Starfish relies on: process-group membership with virtually synchronous
// view changes, and reliable totally ordered multicast within a view. All
// Starfish daemons form one such group (the "Starfish group", paper fig. 1);
// lightweight groups (gcs/lightweight.hpp) are layered on top of it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/time.hpp"
#include "util/buffer.hpp"

namespace starfish::gcs {

/// Identifies one group endpoint incarnation. A rebooted node gets a new
/// incarnation, so protocols never confuse it with its previous life.
struct MemberId {
  sim::HostId host = sim::kInvalidHost;
  uint32_t incarnation = 0;
  auto operator<=>(const MemberId&) const = default;
  std::string to_string() const {
    return "m" + std::to_string(host) + "." + std::to_string(incarnation);
  }
};

struct Member {
  MemberId id;
  uint32_t rank = 0;  ///< join order; the lowest rank in a view coordinates
  net::NetAddr addr;  ///< control endpoint of the member's daemon
  auto operator<=>(const Member&) const = default;
};

/// A membership view. Members are sorted by rank; members[0] coordinates
/// (the paper's "oldest member" rule).
struct View {
  uint64_t view_id = 0;
  std::vector<Member> members;

  const Member& coordinator() const { return members.front(); }
  bool contains(MemberId id) const {
    for (const auto& m : members) {
      if (m.id == id) return true;
    }
    return false;
  }
  int index_of(MemberId id) const {
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i].id == id) return static_cast<int>(i);
    }
    return -1;
  }
  size_t size() const { return members.size(); }
  std::string to_string() const;
};

/// Dissemination topology for ordered multicast and heartbeats.
///
/// kFlat: the sequencer fans ORDER out to every member and each member
/// heartbeats every other member — O(n) wire messages per multicast at the
/// sequencer, O(n^2) heartbeats per period group-wide.
/// kTree: ordered messages propagate down a deterministic k-ary tree over
/// the rank-sorted view (rebuilt on every view change) and heartbeats
/// aggregate at interior nodes, so the sequencer sends O(k) per multicast
/// and the coordinator sees O(k) heartbeat summaries. Both topologies
/// deliver byte-identical ordered streams (tests/gcs_differential_test.cpp).
enum class Topology : uint8_t {
  kFlat = 0,
  kTree = 1,
};

struct GroupConfig {
  net::Port control_port = 1;  ///< every daemon's gcs endpoint binds this port
  net::TransportKind transport = net::TransportKind::kTcpIp;
  /// Dissemination topology. nullopt: read STARFISH_GCS_TOPOLOGY=flat|tree
  /// from the environment (the CI lever), defaulting to flat. Set explicitly
  /// to pin a topology regardless of environment.
  std::optional<Topology> topology;
  /// Fan-out k of the dissemination tree (ignored under kFlat).
  /// STARFISH_GCS_FANOUT overrides when the config keeps the default.
  uint32_t tree_fanout = 4;
  sim::Duration heartbeat_period = sim::milliseconds(50);
  sim::Duration suspect_timeout = sim::milliseconds(250);
  /// How long a member in the flush phase waits for INSTALL before assuming
  /// the (new) coordinator also died and restarting the view change.
  sim::Duration flush_timeout = sim::milliseconds(400);
  /// Period between JOIN_REQ retries while not yet in a view.
  sim::Duration join_retry = sim::milliseconds(100);
};

/// Upcalls. Invoked from the endpoint's receive fiber: handlers may block
/// briefly but long work should be handed to another fiber via a channel.
struct Callbacks {
  /// A new view was installed (including the first).
  std::function<void(const View&)> on_view;
  /// A totally ordered, virtually synchronous group message.
  std::function<void(MemberId origin, const util::Bytes& payload)> on_message;
  /// Coordinator-side: snapshot replicated state for a joining member.
  std::function<util::Bytes()> get_state;
  /// Joiner-side: install the snapshot before the first view is delivered.
  std::function<void(const util::Bytes&)> set_state;
};

}  // namespace starfish::gcs
