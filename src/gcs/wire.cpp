#include "gcs/wire.hpp"

namespace starfish::gcs {

namespace {

void put_member_id(util::Writer& w, const MemberId& id) {
  w.u32(id.host);
  w.u32(id.incarnation);
}

util::Result<MemberId> get_member_id(util::Reader& r) {
  auto host = r.u32();
  if (!host) return host.error();
  auto inc = r.u32();
  if (!inc) return inc.error();
  return MemberId{host.value(), inc.value()};
}

void put_addr(util::Writer& w, const net::NetAddr& a) {
  w.u32(a.host);
  w.u32(a.port);
}

util::Result<net::NetAddr> get_addr(util::Reader& r) {
  auto host = r.u32();
  if (!host) return host.error();
  auto port = r.u32();
  if (!port) return port.error();
  return net::NetAddr{host.value(), port.value()};
}

void put_member(util::Writer& w, const Member& m) {
  put_member_id(w, m.id);
  w.u32(m.rank);
  put_addr(w, m.addr);
}

util::Result<Member> get_member(util::Reader& r) {
  auto id = get_member_id(r);
  if (!id) return id.error();
  auto rank = r.u32();
  if (!rank) return rank.error();
  auto addr = get_addr(r);
  if (!addr) return addr.error();
  return Member{id.value(), rank.value(), addr.value()};
}

void put_ordered(util::Writer& w, const OrderedMsg& m) {
  w.u64(m.gseq);
  put_member_id(w, m.origin);
  w.u64(m.msg_id);
  w.bytes(util::as_bytes_view(m.payload));
}

util::Result<OrderedMsg> get_ordered(util::Reader& r) {
  OrderedMsg m;
  auto gseq = r.u64();
  if (!gseq) return gseq.error();
  m.gseq = gseq.value();
  auto origin = get_member_id(r);
  if (!origin) return origin.error();
  m.origin = origin.value();
  auto id = r.u64();
  if (!id) return id.error();
  m.msg_id = id.value();
  auto payload = r.bytes();
  if (!payload) return payload.error();
  m.payload = std::move(payload).take();
  return m;
}

void put_hb_entry(util::Writer& w, const HbEntry& e) {
  put_member_id(w, e.member);
  w.u64(e.view_id);
  w.u64(e.delivered);
  w.u64(e.heard_at);
  w.boolean(e.suspected);
}

util::Result<HbEntry> get_hb_entry(util::Reader& r) {
  HbEntry e;
  auto member = get_member_id(r);
  if (!member) return member.error();
  e.member = member.value();
  auto view_id = r.u64();
  if (!view_id) return view_id.error();
  e.view_id = view_id.value();
  auto delivered = r.u64();
  if (!delivered) return delivered.error();
  e.delivered = delivered.value();
  auto heard_at = r.u64();
  if (!heard_at) return heard_at.error();
  e.heard_at = heard_at.value();
  auto suspected = r.boolean();
  if (!suspected) return suspected.error();
  e.suspected = suspected.value();
  return e;
}

}  // namespace

util::Bytes WireMsg::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(kind));
  put_member_id(w, from);
  put_addr(w, from_addr);
  w.u64(msg_id);
  w.bytes(util::as_bytes_view(payload));
  w.u64(gseq);
  put_member_id(w, origin);
  w.u64(view_id);
  w.u32(attempt);
  w.u32(static_cast<uint32_t>(members.size()));
  for (const auto& m : members) put_member(w, m);
  w.u64(coord_delivered);
  w.u64(delivered);
  w.u32(static_cast<uint32_t>(buffered.size()));
  for (const auto& m : buffered) put_ordered(w, m);
  w.u32(static_cast<uint32_t>(hb_entries.size()));
  for (const auto& e : hb_entries) put_hb_entry(w, e);
  w.u32(static_cast<uint32_t>(retransmit.size()));
  for (const auto& m : retransmit) put_ordered(w, m);
  w.boolean(has_state);
  w.bytes(util::as_bytes_view(state));
  return out;
}

util::Result<WireMsg> WireMsg::decode(util::BytesView bytes) {
  util::Reader r(bytes);
  WireMsg m;
  auto kind = r.u8();
  if (!kind) return kind.error();
  m.kind = static_cast<MsgKind>(kind.value());
  auto from = get_member_id(r);
  if (!from) return from.error();
  m.from = from.value();
  auto from_addr = get_addr(r);
  if (!from_addr) return from_addr.error();
  m.from_addr = from_addr.value();
  auto msg_id = r.u64();
  if (!msg_id) return msg_id.error();
  m.msg_id = msg_id.value();
  auto payload = r.bytes();
  if (!payload) return payload.error();
  m.payload = std::move(payload).take();
  auto gseq = r.u64();
  if (!gseq) return gseq.error();
  m.gseq = gseq.value();
  auto origin = get_member_id(r);
  if (!origin) return origin.error();
  m.origin = origin.value();
  auto view_id = r.u64();
  if (!view_id) return view_id.error();
  m.view_id = view_id.value();
  auto attempt = r.u32();
  if (!attempt) return attempt.error();
  m.attempt = attempt.value();
  auto n_members = r.u32();
  if (!n_members) return n_members.error();
  for (uint32_t i = 0; i < n_members.value(); ++i) {
    auto mem = get_member(r);
    if (!mem) return mem.error();
    m.members.push_back(mem.value());
  }
  auto coord_delivered = r.u64();
  if (!coord_delivered) return coord_delivered.error();
  m.coord_delivered = coord_delivered.value();
  auto delivered = r.u64();
  if (!delivered) return delivered.error();
  m.delivered = delivered.value();
  auto n_buffered = r.u32();
  if (!n_buffered) return n_buffered.error();
  for (uint32_t i = 0; i < n_buffered.value(); ++i) {
    auto om = get_ordered(r);
    if (!om) return om.error();
    m.buffered.push_back(std::move(om).take());
  }
  auto n_hb = r.u32();
  if (!n_hb) return n_hb.error();
  for (uint32_t i = 0; i < n_hb.value(); ++i) {
    auto e = get_hb_entry(r);
    if (!e) return e.error();
    m.hb_entries.push_back(e.value());
  }
  auto n_retransmit = r.u32();
  if (!n_retransmit) return n_retransmit.error();
  for (uint32_t i = 0; i < n_retransmit.value(); ++i) {
    auto om = get_ordered(r);
    if (!om) return om.error();
    m.retransmit.push_back(std::move(om).take());
  }
  auto has_state = r.boolean();
  if (!has_state) return has_state.error();
  m.has_state = has_state.value();
  auto state = r.bytes();
  if (!state) return state.error();
  m.state = std::move(state).take();
  return m;
}

}  // namespace starfish::gcs
