// Wire format of the group-communication control messages.
//
// One flat tagged union kept deliberately simple: every field of every
// message kind is a struct member; encode/decode read the `kind` tag first.
// Control traffic is small and infrequent relative to the MPI data path, so
// clarity wins over compactness here.
#pragma once

#include <cstdint>
#include <vector>

#include "gcs/types.hpp"
#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::gcs {

enum class MsgKind : uint8_t {
  kHeartbeat = 1,
  kJoinReq = 2,
  kLeaveReq = 3,
  kOrderReq = 4,   ///< member -> coordinator: please sequence this payload
  kOrder = 5,      ///< coordinator -> all: sequenced group message
  kPrepare = 6,    ///< view change phase 1
  kFlushOk = 7,    ///< view change phase 2
  kInstall = 8,    ///< view change phase 3
  kInstallReq = 9, ///< laggard -> any member: resend the INSTALL I missed
};

/// A sequenced message as retransmitted during flush.
struct OrderedMsg {
  uint64_t gseq = 0;
  MemberId origin;
  uint64_t msg_id = 0;
  util::Bytes payload;
};

/// One member's liveness/progress summary as gossiped through the
/// dissemination tree (Topology::kTree). Interior nodes aggregate the
/// entries of their subtree and forward them upward; the root's full table
/// flows back down, so every member learns about every other in O(depth)
/// heartbeat periods without all-to-all traffic.
struct HbEntry {
  MemberId member;
  uint64_t view_id = 0;    ///< view the member last advertised
  uint64_t delivered = 0;  ///< its delivered gseq in that view
  uint64_t heard_at = 0;   ///< virtual time someone last heard it directly
  /// A direct tree neighbor timed the member out. Under the synchronous-
  /// cluster assumption (no false suspicion on direct beats) the rumor is
  /// trustworthy, so distant members — the coordinator in particular —
  /// adopt it instead of waiting out their gossip-lag-scaled timeout.
  bool suspected = false;
};

struct WireMsg {
  MsgKind kind = MsgKind::kHeartbeat;
  MemberId from;
  net::NetAddr from_addr;  ///< sender's control address (joins need it)

  // kOrderReq / kOrder
  uint64_t msg_id = 0;
  util::Bytes payload;
  // kOrder
  uint64_t gseq = 0;
  MemberId origin;

  // view change (kPrepare / kInstall)
  uint64_t view_id = 0;
  uint32_t attempt = 0;
  std::vector<Member> members;
  uint64_t coord_delivered = 0;  ///< kPrepare: coordinator's delivered gseq

  // kFlushOk
  uint64_t delivered = 0;
  std::vector<OrderedMsg> buffered;

  // kHeartbeat under Topology::kTree: aggregated summaries riding the beat
  // (subtree entries upward, the full table downward).
  std::vector<HbEntry> hb_entries;

  // kInstall
  std::vector<OrderedMsg> retransmit;
  /// Replicated-state snapshots for joiners: (present flag, blob).
  bool has_state = false;
  util::Bytes state;

  util::Bytes encode() const;
  /// Accepts any byte window (util::Bytes and util::SharedBytes both convert
  /// implicitly); decoded fields are owned copies — control traffic is off
  /// the zero-copy fast path by design.
  static util::Result<WireMsg> decode(util::BytesView bytes);
};

}  // namespace starfish::gcs
