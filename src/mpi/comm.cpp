#include "mpi/comm.hpp"

#include <algorithm>
#include <cassert>

namespace starfish::mpi {

namespace {

/// splitmix64 — deterministic child-communicator id derivation.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename T>
void combine(std::vector<T>& acc, const std::vector<T>& in, ReduceOp op) {
  assert(acc.size() == in.size());
  for (size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] += in[i]; break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
      case ReduceOp::kProd: acc[i] *= in[i]; break;
    }
  }
}

template <typename T>
util::Bytes encode_vec(const std::vector<T>& v) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(v.size()));
  for (const T& x : v) {
    if constexpr (std::is_same_v<T, int64_t>) {
      w.i64(x);
    } else {
      w.f64(x);
    }
  }
  return out;
}

template <typename T>
std::vector<T> decode_vec(const util::Bytes& b) {
  util::Reader r(util::as_bytes_view(b));
  std::vector<T> out;
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) {
    if constexpr (std::is_same_v<T, int64_t>) {
      out.push_back(r.i64().value_or(0));
    } else {
      out.push_back(r.f64().value_or(0.0));
    }
  }
  return out;
}

}  // namespace

Comm Comm::world(Proc& proc) {
  std::vector<uint32_t> members(proc.size());
  for (uint32_t i = 0; i < proc.size(); ++i) members[i] = i;
  return Comm(proc, kWorldCommId, std::move(members), static_cast<int>(proc.rank()));
}

int Comm::next_collective_tag(uint8_t opcode) {
  // Collectives execute in the same order at every member, so a shared
  // sequence number (mod 2^16) cleanly separates consecutive operations.
  ++collective_seq_;
  return kCollectiveTagBase + static_cast<int>(opcode) * 0x10000 +
         static_cast<int>(collective_seq_ & 0xffff);
}

// ------------------------------------------------------- point-to-point ----

void Comm::send(int dst, int tag, util::Bytes data) {
  assert(tag >= 0 && tag <= kMaxUserTag);
  proc_->send(id_, world_rank(dst), tag, std::move(data));
}

util::Bytes Comm::recv(int src, int tag, RecvStatus* status) {
  const int world_src = src == kAnySource ? kAnySource : static_cast<int>(world_rank(src));
  util::Bytes data = proc_->recv(id_, world_src, tag, status);
  if (status != nullptr && status->source != kAnySource) {
    // Translate the world rank back into a communicator rank.
    auto it = std::find(members_.begin(), members_.end(),
                        static_cast<uint32_t>(status->source));
    status->source = it == members_.end() ? kAnySource
                                          : static_cast<int>(it - members_.begin());
  }
  return data;
}

Request Comm::isend(int dst, int tag, util::Bytes data) {
  return proc_->isend(id_, world_rank(dst), tag, std::move(data));
}

Request Comm::irecv(int src, int tag) {
  const int world_src = src == kAnySource ? kAnySource : static_cast<int>(world_rank(src));
  return proc_->irecv(id_, world_src, tag);
}

// ---------------------------------------------------------- collectives ----

void Comm::barrier() {
  const int tag = next_collective_tag(0);
  const int n = size();
  // Dissemination barrier: log2(n) rounds.
  for (int shift = 1; shift < n; shift <<= 1) {
    const int to = (rank() + shift) % n;
    const int from = (rank() - shift % n + n) % n;
    proc_->send(id_, world_rank(to), tag + 0, {});
    (void)proc_->recv(id_, static_cast<int>(world_rank(from)), tag + 0);
  }
}

util::Bytes Comm::bcast(int root, util::Bytes data) {
  const int tag = next_collective_tag(1);
  const int n = size();
  // Binomial tree rooted at `root`: virtual rank v = (rank - root) mod n.
  const int v = (rank() - root % n + n) % n;
  int mask = 1;
  while (mask < n) {
    if (v & mask) {
      // Parent clears my lowest set bit.
      const int parent = ((v ^ mask) + root) % n;
      data = proc_->recv(id_, static_cast<int>(world_rank(parent)), tag);
      break;
    }
    mask <<= 1;
  }
  // Fan out to children below my receive bit, highest first.
  mask >>= 1;
  while (mask > 0) {
    if (v + mask < n && (v & mask) == 0) {
      const int child = (v + mask + root) % n;
      proc_->send(id_, world_rank(child), tag, data);
    }
    mask >>= 1;
  }
  return data;
}

std::vector<util::Bytes> Comm::gather(int root, util::Bytes mine) {
  const int tag = next_collective_tag(2);
  const int n = size();
  if (rank() != root) {
    proc_->send(id_, world_rank(root), tag, std::move(mine));
    return {};
  }
  std::vector<util::Bytes> all(static_cast<size_t>(n));
  all[static_cast<size_t>(root)] = std::move(mine);
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    all[static_cast<size_t>(r)] = proc_->recv(id_, static_cast<int>(world_rank(r)), tag);
  }
  return all;
}

util::Bytes Comm::scatter(int root, std::vector<util::Bytes> parts) {
  const int tag = next_collective_tag(3);
  const int n = size();
  if (rank() == root) {
    assert(parts.size() == static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      proc_->send(id_, world_rank(r), tag, std::move(parts[static_cast<size_t>(r)]));
    }
    return std::move(parts[static_cast<size_t>(root)]);
  }
  return proc_->recv(id_, static_cast<int>(world_rank(root)), tag);
}

std::vector<util::Bytes> Comm::allgather(util::Bytes mine) {
  // Gather at rank 0, then rebroadcast the concatenation.
  auto all = gather(0, std::move(mine));
  util::Bytes packed;
  if (rank() == 0) {
    util::Writer w(packed);
    w.u32(static_cast<uint32_t>(all.size()));
    for (const auto& b : all) w.bytes(util::as_bytes_view(b));
  }
  packed = bcast(0, std::move(packed));
  util::Reader r(util::as_bytes_view(packed));
  std::vector<util::Bytes> out;
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.bytes().value_or({}));
  return out;
}

std::vector<util::Bytes> Comm::alltoall(std::vector<util::Bytes> parts) {
  const int tag = next_collective_tag(4);
  const int n = size();
  assert(parts.size() == static_cast<size_t>(n));
  std::vector<util::Bytes> out(static_cast<size_t>(n));
  out[static_cast<size_t>(rank())] = std::move(parts[static_cast<size_t>(rank())]);
  // Post all receives first, then send — no ordering deadlock.
  std::vector<Request> recvs;
  for (int r = 0; r < n; ++r) {
    if (r == rank()) continue;
    recvs.push_back(proc_->irecv(id_, static_cast<int>(world_rank(r)), tag));
  }
  for (int r = 0; r < n; ++r) {
    if (r == rank()) continue;
    proc_->send(id_, world_rank(r), tag, std::move(parts[static_cast<size_t>(r)]));
  }
  size_t req = 0;
  for (int r = 0; r < n; ++r) {
    if (r == rank()) continue;
    out[static_cast<size_t>(r)] = proc_->wait(recvs[req++]);
  }
  return out;
}

template <typename T>
std::vector<T> Comm::reduce_typed(int root, std::vector<T> data, ReduceOp op) {
  auto all = gather(root, encode_vec(data));
  if (rank() != root) return {};
  std::vector<T> acc = std::move(data);
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    combine(acc, decode_vec<T>(all[static_cast<size_t>(r)]), op);
  }
  return acc;
}

template <typename T>
std::vector<T> Comm::allreduce_typed(std::vector<T> data, ReduceOp op) {
  auto acc = reduce_typed(0, std::move(data), op);
  return decode_vec<T>(bcast(0, rank() == 0 ? encode_vec(acc) : util::Bytes{}));
}

std::vector<int64_t> Comm::reduce(int root, std::vector<int64_t> data, ReduceOp op) {
  return reduce_typed(root, std::move(data), op);
}
std::vector<double> Comm::reduce(int root, std::vector<double> data, ReduceOp op) {
  return reduce_typed(root, std::move(data), op);
}
std::vector<int64_t> Comm::allreduce(std::vector<int64_t> data, ReduceOp op) {
  return allreduce_typed(std::move(data), op);
}

std::vector<int64_t> Comm::scan(std::vector<int64_t> data, ReduceOp op) {
  // Linear pipeline: receive the running prefix from rank-1, fold in our
  // contribution, forward to rank+1.
  const int tag = next_collective_tag(5);
  std::vector<int64_t> acc = std::move(data);
  if (rank() > 0) {
    auto prefix = decode_vec<int64_t>(proc_->recv(
        id_, static_cast<int>(world_rank(rank() - 1)), tag));
    combine(acc, prefix, op);
  }
  if (rank() + 1 < size()) {
    proc_->send(id_, world_rank(rank() + 1), tag, encode_vec(acc));
  }
  return acc;
}

std::vector<int64_t> Comm::exscan(std::vector<int64_t> data, ReduceOp op) {
  const int tag = next_collective_tag(6);
  std::vector<int64_t> inclusive = data;  // what we forward
  std::vector<int64_t> result = std::move(data);
  if (rank() > 0) {
    auto prefix = decode_vec<int64_t>(proc_->recv(
        id_, static_cast<int>(world_rank(rank() - 1)), tag));
    result = prefix;  // exclusive: everything before us
    combine(inclusive, prefix, op);
  }
  if (rank() + 1 < size()) {
    proc_->send(id_, world_rank(rank() + 1), tag, encode_vec(inclusive));
  }
  return result;
}

util::Bytes Comm::sendrecv(int dst, int send_tag, util::Bytes data, int src, int recv_tag,
                           RecvStatus* status) {
  // Post the receive first, then send: safe even when both peers target
  // each other (no circular blocking through the rendezvous protocol).
  Request rx = irecv(src, recv_tag);
  send(dst, send_tag, std::move(data));
  return proc_->wait(rx, status);
}
std::vector<double> Comm::allreduce(std::vector<double> data, ReduceOp op) {
  return allreduce_typed(std::move(data), op);
}

// -------------------------------------------------------- split and dup ----

Comm Comm::split(int color, int key) {
  // Exchange (color, key, world_rank) among all members.
  util::Bytes mine;
  util::Writer w(mine);
  w.i32(color);
  w.i32(key);
  w.u32(static_cast<uint32_t>(proc_->rank()));
  auto all = allgather(std::move(mine));
  const uint32_t counter = child_counter_++;

  struct Entry {
    int color;
    int key;
    uint32_t world;
  };
  std::vector<Entry> same_color;
  for (const auto& b : all) {
    util::Reader r(util::as_bytes_view(b));
    Entry e{};
    e.color = r.i32().value_or(-1);
    e.key = r.i32().value_or(0);
    e.world = r.u32().value_or(0);
    if (e.color == color && color >= 0) same_color.push_back(e);
  }
  if (color < 0) return Comm(*proc_, 0, {}, -1);

  std::stable_sort(same_color.begin(), same_color.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.world) < std::tie(b.key, b.world);
  });
  std::vector<uint32_t> members;
  int my_index = -1;
  for (const auto& e : same_color) {
    if (e.world == proc_->rank()) my_index = static_cast<int>(members.size());
    members.push_back(e.world);
  }
  const uint32_t child_id = static_cast<uint32_t>(
      mix(mix(static_cast<uint64_t>(id_) << 32 | counter) ^ static_cast<uint64_t>(color)) |
      0x80000000u);  // high bit: never collides with COMM_WORLD
  return Comm(*proc_, child_id, std::move(members), my_index);
}

Comm Comm::dup() { return split(0, rank()); }

}  // namespace starfish::mpi
