// Communicators and collective operations.
//
// A Comm names an ordered subset of world ranks plus a wire id; collectives
// are built from point-to-point messages in a reserved tag space, with a
// per-communicator sequence number separating consecutive collectives.
// split()/dup() follow MPI semantics: they are collective calls, and every
// member derives the identical child communicator id locally (a hash of the
// parent id, creation counter, and color), so no extra agreement round is
// needed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/proc.hpp"

namespace starfish::mpi {

class Comm {
 public:
  /// COMM_WORLD over a configured Proc.
  static Comm world(Proc& proc);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(members_.size()); }
  uint32_t id() const { return id_; }
  Proc& proc() const { return *proc_; }
  /// World rank of a communicator rank.
  uint32_t world_rank(int r) const { return members_[static_cast<size_t>(r)]; }

  // --- point-to-point (communicator ranks) ---
  void send(int dst, int tag, util::Bytes data);
  util::Bytes recv(int src, int tag, RecvStatus* status = nullptr);
  Request isend(int dst, int tag, util::Bytes data);
  Request irecv(int src, int tag);

  // --- collectives ---
  void barrier();
  /// Root passes the payload; every rank (root included) returns it.
  util::Bytes bcast(int root, util::Bytes data);
  /// Root returns all ranks' contributions in rank order; others get {}.
  std::vector<util::Bytes> gather(int root, util::Bytes mine);
  /// Root passes one part per rank; every rank returns its part.
  util::Bytes scatter(int root, std::vector<util::Bytes> parts);
  std::vector<util::Bytes> allgather(util::Bytes mine);
  /// parts[i] goes to rank i; returns what every rank sent to me.
  std::vector<util::Bytes> alltoall(std::vector<util::Bytes> parts);

  std::vector<int64_t> reduce(int root, std::vector<int64_t> data, ReduceOp op);
  std::vector<double> reduce(int root, std::vector<double> data, ReduceOp op);
  std::vector<int64_t> allreduce(std::vector<int64_t> data, ReduceOp op);
  std::vector<double> allreduce(std::vector<double> data, ReduceOp op);
  /// Inclusive prefix reduction: rank r returns op(data_0 .. data_r).
  std::vector<int64_t> scan(std::vector<int64_t> data, ReduceOp op);
  /// Exclusive prefix: rank 0 returns its input unchanged (MPI semantics
  /// leave it undefined; returning the input is the common convention),
  /// rank r>0 returns op(data_0 .. data_{r-1}).
  std::vector<int64_t> exscan(std::vector<int64_t> data, ReduceOp op);

  /// Combined send+receive without deadlock (MPI_Sendrecv).
  util::Bytes sendrecv(int dst, int send_tag, util::Bytes data, int src, int recv_tag,
                       RecvStatus* status = nullptr);

  /// Collective: partitions members by color (< 0 means "not in any child";
  /// returns an empty-size comm), ordering each child by (key, world rank).
  Comm split(int color, int key);
  Comm dup();

  /// COMM_WORLD only: re-reads the (possibly grown) world size from the
  /// Proc after a dynamic reconfiguration (MPI-2 spawn). Collectives across
  /// a growth event require application-level quiescence.
  void refresh_world() {
    if (id_ != kWorldCommId) return;
    members_.resize(proc_->size());
    for (uint32_t i = 0; i < proc_->size(); ++i) members_[i] = i;
    my_index_ = static_cast<int>(proc_->rank());
  }

 private:
  Comm(Proc& proc, uint32_t id, std::vector<uint32_t> members, int my_index)
      : proc_(&proc), id_(id), members_(std::move(members)), my_index_(my_index) {}

  int next_collective_tag(uint8_t opcode);
  template <typename T>
  std::vector<T> reduce_typed(int root, std::vector<T> data, ReduceOp op);
  template <typename T>
  std::vector<T> allreduce_typed(std::vector<T> data, ReduceOp op);

  Proc* proc_;
  uint32_t id_ = kWorldCommId;
  std::vector<uint32_t> members_;  ///< world ranks, communicator order
  int my_index_ = -1;
  uint32_t collective_seq_ = 0;
  uint32_t child_counter_ = 0;
};

}  // namespace starfish::mpi
