#include "mpi/datatype.hpp"

#include <cstring>

namespace starfish::mpi {

Datatype Datatype::contiguous(size_t count, size_t elem_bytes) {
  Datatype d;
  if (count > 0) d.blocks_.emplace_back(0, count * elem_bytes);
  d.packed_bytes_ = count * elem_bytes;
  d.extent_ = count * elem_bytes;
  return d;
}

Datatype Datatype::vector(size_t count, size_t block_elems, size_t stride_elems,
                          size_t elem_bytes) {
  Datatype d;
  for (size_t i = 0; i < count; ++i) {
    d.blocks_.emplace_back(i * stride_elems * elem_bytes, block_elems * elem_bytes);
  }
  d.packed_bytes_ = count * block_elems * elem_bytes;
  d.extent_ = count == 0 ? 0
                         : (count - 1) * stride_elems * elem_bytes + block_elems * elem_bytes;
  return d;
}

Datatype Datatype::indexed(std::vector<std::pair<size_t, size_t>> blocks) {
  Datatype d;
  d.blocks_ = std::move(blocks);
  for (const auto& [off, len] : d.blocks_) {
    d.packed_bytes_ += len;
    d.extent_ = std::max(d.extent_, off + len);
  }
  return d;
}

util::Result<util::Bytes> Datatype::pack(std::span<const std::byte> buffer) const {
  if (buffer.size() < extent_) {
    return util::Error::make("pack", "buffer smaller than the datatype extent");
  }
  util::Bytes out;
  out.reserve(packed_bytes_);
  for (const auto& [off, len] : blocks_) {
    out.insert(out.end(), buffer.begin() + static_cast<ptrdiff_t>(off),
               buffer.begin() + static_cast<ptrdiff_t>(off + len));
  }
  return out;
}

util::Status Datatype::unpack(std::span<const std::byte> message,
                              std::span<std::byte> buffer) const {
  if (message.size() != packed_bytes_) {
    return util::Error::make("unpack", "message size does not match the datatype");
  }
  if (buffer.size() < extent_) {
    return util::Error::make("unpack", "buffer smaller than the datatype extent");
  }
  size_t pos = 0;
  for (const auto& [off, len] : blocks_) {
    std::memcpy(buffer.data() + off, message.data() + pos, len);
    pos += len;
  }
  return util::Status::ok_status();
}

util::Bytes encode_i64s(std::span<const int64_t> values) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(values.size()));
  for (int64_t v : values) w.i64(v);
  return out;
}

std::vector<int64_t> decode_i64s(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  std::vector<int64_t> out;
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.i64().value_or(0));
  return out;
}

util::Bytes encode_f64s(std::span<const double> values) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(values.size()));
  for (double v : values) w.f64(v);
  return out;
}

std::vector<double> decode_f64s(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  std::vector<double> out;
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.f64().value_or(0.0));
  return out;
}

util::Bytes encode_i32s(std::span<const int32_t> values) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(values.size()));
  for (int32_t v : values) w.i32(v);
  return out;
}

std::vector<int32_t> decode_i32s(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  std::vector<int32_t> out;
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) out.push_back(r.i32().value_or(0));
  return out;
}

}  // namespace starfish::mpi
