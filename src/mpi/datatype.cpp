#include "mpi/datatype.hpp"

#include <cstring>

#include "util/simd/simd.hpp"

namespace starfish::mpi {

Datatype Datatype::contiguous(size_t count, size_t elem_bytes) {
  Datatype d;
  if (count > 0) d.blocks_.emplace_back(0, count * elem_bytes);
  d.packed_bytes_ = count * elem_bytes;
  d.extent_ = count * elem_bytes;
  d.build_plan();
  return d;
}

Datatype Datatype::vector(size_t count, size_t block_elems, size_t stride_elems,
                          size_t elem_bytes) {
  Datatype d;
  for (size_t i = 0; i < count; ++i) {
    d.blocks_.emplace_back(i * stride_elems * elem_bytes, block_elems * elem_bytes);
  }
  d.packed_bytes_ = count * block_elems * elem_bytes;
  d.extent_ = count == 0 ? 0
                         : (count - 1) * stride_elems * elem_bytes + block_elems * elem_bytes;
  d.build_plan();
  return d;
}

Datatype Datatype::indexed(std::vector<std::pair<size_t, size_t>> blocks) {
  Datatype d;
  d.blocks_ = std::move(blocks);
  for (const auto& [off, len] : d.blocks_) {
    d.packed_bytes_ += len;
    d.extent_ = std::max(d.extent_, off + len);
  }
  d.build_plan();
  return d;
}

void Datatype::build_plan() {
  size_t dst = 0;
  for (const auto& [off, len] : blocks_) {
    if (len == 0) continue;  // zero-length blocks contribute no bytes
    if (!plan_.empty() && plan_.back().src + plan_.back().len == off) {
      plan_.back().len += len;  // touches the previous run in the buffer too
    } else {
      plan_.push_back(Run{off, dst, len});
    }
    dst += len;
  }
}

util::Result<util::Bytes> Datatype::pack(std::span<const std::byte> buffer) const {
  if (buffer.size() < extent_) {
    return util::Error::make("pack", "buffer smaller than the datatype extent");
  }
  util::Bytes out(packed_bytes_);
  // Contiguous types (and vectors whose stride equals the block) compiled to
  // a single run, so this loop *is* the one-bulk-copy fast path for them;
  // strided layouts execute the merged gather plan with the SIMD copy.
  for (const Run& r : plan_) {
    util::simd::copy(out.data() + r.dst, buffer.data() + r.src, r.len);
  }
  return out;
}

util::Status Datatype::unpack(std::span<const std::byte> message,
                              std::span<std::byte> buffer) const {
  if (message.size() != packed_bytes_) {
    return util::Error::make("unpack", "message size does not match the datatype");
  }
  if (buffer.size() < extent_) {
    return util::Error::make("unpack", "buffer smaller than the datatype extent");
  }
  for (const Run& r : plan_) {
    util::simd::copy(buffer.data() + r.src, message.data() + r.dst, r.len);
  }
  return util::Status::ok_status();
}

// The typed codecs write the same little-endian wire bytes as the old
// per-element loops; the bulk Writer/Reader paths just retire whole arrays
// through one SIMD copy/byteswap pass. Decoders keep the legacy tolerant
// behavior on truncated input (missing elements read as zero).

util::Bytes encode_i64s(std::span<const int64_t> values) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(values.size()));
  w.i64s(values);
  return out;
}

std::vector<int64_t> decode_i64s(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  const uint32_t n = r.u32().value_or(0);
  std::vector<int64_t> out;
  if (r.remaining() >= n * sizeof(int64_t)) {
    out.resize(n);
    (void)r.read_i64s(out);
  } else {
    for (uint32_t i = 0; i < n; ++i) out.push_back(r.i64().value_or(0));
  }
  return out;
}

util::Bytes encode_f64s(std::span<const double> values) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(values.size()));
  w.f64s(values);
  return out;
}

std::vector<double> decode_f64s(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  const uint32_t n = r.u32().value_or(0);
  std::vector<double> out;
  if (r.remaining() >= n * sizeof(double)) {
    out.resize(n);
    (void)r.read_f64s(out);
  } else {
    for (uint32_t i = 0; i < n; ++i) out.push_back(r.f64().value_or(0.0));
  }
  return out;
}

util::Bytes encode_i32s(std::span<const int32_t> values) {
  util::Bytes out;
  util::Writer w(out);
  w.u32(static_cast<uint32_t>(values.size()));
  w.i32s(values);
  return out;
}

std::vector<int32_t> decode_i32s(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  const uint32_t n = r.u32().value_or(0);
  std::vector<int32_t> out;
  if (r.remaining() >= n * sizeof(int32_t)) {
    out.resize(n);
    (void)r.read_i32s(out);
  } else {
    for (uint32_t i = 0; i < n; ++i) out.push_back(r.i32().value_or(0));
  }
  return out;
}

}  // namespace starfish::mpi
