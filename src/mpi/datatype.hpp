// Derived datatypes and pack/unpack (the MPI datatype machinery, simplified
// to the layouts message-passing codes actually use).
//
// A Datatype describes a memory layout over a byte buffer: contiguous runs,
// strided vectors (e.g. a matrix column), or an explicit indexed list of
// blocks. pack() gathers the described bytes into a contiguous wire buffer;
// unpack() scatters them back. Typed helpers cover the common scalar-array
// cases with explicit little-endian wire order, so heterogeneous ranks in a
// simulated mixed cluster exchange bytes portably.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::mpi {

class Datatype {
 public:
  /// `count` elements of `elem_bytes` each, back to back from offset 0.
  static Datatype contiguous(size_t count, size_t elem_bytes);
  /// `count` blocks of `block_elems` elements, the start of consecutive
  /// blocks `stride_elems` elements apart (MPI_Type_vector).
  static Datatype vector(size_t count, size_t block_elems, size_t stride_elems,
                         size_t elem_bytes);
  /// Explicit (offset, length) byte extents (MPI_Type_indexed flavor).
  static Datatype indexed(std::vector<std::pair<size_t, size_t>> blocks);

  /// Total bytes the layout reads/writes (the packed size).
  size_t packed_bytes() const { return packed_bytes_; }
  /// Smallest buffer size the layout fits into.
  size_t extent() const { return extent_; }

  /// Gathers the described bytes of `buffer` into a contiguous message.
  util::Result<util::Bytes> pack(std::span<const std::byte> buffer) const;
  /// Scatters `message` back into `buffer` according to the layout.
  util::Status unpack(std::span<const std::byte> message,
                      std::span<std::byte> buffer) const;

  /// True when the layout collapses to one contiguous byte run (pack is a
  /// single bulk copy; includes vectors whose stride equals the block).
  bool is_contiguous() const { return plan_.size() <= 1; }

 private:
  Datatype() = default;

  /// Compiles blocks_ into the flattened copy plan pack/unpack execute:
  /// zero-length blocks dropped, adjacent blocks merged (the message side is
  /// always contiguous, so runs merge whenever the buffer offsets touch).
  /// Called once by every factory; blocks_ stays as the descriptive layout.
  void build_plan();

  /// One copy run: `len` bytes at buffer offset `src`, message offset `dst`.
  struct Run {
    size_t src;
    size_t dst;
    size_t len;
  };

  std::vector<std::pair<size_t, size_t>> blocks_;  // (byte offset, byte length)
  std::vector<Run> plan_;                          // merged, zero-runs dropped
  size_t packed_bytes_ = 0;
  size_t extent_ = 0;
};

// --- typed scalar-array codecs (explicit wire order) ---

util::Bytes encode_i64s(std::span<const int64_t> values);
std::vector<int64_t> decode_i64s(const util::Bytes& bytes);
util::Bytes encode_f64s(std::span<const double> values);
std::vector<double> decode_f64s(const util::Bytes& bytes);
util::Bytes encode_i32s(std::span<const int32_t> values);
std::vector<int32_t> decode_i32s(const util::Bytes& bytes);

}  // namespace starfish::mpi
