#include "mpi/frame.hpp"

namespace starfish::mpi {

util::Bytes Frame::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.u8(static_cast<uint8_t>(kind));
  w.u32(comm);
  w.u32(src_rank);
  w.u32(dst_rank);
  w.i32(tag);
  w.u64(seq);
  w.u32(send_interval);
  w.u64(total_bytes);
  w.bytes(util::as_bytes_view(payload));
  return out;
}

util::Result<Frame> Frame::decode(const util::Bytes& bytes) {
  util::Reader r(util::as_bytes_view(bytes));
  Frame f;
  auto kind = r.u8();
  if (!kind) return kind.error();
  f.kind = static_cast<FrameKind>(kind.value());
  auto comm = r.u32();
  if (!comm) return comm.error();
  f.comm = comm.value();
  auto src = r.u32();
  if (!src) return src.error();
  f.src_rank = src.value();
  auto dst = r.u32();
  if (!dst) return dst.error();
  f.dst_rank = dst.value();
  auto tag = r.i32();
  if (!tag) return tag.error();
  f.tag = tag.value();
  auto seq = r.u64();
  if (!seq) return seq.error();
  f.seq = seq.value();
  auto interval = r.u32();
  if (!interval) return interval.error();
  f.send_interval = interval.value();
  auto total = r.u64();
  if (!total) return total.error();
  f.total_bytes = total.value();
  auto payload = r.bytes();
  if (!payload) return payload.error();
  f.payload = std::move(payload).take();
  return f;
}

}  // namespace starfish::mpi
