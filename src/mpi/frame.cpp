#include "mpi/frame.hpp"

namespace starfish::mpi {

namespace {
/// Fixed bytes of the wire header: kind(1) + comm/src/dst/tag(4 each) +
/// seq(8) + interval(4) + total(8) + payload length prefix(4).
constexpr size_t kHeaderBytes = 1 + 4 * 4 + 8 + 4 + 8;
}  // namespace

util::SharedBytes Frame::encode() const {
  util::Bytes out;
  util::Writer w(out);
  w.reserve(kHeaderBytes + payload.size());
  w.u8(static_cast<uint8_t>(kind));
  w.u32(comm);
  w.u32(src_rank);
  w.u32(dst_rank);
  w.i32(tag);
  w.u64(seq);
  w.u32(send_interval);
  w.u64(total_bytes);
  w.bytes(payload.view());
  return out;
}

util::Result<Frame> Frame::decode(const util::SharedBytes& bytes) {
  util::Reader r(bytes.view());
  Frame f;
  auto kind = r.u8();
  if (!kind) return kind.error();
  f.kind = static_cast<FrameKind>(kind.value());
  auto comm = r.u32();
  if (!comm) return comm.error();
  f.comm = comm.value();
  auto src = r.u32();
  if (!src) return src.error();
  f.src_rank = src.value();
  auto dst = r.u32();
  if (!dst) return dst.error();
  f.dst_rank = dst.value();
  auto tag = r.i32();
  if (!tag) return tag.error();
  f.tag = tag.value();
  auto seq = r.u64();
  if (!seq) return seq.error();
  f.seq = seq.value();
  auto interval = r.u32();
  if (!interval) return interval.error();
  f.send_interval = interval.value();
  auto total = r.u64();
  if (!total) return total.error();
  f.total_bytes = total.value();
  // The payload aliases the wire buffer instead of being copied out; the
  // length-prefixed view() advances the reader and bounds-checks for us.
  auto payload = r.view();
  if (!payload) return payload.error();
  f.payload = bytes.slice(r.position() - payload.value().size(), payload.value().size());
  return f;
}

}  // namespace starfish::mpi
