// Data-path frame format (what travels over the VNI).
//
// Every frame carries the sender's checkpoint-interval index so that the
// uncoordinated C/R protocol can piggyback rollback-dependency information
// at zero extra message cost (DESIGN.md section 5.4); coordinated protocols
// ignore the field.
#pragma once

#include <cstdint>

#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::mpi {

enum class FrameKind : uint8_t {
  kEager = 0,        ///< payload included
  kRendezvousRts = 1,  ///< announce a large message (payload omitted)
  kRendezvousCts = 2,  ///< receiver ready: sender may stream the payload
  kRendezvousData = 3, ///< the large payload
  kFlushMarker = 4,    ///< stop-and-sync channel flush (C/R)
  kClMarker = 5,       ///< Chandy–Lamport snapshot marker (C/R)
};

struct Frame {
  FrameKind kind = FrameKind::kEager;
  uint32_t comm = 0;
  uint32_t src_rank = 0;
  uint32_t dst_rank = 0;
  int32_t tag = 0;
  uint64_t seq = 0;           ///< per (src,dst) channel sequence / rendezvous id
  uint32_t send_interval = 0; ///< sender's checkpoint interval (uncoordinated C/R)
  uint64_t total_bytes = 0;   ///< kRendezvousRts: announced payload size
  /// Immutable refcounted body: moving a frame between layers, recording it
  /// for Chandy–Lamport, or parking it in the unexpected queue never copies.
  util::SharedBytes payload;

  /// Gathers header + payload into one wire buffer — the single allocation
  /// a message body pays on the send side.
  util::SharedBytes encode() const;
  /// Zero-copy: the decoded frame's payload aliases `bytes`' allocation.
  static util::Result<Frame> decode(const util::SharedBytes& bytes);
};

}  // namespace starfish::mpi
