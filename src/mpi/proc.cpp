#include "mpi/proc.hpp"

#include <cassert>

#include "util/log.hpp"

namespace starfish::mpi {

struct Request::State {
  Proc* owner = nullptr;
  bool is_recv = false;
  bool send_done = false;
  PostedRecv posted;  ///< is_recv: lives here while linked into posted_
  sim::FiberPtr sender_fiber;

  /// Dropping a request without wait() must unlink the posted entry, or the
  /// matcher would write through a dangling pointer.
  ~State() {
    if (owner != nullptr && is_recv) {
      std::erase(owner->posted_, &posted);
      std::erase_if(owner->rdv_recvs_, [this](const auto& kv) { return kv.second == &posted; });
    }
  }
};

Proc::Proc(net::Network& net, sim::Host& host, net::TransportKind transport, ProcConfig config,
           bool polling)
    : net_(net),
      host_(host),
      config_(config),
      vni_(net, host, transport, polling),
      completion_cv_(net.engine()),
      freeze_cv_(net.engine()) {
  dispatch_fiber_ = host.spawn("mpi-dispatch", [this] { dispatch_loop(); });
}

Proc::~Proc() { shutdown(); }

void Proc::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  vni_.shutdown();
  // Dispatch and helper fibers capture `this`; they must not outlive the
  // Proc (the owning process keeps the object alive until the kills land).
  net_.engine().kill(dispatch_fiber_);
  for (auto& f : helper_fibers_) net_.engine().kill(f);
  helper_fibers_.clear();
  completion_cv_.notify_all();
  freeze_cv_.notify_all();
}

void Proc::configure_world(uint32_t rank, std::vector<net::NetAddr> peers) {
  rank_ = rank;
  peers_ = std::move(peers);
}

// ------------------------------------------------------------ dispatch ----

void Proc::dispatch_loop() {
  for (;;) {
    auto r = vni_.recv();
    if (!r.ok()) return;  // VNI closed: shutdown or host crash
    auto decoded = Frame::decode(r.value->payload);
    if (!decoded.ok()) {
      STARFISH_LOG(kWarn, "mpi") << "rank " << rank_ << " dropped undecodable frame";
      continue;
    }
    on_frame(std::move(decoded).take());
  }
}

void Proc::on_frame(Frame frame) {
  switch (frame.kind) {
    case FrameKind::kEager: {
      Envelope env;
      env.comm = frame.comm;
      env.src = frame.src_rank;
      env.tag = frame.tag;
      env.send_interval = frame.send_interval;
      env.data = std::move(frame.payload);
      on_data_envelope(std::move(env));
      return;
    }
    case FrameKind::kRendezvousRts: {
      Envelope env;
      env.comm = frame.comm;
      env.src = frame.src_rank;
      env.tag = frame.tag;
      env.send_interval = frame.send_interval;
      env.is_rts = true;
      env.rdv_seq = frame.seq;
      env.rdv_bytes = frame.total_bytes;
      on_data_envelope(std::move(env));
      return;
    }
    case FrameKind::kRendezvousCts: {
      auto it = rdv_sends_.find(frame.seq);
      if (it != rdv_sends_.end()) {
        it->second->cts = true;
        completion_cv_.notify_all();
      }
      return;
    }
    case FrameKind::kRendezvousData:
      complete_rendezvous_data(frame);
      return;
    case FrameKind::kFlushMarker:
    case FrameKind::kClMarker:
      if (control_handler_) control_handler_(frame);
      return;
  }
}

void Proc::on_data_envelope(Envelope env) {
  if (recv_tap_) recv_tap_(env);
  // While frozen, nothing is matched to posted receives: the application
  // must not observe messages that logically follow the checkpoint point.
  // They accumulate in the unexpected queue, which the checkpoint saves.
  if (!frozen_) {
    for (auto* p : posted_) {
      if (!p->done && !p->waiting_rdv && matches(*p, env)) {
        if (env.is_rts) {
          begin_rendezvous_receive(*p, env);
        } else {
          p->result = std::move(env);
          p->done = true;
          completion_cv_.notify_all();
        }
        return;
      }
    }
  } else if (env.is_rts) {
    // Complete in-flight rendezvous during a freeze so the sender can drain
    // (the payload lands in the unexpected queue like an eager message).
    Frame cts;
    cts.kind = FrameKind::kRendezvousCts;
    cts.comm = env.comm;
    cts.seq = env.rdv_seq;
    send_frame(env.src, std::move(cts));
    // Remember the pending arrival: a placeholder posted entry keyed by
    // (src, seq) that routes the data frame into the unexpected queue.
    auto* placeholder = new PostedRecv{};  // owned by rdv_recvs_ until data
    placeholder->comm = env.comm;
    placeholder->src = static_cast<int>(env.src);
    placeholder->tag = env.tag;
    placeholder->waiting_rdv = true;
    placeholder->placeholder = true;
    placeholder->result = env;
    rdv_recvs_[{env.src, env.rdv_seq}] = placeholder;
    return;
  }
  unexpected_.push_back(std::move(env));
}

void Proc::complete_rendezvous_data(const Frame& frame) {
  auto key = std::make_pair(frame.src_rank, frame.seq);
  auto it = rdv_recvs_.find(key);
  if (it == rdv_recvs_.end()) return;
  PostedRecv* p = it->second;
  rdv_recvs_.erase(it);
  p->result.data = frame.payload;
  p->result.is_rts = false;
  // The payload of a large message "arrives" here; snapshot recording
  // (Chandy–Lamport) must observe it like any eager arrival.
  if (recv_tap_) recv_tap_(p->result);
  if (rdv_recvs_.empty()) freeze_cv_.notify_all();
  if (p->placeholder) {
    // Freeze-path placeholder: the payload goes to the unexpected queue.
    unexpected_.push_back(std::move(p->result));
    delete p;
    freeze_cv_.notify_all();
    return;
  }
  p->waiting_rdv = false;
  p->done = true;
  completion_cv_.notify_all();
}

// ------------------------------------------------------------ matching ----

bool Proc::matches(const PostedRecv& p, const Envelope& e) const {
  if (p.comm != e.comm) return false;
  if (p.src != kAnySource && static_cast<uint32_t>(p.src) != e.src) return false;
  if (p.tag != kAnyTag && p.tag != e.tag) return false;
  return true;
}

std::optional<Envelope> Proc::take_unexpected(uint32_t comm, int src, int tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    PostedRecv probe;
    probe.comm = comm;
    probe.src = src;
    probe.tag = tag;
    if (matches(probe, *it)) {
      Envelope env = std::move(*it);
      unexpected_.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

void Proc::begin_rendezvous_receive(PostedRecv& posted, const Envelope& rts) {
  posted.result = rts;
  posted.waiting_rdv = true;
  Frame cts;
  cts.kind = FrameKind::kRendezvousCts;
  cts.comm = rts.comm;
  cts.seq = rts.rdv_seq;
  send_frame(rts.src, std::move(cts));
  rdv_recvs_[{rts.src, rts.rdv_seq}] = &posted;
}

util::Bytes Proc::deliver(Envelope env, RecvStatus* status) {
  if (tracker_ != nullptr) {
    tracker_->on_recv(ckpt::IntervalId{env.src, env.send_interval});
  }
  ++messages_received_;
  if (status != nullptr) {
    status->source = static_cast<int>(env.src);
    status->tag = env.tag;
    status->bytes = env.data.size();
  }
  // The app boundary: the shared (usually wire-aliasing) buffer becomes an
  // owned mutable one — the single receive-side copy of the data path.
  return std::move(env.data).to_bytes();
}

// --------------------------------------------------------------- sends ----

void Proc::send_frame(uint32_t dst, Frame frame) {
  assert(dst < peers_.size());
  frame.src_rank = rank_;
  frame.dst_rank = dst;
  if (tracker_ != nullptr) frame.send_interval = tracker_->on_send().interval;
  vni_.send(peers_[dst], frame.encode());
}

void Proc::do_send(uint32_t comm, uint32_t dst, int tag, util::Bytes data) {
  while (frozen_) freeze_cv_.wait([this] { return !frozen_; });
  ++in_flight_sends_;
  struct Dec {
    Proc* p;
    ~Dec() {
      --p->in_flight_sends_;
      p->freeze_cv_.notify_all();
    }
  } dec{this};

  ++messages_sent_;
  bytes_sent_ += data.size();
  // One app message = one send-count tick, whether it travels as a single
  // eager frame or a rendezvous exchange (the receiver's on_recv fires once
  // per app message too, so the lost-message comparison stays apples-to-
  // apples).
  if (tracker_ != nullptr) tracker_->note_send(dst);
  if (data.size() <= config_.eager_threshold) {
    Frame frame;
    frame.kind = FrameKind::kEager;
    frame.comm = comm;
    frame.tag = tag;
    frame.payload = std::move(data);
    send_frame(dst, std::move(frame));
    return;
  }
  // Rendezvous: announce, wait for the receiver's CTS, stream the payload.
  const uint64_t seq = next_rdv_seq_++;
  RdvSend st;
  rdv_sends_[seq] = &st;
  Frame rts;
  rts.kind = FrameKind::kRendezvousRts;
  rts.comm = comm;
  rts.tag = tag;
  rts.seq = seq;
  rts.total_bytes = data.size();
  send_frame(dst, std::move(rts));
  completion_cv_.wait([&] { return st.cts || shut_down_; });
  rdv_sends_.erase(seq);
  if (shut_down_) return;
  Frame payload;
  payload.kind = FrameKind::kRendezvousData;
  payload.comm = comm;
  payload.tag = tag;
  payload.seq = seq;
  payload.payload = std::move(data);
  send_frame(dst, std::move(payload));
}

void Proc::send(uint32_t comm, uint32_t dst, int tag, util::Bytes data) {
  do_send(comm, dst, tag, std::move(data));
}

util::Bytes Proc::recv(uint32_t comm, int src, int tag, RecvStatus* status) {
  // Fast path: already queued (and we are not frozen — a frozen process's
  // application is quiesced and must not consume checkpoint-era messages).
  if (!frozen_) {
    if (auto env = take_unexpected(comm, src, tag)) {
      if (!env->is_rts) return deliver(std::move(*env), status);
      // Unexpected RTS: start the rendezvous now and wait for the payload.
      PostedRecv pr;
      pr.comm = comm;
      pr.src = src;
      pr.tag = tag;
      begin_rendezvous_receive(pr, *env);
      completion_cv_.wait([&] { return pr.done || shut_down_; });
      return deliver(std::move(pr.result), status);
    }
  }
  PostedRecv pr;
  pr.comm = comm;
  pr.src = src;
  pr.tag = tag;
  posted_.push_back(&pr);
  completion_cv_.wait([&] { return pr.done || shut_down_; });
  std::erase(posted_, &pr);
  return deliver(std::move(pr.result), status);
}

Request Proc::isend(uint32_t comm, uint32_t dst, int tag, util::Bytes data) {
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->owner = this;
  req.state_->is_recv = false;
  if (data.size() <= config_.eager_threshold && !frozen_) {
    do_send(comm, dst, tag, std::move(data));
    req.state_->send_done = true;
    return req;
  }
  // Large (or currently frozen) sends progress on a helper fiber so isend
  // returns immediately; wait() joins it.
  auto state = req.state_;
  state->sender_fiber =
      host_.spawn("mpi-isend", [this, state, comm, dst, tag, data = std::move(data)]() mutable {
        do_send(comm, dst, tag, std::move(data));
        state->send_done = true;
        completion_cv_.notify_all();
      });
  helper_fibers_.push_back(state->sender_fiber);
  return req;
}

Request Proc::irecv(uint32_t comm, int src, int tag) {
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->owner = this;
  req.state_->is_recv = true;
  PostedRecv& pr = req.state_->posted;
  pr.comm = comm;
  pr.src = src;
  pr.tag = tag;
  if (!frozen_) {
    if (auto env = take_unexpected(comm, src, tag)) {
      if (env->is_rts) {
        begin_rendezvous_receive(pr, *env);
      } else {
        pr.result = std::move(*env);
        pr.done = true;
      }
      return req;
    }
  }
  posted_.push_back(&pr);
  return req;
}

util::Bytes Proc::wait(Request& request, RecvStatus* status) {
  assert(request.valid());
  auto& st = *request.state_;
  if (st.is_recv) {
    completion_cv_.wait([&] { return st.posted.done || shut_down_; });
    std::erase(posted_, &st.posted);
    return deliver(std::move(st.posted.result), status);
  }
  completion_cv_.wait([&] { return st.send_done || shut_down_; });
  return {};
}

void Proc::waitall(std::vector<Request>& requests) {
  for (auto& r : requests) {
    if (r.valid()) (void)wait(r);
  }
}

size_t Proc::waitany(std::vector<Request>& requests) {
  completion_cv_.wait([&] {
    if (shut_down_) return true;
    for (const auto& r : requests) {
      if (test(r)) return true;
    }
    return false;
  });
  for (size_t i = 0; i < requests.size(); ++i) {
    if (test(requests[i])) return i;
  }
  return requests.size();
}

bool Proc::test(const Request& request) const {
  if (!request.valid()) return true;
  const auto& st = *request.state_;
  return st.is_recv ? st.posted.done : st.send_done;
}

bool Proc::iprobe(uint32_t comm, int src, int tag, RecvStatus* status) {
  if (frozen_) return false;
  for (const auto& env : unexpected_) {
    PostedRecv probe;
    probe.comm = comm;
    probe.src = src;
    probe.tag = tag;
    if (matches(probe, env)) {
      if (status != nullptr) {
        status->source = static_cast<int>(env.src);
        status->tag = env.tag;
        status->bytes = env.is_rts ? env.rdv_bytes : env.data.size();
      }
      return true;
    }
  }
  return false;
}

// -------------------------------------------------------------- freeze ----

void Proc::freeze() {
  frozen_ = true;
  // Complete any rendezvous already announced to us: auto-CTS everything
  // sitting in the unexpected queue (new RTS frames are auto-CTS'd on
  // arrival while frozen).
  for (auto& env : unexpected_) {
    if (!env.is_rts) continue;
    Frame cts;
    cts.kind = FrameKind::kRendezvousCts;
    cts.comm = env.comm;
    cts.seq = env.rdv_seq;
    send_frame(env.src, std::move(cts));
    auto* placeholder = new PostedRecv{};
    placeholder->comm = env.comm;
    placeholder->src = static_cast<int>(env.src);
    placeholder->tag = env.tag;
    placeholder->waiting_rdv = true;
    placeholder->placeholder = true;
    placeholder->result = env;
    rdv_recvs_[{env.src, env.rdv_seq}] = placeholder;
  }
  // Drop the RTS placeholders from the queue; their payloads will re-enter
  // as full envelopes when the data arrives.
  std::erase_if(unexpected_, [](const Envelope& e) { return e.is_rts; });
  // Wait until our own sends have fully drained (a flush marker sent after
  // this point is therefore ordered after all our data).
  freeze_cv_.wait([this] { return in_flight_sends_ == 0; });
}

void Proc::drain_for_snapshot() {
  for (auto& env : unexpected_) {
    if (!env.is_rts) continue;
    Frame cts;
    cts.kind = FrameKind::kRendezvousCts;
    cts.comm = env.comm;
    cts.seq = env.rdv_seq;
    send_frame(env.src, std::move(cts));
    auto* placeholder = new PostedRecv{};
    placeholder->comm = env.comm;
    placeholder->src = static_cast<int>(env.src);
    placeholder->tag = env.tag;
    placeholder->waiting_rdv = true;
    placeholder->placeholder = true;
    placeholder->result = env;
    rdv_recvs_[{env.src, env.rdv_seq}] = placeholder;
  }
  std::erase_if(unexpected_, [](const Envelope& e) { return e.is_rts; });
}

void Proc::wait_rendezvous_drained() {
  freeze_cv_.wait([this] { return rdv_recvs_.empty(); });
}

void Proc::thaw() {
  frozen_ = false;
  freeze_cv_.notify_all();
  // Messages that accumulated while frozen may match receives the
  // application is still blocked on.
  for (auto* p : posted_) {
    if (p->done || p->waiting_rdv) continue;
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (!matches(*p, *it)) continue;
      if (it->is_rts) break;  // handled by arrival path; cannot happen post-freeze
      p->result = std::move(*it);
      unexpected_.erase(it);
      p->done = true;
      break;
    }
  }
  completion_cv_.notify_all();
}

void Proc::send_marker(FrameKind kind, uint32_t comm, util::SharedBytes payload) {
  for (uint32_t dst = 0; dst < peers_.size(); ++dst) {
    if (dst == rank_) continue;
    send_marker_to(dst, kind, comm, payload);  // refcount bump, no copy
  }
}

void Proc::send_marker_to(uint32_t dst, FrameKind kind, uint32_t comm,
                          util::SharedBytes payload) {
  Frame frame;
  frame.kind = kind;
  frame.comm = comm;
  frame.payload = std::move(payload);
  send_frame(dst, std::move(frame));
}

// ------------------------------------------------------- channel state ----

util::Bytes Proc::capture_channel_state() const {
  // RTS placeholders are skipped: their payloads arrive later and are
  // recorded by the snapshot tap (freeze/drain_for_snapshot converted any
  // queued RTS into pending arrivals already).
  util::Bytes out;
  util::Writer w(out);
  uint32_t count = 0;
  for (const auto& env : unexpected_) {
    if (!env.is_rts) ++count;
  }
  w.u32(count);
  for (const auto& env : unexpected_) {
    if (env.is_rts) continue;
    w.u32(env.comm);
    w.u32(env.src);
    w.i32(env.tag);
    w.u32(env.send_interval);
    w.bytes(util::as_bytes_view(env.data));
  }
  return out;
}

void Proc::restore_channel_state(const util::Bytes& blob, std::vector<Envelope> recorded) {
  std::deque<Envelope> live;
  live.swap(unexpected_);
  util::Reader r(util::as_bytes_view(blob));
  const uint32_t n = r.u32().value_or(0);
  for (uint32_t i = 0; i < n; ++i) {
    Envelope env;
    env.comm = r.u32().value_or(0);
    env.src = r.u32().value_or(0);
    env.tag = r.i32().value_or(0);
    env.send_interval = r.u32().value_or(0);
    auto data = r.bytes();
    if (data.ok()) env.data = std::move(data).take();
    unexpected_.push_back(std::move(env));
  }
  for (auto& env : recorded) unexpected_.push_back(std::move(env));
  for (auto& env : live) unexpected_.push_back(std::move(env));
  // The application may already be blocked in a recv posted while the image
  // was still being read from disk: a restored in-transit message must match
  // it now, or it would wait for an arrival that never comes (the message
  // already "arrived" — into the checkpoint).
  for (auto* p : posted_) {
    if (p->done || p->waiting_rdv) continue;
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (!matches(*p, *it) || it->is_rts) continue;
      p->result = std::move(*it);
      unexpected_.erase(it);
      p->done = true;
      break;
    }
  }
  completion_cv_.notify_all();
}

void Proc::inject_unexpected(Envelope env) { unexpected_.push_back(std::move(env)); }

}  // namespace starfish::mpi
