// Proc: the per-process MPI module (paper figure 1).
//
// Owns the process's VNI (fast data path) and implements point-to-point
// messaging: eager sends below a threshold, RTS/CTS rendezvous above it,
// posted-receive/unexpected-message matching with MPI wildcard semantics,
// and non-blocking operations. The dispatch fiber drains the VNI's receive
// queue (fed by the polling thread) and matches or stores every frame.
//
// Checkpoint/restart hooks:
//  * freeze()/thaw() quiesce the send side (stop-and-sync): new sends block,
//    matching to posted receives is suspended so the application cannot
//    observe messages logically "after" the checkpoint, and in-flight
//    rendezvous transfers are completed eagerly so channels can drain.
//  * capture_channel_state()/restore_channel_state() snapshot the unexpected
//    queue — the in-transit messages a coordinated checkpoint must save.
//  * set_control_handler() delivers flush/Chandy–Lamport markers to the C/R
//    module; set_recv_tap() lets Chandy–Lamport record post-snapshot channel
//    traffic; set_dependency_tracker() piggybacks checkpoint intervals for
//    the uncoordinated protocol.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/recovery.hpp"
#include "mpi/frame.hpp"
#include "mpi/types.hpp"
#include "net/vni.hpp"

namespace starfish::mpi {

/// A matched (or matchable) message as held by the MPI module.
struct Envelope {
  uint32_t comm = 0;
  uint32_t src = 0;
  int32_t tag = 0;
  uint32_t send_interval = 0;
  /// Shared with the wire buffer it arrived in (zero-copy); materialized
  /// into an owned util::Bytes only at application delivery.
  util::SharedBytes data;
  // Rendezvous bookkeeping while the payload has not arrived yet.
  bool is_rts = false;
  uint64_t rdv_seq = 0;
  uint64_t rdv_bytes = 0;
};

class Proc;

/// Internal: one posted receive awaiting a match (exposed at namespace scope
/// so Request's state can embed it).
struct PostedRecv {
  uint32_t comm = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  bool done = false;
  bool waiting_rdv = false;
  /// Freeze-path stand-in: the payload routes to the unexpected queue, not
  /// to an application receive (heap-owned by rdv_recvs_ until then).
  bool placeholder = false;
  Envelope result;
};

/// Handle for a non-blocking operation (MPI_Request).
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Proc;
  struct State;
  std::shared_ptr<State> state_;
};

class Proc {
 public:
  Proc(net::Network& net, sim::Host& host, net::TransportKind transport,
       ProcConfig config = {}, bool polling = true);
  ~Proc();
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  /// Installs (or replaces, after a dynamic reconfiguration) the world
  /// wiring: this process's rank and every rank's VNI address.
  void configure_world(uint32_t rank, std::vector<net::NetAddr> peers);

  uint32_t rank() const { return rank_; }
  uint32_t size() const { return static_cast<uint32_t>(peers_.size()); }
  /// Every rank's VNI address as last configured (this process's own
  /// deterministic view of the world — replica placement derives rank ->
  /// host from it).
  const std::vector<net::NetAddr>& peers() const { return peers_; }
  net::NetAddr addr() const { return vni_.addr(); }
  net::Vni& vni() { return vni_; }

  // --- point-to-point (world-rank addressed; Comm maps ranks) ---
  void send(uint32_t comm, uint32_t dst, int tag, util::Bytes data);
  util::Bytes recv(uint32_t comm, int src, int tag, RecvStatus* status = nullptr);
  Request isend(uint32_t comm, uint32_t dst, int tag, util::Bytes data);
  Request irecv(uint32_t comm, int src, int tag);
  /// Blocks until the request completes; returns the received payload for
  /// irecv requests (empty for isend).
  util::Bytes wait(Request& request, RecvStatus* status = nullptr);
  /// Non-blocking completion check.
  bool test(const Request& request) const;
  /// Blocks until every request completes (receive payloads discarded —
  /// use wait() per request when the data matters).
  void waitall(std::vector<Request>& requests);
  /// Blocks until at least one request completes; returns its index.
  size_t waitany(std::vector<Request>& requests);
  /// True if a matching message is already queued (MPI_Iprobe).
  bool iprobe(uint32_t comm, int src, int tag, RecvStatus* status = nullptr);

  // --- checkpoint/restart hooks ---
  void set_control_handler(std::function<void(const Frame&)> handler) {
    control_handler_ = std::move(handler);
  }
  void set_recv_tap(std::function<void(const Envelope&)> tap) { recv_tap_ = std::move(tap); }
  void set_dependency_tracker(ckpt::DependencyTracker* tracker) { tracker_ = tracker; }

  /// Quiesces the send side; returns when no send is in flight and every
  /// pending rendezvous transfer has drained.
  void freeze();
  void thaw();
  bool frozen() const { return frozen_; }

  /// Non-freezing snapshot prep (Chandy–Lamport): auto-CTS every announced
  /// rendezvous so its payload flows and can be recorded by the recv tap.
  void drain_for_snapshot();
  /// Blocks until no rendezvous receive is pending (all announced payloads
  /// have landed). Used before capturing channel state.
  void wait_rendezvous_drained();

  /// Sends a control marker to every other rank (bypasses freeze). The
  /// payload buffer is shared across all per-peer frames, not re-copied.
  void send_marker(FrameKind kind, uint32_t comm, util::SharedBytes payload = {});
  /// Sends a control marker to one rank.
  void send_marker_to(uint32_t dst, FrameKind kind, uint32_t comm,
                      util::SharedBytes payload = {});

  util::Bytes capture_channel_state() const;
  /// Replays a saved channel state plus recorded in-transit messages
  /// (Chandy–Lamport). Ordering: saved unexpected queue, then recordings,
  /// then whatever already arrived live while this process was restoring —
  /// live traffic logically follows everything the checkpoint saved.
  void restore_channel_state(const util::Bytes& blob, std::vector<Envelope> recorded = {});
  /// Test hook: queues one message as if it had arrived.
  void inject_unexpected(Envelope env);

  /// Permanently stops the dispatch machinery (end of the process).
  void shutdown();

  // --- stats ---
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_received() const { return messages_received_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  size_t unexpected_depth() const { return unexpected_.size(); }

 private:
  void dispatch_loop();
  void on_frame(Frame frame);
  void on_data_envelope(Envelope env);
  void complete_rendezvous_data(const Frame& frame);
  bool matches(const PostedRecv& p, const Envelope& e) const;
  std::optional<Envelope> take_unexpected(uint32_t comm, int src, int tag);
  /// Sends CTS for an RTS envelope and parks `posted` until the data lands.
  void begin_rendezvous_receive(PostedRecv& posted, const Envelope& rts);
  util::Bytes deliver(Envelope env, RecvStatus* status);
  void send_frame(uint32_t dst, Frame frame);
  void do_send(uint32_t comm, uint32_t dst, int tag, util::Bytes data);

  net::Network& net_;
  sim::Host& host_;
  ProcConfig config_;
  net::Vni vni_;
  sim::FiberPtr dispatch_fiber_;
  std::vector<sim::FiberPtr> helper_fibers_;  ///< isend progress fibers
  bool shut_down_ = false;

  uint32_t rank_ = 0;
  std::vector<net::NetAddr> peers_;

  // Matching state.
  std::deque<Envelope> unexpected_;
  std::vector<PostedRecv*> posted_;
  sim::CondVar completion_cv_;

  // Rendezvous state.
  uint64_t next_rdv_seq_ = 1;
  struct RdvSend {
    bool cts = false;
  };
  std::map<uint64_t, RdvSend*> rdv_sends_;                       ///< awaiting CTS
  std::map<std::pair<uint32_t, uint64_t>, PostedRecv*> rdv_recvs_;  ///< awaiting data

  // Quiesce state.
  bool frozen_ = false;
  uint32_t in_flight_sends_ = 0;
  sim::CondVar freeze_cv_;

  // C/R hooks.
  std::function<void(const Frame&)> control_handler_;
  std::function<void(const Envelope&)> recv_tap_;
  ckpt::DependencyTracker* tracker_ = nullptr;

  // Stats.
  uint64_t messages_sent_ = 0;
  uint64_t messages_received_ = 0;
  uint64_t bytes_sent_ = 0;

  friend class Request;
};

}  // namespace starfish::mpi
