// Core MPI-module types and constants.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace starfish::mpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Tags above this are reserved for internal protocols (collectives, C/R).
constexpr int kMaxUserTag = 0x0fffffff;
constexpr int kCollectiveTagBase = 0x10000000;

/// COMM_WORLD's id; communicators created by split/dup get higher ids.
constexpr uint32_t kWorldCommId = 0;

enum class ReduceOp : uint8_t { kSum = 0, kMin = 1, kMax = 2, kProd = 3 };

/// Completion info for a receive (MPI_Status).
struct RecvStatus {
  int source = kAnySource;
  int tag = kAnyTag;
  uint64_t bytes = 0;
};

struct ProcConfig {
  /// Messages up to this size are sent eagerly; larger ones use the
  /// rendezvous (RTS/CTS) protocol so the receiver can sink them without
  /// unbounded buffering.
  uint64_t eager_threshold = 16 * 1024;
};

}  // namespace starfish::mpi
