#include "net/chunk.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace starfish::net {

void chunked_sleep(sim::Engine& engine, sim::Duration total, uint64_t bytes) {
  const uint64_t n = chunk_count(bytes);
  if (obs::Hub* hub = engine.obs()) {
    hub->metrics.counter("net.chunk.transfers").add(1);
    hub->metrics.counter("net.chunk.chunks").add(n);
    hub->metrics.counter("net.chunk.bytes").add(bytes);
    // High-water mark of the streamed window — the whole point of chunking
    // is that this stays <= kChunkBytes however large the epoch gets.
    hub->metrics.gauge("net.chunk.inflight_bytes")
        .set(static_cast<int64_t>(std::min(bytes, kChunkBytes)));
  }
  if (n == 1) {
    engine.sleep(total);
  } else {
    // Exact integer partition: the i-th chunk sleeps total*(i+1)/n -
    // total*i/n, so the chunks sum to `total` to the nanosecond and the
    // monolithic formula's downstream timestamps are preserved.
    for (uint64_t i = 0; i < n; ++i) {
      engine.sleep(total * static_cast<sim::Duration>(i + 1) / static_cast<sim::Duration>(n) -
                   total * static_cast<sim::Duration>(i) / static_cast<sim::Duration>(n));
    }
  }
  if (obs::Hub* hub = engine.obs()) {
    hub->metrics.gauge("net.chunk.inflight_bytes").set(0);
  }
}

}  // namespace starfish::net
