// Chunked bulk transfer (PR 10).
//
// Replica checkpoint epochs used to travel as one monolithic transfer: a
// single engine sleep covering the whole image, which models a sender that
// materializes and ships the entire epoch in one piece. Real bulk paths
// stream: the payload moves in bounded chunks, so the in-flight window is
// a few hundred KB regardless of epoch size, and a crash mid-transfer
// aborts at a chunk boundary rather than after "all or nothing" virtual
// time. This helper models that streaming shape while keeping the TOTAL
// charged time bit-identical to the monolithic formula — the per-chunk
// sleeps are an exact integer partition of `total`, so swapping a
// monolithic sleep for chunked_sleep never moves any downstream timestamp.
// What changes is the event structure (one wakeup per chunk) and the obs
// view: an in-flight gauge and chunk counters that make streaming depth
// visible.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace starfish::net {

/// In-flight window of a streamed bulk transfer. 256 KB ~ a few dozen
/// pages: deep enough to amortize per-chunk fixed costs, small enough that
/// a multi-MB epoch never sits fully materialized "on the wire".
constexpr uint64_t kChunkBytes = 256 * 1024;

/// Number of chunks a `bytes`-sized transfer streams as (>= 1; a zero-byte
/// transfer still pays its fixed cost as one chunk).
constexpr uint64_t chunk_count(uint64_t bytes) {
  return bytes <= kChunkBytes ? 1 : (bytes + kChunkBytes - 1) / kChunkBytes;
}

/// Sleeps the calling fiber for exactly `total`, partitioned into
/// chunk_count(bytes) consecutive sleeps (total*(i+1)/n - total*i/n, an
/// exact integer partition). Emits net.chunk.* obs metrics: chunk count,
/// bytes, and a max-tracking gauge of the in-flight window.
void chunked_sleep(sim::Engine& engine, sim::Duration total, uint64_t bytes);

}  // namespace starfish::net
