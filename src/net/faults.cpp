#include "net/faults.hpp"

#include <algorithm>

#include "net/network.hpp"

namespace starfish::net {

namespace {
/// A "dropped" stream frame is retransmitted, not lost; cap the modelled
/// consecutive-loss streak so a drop probability of 1.0 cannot stall the
/// simulation forever.
constexpr int kMaxStreamRetransmits = 16;

/// Weyl-sequence salt: distinct, well-mixed lane seeds from (seed, src).
uint64_t lane_seed(uint64_t engine_seed, size_t src) {
  return engine_seed ^ (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(src) + 1));
}
}  // namespace

void FaultInjector::on_host_added(size_t host_count) {
  assert(!engine_.in_parallel());
  while (lanes_.size() < host_count) {
    lanes_.emplace_back(lane_seed(engine_.seed(), lanes_.size()));
  }
}

void FaultInjector::partition(const std::vector<sim::HostId>& a,
                              const std::vector<sim::HostId>& b, bool symmetric) {
  assert(!engine_.in_parallel());
  for (sim::HostId x : a) {
    for (sim::HostId y : b) {
      if (x == y) continue;
      blocked_.insert({x, y});
      if (symmetric) blocked_.insert({y, x});
    }
  }
  refresh_enabled();
}

void FaultInjector::heal() {
  assert(!engine_.in_parallel());
  blocked_.clear();
  refresh_enabled();
}

void FaultInjector::clear() {
  assert(!engine_.in_parallel());
  default_ = LinkFaults{};
  for (auto& t : transport_) t.reset();
  links_.clear();
  blocked_.clear();
  filter_ = nullptr;
  for (Lane& ln : lanes_) ln.trace.clear();
  refresh_enabled();
}

void FaultInjector::refresh_enabled() {
  enabled_ = default_.any() || !links_.empty() || !blocked_.empty() || filter_ != nullptr;
  if (!enabled_) {
    for (const auto& t : transport_) {
      if (t && t->any()) enabled_ = true;
    }
  }
}

const FaultCounters& FaultInjector::counters() const {
  assert(!engine_.in_parallel());
  merged_counters_ = FaultCounters{};
  for (const Lane& ln : lanes_) {
    const FaultCounters& c = ln.counters;
    merged_counters_.datagrams_dropped += c.datagrams_dropped;
    merged_counters_.datagrams_duplicated += c.datagrams_duplicated;
    merged_counters_.datagrams_delayed += c.datagrams_delayed;
    merged_counters_.partition_drops += c.partition_drops;
    merged_counters_.stream_retransmits += c.stream_retransmits;
    merged_counters_.stream_resets += c.stream_resets;
    merged_counters_.connects_blocked += c.connects_blocked;
    merged_counters_.filter_drops += c.filter_drops;
  }
  return merged_counters_;
}

const std::vector<std::string>& FaultInjector::trace() const {
  assert(!engine_.in_parallel());
  // K-way merge of the per-lane (already time-ordered) streams, keyed by
  // (time, source host, per-lane index): a total order every shard count
  // reproduces bit-identically.
  struct Ref {
    sim::Time t;
    sim::HostId src;
    size_t idx;
  };
  std::vector<Ref> refs;
  size_t total = 0;
  for (const Lane& ln : lanes_) total += ln.trace.size();
  refs.reserve(total);
  for (sim::HostId src = 0; src < lanes_.size(); ++src) {
    for (size_t i = 0; i < lanes_[src].trace.size(); ++i) {
      refs.push_back({lanes_[src].trace[i].first, src, i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.src != b.src) return a.src < b.src;
    return a.idx < b.idx;
  });
  merged_trace_.clear();
  merged_trace_.reserve(refs.size());
  for (const Ref& r : refs) merged_trace_.push_back(lanes_[r.src].trace[r.idx].second);
  return merged_trace_;
}

const LinkFaults& FaultInjector::faults_for(sim::HostId src, sim::HostId dst,
                                            TransportKind kind) const {
  auto it = links_.find({src, dst});
  if (it != links_.end()) return it->second;
  const auto& t = transport_[static_cast<size_t>(kind)];
  if (t) return *t;
  return default_;
}

void FaultInjector::note(Lane& ln, const char* what, sim::HostId src, sim::HostId dst,
                         uint64_t count) {
  const sim::Time now = engine_.now();
  ln.trace.emplace_back(now, std::to_string(now) + " " + what + " host" + std::to_string(src) +
                                 "->host" + std::to_string(dst));
  if (obs::Hub* hub = engine_.obs()) {
    // `what` is always a string literal, so its address identifies the
    // counter; resolving "net.fault.<what>" through the registry on every
    // faulted packet would allocate the name and take the registry lock.
    if (hub != ln.obs_hub) {
      ln.obs_hub = hub;
      ln.obs_counters.clear();
    }
    obs::Counter*& counter = ln.obs_counters[static_cast<const void*>(what)];
    if (counter == nullptr) counter = &hub->metrics.counter(std::string("net.fault.") + what);
    counter->add(count);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(now), "fault",
                          std::string(what) + " ->host" + std::to_string(dst), src);
    }
  }
}

sim::Duration FaultInjector::latency_extra(Lane& ln, const LinkFaults& f, sim::HostId src,
                                           sim::HostId dst, const char* what) {
  sim::Duration extra = f.delay;
  if (f.jitter > 0) {
    extra += static_cast<sim::Duration>(ln.rng.below(static_cast<uint64_t>(f.jitter)));
  }
  if (extra > 0) {
    ++ln.counters.datagrams_delayed;
    note(ln, what, src, dst);
  }
  return extra;
}

FaultInjector::Verdict FaultInjector::datagram_verdict(const Packet& packet,
                                                       TransportKind kind) {
  Verdict v;
  const sim::HostId src = packet.src.host;
  const sim::HostId dst = packet.dst.host;
  if (src == dst) return v;  // loopback is exempt from all faults
  Lane& ln = lane(src);
  if (filter_ && filter_(packet, kind)) {
    v.drop = true;
    ++ln.counters.filter_drops;
    note(ln, "filter-drop", src, dst);
    return v;
  }
  if (link_blocked(src, dst)) {
    v.drop = true;
    ++ln.counters.partition_drops;
    note(ln, "partition-drop", src, dst);
    return v;
  }
  const LinkFaults& f = faults_for(src, dst, kind);
  if (!f.any()) return v;
  if (f.drop > 0 && ln.rng.chance(f.drop)) {
    v.drop = true;
    ++ln.counters.datagrams_dropped;
    note(ln, "drop", src, dst);
    return v;
  }
  if (f.duplicate > 0 && ln.rng.chance(f.duplicate)) {
    v.duplicate = true;
    ++ln.counters.datagrams_duplicated;
    note(ln, "duplicate", src, dst);
  }
  v.extra = latency_extra(ln, f, src, dst, "delay");
  return v;
}

sim::Duration FaultInjector::stream_penalty(sim::HostId src, sim::HostId dst,
                                            TransportKind kind, size_t bytes, bool& reset) {
  reset = false;
  if (src == dst) return 0;
  Lane& ln = lane(src);
  if (link_blocked(src, dst) || link_blocked(dst, src)) {
    // TCP across a partition: retransmissions exhaust and the connection
    // resets. In-flight data is lost, both ends observe a broken stream.
    reset = true;
    ++ln.counters.stream_resets;
    note(ln, "stream-reset", src, dst);
    return 0;
  }
  const LinkFaults& f = faults_for(src, dst, kind);
  if (!f.any()) return 0;
  sim::Duration extra = 0;
  if (f.drop > 0) {
    const TransportModel& model = model_for(kind);
    const sim::Duration resend = 2 * model.one_way_fixed() + model.wire_time(bytes);
    int streak = 0;
    while (streak < kMaxStreamRetransmits && ln.rng.chance(f.drop)) {
      extra += resend;
      ++streak;
    }
    if (streak > 0) {
      ln.counters.stream_retransmits += static_cast<uint64_t>(streak);
      note(ln, "stream-retransmit", src, dst, static_cast<uint64_t>(streak));
    }
  }
  extra += latency_extra(ln, f, src, dst, "stream-delay");
  return extra;
}

bool FaultInjector::connect_blocked(sim::HostId from, sim::HostId to) {
  if (link_blocked(from, to) || link_blocked(to, from)) {
    Lane& ln = lane(from);
    ++ln.counters.connects_blocked;
    note(ln, "connect-blocked", from, to);
    return true;
  }
  return false;
}

}  // namespace starfish::net
