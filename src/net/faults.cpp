#include "net/faults.hpp"

#include "net/network.hpp"

namespace starfish::net {

namespace {
/// A "dropped" stream frame is retransmitted, not lost; cap the modelled
/// consecutive-loss streak so a drop probability of 1.0 cannot stall the
/// simulation forever.
constexpr int kMaxStreamRetransmits = 16;
}  // namespace

void FaultInjector::partition(const std::vector<sim::HostId>& a,
                              const std::vector<sim::HostId>& b, bool symmetric) {
  for (sim::HostId x : a) {
    for (sim::HostId y : b) {
      if (x == y) continue;
      blocked_.insert({x, y});
      if (symmetric) blocked_.insert({y, x});
    }
  }
  refresh_enabled();
}

void FaultInjector::heal() {
  blocked_.clear();
  refresh_enabled();
}

void FaultInjector::clear() {
  default_ = LinkFaults{};
  for (auto& t : transport_) t.reset();
  links_.clear();
  blocked_.clear();
  filter_ = nullptr;
  trace_.clear();
  refresh_enabled();
}

void FaultInjector::refresh_enabled() {
  enabled_ = default_.any() || !links_.empty() || !blocked_.empty() || filter_ != nullptr;
  if (!enabled_) {
    for (const auto& t : transport_) {
      if (t && t->any()) enabled_ = true;
    }
  }
}

const LinkFaults& FaultInjector::faults_for(sim::HostId src, sim::HostId dst,
                                            TransportKind kind) const {
  auto it = links_.find({src, dst});
  if (it != links_.end()) return it->second;
  const auto& t = transport_[static_cast<size_t>(kind)];
  if (t) return *t;
  return default_;
}

void FaultInjector::note(const char* what, sim::HostId src, sim::HostId dst, uint64_t count) {
  trace_.push_back(std::to_string(engine_.now()) + " " + what + " host" + std::to_string(src) +
                   "->host" + std::to_string(dst));
  if (obs::Hub* hub = engine_.obs()) {
    hub->metrics.counter(std::string("net.fault.") + what).add(count);
    if (hub->tracer.enabled()) {
      hub->tracer.instant(static_cast<uint64_t>(engine_.now()), "fault",
                          std::string(what) + " ->host" + std::to_string(dst), src);
    }
  }
}

sim::Duration FaultInjector::latency_extra(const LinkFaults& f, sim::HostId src, sim::HostId dst,
                                           const char* what) {
  sim::Duration extra = f.delay;
  if (f.jitter > 0) {
    extra += static_cast<sim::Duration>(engine_.rng().below(static_cast<uint64_t>(f.jitter)));
  }
  if (extra > 0) {
    ++counters_.datagrams_delayed;
    note(what, src, dst);
  }
  return extra;
}

FaultInjector::Verdict FaultInjector::datagram_verdict(const Packet& packet,
                                                       TransportKind kind) {
  Verdict v;
  const sim::HostId src = packet.src.host;
  const sim::HostId dst = packet.dst.host;
  if (src == dst) return v;  // loopback is exempt from all faults
  if (filter_ && filter_(packet, kind)) {
    v.drop = true;
    ++counters_.filter_drops;
    note("filter-drop", src, dst);
    return v;
  }
  if (link_blocked(src, dst)) {
    v.drop = true;
    ++counters_.partition_drops;
    note("partition-drop", src, dst);
    return v;
  }
  const LinkFaults& f = faults_for(src, dst, kind);
  if (!f.any()) return v;
  if (f.drop > 0 && engine_.rng().chance(f.drop)) {
    v.drop = true;
    ++counters_.datagrams_dropped;
    note("drop", src, dst);
    return v;
  }
  if (f.duplicate > 0 && engine_.rng().chance(f.duplicate)) {
    v.duplicate = true;
    ++counters_.datagrams_duplicated;
    note("duplicate", src, dst);
  }
  v.extra = latency_extra(f, src, dst, "delay");
  return v;
}

sim::Duration FaultInjector::stream_penalty(sim::HostId src, sim::HostId dst,
                                            TransportKind kind, size_t bytes, bool& reset) {
  reset = false;
  if (src == dst) return 0;
  if (link_blocked(src, dst) || link_blocked(dst, src)) {
    // TCP across a partition: retransmissions exhaust and the connection
    // resets. In-flight data is lost, both ends observe a broken stream.
    reset = true;
    ++counters_.stream_resets;
    note("stream-reset", src, dst);
    return 0;
  }
  const LinkFaults& f = faults_for(src, dst, kind);
  if (!f.any()) return 0;
  sim::Duration extra = 0;
  if (f.drop > 0) {
    const TransportModel& model = model_for(kind);
    const sim::Duration resend = 2 * model.one_way_fixed() + model.wire_time(bytes);
    int streak = 0;
    while (streak < kMaxStreamRetransmits && engine_.rng().chance(f.drop)) {
      extra += resend;
      ++streak;
    }
    if (streak > 0) {
      counters_.stream_retransmits += static_cast<uint64_t>(streak);
      note("stream-retransmit", src, dst, static_cast<uint64_t>(streak));
    }
  }
  extra += latency_extra(f, src, dst, "stream-delay");
  return extra;
}

bool FaultInjector::connect_blocked(sim::HostId from, sim::HostId to) {
  if (link_blocked(from, to) || link_blocked(to, from)) {
    ++counters_.connects_blocked;
    note("connect-blocked", from, to);
    return true;
  }
  return false;
}

}  // namespace starfish::net
