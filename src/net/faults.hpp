// Deterministic network fault injection.
//
// The fabric's only built-in failure is fail-stop (`Network::crash_host`);
// real clusters also lose, delay, duplicate and partition traffic. The
// FaultInjector sits inside `Network` and is consulted on every datagram
// transmit, stream frame and connection attempt.
//
// Randomness is sharded per *source host*: lane `src` owns an independent
// xoshiro stream seeded from (engine seed, src), its own counters and its
// own trace lines. Every fault decision executes on the sending host's
// node, so each lane is touched by exactly one shard and a fault schedule
// is a pure function of (seed, per-host event order) — independent of how
// many threads the engine runs. The same seed replays the identical run at
// any shard count, which is what lets the chaos harness assert liveness
// and safety against a fault-free reference execution
// (deterministic-simulation testing in the FoundationDB style — see
// DESIGN.md sections 9 and 13).
//
// When no faults are configured (`enabled() == false`) the injector is a
// single branch on the send paths: no RNG draws, no counter updates, and
// bit-identical simulations to a build without it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/model_params.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "util/rng.hpp"

namespace starfish::net {

struct Packet;

/// Per-link fault knobs. Semantics differ slightly by path:
///  * datagrams: `drop` loses the packet, `duplicate` delivers it twice,
///    `delay`+`jitter` add latency (per-pair FIFO is preserved);
///  * streams (reliable, TCP-like): `drop` charges a retransmission delay
///    instead of losing the frame, `duplicate` is a no-op (the stream
///    dedups), `delay`+`jitter` add latency.
struct LinkFaults {
  double drop = 0.0;       ///< probability in [0,1] per packet/frame
  double duplicate = 0.0;  ///< probability in [0,1] per datagram
  sim::Duration delay = 0;           ///< fixed extra one-way latency
  sim::Duration jitter = 0;          ///< extra uniform latency in [0, jitter)
  bool any() const { return drop > 0 || duplicate > 0 || delay > 0 || jitter > 0; }
};

/// Monotonic per-injector totals; tests assert against these.
struct FaultCounters {
  uint64_t datagrams_dropped = 0;     ///< lost to the `drop` probability
  uint64_t datagrams_duplicated = 0;  ///< extra copies delivered
  uint64_t datagrams_delayed = 0;     ///< given nonzero extra latency
  uint64_t partition_drops = 0;       ///< datagrams lost to an active partition
  uint64_t stream_retransmits = 0;    ///< stream frames charged a resend delay
  uint64_t stream_resets = 0;         ///< connections broken by a partition
  uint64_t connects_blocked = 0;      ///< connect() attempts across a partition
  uint64_t filter_drops = 0;          ///< datagrams dropped by the test filter
  uint64_t total() const {
    return datagrams_dropped + datagrams_duplicated + datagrams_delayed + partition_drops +
           stream_retransmits + stream_resets + connects_blocked + filter_drops;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(sim::Engine& engine) : engine_(engine) {}

  /// True once any fault source (plan, partition or filter) is configured.
  /// The fast paths check only this flag.
  bool enabled() const { return enabled_; }

  // --- plan configuration (serial phases only) ----------------------------

  /// Faults applied to every inter-host link (loopback is always exempt).
  void set_default(LinkFaults f) {
    assert(!engine_.in_parallel());
    default_ = f;
    refresh_enabled();
  }
  /// Per-transport override (e.g. shake the TCP control plane while the
  /// BIP data path stays clean). Wins over the default.
  void set_transport(TransportKind kind, LinkFaults f) {
    assert(!engine_.in_parallel());
    transport_[static_cast<size_t>(kind)] = f;
    refresh_enabled();
  }
  /// Directional per-link override; wins over transport and default.
  void set_link(sim::HostId src, sim::HostId dst, LinkFaults f) {
    assert(!engine_.in_parallel());
    links_[{src, dst}] = f;
    refresh_enabled();
  }

  /// Deterministic drop hook for surgical tests: return true to drop the
  /// datagram. Evaluated before any probabilistic fault, with no RNG draw.
  /// The hook runs on the sending host's shard: it must be pure (no shared
  /// mutable state) once the engine is multi-threaded.
  void set_filter(std::function<bool(const Packet&, TransportKind)> drop_if) {
    assert(!engine_.in_parallel());
    filter_ = std::move(drop_if);
    refresh_enabled();
  }

  /// Cuts traffic between the two host sets (every pair with one endpoint
  /// in each). `symmetric == false` blocks only side-a -> side-b traffic.
  /// Partitions stack; `heal()` removes them all.
  void partition(const std::vector<sim::HostId>& a, const std::vector<sim::HostId>& b,
                 bool symmetric = true);
  void heal();
  bool partitioned() const { return !blocked_.empty(); }

  /// Back to a fault-free fabric (plan, partitions, filter and trace; the
  /// counters survive so post-run assertions still see the totals).
  void clear();

  /// Network::add_host() calls this (serially) so lane `src` exists before
  /// host `src` can send. Lane seeds depend only on (engine seed, src).
  void on_host_added(size_t host_count);

  // --- observability (serial phases only) ---------------------------------

  /// Totals merged across the per-source-host lanes.
  const FaultCounters& counters() const;
  /// Every fault decision as "<sim-ns> <what> <src>-><dst>", merged across
  /// lanes in (time, source host, per-lane order); two runs with the same
  /// seed produce identical traces at any shard count.
  const std::vector<std::string>& trace() const;

  // --- queries from Network (call only when enabled()) --------------------
  // Each query runs on the *source* host's shard and touches only that
  // host's lane.

  bool link_blocked(sim::HostId src, sim::HostId dst) const {
    return blocked_.contains({src, dst});
  }

  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    sim::Duration extra = 0;
  };
  /// Fault decision for one datagram (draws from the source host's stream).
  Verdict datagram_verdict(const Packet& packet, TransportKind kind);
  /// Extra latency for one reliable-stream frame; `reset` is set when an
  /// active partition should break the connection instead.
  sim::Duration stream_penalty(sim::HostId src, sim::HostId dst, TransportKind kind,
                               size_t bytes, bool& reset);
  /// Partition check for connection establishment (either direction of the
  /// handshake blocked => the connect times out).
  bool connect_blocked(sim::HostId from, sim::HostId to);

 private:
  /// One source host's fault state; only that host's shard touches it.
  struct Lane {
    explicit Lane(uint64_t seed) : rng(seed) {}
    util::Rng rng;
    FaultCounters counters;
    /// (decision time, trace line) in emission order; times are monotone
    /// because the lane's host executes events in key order.
    std::vector<std::pair<sim::Time, std::string>> trace;
    /// Per-lane cache of "net.fault.<what>" counter handles: note() runs per
    /// faulted packet, and an uncached lookup allocates the name and takes
    /// the registry lock every time. Keyed by the literal's address (the
    /// `what` strings are string literals) and invalidated when the engine's
    /// hub changes; per-lane so shard threads never share the cache.
    obs::Hub* obs_hub = nullptr;
    std::map<const void*, obs::Counter*> obs_counters;
  };

  Lane& lane(sim::HostId src) {
    assert(src < lanes_.size() && "fault decision for an unregistered host");
    return lanes_[src];
  }
  const LinkFaults& faults_for(sim::HostId src, sim::HostId dst, TransportKind kind) const;
  sim::Duration latency_extra(Lane& ln, const LinkFaults& f, sim::HostId src, sim::HostId dst,
                              const char* what);
  /// Records one fault decision: appends a lane trace line, bumps the
  /// "net.fault.<what>" obs counter by `count` (keeping obs tallies equal to
  /// the FaultCounters, which add whole retransmit streaks at once) and
  /// emits an instant trace event when tracing is on.
  void note(Lane& ln, const char* what, sim::HostId src, sim::HostId dst, uint64_t count = 1);
  void refresh_enabled();

  sim::Engine& engine_;
  bool enabled_ = false;
  LinkFaults default_;
  std::optional<LinkFaults> transport_[kTransportCount];
  std::map<std::pair<sim::HostId, sim::HostId>, LinkFaults> links_;
  std::set<std::pair<sim::HostId, sim::HostId>> blocked_;
  std::function<bool(const Packet&, TransportKind)> filter_;
  std::vector<Lane> lanes_;
  /// Merge scratch for counters()/trace(); rebuilt on each (serial) read.
  mutable FaultCounters merged_counters_;
  mutable std::vector<std::string> merged_trace_;
};

}  // namespace starfish::net
