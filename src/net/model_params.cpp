#include "net/model_params.hpp"

namespace starfish::net {

using sim::microseconds;

const char* transport_name(TransportKind kind) {
  return kind == TransportKind::kTcpIp ? "TCP/IP" : "BIP/Myrinet";
}

TransportModel tcp_ip_model() {
  TransportModel m{};
  m.kind = TransportKind::kTcpIp;
  m.mpi_send = microseconds(12);
  m.vni_send = microseconds(10);
  m.kernel_send = microseconds(100);
  m.propagation = microseconds(48);
  m.bandwidth_mb_s = 11.0;  // app-level Fast Ethernet
  m.kernel_recv = microseconds(88);
  m.vni_recv = microseconds(10);
  m.mpi_recv = microseconds(8);
  m.blocking_recv_penalty = microseconds(60);
  return m;
}

TransportModel bip_myrinet_model() {
  TransportModel m{};
  m.kind = TransportKind::kBipMyrinet;
  m.mpi_send = microseconds(12);
  m.vni_send = microseconds(6);
  m.kernel_send = 0;  // user-level interface: no kernel crossing
  m.propagation = microseconds(11);
  m.bandwidth_mb_s = 60.0;  // BIP large-message rate on Myrinet
  m.kernel_recv = 0;
  m.vni_recv = microseconds(6);
  m.mpi_recv = microseconds(8);
  m.blocking_recv_penalty = microseconds(15);
  return m;
}

const TransportModel& model_for(TransportKind kind) {
  static const TransportModel tcp = tcp_ip_model();
  static const TransportModel bip = bip_myrinet_model();
  return kind == TransportKind::kTcpIp ? tcp : bip;
}

}  // namespace starfish::net
