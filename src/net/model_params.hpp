// Transport models for the two data networks the paper evaluates
// (section 5, Figure 5/6): the kernel TCP/IP stack over Ethernet, and the
// BIP user-level interface over Myrinet.
//
// Calibration anchors (paper, Figure 5): a 1-byte round trip measured at the
// application level is 552 µs over TCP/IP and 86 µs over BIP/Myrinet, and
// both curves grow linearly with message size. One-way budgets below sum to
// 276 µs (TCP) and 43 µs (BIP). Per-layer terms are size-independent because
// messages are never copied inside Starfish (paper, Figure 6 discussion);
// only the wire term scales with size.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace starfish::net {

enum class TransportKind : uint8_t { kTcpIp = 0, kBipMyrinet = 1 };
constexpr int kTransportCount = 2;

const char* transport_name(TransportKind kind);

/// Same-host ("loopback") traffic bypasses the wire: fixed kernel cost plus
/// a memcpy-rate transfer, regardless of transport.
constexpr sim::Duration kLoopbackOneWay = sim::microseconds(30);
constexpr double kLoopbackBandwidthMbS = 200.0;

/// Per-message, size-independent layer costs (one direction), plus the wire.
struct TransportModel {
  TransportKind kind;
  // Send side, charged to the sending fiber.
  sim::Duration mpi_send;      ///< MPI module: matching bookkeeping, header build
  sim::Duration vni_send;      ///< VNI: transport framing, doorbell/syscall entry
  sim::Duration kernel_send;   ///< kernel IP stack traversal (0 for user-level BIP)
  // Wire.
  sim::Duration propagation;   ///< switch + cable latency
  double bandwidth_mb_s;       ///< payload streaming rate
  // Receive side, charged to the polling thread (or to the receiver when
  // polling is disabled — see Poller).
  sim::Duration kernel_recv;   ///< kernel delivery + copy to user (0 for BIP)
  sim::Duration vni_recv;      ///< VNI: frame parse, queue insert
  sim::Duration mpi_recv;      ///< MPI module: match against posted receives
  // Extra cost a *blocking* receive pays per message when no polling thread
  // hides the kernel interaction (paper section 2.2.1).
  sim::Duration blocking_recv_penalty;

  sim::Duration one_way_fixed() const {
    return mpi_send + vni_send + kernel_send + propagation + kernel_recv + vni_recv + mpi_recv;
  }
  sim::Duration wire_time(uint64_t bytes) const {
    return propagation +
           sim::seconds(static_cast<double>(bytes) / (bandwidth_mb_s * 1e6));
  }
};

/// TCP/IP over 100 Mb Ethernet; one-way fixed cost 276 µs.
TransportModel tcp_ip_model();
/// BIP over Myrinet (user level, kernel bypassed); one-way fixed cost 43 µs.
TransportModel bip_myrinet_model();
const TransportModel& model_for(TransportKind kind);

}  // namespace starfish::net
