#include "net/network.hpp"

#include <cassert>

#include "util/log.hpp"

namespace starfish::net {

std::string NetAddr::to_string() const {
  return "host" + std::to_string(host) + ":" + std::to_string(port);
}

// --------------------------------------------------------------- Network ---

sim::HostPtr Network::add_host(std::string name, const sim::Machine& machine,
                               sim::DiskParams disk) {
  auto h = std::make_shared<sim::Host>(engine_, static_cast<sim::HostId>(hosts_.size()),
                                       std::move(name), machine, disk);
  hosts_.push_back(h);
  return h;
}

sim::HostPtr Network::host(sim::HostId id) const {
  assert(id < hosts_.size());
  return hosts_[id];
}

bool Network::host_alive(sim::HostId id) const {
  return id < hosts_.size() && hosts_[id]->alive();
}

void Network::note_packet(const Packet& packet, sim::Duration latency, bool delivered) {
  obs::Hub* hub = engine_.obs();
  if (hub == nullptr) return;
  if (hub != obs_hub_) {
    obs_hub_ = hub;
    obs_packets_ = &hub->metrics.counter("net.packets_sent");
    obs_bytes_ = &hub->metrics.counter("net.bytes_sent");
    obs_links_.clear();
  }
  obs_packets_->add(1);
  obs_bytes_->add(packet.payload.size());
  // Loopback and dropped packets have no meaningful wire latency.
  if (!delivered || packet.src.host == packet.dst.host) return;
  auto [it, inserted] = obs_links_.try_emplace({packet.src.host, packet.dst.host}, nullptr);
  if (inserted) {
    it->second = &hub->metrics.histogram("net.link.host" + std::to_string(packet.src.host) +
                                         "->host" + std::to_string(packet.dst.host) +
                                         ".latency_ns");
  }
  it->second->record(static_cast<uint64_t>(latency));
}

void Network::transmit(TransportKind kind, Packet packet) {
  const TransportModel& model = model_for(kind);
  sim::Duration delay;
  if (packet.src.host == packet.dst.host) {
    delay = kLoopbackOneWay +
            sim::seconds(static_cast<double>(packet.payload.size()) /
                         (kLoopbackBandwidthMbS * 1e6));
  } else {
    delay = model.one_way_fixed() - model.propagation + model.wire_time(packet.payload.size());
  }
  bool duplicate = false;
  if (faults_.enabled()) {
    const auto verdict = faults_.datagram_verdict(packet, kind);
    if (verdict.drop) {
      ++packets_sent_;  // it went on the wire; the wire lost it
      note_packet(packet, 0, /*delivered=*/false);
      return;
    }
    delay += verdict.extra;
    duplicate = verdict.duplicate;
  }
  // FIFO per (src, dst) pair: a short message must not overtake a long one
  // sent earlier on the same pair — both TCP streams and BIP channels
  // deliver in order, and the gcs flush protocol relies on it. Injected
  // extra latency lands before this clamp, so faults never reorder a pair.
  const auto key = std::make_pair(packet.src, packet.dst);
  const sim::Time arrival = std::max(engine_.now() + delay, last_delivery_[key] + 1);
  last_delivery_[key] = arrival;
  delay = arrival - engine_.now();
  ++packets_sent_;
  note_packet(packet, delay, /*delivered=*/true);
  Packet second;
  if (duplicate) second = packet;
  engine_.schedule(delay, [this, packet = std::move(packet)]() mutable {
    deliver_packet(std::move(packet));
  });
  if (duplicate) {
    const sim::Time dup_arrival = last_delivery_[key] + 1;
    last_delivery_[key] = dup_arrival;
    ++packets_sent_;
    note_packet(second, dup_arrival - engine_.now(), /*delivered=*/true);
    engine_.schedule(dup_arrival - engine_.now(), [this, packet = std::move(second)]() mutable {
      deliver_packet(std::move(packet));
    });
  }
}

void Network::deliver_packet(Packet packet) {
  if (!host_alive(packet.dst.host) || !host_alive(packet.src.host)) return;
  auto it = bindings_.find(packet.dst);
  if (it == bindings_.end()) return;  // nothing bound: datagram dropped
  it->second->inbox_.send(std::move(packet));
}

void Network::unbind(NetAddr addr) { bindings_.erase(addr); }
void Network::unlisten(NetAddr addr) { listeners_.erase(addr); }

DatagramEndpointPtr Network::bind(sim::HostId host, Port port, TransportKind kind) {
  NetAddr addr{host, port};
  assert(bindings_.find(addr) == bindings_.end() && "port already bound");
  auto ep = DatagramEndpointPtr(new DatagramEndpoint(*this, addr, kind));
  bindings_[addr] = ep.get();
  return ep;
}

DatagramEndpointPtr Network::bind_auto(sim::HostId host, TransportKind kind) {
  return bind(host, next_auto_port_++, kind);
}

// ------------------------------------------------------ DatagramEndpoint ---

DatagramEndpoint::DatagramEndpoint(Network& net, NetAddr addr, TransportKind kind)
    : net_(net), addr_(addr), kind_(kind), inbox_(net.engine()) {}

DatagramEndpoint::~DatagramEndpoint() { close(); }

bool DatagramEndpoint::send(NetAddr dst, util::SharedBytes payload) {
  return send_raw(dst, std::move(payload));
}

bool DatagramEndpoint::send_raw(NetAddr dst, util::SharedBytes payload) {
  if (inbox_.closed() || !net_.host_alive(addr_.host)) return false;
  net_.transmit(kind_, Packet{addr_, dst, std::move(payload)});
  return true;
}

void DatagramEndpoint::close() {
  if (!inbox_.closed()) {
    inbox_.close();
    net_.unbind(addr_);
  }
}

// ------------------------------------------------------------ Connection ---

struct Connection::State {
  State(sim::Engine& eng, TransportKind k, sim::HostId h0, sim::HostId h1)
      : kind(k),
        hosts{h0, h1},
        inbox{sim::Channel<util::SharedBytes>(eng), sim::Channel<util::SharedBytes>(eng)} {}
  TransportKind kind;
  sim::HostId hosts[2];
  sim::Channel<util::SharedBytes> inbox[2];  // inbox[s] is read by side s
  sim::Time last_arrival[2] = {0, 0};  // latest scheduled delivery per inbox
  bool closed = false;   // graceful shutdown: no new sends, in-flight drains
  bool crashed = false;  // host failure: in-flight is lost
};

Connection::Connection(Network& net, std::shared_ptr<State> state, sim::HostId local,
                       sim::HostId remote, int side)
    : net_(net), state_(std::move(state)), local_(local), remote_(remote), side_(side) {}

bool Connection::send(util::SharedBytes payload) {
  State& st = *state_;
  if (st.closed || st.crashed || !net_.host_alive(local_)) return false;
  const TransportModel& model = model_for(st.kind);
  sim::Duration delay =
      model.one_way_fixed() - model.propagation + model.wire_time(payload.size());
  auto state = state_;
  const int peer = 1 - side_;
  if (net_.faults().enabled()) {
    bool reset = false;
    const sim::Duration extra =
        net_.faults().stream_penalty(local_, remote_, st.kind, payload.size(), reset);
    if (reset) {
      // TCP across a partition: the stream breaks, in-flight data is lost.
      st.crashed = true;
      st.inbox[0].close();
      st.inbox[1].close();
      return false;
    }
    // Retransmission/jitter latency, clamped so frames never overtake each
    // other within one direction of the stream.
    const sim::Time arrival =
        std::max(net_.engine().now() + delay + extra, st.last_arrival[peer] + 1);
    delay = arrival - net_.engine().now();
  }
  Network* net = &net_;
  sim::HostId remote = remote_;
  st.last_arrival[peer] = std::max(st.last_arrival[peer], net_.engine().now() + delay);
  net_.engine().schedule(delay, [state, peer, net, remote, payload = std::move(payload)]() mutable {
    // Only a crash loses in-flight data; a graceful close drains it.
    if (state->crashed || !net->host_alive(remote)) return;
    state->inbox[peer].send(std::move(payload));
  });
  return true;
}

sim::RecvResult<util::SharedBytes> Connection::recv(sim::Time deadline) {
  return state_->inbox[side_].recv(deadline);
}

std::optional<util::SharedBytes> Connection::try_recv() {
  return state_->inbox[side_].try_recv();
}

void Connection::close() {
  State& st = *state_;
  if (st.closed || st.crashed) return;
  st.closed = true;
  // Local side sees EOF now; the peer's FIN is ordered after every delivery
  // already on the wire (TCP stream ordering), so in-flight data drains.
  st.inbox[side_].close();
  auto state = state_;
  const int peer = 1 - side_;
  const sim::Time now = net_.engine().now();
  const sim::Time fin_at =
      std::max(now + model_for(st.kind).one_way_fixed(), st.last_arrival[peer] + 1);
  net_.engine().schedule(fin_at - now, [state, peer] { state->inbox[peer].close(); });
}

bool Connection::broken() const { return state_->closed || state_->crashed; }

// -------------------------------------------------------------- Acceptor ---

Acceptor::Acceptor(Network& net, NetAddr addr, TransportKind kind)
    : net_(net), addr_(addr), kind_(kind), backlog_(net.engine()) {}

Acceptor::~Acceptor() { close(); }

void Acceptor::close() {
  if (!backlog_.closed()) {
    backlog_.close();
    net_.unlisten(addr_);
  }
}

AcceptorPtr Network::listen(sim::HostId host, Port port, TransportKind kind) {
  NetAddr addr{host, port};
  assert(listeners_.find(addr) == listeners_.end() && "port already listening");
  auto acc = AcceptorPtr(new Acceptor(*this, addr, kind));
  listeners_[addr] = acc.get();
  return acc;
}

ConnectionPtr Network::connect(sim::HostId from, NetAddr dst, TransportKind kind) {
  if (!host_alive(from) || !host_alive(dst.host)) return nullptr;
  if (faults_.enabled() && faults_.connect_blocked(from, dst.host)) {
    // Neither SYN nor SYN/ACK can cross an active partition: the caller
    // burns a handshake round trip and gets a connection timeout.
    engine_.sleep(2 * model_for(kind).one_way_fixed());
    return nullptr;
  }
  auto it = listeners_.find(dst);
  if (it == listeners_.end() || it->second->kind_ != kind) return nullptr;
  Acceptor* acc = it->second;

  auto state = std::make_shared<Connection::State>(engine_, kind, from, dst.host);
  conn_states_.push_back(state);
  auto server_end = ConnectionPtr(new Connection(*this, state, dst.host, from, 1));
  auto client_end = ConnectionPtr(new Connection(*this, state, from, dst.host, 0));

  const sim::Duration one_way = model_for(kind).one_way_fixed();
  engine_.schedule(one_way, [this, acc, dst, server_end]() {
    // Deliver the server end unless the listener went away meanwhile.
    auto it2 = listeners_.find(dst);
    if (it2 == listeners_.end() || it2->second != acc) return;
    acc->backlog_.send(server_end);
  });
  // SYN + SYN/ACK round trip before the caller may use the connection.
  engine_.sleep(2 * one_way);
  if (state->crashed || state->closed || !host_alive(from) || !host_alive(dst.host)) {
    return nullptr;
  }
  return client_end;
}

void Network::crash_host(sim::HostId id) {
  assert(id < hosts_.size());
  hosts_[id]->crash();

  // Drop bindings and listeners on the dead host; close() mutates the maps,
  // so collect first.
  std::vector<DatagramEndpoint*> dead_eps;
  for (auto& [addr, ep] : bindings_) {
    if (addr.host == id) dead_eps.push_back(ep);
  }
  for (auto* ep : dead_eps) ep->close();
  std::vector<Acceptor*> dead_acc;
  for (auto& [addr, acc] : listeners_) {
    if (addr.host == id) dead_acc.push_back(acc);
  }
  for (auto* acc : dead_acc) acc->close();

  // Break every connection with an end on the dead host.
  std::erase_if(conn_states_, [](const auto& w) { return w.expired(); });
  for (auto& weak : conn_states_) {
    auto st = weak.lock();
    if (!st) continue;
    if (st->hosts[0] == id || st->hosts[1] == id) {
      st->crashed = true;
      st->inbox[0].close();
      st->inbox[1].close();
    }
  }
}

}  // namespace starfish::net
