#include "net/network.hpp"

#include <cassert>

#include "util/log.hpp"

namespace starfish::net {

std::string NetAddr::to_string() const {
  return "host" + std::to_string(host) + ":" + std::to_string(port);
}

// --------------------------------------------------------------- Network ---

Network::Network(sim::Engine& engine) : engine_(engine) {
  // Conservative-window lookahead: no cross-host interaction is faster than
  // the fastest transport's fixed one-way cost (fault extras only add).
  engine_.note_min_latency(std::min(model_for(TransportKind::kTcpIp).one_way_fixed(),
                                    model_for(TransportKind::kBipMyrinet).one_way_fixed()));
}

sim::HostPtr Network::add_host(std::string name, const sim::Machine& machine,
                               sim::DiskParams disk) {
  assert(!engine_.in_parallel());
  auto h = std::make_shared<sim::Host>(engine_, static_cast<sim::HostId>(hosts_.size()),
                                       std::move(name), machine, disk);
  hosts_.push_back(h);
  per_host_.push_back(std::make_unique<HostNet>());
  faults_.on_host_added(hosts_.size());
  return h;
}

sim::HostPtr Network::host(sim::HostId id) const {
  assert(id < hosts_.size());
  return hosts_[id];
}

bool Network::host_alive(sim::HostId id) const {
  return id < hosts_.size() && hosts_[id]->alive();
}

void Network::note_packet(const Packet& packet, sim::Duration latency, bool delivered) {
  obs::Hub* hub = engine_.obs();
  if (hub == nullptr) return;
  HostNet& hn = per_host(packet.src.host);
  if (hub != hn.obs_hub) {
    hn.obs_hub = hub;
    hn.obs_packets = &hub->metrics.counter("net.packets_sent");
    hn.obs_bytes = &hub->metrics.counter("net.bytes_sent");
    hn.obs_links.clear();
  }
  hn.obs_packets->add(1);
  hn.obs_bytes->add(packet.payload.size());
  // Loopback and dropped packets have no meaningful wire latency.
  if (!delivered || packet.src.host == packet.dst.host) return;
  auto [it, inserted] = hn.obs_links.try_emplace(packet.dst.host, nullptr);
  if (inserted) {
    it->second = &hub->metrics.histogram("net.link.host" + std::to_string(packet.src.host) +
                                         "->host" + std::to_string(packet.dst.host) +
                                         ".latency_ns");
  }
  it->second->record(static_cast<uint64_t>(latency));
}

void Network::transmit(TransportKind kind, Packet packet) {
  const TransportModel& model = model_for(kind);
  sim::Duration delay;
  if (packet.src.host == packet.dst.host) {
    delay = kLoopbackOneWay +
            sim::seconds(static_cast<double>(packet.payload.size()) /
                         (kLoopbackBandwidthMbS * 1e6));
  } else {
    delay = model.one_way_fixed() - model.propagation + model.wire_time(packet.payload.size());
  }
  bool duplicate = false;
  if (faults_.enabled()) {
    const auto verdict = faults_.datagram_verdict(packet, kind);
    if (verdict.drop) {
      packets_sent_.fetch_add(1, std::memory_order_relaxed);  // the wire lost it
      note_packet(packet, 0, /*delivered=*/false);
      return;
    }
    delay += verdict.extra;
    duplicate = verdict.duplicate;
  }
  if (packet.dst.host >= hosts_.size()) {
    // No such host: the datagram went on the wire and nothing can receive it.
    packets_sent_.fetch_add(1, std::memory_order_relaxed);
    note_packet(packet, 0, /*delivered=*/false);
    return;
  }
  // FIFO per (src, dst) pair: a short message must not overtake a long one
  // sent earlier on the same pair — both TCP streams and BIP channels
  // deliver in order, and the gcs flush protocol relies on it. Injected
  // extra latency lands before this clamp, so faults never reorder a pair.
  // The clamp state lives with the source host, so it is shard-local.
  HostNet& src = per_host(packet.src.host);
  const sim::Time now = engine_.now();
  sim::Time& last = src.last_delivery[{packet.src, packet.dst}];
  const sim::Time arrival = std::max(now + delay, last + 1);
  last = arrival;
  packets_sent_.fetch_add(1, std::memory_order_relaxed);
  note_packet(packet, arrival - now, /*delivered=*/true);
  const sim::NodeId dst_node = hosts_[packet.dst.host]->node();
  Packet second;
  if (duplicate) second = packet;
  engine_.schedule_on(dst_node, arrival - now, [this, packet = std::move(packet)]() mutable {
    deliver_packet(std::move(packet));
  });
  if (duplicate) {
    const sim::Time dup_arrival = last + 1;
    last = dup_arrival;
    packets_sent_.fetch_add(1, std::memory_order_relaxed);
    note_packet(second, dup_arrival - now, /*delivered=*/true);
    engine_.schedule_on(dst_node, dup_arrival - now,
                        [this, packet = std::move(second)]() mutable {
      deliver_packet(std::move(packet));
    });
  }
}

void Network::deliver_packet(Packet packet) {
  if (!host_alive(packet.dst.host) || !host_alive(packet.src.host)) return;
  HostNet& hn = per_host(packet.dst.host);
  auto it = hn.bindings.find(packet.dst.port);
  if (it == hn.bindings.end()) return;  // nothing bound: datagram dropped
  it->second->inbox_.send(std::move(packet));
}

void Network::unbind(NetAddr addr) { per_host(addr.host).bindings.erase(addr.port); }
void Network::unlisten(NetAddr addr) { per_host(addr.host).listeners.erase(addr.port); }

DatagramEndpointPtr Network::bind(sim::HostId host, Port port, TransportKind kind) {
  NetAddr addr{host, port};
  HostNet& hn = per_host(host);
  assert(hn.bindings.find(port) == hn.bindings.end() && "port already bound");
  auto ep = DatagramEndpointPtr(new DatagramEndpoint(*this, addr, kind));
  hn.bindings[port] = ep.get();
  return ep;
}

DatagramEndpointPtr Network::bind_auto(sim::HostId host, TransportKind kind) {
  return bind(host, per_host(host).next_auto_port++, kind);
}

// ------------------------------------------------------ DatagramEndpoint ---

DatagramEndpoint::DatagramEndpoint(Network& net, NetAddr addr, TransportKind kind)
    : net_(net), addr_(addr), kind_(kind), inbox_(net.engine()) {}

DatagramEndpoint::~DatagramEndpoint() { close(); }

bool DatagramEndpoint::send(NetAddr dst, util::SharedBytes payload) {
  return send_raw(dst, std::move(payload));
}

bool DatagramEndpoint::send_raw(NetAddr dst, util::SharedBytes payload) {
  if (inbox_.closed() || !net_.host_alive(addr_.host)) return false;
  net_.transmit(kind_, Packet{addr_, dst, std::move(payload)});
  return true;
}

void DatagramEndpoint::close() {
  if (!inbox_.closed()) {
    inbox_.close();
    net_.unbind(addr_);
  }
}

// ------------------------------------------------------------ Connection ---

struct Connection::State {
  State(sim::Engine& eng, TransportKind k, sim::HostId h0, sim::HostId h1, sim::NodeId n0,
        sim::NodeId n1)
      : kind(k),
        hosts{h0, h1},
        nodes{n0, n1},
        inbox{sim::Channel<util::SharedBytes>(eng), sim::Channel<util::SharedBytes>(eng)} {}
  TransportKind kind;
  sim::HostId hosts[2];  // hosts[s] is side s's endpoint
  sim::NodeId nodes[2];  // cached engine nodes of hosts[]
  sim::Channel<util::SharedBytes> inbox[2];  // inbox[s] is read by side s
  sim::Time last_arrival[2] = {0, 0};  // latest scheduled delivery per inbox
  /// Side s stops sending once set: its own close()/reset, or the peer's
  /// FIN/RST arrived. closed_by[s] is written only from side s's shard (or
  /// serial phases), which is what makes the state lock-free.
  bool closed_by[2] = {false, false};
  /// The server host registered the connection (SYN arrival). Written on
  /// the server node at t+1ow, read by the client at t+2ow: always
  /// separated by a window barrier because one_way >= lookahead.
  bool accepted = false;
  bool crashed = false;  // host failure (serial phases); in-flight is lost
};

Connection::Connection(Network& net, std::shared_ptr<State> state, sim::HostId local,
                       sim::HostId remote, int side)
    : net_(net), state_(std::move(state)), local_(local), remote_(remote), side_(side) {}

bool Connection::send(util::SharedBytes payload) {
  State& st = *state_;
  if (st.closed_by[side_] || st.crashed || !net_.host_alive(local_)) return false;
  const TransportModel& model = model_for(st.kind);
  sim::Duration delay =
      model.one_way_fixed() - model.propagation + model.wire_time(payload.size());
  auto state = state_;
  const int peer = 1 - side_;
  const sim::Time now = net_.engine().now();
  if (net_.faults().enabled()) {
    bool reset = false;
    const sim::Duration extra =
        net_.faults().stream_penalty(local_, remote_, st.kind, payload.size(), reset);
    if (reset) {
      // TCP across a partition: this side observes the reset now; the peer
      // sees the RST one one-way latency later (ordered after in-flight
      // deliveries), the soonest the break could physically reach it.
      st.closed_by[side_] = true;
      st.inbox[side_].close();
      const sim::Time rst_at =
          std::max(now + model.one_way_fixed(), st.last_arrival[peer] + 1);
      net_.engine().schedule_on(st.nodes[peer], rst_at - now, [state, peer] {
        state->closed_by[peer] = true;
        state->inbox[peer].close();
      });
      return false;
    }
    // Retransmission/jitter latency, clamped so frames never overtake each
    // other within one direction of the stream.
    const sim::Time arrival = std::max(now + delay + extra, st.last_arrival[peer] + 1);
    delay = arrival - now;
  }
  Network* net = &net_;
  sim::HostId remote = remote_;
  st.last_arrival[peer] = std::max(st.last_arrival[peer], now + delay);
  net_.engine().schedule_on(st.nodes[peer], delay,
                            [state, peer, net, remote, payload = std::move(payload)]() mutable {
    // Only a crash loses in-flight data; a graceful close drains it (the
    // channel drops the frame itself once the peer's inbox is closed).
    if (state->crashed || !net->host_alive(remote)) return;
    state->inbox[peer].send(std::move(payload));
  });
  return true;
}

sim::RecvResult<util::SharedBytes> Connection::recv(sim::Time deadline) {
  return state_->inbox[side_].recv(deadline);
}

std::optional<util::SharedBytes> Connection::try_recv() {
  return state_->inbox[side_].try_recv();
}

void Connection::close() {
  State& st = *state_;
  if (st.closed_by[side_] || st.crashed) return;
  st.closed_by[side_] = true;
  // Local side sees EOF now; the peer's FIN is ordered after every delivery
  // already on the wire (TCP stream ordering), so in-flight data drains.
  st.inbox[side_].close();
  auto state = state_;
  const int peer = 1 - side_;
  const sim::Time now = net_.engine().now();
  const sim::Time fin_at =
      std::max(now + model_for(st.kind).one_way_fixed(), st.last_arrival[peer] + 1);
  net_.engine().schedule_on(st.nodes[peer], fin_at - now, [state, peer] {
    state->closed_by[peer] = true;
    state->inbox[peer].close();
  });
}

bool Connection::broken() const { return state_->closed_by[side_] || state_->crashed; }

// -------------------------------------------------------------- Acceptor ---

Acceptor::Acceptor(Network& net, NetAddr addr, TransportKind kind)
    : net_(net), addr_(addr), kind_(kind), backlog_(net.engine()) {}

Acceptor::~Acceptor() { close(); }

void Acceptor::close() {
  if (!backlog_.closed()) {
    backlog_.close();
    net_.unlisten(addr_);
  }
}

AcceptorPtr Network::listen(sim::HostId host, Port port, TransportKind kind) {
  NetAddr addr{host, port};
  HostNet& hn = per_host(host);
  assert(hn.listeners.find(port) == hn.listeners.end() && "port already listening");
  auto acc = AcceptorPtr(new Acceptor(*this, addr, kind));
  hn.listeners[port] = acc.get();
  return acc;
}

ConnectionPtr Network::connect(sim::HostId from, NetAddr dst, TransportKind kind) {
  if (!host_alive(from) || !host_alive(dst.host)) return nullptr;
  const sim::Duration one_way = model_for(kind).one_way_fixed();
  if (faults_.enabled() && faults_.connect_blocked(from, dst.host)) {
    // Neither SYN nor SYN/ACK can cross an active partition: the caller
    // burns a handshake round trip and gets a connection timeout.
    engine_.sleep(2 * one_way);
    return nullptr;
  }
  auto state = std::make_shared<Connection::State>(engine_, kind, from, dst.host,
                                                   hosts_[from]->node(),
                                                   hosts_[dst.host]->node());
  per_host(from).conns.push_back(state);
  auto server_end = ConnectionPtr(new Connection(*this, state, dst.host, from, 1));
  auto client_end = ConnectionPtr(new Connection(*this, state, from, dst.host, 0));

  // The SYN is an event on the server host's node: the listener table is
  // only ever examined by the shard that owns it, one latency after the
  // call (a connect can no longer see a listener the same instant it is
  // created on another host — real SYNs travel too).
  engine_.schedule_on(state->nodes[1], one_way, [this, dst, kind, state, server_end]() mutable {
    if (state->crashed || !host_alive(state->hosts[0]) || !host_alive(state->hosts[1])) return;
    HostNet& hn = per_host(dst.host);
    auto it = hn.listeners.find(dst.port);
    if (it == hn.listeners.end() || it->second->kind_ != kind) return;  // connection refused
    hn.conns.push_back(state);
    state->accepted = true;
    it->second->backlog_.send(std::move(server_end));
  });
  // SYN + SYN/ACK round trip before the caller may use the connection. The
  // accepted flag written at t+1ow is barrier-ordered before this read at
  // t+2ow (one_way >= lookahead, so the two events cannot share a window).
  engine_.sleep(2 * one_way);
  if (!state->accepted || state->crashed || state->closed_by[0] || !host_alive(from) ||
      !host_alive(dst.host)) {
    return nullptr;
  }
  return client_end;
}

void Network::crash_host(sim::HostId id) {
  assert(id < hosts_.size());
  assert(!engine_.in_parallel() && "crash_host is a control-plane (serial) operation");
  hosts_[id]->crash();

  // Drop bindings and listeners on the dead host; close() mutates the maps,
  // so collect first.
  HostNet& hn = per_host(id);
  std::vector<DatagramEndpoint*> dead_eps;
  for (auto& [port, ep] : hn.bindings) dead_eps.push_back(ep);
  for (auto* ep : dead_eps) ep->close();
  std::vector<Acceptor*> dead_acc;
  for (auto& [port, acc] : hn.listeners) dead_acc.push_back(acc);
  for (auto* acc : dead_acc) acc->close();

  // Break every connection with an end on the dead host. A state is
  // registered under its client host and (once accepted) its server host,
  // so scanning every per-host list sees it; the mutations are idempotent.
  for (auto& hostnet : per_host_) {
    std::erase_if(hostnet->conns, [](const auto& w) { return w.expired(); });
    for (auto& weak : hostnet->conns) {
      auto st = weak.lock();
      if (!st) continue;
      if (st->hosts[0] == id || st->hosts[1] == id) {
        st->crashed = true;
        st->inbox[0].close();
        st->inbox[1].close();
      }
    }
  }

  // Fate-sharing state elsewhere (e.g. the replica checkpoint tier) learns
  // of the crash last, after the fabric state is consistent. Still inside
  // the serial phase: hooks may mutate cluster-wide shared state.
  for (const auto& hook : crash_hooks_) hook(id);
}

void Network::add_crash_hook(std::function<void(sim::HostId)> hook) {
  crash_hooks_.push_back(std::move(hook));
}

}  // namespace starfish::net
