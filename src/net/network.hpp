// The cluster fabric: hosts wired by two networks (TCP/IP and BIP/Myrinet).
//
// Two communication abstractions are provided on top of the fabric:
//   * Connection — reliable bidirectional framed stream (the paper's "TCP
//     connections": daemon<->application process, client<->daemon management
//     sessions, daemon<->daemon control links).
//   * DatagramEndpoint — the raw port abstraction the VNI builds the MPI
//     fast data path on.
// Both lose traffic when an endpoint's host crashes (fail-stop); in-flight
// packets to/from a dead host are dropped, connections break, and blocked
// readers wake with kClosed — exactly the failure surface the daemons'
// failure detector and the C/R protocols must handle.
//
// Sharding contract (DESIGN.md section 13): all mutable routing state is
// partitioned per host. Send-side work (fault verdicts, FIFO clamps, obs)
// runs on the source host's shard against source-host state; arrival-side
// work (binding/listener lookups, inbox delivery) is an event scheduled on
// the destination host's node. Cross-host traffic always travels at least
// one transport one-way latency, which the constructor reports to the
// engine as its conservative-window lookahead.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/faults.hpp"
#include "net/model_params.hpp"
#include "sim/host.hpp"
#include "sim/sync.hpp"
#include "util/buffer.hpp"

namespace starfish::net {

using Port = uint32_t;

struct NetAddr {
  sim::HostId host = sim::kInvalidHost;
  Port port = 0;
  auto operator<=>(const NetAddr&) const = default;
  std::string to_string() const;
};

struct Packet {
  NetAddr src;
  NetAddr dst;
  /// Refcounted and immutable: forwarding, queueing and decoding a packet
  /// never duplicates the body (the zero-copy data path).
  util::SharedBytes payload;
};

class Network;

/// Raw datagram port. Bound to (host, port); recv blocks on the inbox.
class DatagramEndpoint {
 public:
  ~DatagramEndpoint();
  DatagramEndpoint(const DatagramEndpoint&) = delete;
  DatagramEndpoint& operator=(const DatagramEndpoint&) = delete;

  NetAddr addr() const { return addr_; }
  TransportKind transport() const { return kind_; }

  /// Fire-and-forget; charges vni/kernel send CPU to the caller and puts the
  /// payload on the wire. Returns false if the local host is dead.
  bool send(NetAddr dst, util::SharedBytes payload);
  /// Raw enqueue-on-wire without charging send-side CPU (used by layers that
  /// charge their own costs, e.g. the VNI instrumentation path).
  bool send_raw(NetAddr dst, util::SharedBytes payload);

  sim::RecvResult<Packet> recv(sim::Time deadline = -1) { return inbox_.recv(deadline); }
  std::optional<Packet> try_recv() { return inbox_.try_recv(); }
  void close();
  bool closed() const { return inbox_.closed(); }
  size_t pending() const { return inbox_.pending(); }

 private:
  friend class Network;
  DatagramEndpoint(Network& net, NetAddr addr, TransportKind kind);

  Network& net_;
  NetAddr addr_;
  TransportKind kind_;
  sim::Channel<Packet> inbox_;
};

using DatagramEndpointPtr = std::shared_ptr<DatagramEndpoint>;

/// One end of a reliable framed stream. Both ends share a ConnState.
class Connection {
 public:
  /// Sends one framed message; returns false if this end is broken.
  bool send(util::SharedBytes payload);
  /// Blocks for the next message; kClosed once broken/closed and drained.
  sim::RecvResult<util::SharedBytes> recv(sim::Time deadline = -1);
  std::optional<util::SharedBytes> try_recv();
  /// Graceful close: peer recv drains then reports kClosed; the peer end
  /// observes the break one one-way latency later (FIN on the wire).
  void close();
  /// This end's view: broken once it closed/reset locally, the peer's
  /// FIN/RST arrived, or an endpoint host crashed.
  bool broken() const;
  sim::HostId local_host() const { return local_; }
  sim::HostId peer_host() const { return remote_; }

 private:
  friend class Network;
  struct State;
  Connection(Network& net, std::shared_ptr<State> state, sim::HostId local, sim::HostId remote,
             int side);

  Network& net_;
  std::shared_ptr<State> state_;
  sim::HostId local_;
  sim::HostId remote_;
  int side_;  // 0 = connecting side, 1 = accepting side
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Listening socket: accept() yields server-side Connection ends.
class Acceptor {
 public:
  ~Acceptor();
  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  NetAddr addr() const { return addr_; }
  /// Blocks until a peer connects (kClosed if the acceptor is closed or the
  /// host died).
  sim::RecvResult<ConnectionPtr> accept(sim::Time deadline = -1) {
    return backlog_.recv(deadline);
  }
  void close();

 private:
  friend class Network;
  Acceptor(Network& net, NetAddr addr, TransportKind kind);

  Network& net_;
  NetAddr addr_;
  TransportKind kind_;
  sim::Channel<ConnectionPtr> backlog_;
};

using AcceptorPtr = std::shared_ptr<Acceptor>;

class Network {
 public:
  explicit Network(sim::Engine& engine);

  sim::Engine& engine() const { return engine_; }

  // --- topology ---
  sim::HostPtr add_host(std::string name,
                        const sim::Machine& machine = sim::default_machine(),
                        sim::DiskParams disk = sim::ide_disk_params());
  sim::HostPtr host(sim::HostId id) const;
  size_t host_count() const { return hosts_.size(); }
  const std::vector<sim::HostPtr>& hosts() const { return hosts_; }

  /// Fail-stop crash: kills the host's fibers, drops its bindings, breaks
  /// its connections. The authoritative way to inject a node failure.
  /// Control-plane operation: serial phases only.
  void crash_host(sim::HostId id);

  /// Registers a callback run at the end of every crash_host (serial
  /// phase), after the fabric state is consistent. Lets fate-sharing state
  /// outside the fabric — e.g. in-memory checkpoint replicas — invalidate
  /// what the dead host held. Hooks must outlive the network's last crash.
  void add_crash_hook(std::function<void(sim::HostId)> hook);

  /// Message-level fault injection (loss, delay, duplication, partitions);
  /// consulted on every transmit/connect once configured. Fault-free by
  /// default, in which case every path is byte-identical to a fabric
  /// without the injector.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  // --- datagram API ---
  DatagramEndpointPtr bind(sim::HostId host, Port port, TransportKind kind);
  /// Picks an unused port on the host (ports are per-host, so two hosts can
  /// share an auto port number; an address is always the (host, port) pair).
  DatagramEndpointPtr bind_auto(sim::HostId host, TransportKind kind);

  // --- stream API ---
  AcceptorPtr listen(sim::HostId host, Port port, TransportKind kind);
  /// Blocks ~1 RTT; nullptr if nobody listens at dst or a host is dead. The
  /// SYN travels as an event to the server host, where the listener table
  /// is examined by its owning shard.
  ConnectionPtr connect(sim::HostId from, NetAddr dst, TransportKind kind);

  /// Total messages put on the wire (for tests/benches).
  uint64_t packets_sent() const { return packets_sent_.load(std::memory_order_relaxed); }

 private:
  friend class DatagramEndpoint;
  friend class Connection;
  friend class Acceptor;

  /// Mutable fabric state owned by one host — touched only from that host's
  /// shard (or serial phases), so no locks anywhere on the data path.
  struct HostNet {
    std::map<Port, DatagramEndpoint*> bindings;
    std::map<Port, Acceptor*> listeners;
    /// Last scheduled arrival per (src, dst) address pair with src on this
    /// host, enforcing per-pair FIFO.
    std::map<std::pair<NetAddr, NetAddr>, sim::Time> last_delivery;
    Port next_auto_port = 1 << 16;
    /// Connections with an end on this host (clients at creation, servers
    /// at SYN arrival); crash_host scans these.
    std::vector<std::weak_ptr<Connection::State>> conns;
    /// Cached obs instruments for this host's sends, keyed by the hub they
    /// were resolved against.
    obs::Hub* obs_hub = nullptr;
    obs::Counter* obs_packets = nullptr;
    obs::Counter* obs_bytes = nullptr;
    std::map<sim::HostId, obs::Histogram*> obs_links;
  };

  HostNet& per_host(sim::HostId id) {
    assert(id < per_host_.size());
    return *per_host_[id];
  }
  bool host_alive(sim::HostId id) const;
  /// Observability: counts one wire packet and records its transit latency
  /// into the per-link histogram. No-op without an attached hub; resolved
  /// lazily so a hub attached after construction is still picked up.
  void note_packet(const Packet& packet, sim::Duration latency, bool delivered);
  /// Schedules wire transit and delivery into the bound inbox (dropped if
  /// either host dies first or nothing is bound on arrival).
  void transmit(TransportKind kind, Packet packet);
  /// Arrival-time half of transmit, executing on the destination host's
  /// node: hands the packet to the bound inbox.
  void deliver_packet(Packet packet);
  void unbind(NetAddr addr);
  void unlisten(NetAddr addr);

  sim::Engine& engine_;
  FaultInjector faults_{engine_};
  std::vector<std::function<void(sim::HostId)>> crash_hooks_;
  std::vector<sim::HostPtr> hosts_;
  /// unique_ptr for address stability: add_host (serial) may grow the
  /// vector while shards hold references across windows.
  std::vector<std::unique_ptr<HostNet>> per_host_;
  std::atomic<uint64_t> packets_sent_{0};
};

}  // namespace starfish::net
