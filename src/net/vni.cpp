#include "net/vni.hpp"

namespace starfish::net {

Vni::Vni(Network& net, sim::Host& host, TransportKind kind, bool polling)
    : net_(net),
      kind_(kind),
      polling_(polling),
      endpoint_(net.bind_auto(host.id(), kind)),
      rx_queue_(std::make_shared<sim::Channel<Packet>>(net.engine())) {
  if (polling_) {
    // The polling thread: moves arrived frames off the wire into the local
    // receive queue. Its CPU time (the kernel interaction of a receive) is
    // spent here, interleaved with application progress, not on the
    // application's recv path. It captures only shared state — fiber
    // wake-ups are asynchronous, so it can outlive the Vni object.
    poller_ = host.spawn("vni-poller", [ep = endpoint_, rx = rx_queue_] {
      // Close the local queue however the poller exits — including the
      // FiberKilled unwind when the host crashes — so consumers blocked on
      // recv() observe kClosed instead of hanging.
      struct CloseOnExit {
        sim::Channel<Packet>& q;
        ~CloseOnExit() { q.close(); }
      } closer{*rx};
      for (;;) {
        auto r = ep->recv();
        if (!r.ok()) break;  // endpoint closed (shutdown or host death)
        rx->send(std::move(*r.value));
      }
    });
  }
}

Vni::~Vni() { shutdown(); }

void Vni::note_frames(uint64_t sent_bytes, bool received) {
  obs::Hub* hub = net_.engine().obs();
  if (hub == nullptr) return;
  if (hub != obs_hub_) {
    obs_hub_ = hub;
    obs_sent_ = &hub->metrics.counter("vni.frames_sent");
    obs_sent_bytes_ = &hub->metrics.counter("vni.bytes_sent");
    obs_received_ = &hub->metrics.counter("vni.frames_received");
  }
  if (received) {
    obs_received_->add(1);
  } else {
    obs_sent_->add(1);
    obs_sent_bytes_->add(sent_bytes);
  }
}

bool Vni::send(NetAddr dst, util::SharedBytes frame) {
  const uint64_t bytes = frame.size();
  const bool ok = endpoint_->send_raw(dst, std::move(frame));
  if (ok) {
    ++frames_sent_;
    note_frames(bytes, /*received=*/false);
  }
  return ok;
}

sim::RecvResult<Packet> Vni::recv(sim::Time deadline) {
  if (polling_) {
    auto r = rx_queue_->recv(deadline);
    if (r.ok()) {
      ++frames_received_;
      note_frames(0, /*received=*/true);
    }
    return r;
  }
  auto r = endpoint_->recv(deadline);
  if (r.ok()) {
    ++frames_received_;
    note_frames(0, /*received=*/true);
    // No polling thread: the kernel interaction happens here, on the
    // application's critical path (paper section 2.2.1).
    net_.engine().advance(model().blocking_recv_penalty);
  }
  return r;
}

std::optional<Packet> Vni::try_recv() {
  auto v = polling_ ? rx_queue_->try_recv() : endpoint_->try_recv();
  if (v) {
    ++frames_received_;
    note_frames(0, /*received=*/true);
  }
  return v;
}

void Vni::shutdown() {
  endpoint_->close();
  if (!polling_) return;
  rx_queue_->close();
}

}  // namespace starfish::net
