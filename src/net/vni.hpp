// Virtual Network Interface (paper section 2.2).
//
// The VNI is the thin, per-application-process layer between the MPI module
// and a concrete network. Porting Starfish to a new fast network only
// requires a new TransportModel behind this interface. The VNI owns the
// process's data-path endpoint and the *polling thread* of section 2.2.1: a
// low-priority fiber that continuously drains the wire inbox into a local
// receive queue so that the kernel interaction of a receive is interleaved
// with computation instead of sitting on the application's critical path.
#pragma once

#include <cstdint>
#include <memory>

#include "net/network.hpp"
#include "sim/host.hpp"

namespace starfish::net {

class Vni {
 public:
  /// Binds a fresh data-path port on `host`. With `polling` false the VNI
  /// models a conventional blocking receive (ablation B): each recv pays the
  /// transport's blocking_recv_penalty on the caller's critical path.
  Vni(Network& net, sim::Host& host, TransportKind kind, bool polling = true);
  ~Vni();
  Vni(const Vni&) = delete;
  Vni& operator=(const Vni&) = delete;

  NetAddr addr() const { return endpoint_->addr(); }
  TransportKind transport() const { return kind_; }
  const TransportModel& model() const { return model_for(kind_); }
  bool polling() const { return polling_; }

  /// Puts one frame on the wire. Zero-copy: cost is size-independent and the
  /// buffer is handed down by reference count, never duplicated.
  bool send(NetAddr dst, util::SharedBytes frame);

  /// Next frame for this process (from the receive queue when polling,
  /// straight from the wire otherwise).
  sim::RecvResult<Packet> recv(sim::Time deadline = -1);
  std::optional<Packet> try_recv();
  /// Frames already queued locally (polled but not yet consumed).
  size_t queued() const { return polling_ ? rx_queue_->pending() : endpoint_->pending(); }

  void shutdown();

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }

 private:
  /// Observability: per-process frame counts aggregate into the hub's
  /// "vni.*" counters (lazily resolved; no-op without a hub).
  void note_frames(uint64_t sent_bytes, bool received);

  Network& net_;
  TransportKind kind_;
  bool polling_;
  obs::Hub* obs_hub_ = nullptr;
  obs::Counter* obs_sent_ = nullptr;
  obs::Counter* obs_sent_bytes_ = nullptr;
  obs::Counter* obs_received_ = nullptr;
  DatagramEndpointPtr endpoint_;
  /// Shared with the poller fiber, which may briefly outlive this object
  /// (fiber wake-ups are asynchronous); the poller never touches `this`.
  std::shared_ptr<sim::Channel<Packet>> rx_queue_;
  sim::FiberPtr poller_;
  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
};

}  // namespace starfish::net
