#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>

namespace starfish::obs {

HistogramSpec HistogramSpec::exponential(uint64_t first, double factor, size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  double bound = static_cast<double>(first);
  for (size_t i = 0; i < count; ++i) {
    const auto b = static_cast<uint64_t>(bound);
    if (!spec.bounds.empty() && b <= spec.bounds.back()) break;  // saturated
    spec.bounds.push_back(b);
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(uint64_t first, uint64_t width, size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) spec.bounds.push_back(first + i * width);
  return spec;
}

Histogram::Histogram(HistogramSpec spec)
    : bounds_(std::move(spec.bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::record(uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(1, std::memory_order_relaxed);
  detail::fetch_min(min_, v);  // min_ starts at UINT64_MAX; min() masks empty
  detail::fetch_max(max_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::buckets() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.try_emplace(std::string(name)).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name)).first;
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, const HistogramSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::piecewise_construct, std::forward_as_tuple(name),
                             std::forward_as_tuple(spec))
             .first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

const HistogramSpec& MetricsRegistry::duration_buckets() {
  static const HistogramSpec spec = HistogramSpec::exponential(1000, 2.0, 30);
  return spec;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
}

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": ";
    append_u64(out, c.value());
  }
  out += "\n },\n \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": {\"value\": ";
    append_i64(out, g.value());
    out += ", \"max\": ";
    append_i64(out, g.max());
    out += "}";
  }
  out += "\n },\n \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": {\"count\": ";
    append_u64(out, h.count());
    out += ", \"sum\": ";
    append_u64(out, h.sum());
    out += ", \"min\": ";
    append_u64(out, h.min());
    out += ", \"max\": ";
    append_u64(out, h.max());
    out += ", \"bounds\": [";
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, h.bounds()[i]);
    }
    out += "], \"buckets\": [";
    const std::vector<uint64_t> buckets = h.buckets();
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, buckets[i]);
    }
    out += "]}";
  }
  out += "\n }\n}";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("obs metrics: " + path).c_str());
    return false;
  }
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace starfish::obs
