#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace starfish::obs {

HistogramSpec HistogramSpec::exponential(uint64_t first, double factor, size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  double bound = static_cast<double>(first);
  for (size_t i = 0; i < count; ++i) {
    const auto b = static_cast<uint64_t>(bound);
    if (!spec.bounds.empty() && b <= spec.bounds.back()) break;  // saturated
    spec.bounds.push_back(b);
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(uint64_t first, uint64_t width, size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) spec.bounds.push_back(first + i * width);
  return spec;
}

Histogram::Histogram(HistogramSpec spec) : bounds_(std::move(spec.bounds)) {
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(std::string(name), Gauge{}).first;
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, const HistogramSpec& spec) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(spec)).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const HistogramSpec& MetricsRegistry::duration_buckets() {
  static const HistogramSpec spec = HistogramSpec::exponential(1000, 2.0, 30);
  return spec;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
}

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": ";
    append_u64(out, c.value());
  }
  out += "\n },\n \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": {\"value\": ";
    append_i64(out, g.value());
    out += ", \"max\": ";
    append_i64(out, g.max());
    out += "}";
  }
  out += "\n },\n \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    append_escaped(out, name);
    out += "\": {\"count\": ";
    append_u64(out, h.count());
    out += ", \"sum\": ";
    append_u64(out, h.sum());
    out += ", \"min\": ";
    append_u64(out, h.min());
    out += ", \"max\": ";
    append_u64(out, h.max());
    out += ", \"bounds\": [";
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, h.bounds()[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < h.buckets().size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, h.buckets()[i]);
    }
    out += "]}";
  }
  out += "\n }\n}";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("obs metrics: " + path).c_str());
    return false;
  }
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace starfish::obs
