// Deterministic metrics: named counters, gauges and fixed-bucket histograms.
//
// Every value is driven by *virtual* time and deterministic event order, so
// two runs with the same seed produce byte-identical registry snapshots
// (DESIGN.md section 10). No wall clock, no host randomness, no allocation
// on the record paths beyond first-touch name registration.
//
// Instruments are owned by a MetricsRegistry and live for its lifetime;
// `counter()` / `gauge()` / `histogram()` return stable references (the
// registry is node-based), so hot paths resolve a name once and then bump an
// integer. Since the engine went multi-shard (DESIGN.md section 13) the
// record paths are relaxed atomics: shard threads bump instruments
// concurrently, and because every mutation is a commutative accumulate
// (add, bucket increment, min/max) the values read back at a barrier are
// shard-count-independent. Reads are exact only between windows — i.e. from
// serial control code or after run() returns — which is where every exporter
// and test reads them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace starfish::obs {

namespace detail {

/// Commutative max accumulate (CAS loop; uncontended in practice).
template <typename T>
inline void fetch_max(std::atomic<T>& slot, T v) {
  T cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

template <typename T>
inline void fetch_min(std::atomic<T>& slot, T v) {
  T cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value plus the high-water mark (queue depths, log sizes).
/// set()/add() are atomic individually; concurrent writers interleave, so
/// gauges that must stay exact are only written from one shard or from
/// serial phases (true for every current gauge: they track per-host state).
class Gauge {
 public:
  void set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    detail::fetch_max(max_, v);
  }
  void add(int64_t delta) { set(value_.load(std::memory_order_relaxed) + delta); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Inclusive bucket upper bounds, fixed at creation (recordings replay
/// bit-for-bit; the implicit final bucket is +inf).
struct HistogramSpec {
  std::vector<uint64_t> bounds;

  /// `count` bounds: first, first*factor, first*factor^2, ...
  static HistogramSpec exponential(uint64_t first, double factor, size_t count);
  /// `count` bounds: first, first+width, first+2*width, ...
  static HistogramSpec linear(uint64_t first, uint64_t width, size_t count);
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max over recorded values; 0 when empty.
  uint64_t min() const { return count() == 0 ? 0 : min_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> buckets() const;

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// Find-or-create; references stay valid for the registry's lifetime.
  /// Thread-safe (registration takes a lock; the returned instruments are
  /// lock-free to mutate).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// The spec applies only on first creation of `name`.
  Histogram& histogram(std::string_view name, const HistogramSpec& spec = duration_buckets());

  /// Read-only lookups (nullptr if never touched) for tests and exporters.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  size_t size() const;

  /// Deterministic snapshot: names sorted, fixed integer formatting. Shape:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
  /// Writes to_json() (plus trailing newline) to `path`; false after perror
  /// if the file cannot be written.
  bool write_json(const std::string& path) const;

  /// Default bucketing for virtual-nanosecond durations: 1 us .. ~17 min,
  /// powers of two.
  static const HistogramSpec& duration_buckets();

 private:
  // std::map: node-based (stable references) and name-sorted (deterministic
  // export order for free). mu_ guards the maps, not the instruments.
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace starfish::obs
