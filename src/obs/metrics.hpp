// Deterministic metrics: named counters, gauges and fixed-bucket histograms.
//
// Every value is driven by *virtual* time and deterministic event order, so
// two runs with the same seed produce byte-identical registry snapshots
// (DESIGN.md section 10). No wall clock, no host randomness, no allocation
// on the record paths beyond first-touch name registration.
//
// Instruments are owned by a MetricsRegistry and live for its lifetime;
// `counter()` / `gauge()` / `histogram()` return stable references (the
// registry is node-based), so hot paths resolve a name once and then bump a
// plain integer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace starfish::obs {

class Counter {
 public:
  void add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-written value plus the high-water mark (queue depths, log sizes).
class Gauge {
 public:
  void set(int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(int64_t delta) { set(value_ + delta); }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

/// Inclusive bucket upper bounds, fixed at creation (recordings replay
/// bit-for-bit; the implicit final bucket is +inf).
struct HistogramSpec {
  std::vector<uint64_t> bounds;

  /// `count` bounds: first, first*factor, first*factor^2, ...
  static HistogramSpec exponential(uint64_t first, double factor, size_t count);
  /// `count` bounds: first, first+width, first+2*width, ...
  static HistogramSpec linear(uint64_t first, uint64_t width, size_t count);
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void record(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Min/max over recorded values; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create; references stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// The spec applies only on first creation of `name`.
  Histogram& histogram(std::string_view name, const HistogramSpec& spec = duration_buckets());

  /// Read-only lookups (nullptr if never touched) for tests and exporters.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  /// Deterministic snapshot: names sorted, fixed integer formatting. Shape:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
  /// Writes to_json() (plus trailing newline) to `path`; false after perror
  /// if the file cannot be written.
  bool write_json(const std::string& path) const;

  /// Default bucketing for virtual-nanosecond durations: 1 us .. ~17 min,
  /// powers of two.
  static const HistogramSpec& duration_buckets();

 private:
  // std::map: node-based (stable references) and name-sorted (deterministic
  // export order for free).
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace starfish::obs
