#include "obs/obs.hpp"

#include <cstdlib>

namespace starfish::obs {

namespace {
Hub* g_default_hub = nullptr;
bool g_env_checked = false;
}  // namespace

Hub* default_hub() {
  if (g_default_hub == nullptr && !g_env_checked) {
    g_env_checked = true;
    const char* force = std::getenv("STARFISH_OBS_FORCE");
    if (force != nullptr && *force != '\0' && !(force[0] == '0' && force[1] == '\0')) {
      static Hub forced;
      forced.tracer.set_enabled(true);
      g_default_hub = &forced;
    }
  }
  return g_default_hub;
}

void set_default_hub(Hub* hub) {
  g_default_hub = hub;
  g_env_checked = true;  // an explicit choice beats the environment
}

}  // namespace starfish::obs
