// starfish::obs — deterministic observability (DESIGN.md section 10).
//
// A Hub bundles the two instruments every layer records into: the metrics
// registry and the span/event tracer. Hubs are attached per-engine
// (`sim::Engine::set_obs`), or process-wide via the default hub, which every
// Engine built afterwards picks up automatically — that is how the benches'
// `--metrics FILE` mode instruments engines created deep inside a run
// without threading a pointer through every constructor.
//
// Determinism contract: everything recorded derives from virtual time and
// the deterministic event order, so same-seed runs snapshot identically,
// and an attached hub never feeds back into the simulation (no RNG draws,
// no scheduling, no visible state) — runs with observability off are
// byte-identical to runs that never compiled it in.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace starfish::obs {

struct Hub {
  MetricsRegistry metrics;
  Tracer tracer;
};

/// The process-default hub (nullptr when none). First call honours the
/// STARFISH_OBS_FORCE environment variable: a non-empty, non-"0" value
/// installs a process-global hub with tracing enabled, which is how the
/// sanitizer CI drives the instrumentation paths without per-test wiring.
Hub* default_hub();
/// Installs (or clears, with nullptr) the default hub. Affects engines
/// constructed afterwards only.
void set_default_hub(Hub* hub);

}  // namespace starfish::obs
