#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace starfish::obs {

void Tracer::push(TraceEvent ev) {
  TraceOrder& ord = trace_order();
  ev.order = ord;
  ++ord.emission;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
}

void Tracer::begin(uint64_t ts, const char* category, std::string name, uint32_t host,
                   uint64_t fiber) {
  if (!enabled_) return;
  push({ts, 0, TraceEvent::Phase::kBegin, host, fiber, std::move(name), category, {}});
}

void Tracer::end(uint64_t ts, const char* category, std::string name, uint32_t host,
                 uint64_t fiber) {
  if (!enabled_) return;
  push({ts, 0, TraceEvent::Phase::kEnd, host, fiber, std::move(name), category, {}});
}

void Tracer::complete(uint64_t ts, uint64_t dur, const char* category, std::string name,
                      uint32_t host, uint64_t fiber) {
  if (!enabled_) return;
  push({ts, dur, TraceEvent::Phase::kComplete, host, fiber, std::move(name), category, {}});
}

void Tracer::instant(uint64_t ts, const char* category, std::string name, uint32_t host,
                     uint64_t fiber) {
  if (!enabled_) return;
  push({ts, 0, TraceEvent::Phase::kInstant, host, fiber, std::move(name), category, {}});
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(ring_.size());
    // Once full, `next_` points at the oldest retained event.
    const size_t start = ring_.size() < capacity_ ? 0 : next_;
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
  }
  // Logical order, independent of which thread pushed first. stable_sort:
  // records from outside any engine event (equal stamps cannot happen from
  // concurrent shards, which always run inside stamped events) keep record
  // order.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.order < b.order; });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
}

/// Chrome wants microseconds; emit "<us>.<ns remainder>" from integers so the
/// output never depends on floating-point formatting.
void append_us(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ns / 1000, ns % 1000);
  out += buf;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += " {\"name\": \"";
    append_escaped(out, ev.name);
    out += "\", \"cat\": \"";
    append_escaped(out, ev.category);
    out += "\", \"ph\": \"";
    out.push_back(static_cast<char>(ev.phase));
    out += "\", \"ts\": ";
    append_us(out, ev.ts_ns);
    if (ev.phase == TraceEvent::Phase::kComplete) {
      out += ", \"dur\": ";
      append_us(out, ev.dur_ns);
    }
    if (ev.phase == TraceEvent::Phase::kInstant) {
      out += ", \"s\": \"t\"";  // thread-scoped instant
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, ", \"pid\": %u, \"tid\": %" PRIu64 "}",
                  ev.host, ev.fiber);
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("obs trace: " + path).c_str());
    return false;
  }
  const std::string json = to_chrome_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace starfish::obs
