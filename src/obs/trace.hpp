// Virtual-time tracing: spans and instant events in a bounded ring buffer,
// exported as Chrome trace_event JSON (loadable in chrome://tracing and
// Perfetto; see EXPERIMENTS.md).
//
// Timestamps are the engine's virtual nanoseconds, never the wall clock, so
// same-seed runs export byte-identical traces. Hosts map to Chrome "pids"
// and fibers to "tids", which makes the per-workstation timeline the natural
// top-level grouping in the viewer.
//
// Multi-shard determinism (DESIGN.md section 13): shard threads push
// concurrently under a lock, so the *record* order in the ring is
// wall-clock-dependent. Every event therefore carries a logical TraceOrder
// stamp — the (time, node, seq) key of the engine event that emitted it plus
// a per-event emission index — written by the engine into a thread-local
// before each dispatch. to_chrome_json() stable-sorts by that stamp, which
// reproduces the exact sequential emission order for any shard count (valid
// while nothing has been dropped from the ring).
//
// The tracer is compiled in everywhere but off by default: every record
// call is a single branch on `enabled()` until someone turns it on.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace starfish::obs {

/// Logical position of the currently executing engine event; stamps trace
/// records so concurrent shards export in deterministic order. `at/node/seq`
/// is the engine's total event key; `emission` counts records within one
/// event. Code running outside any engine event keeps the initial stamp
/// (at = -1), which sorts before every event — correct for setup-time
/// records, which are emitted before the first run().
struct TraceOrder {
  int64_t at = -1;
  uint32_t node = 0;
  uint64_t seq = 0;
  uint32_t emission = 0;

  friend bool operator<(const TraceOrder& a, const TraceOrder& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.node != b.node) return a.node < b.node;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.emission < b.emission;
  }
};

/// The calling thread's current stamp. The engine writes it on every event
/// dispatch, so the accessor must be header-inline: an out-of-line call plus
/// TLS guard here is measurable on the dispatch micro bench.
inline TraceOrder& trace_order() {
  thread_local TraceOrder order;
  return order;
}

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kComplete = 'X',  ///< span with explicit duration
    kInstant = 'i',
  };

  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;  ///< kComplete only
  Phase phase = Phase::kInstant;
  uint32_t host = 0;   ///< exported as pid
  uint64_t fiber = 0;  ///< exported as tid (0 = main context)
  std::string name;
  const char* category = "";  ///< must be a literal (stored unowned)
  TraceOrder order;           ///< logical emission order (see above)
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // All record calls are no-ops while disabled. `ts` is virtual nanoseconds.
  void begin(uint64_t ts, const char* category, std::string name, uint32_t host,
             uint64_t fiber = 0);
  void end(uint64_t ts, const char* category, std::string name, uint32_t host,
           uint64_t fiber = 0);
  void complete(uint64_t ts, uint64_t dur, const char* category, std::string name,
                uint32_t host, uint64_t fiber = 0);
  void instant(uint64_t ts, const char* category, std::string name, uint32_t host,
               uint64_t fiber = 0);

  /// Events currently retained (<= capacity; older events are overwritten).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;
  uint64_t dropped() const;

  /// Retained events in deterministic logical order (TraceOrder stamps;
  /// record order breaks ties, which only matters for pre-engine records).
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with microsecond
  /// timestamps (ns precision kept via fractional digits). Deterministic for
  /// any shard count while nothing has been dropped.
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; false after perror on failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  void push(TraceEvent ev);

  bool enabled_ = false;
  size_t capacity_;
  mutable std::mutex mu_;  ///< guards ring_/next_/recorded_
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;  ///< overwrite cursor once the ring is full
  uint64_t recorded_ = 0;
};

}  // namespace starfish::obs
