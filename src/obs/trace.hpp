// Virtual-time tracing: spans and instant events in a bounded ring buffer,
// exported as Chrome trace_event JSON (loadable in chrome://tracing and
// Perfetto; see EXPERIMENTS.md).
//
// Timestamps are the engine's virtual nanoseconds, never the wall clock, so
// same-seed runs export byte-identical traces. Hosts map to Chrome "pids"
// and fibers to "tids", which makes the per-workstation timeline the natural
// top-level grouping in the viewer.
//
// The tracer is compiled in everywhere but off by default: every record
// call is a single branch on `enabled()` until someone turns it on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace starfish::obs {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kComplete = 'X',  ///< span with explicit duration
    kInstant = 'i',
  };

  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;  ///< kComplete only
  Phase phase = Phase::kInstant;
  uint32_t host = 0;   ///< exported as pid
  uint64_t fiber = 0;  ///< exported as tid (0 = main context)
  std::string name;
  const char* category = "";  ///< must be a literal (stored unowned)
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // All record calls are no-ops while disabled. `ts` is virtual nanoseconds.
  void begin(uint64_t ts, const char* category, std::string name, uint32_t host,
             uint64_t fiber = 0);
  void end(uint64_t ts, const char* category, std::string name, uint32_t host,
           uint64_t fiber = 0);
  void complete(uint64_t ts, uint64_t dur, const char* category, std::string name,
                uint32_t host, uint64_t fiber = 0);
  void instant(uint64_t ts, const char* category, std::string name, uint32_t host,
               uint64_t fiber = 0);

  /// Events currently retained (<= capacity; older events are overwritten).
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return recorded_ - ring_.size(); }

  /// Retained events in record order (oldest first).
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with microsecond
  /// timestamps (ns precision kept via fractional digits). Deterministic.
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; false after perror on failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  void push(TraceEvent ev);

  bool enabled_ = false;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;  ///< overwrite cursor once the ring is full
  uint64_t recorded_ = 0;
};

}  // namespace starfish::obs
