#include "sim/context.hpp"

#if STARFISH_FAST_CONTEXT

// The switch frame, from the saved stack pointer upward:
//   sp[0]  mxcsr (low 4 bytes) | x87 control word (at byte offset 4)
//   sp[1]  r15        sp[2]  r14        sp[3]  r13
//   sp[4]  r12        sp[5]  rbx        sp[6]  rbp
//   sp[7]  return address
// Only callee-saved state is stored: the caller of starfish_ctx_swap already
// assumes everything else is clobbered by the call, exactly as for any other
// function. The signal mask is deliberately NOT saved — that is the entire
// speedup over swapcontext.
asm(R"(
        .text
        .align 16
        .globl starfish_ctx_swap
        .type starfish_ctx_swap,@function
starfish_ctx_swap:
        .cfi_startproc
        endbr64
        pushq %rbp
        pushq %rbx
        pushq %r12
        pushq %r13
        pushq %r14
        pushq %r15
        subq $8, %rsp
        stmxcsr (%rsp)
        fnstcw 4(%rsp)
        movq %rsp, (%rdi)
        movq %rsi, %rsp
        ldmxcsr (%rsp)
        fldcw 4(%rsp)
        addq $8, %rsp
        popq %r15
        popq %r14
        popq %r13
        popq %r12
        popq %rbx
        popq %rbp
        ret
        .cfi_endproc
        .size starfish_ctx_swap,.-starfish_ctx_swap

        .align 16
        .globl starfish_ctx_entry
        .type starfish_ctx_entry,@function
starfish_ctx_entry:
        .cfi_startproc
        .cfi_undefined rip
        endbr64
        movq %r15, %rdi
        callq *%r14
        ud2
        .cfi_endproc
        .size starfish_ctx_entry,.-starfish_ctx_entry
)");

namespace starfish::sim {

extern "C" void starfish_ctx_entry();  // assembly stub above; not C-callable

void* ctx_make(void* stack_top, void (*entry)(void*), void* arg) {
  uint32_t mxcsr = 0;
  uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));

  // Align the top down to 16 and carve one switch frame. After the restore
  // sequence pops it, rsp == top (16-aligned); the entry stub's indirect
  // call then pushes a return address, giving entry() the ABI-required
  // rsp % 16 == 8 on entry.
  const uintptr_t top = reinterpret_cast<uintptr_t>(stack_top) & ~uintptr_t{15};
  auto* sp = reinterpret_cast<uint64_t*>(top - 64);
  sp[0] = static_cast<uint64_t>(mxcsr) | (static_cast<uint64_t>(fcw) << 32);
  sp[1] = reinterpret_cast<uint64_t>(arg);    // restored into r15
  sp[2] = reinterpret_cast<uint64_t>(entry);  // restored into r14
  sp[3] = 0;                                  // r13
  sp[4] = 0;                                  // r12
  sp[5] = 0;                                  // rbx
  sp[6] = 0;                                  // rbp
  sp[7] = reinterpret_cast<uint64_t>(&starfish_ctx_entry);
  return sp;
}

}  // namespace starfish::sim

#endif  // STARFISH_FAST_CONTEXT
