// User-level context switching for fibers.
//
// glibc's swapcontext makes a sigprocmask *syscall* on every switch (~230ns
// on this hardware); the engine's dominant block/wake/resume cycle pays it
// twice per hop. Simulation fibers never care about the signal mask, so on
// x86-64 we switch contexts in user space (boost.fcontext-style): save the
// SysV callee-saved registers plus mxcsr/x87 control word on the old stack,
// swap stack pointers, restore. ~10ns per switch, no kernel entry.
//
// The ucontext path is kept (STARFISH_FAST_CONTEXT == 0) for non-x86-64
// builds, for ASan/TSan builds (the sanitizers intercept swapcontext to
// track stack switches but cannot see a custom switch), and on demand via
// -DSTARFISH_FORCE_UCONTEXT for debugging. Both paths run the same engine
// code and must replay the same goldens (engine_golden_test runs under both
// via scripts/asan_ctest.sh).
#pragma once

#if defined(__x86_64__) && !defined(STARFISH_FORCE_UCONTEXT)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define STARFISH_FAST_CONTEXT 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define STARFISH_FAST_CONTEXT 0
#else
#define STARFISH_FAST_CONTEXT 1
#endif
#else
#define STARFISH_FAST_CONTEXT 1
#endif
#else
#define STARFISH_FAST_CONTEXT 0
#endif

// Whether fiber switches are announced to ThreadSanitizer through the
// __tsan_*_fiber API. Off by default: gcc's libtsan (the v3 runtime, gcc 12
// through at least 12.2) SEGVs in its stack depot a handful of fiber
// create/switch cycles into any process that uses the API — even the
// documented minimal ucontext example crashes — while its swapcontext
// interceptor alone handles the stack hop correctly and runs the full suite
// clean. Build with -DSTARFISH_TSAN_FIBER_API=1 on a runtime where the API
// works to get precise per-fiber shadow stacks back.
#ifndef STARFISH_TSAN_FIBER_API
#define STARFISH_TSAN_FIBER_API 0
#endif

#if STARFISH_FAST_CONTEXT

#include <cstdint>

extern "C" {
/// Saves the callee-saved machine state on the current stack, publishes the
/// resulting stack pointer through *save_sp, switches to load_sp and
/// restores the state found there. Defined in context.cpp (assembly).
void starfish_ctx_swap(void** save_sp, void* load_sp);
}

namespace starfish::sim {

/// Lays out an initial switch frame at the top of a fresh stack so that the
/// first starfish_ctx_swap into the returned pointer calls entry(arg) with a
/// correctly aligned stack. entry must never return (it must swap away).
void* ctx_make(void* stack_top, void (*entry)(void*), void* arg);

}  // namespace starfish::sim

#endif  // STARFISH_FAST_CONTEXT
