// Per-host disk model.
//
// Checkpoint times in the paper (Figures 3 and 4) are dominated by writing
// the image to the node's local IDE disk: a fixed setup cost (file creation,
// fork, first seek) plus a linear transfer term. The model charges exactly
// those two terms and serializes concurrent accesses, which is what an IDE
// bus does.
//
// Calibration (documented against paper anchors; see EXPERIMENTS.md):
//   native path:  632 KB checkpoint -> 0.104 s on one node (Figure 3)
//   vm path:      260 KB checkpoint -> 0.0077 s on one node (Figure 4)
// The native path goes through the kernel/core-dump machinery (large setup
// cost); the VM path is a plain buffered write (small setup cost).
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace starfish::sim {

struct DiskParams {
  Duration setup = milliseconds(2);          ///< open/seek cost per operation
  double bandwidth_mb_s = 22.0;              ///< sustained sequential write/read
  /// Buffered (page-cache) write rate: no synchronous flush, so faster than
  /// the platter rate. Used by the VM-level checkpoint path (Figure 4).
  double buffered_bandwidth_mb_s = 45.0;
};

/// Late-1990s IDE disk defaults used by every cluster host.
inline DiskParams ide_disk_params() { return DiskParams{milliseconds(2), 22.0, 45.0}; }

class Disk {
 public:
  Disk(Engine& engine, DiskParams params = ide_disk_params())
      : engine_(engine), mutex_(engine), params_(params) {}

  /// Blocks the calling fiber for the time to write `bytes` sequentially.
  void write(uint64_t bytes) { transfer(transfer_time(bytes)); }
  /// Buffered write through the page cache (no synchronous flush).
  void write_buffered(uint64_t bytes) { transfer(buffered_time(bytes)); }
  /// Blocks the calling fiber for the time to read `bytes` sequentially.
  void read(uint64_t bytes) { transfer(transfer_time(bytes)); }

  const DiskParams& params() const { return params_; }

  /// Model-predicted duration for a synchronous transfer, without queueing.
  Duration transfer_time(uint64_t bytes) const {
    const double secs = static_cast<double>(bytes) / (params_.bandwidth_mb_s * 1e6);
    return params_.setup + seconds(secs);
  }
  Duration buffered_time(uint64_t bytes) const {
    const double secs = static_cast<double>(bytes) / (params_.buffered_bandwidth_mb_s * 1e6);
    return params_.setup + seconds(secs);
  }

 private:
  void transfer(Duration d) {
    LockGuard guard(mutex_);  // IDE: one outstanding transfer at a time
    engine_.sleep(d);
  }

  Engine& engine_;
  Mutex mutex_;
  DiskParams params_;
};

}  // namespace starfish::sim
