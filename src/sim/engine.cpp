#include "sim/engine.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/log.hpp"

namespace starfish::sim {

namespace {
constexpr size_t kStackBytes = 256 * 1024;

// makecontext passes only ints; the fiber pointer travels as two halves.
Fiber* unpack_fiber(unsigned hi, unsigned lo) {
  uintptr_t p = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  return reinterpret_cast<Fiber*>(p);
}
}  // namespace

// ---------------------------------------------------------------- Fiber ----

Fiber::Fiber(Engine& engine, std::string name, std::function<void()> body)
    : engine_(engine), name_(std::move(name)), id_(engine.next_fiber_id_++), body_(std::move(body)) {
  const long page = sysconf(_SC_PAGESIZE);
  stack_total_ = kStackBytes + static_cast<size_t>(page);
  stack_base_ = mmap(nullptr, stack_total_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (stack_base_ == MAP_FAILED) {
    std::perror("starfish: fiber stack mmap");
    std::abort();
  }
  // Guard page at the low end catches stack overflow with a SIGSEGV instead
  // of silent corruption.
  mprotect(stack_base_, static_cast<size_t>(page), PROT_NONE);

  getcontext(&context_);
  context_.uc_stack.ss_sp = static_cast<char*>(stack_base_) + page;
  context_.uc_stack.ss_size = kStackBytes;
  context_.uc_link = &engine_.main_context_;
  const uintptr_t p = reinterpret_cast<uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline_entry), 2,
              static_cast<unsigned>(p >> 32), static_cast<unsigned>(p & 0xffffffffu));
}

Fiber::~Fiber() {
  if (stack_base_ != nullptr) munmap(stack_base_, stack_total_);
}

void Fiber::trampoline_entry(unsigned hi, unsigned lo) {
  Fiber* self = unpack_fiber(hi, lo);
  self->run_body();
  // Returning lets ucontext switch to uc_link (the main context); the engine
  // observes kFinished there.
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Expected unwind path for killed fibers.
  } catch (const std::exception& e) {
    STARFISH_LOG(kError, "sim") << "fiber '" << name_ << "' died with exception: " << e.what();
  }
  state_ = FiberState::kFinished;
  engine_.fiber_exited();
}

// --------------------------------------------------------------- Engine ----

Engine::~Engine() {
  // Unblockable cleanup: any still-suspended fiber stacks are released
  // without unwinding. Long-lived simulations should kill fibers and drain
  // the queue before destroying the engine; tests that end mid-simulation
  // rely on this path.
}

void Engine::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

FiberPtr Engine::spawn(std::string name, std::function<void()> body, Duration delay) {
  auto fiber = std::make_shared<Fiber>(*this, std::move(name), std::move(body));
  fibers_.push_back(fiber);
  fiber->state_ = FiberState::kRunnable;
  schedule(delay, [this, fiber] {
    if (fiber->state_ == FiberState::kRunnable && !fiber->killed_) resume(fiber.get());
  });
  return fiber;
}

void Engine::kill(const FiberPtr& fiber) {
  Fiber* f = fiber.get();
  if (f == nullptr || f->finished() || f->killed_) return;
  f->killed_ = true;
  if (f->state_ == FiberState::kBlocked) wake(f, WakeReason::kKilled);
  // Runnable-but-not-yet-started fibers simply never start (spawn's start
  // event checks killed_); running fibers throw at their next block.
}

void Engine::run() {
  assert(current_ == nullptr && "Engine::run called from inside a fiber");
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    assert(ev.at >= now_);
    now_ = ev.at;
    ++events_executed_;
    if (obs_events_ != nullptr) {
      obs_events_->add(1);
      obs_runq_->record(queue_.size());
    }
    ev.fn();
    // Periodically drop finished fibers so long simulations don't grow.
    if ((events_executed_ & 0x3ff) == 0) {
      std::erase_if(fibers_, [](const FiberPtr& f) { return f->finished() && f.use_count() == 1; });
    }
  }
}

void Engine::run_for(Duration d) {
  assert(current_ == nullptr && "Engine::run_for called from inside a fiber");
  const Time deadline = now_ + d;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_executed_;
    if (obs_events_ != nullptr) {
      obs_events_->add(1);
      obs_runq_->record(queue_.size());
    }
    ev.fn();
  }
  now_ = deadline;
}

void Engine::resume(Fiber* fiber) {
  assert(current_ == nullptr && "nested fiber resume");
  assert(!fiber->finished());
  current_ = fiber;
  fiber->state_ = FiberState::kRunning;
  if (obs_switches_ != nullptr) obs_switches_->add(1);
  swapcontext(&main_context_, &fiber->context_);
  current_ = nullptr;
}

void Engine::fiber_exited() {
  // Called on the fiber's stack just before trampoline return; nothing to do
  // beyond state bookkeeping (already set). Control flows to uc_link.
}

WakeReason Engine::block() {
  Fiber* f = current_;
  assert(f != nullptr && "block() outside a fiber");
  if (f->killed_) throw FiberKilled{};
  f->state_ = FiberState::kBlocked;
  ++f->wait_epoch_;
  swapcontext(&f->context_, &main_context_);
  // Resumed.
  if (f->wake_reason_ == WakeReason::kKilled || f->killed_) throw FiberKilled{};
  return f->wake_reason_;
}

WakeReason Engine::block_until(Time deadline) {
  Fiber* f = current_;
  assert(f != nullptr && "block_until() outside a fiber");
  if (f->killed_) throw FiberKilled{};
  const uint64_t epoch = f->wait_epoch_ + 1;  // epoch this block will have
  // Capture a shared_ptr: the timer may outlive the fiber if it is woken
  // early by a signal and then finishes.
  schedule(deadline - now_ < 0 ? 0 : deadline - now_,
           [this, keep = f->shared_from_this(), epoch] {
             if (keep->state_ == FiberState::kBlocked && keep->wait_epoch_ == epoch) {
               wake(keep.get(), WakeReason::kTimer);
             }
           });
  return block();
}

void Engine::sleep_until(Time t) {
  (void)block_until(t);
}

void Engine::wake(Fiber* fiber, WakeReason reason) {
  if (fiber == nullptr || fiber->state_ != FiberState::kBlocked) return;
  fiber->state_ = FiberState::kRunnable;
  fiber->wake_reason_ = reason;
  const uint64_t epoch = fiber->wait_epoch_;
  schedule(0, [this, keep = fiber->shared_from_this(), epoch] {
    // The epoch and state checks make stale or duplicate wake events
    // harmless (the fiber may already have resumed and re-blocked).
    if (keep->state_ == FiberState::kRunnable && keep->wait_epoch_ == epoch &&
        !keep->finished()) {
      resume(keep.get());
    }
  });
}


}  // namespace starfish::sim
