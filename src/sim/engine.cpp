#include "sim/engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/log.hpp"

namespace starfish::sim {

namespace {
constexpr size_t kStackBytes = 256 * 1024;

#if !STARFISH_FAST_CONTEXT
// makecontext passes only ints; the fiber pointer travels as two halves.
Fiber* unpack_fiber(unsigned hi, unsigned lo) {
  uintptr_t p = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  return reinterpret_cast<Fiber*>(p);
}
#endif
}  // namespace

// ---------------------------------------------------------------- Fiber ----

Fiber::Fiber(Engine& engine, std::string name, std::function<void()> body)
    : engine_(engine),
      name_(std::move(name)),
      id_(engine.next_fiber_id_++),
      body_(std::move(body)),
      pool_(engine.stack_pool_) {
  const StackPool::Allocation alloc = pool_->acquire(kStackBytes);
  stack_base_ = alloc.base;
  stack_total_ = alloc.total;
  if (alloc.reused) {
    if (engine.obs_stack_hits_ != nullptr) engine.obs_stack_hits_->add(1);
  } else if (engine.obs_stack_misses_ != nullptr) {
    engine.obs_stack_misses_->add(1);
  }

#if STARFISH_FAST_CONTEXT
  // Context creation is pure user-space pointer arithmetic: no getcontext
  // syscall, no signal-mask snapshot. The guard page sits at stack_base_.
  ctx_sp_ = ctx_make(static_cast<char*>(stack_base_) + stack_total_, &Fiber::fast_entry, this);
#else
  const long page = sysconf(_SC_PAGESIZE);
  getcontext(&context_);
  context_.uc_stack.ss_sp = static_cast<char*>(stack_base_) + page;
  context_.uc_stack.ss_size = stack_total_ - static_cast<size_t>(page);
  context_.uc_link = &engine_.main_context_;
  const uintptr_t p = reinterpret_cast<uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline_entry), 2,
              static_cast<unsigned>(p >> 32), static_cast<unsigned>(p & 0xffffffffu));
#endif
}

Fiber::~Fiber() { release_stack(); }

void Fiber::release_stack() {
  if (stack_base_ != nullptr) {
    pool_->release(stack_base_, stack_total_);
    stack_base_ = nullptr;
  }
}

#if STARFISH_FAST_CONTEXT
void Fiber::fast_entry(void* arg) {
  Fiber* self = static_cast<Fiber*>(arg);
  self->run_body();
  // The uc_link equivalent: switch back to the main context for good. The
  // engine observes kFinished there and never resumes this context again.
  starfish_ctx_swap(&self->ctx_sp_, self->engine_.main_sp_);
  // Unreachable (the asm entry stub ud2s if entry ever returns).
}
#else
void Fiber::trampoline_entry(unsigned hi, unsigned lo) {
  Fiber* self = unpack_fiber(hi, lo);
  self->run_body();
  // Returning lets ucontext switch to uc_link (the main context); the engine
  // observes kFinished there.
}
#endif

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Expected unwind path for killed fibers.
  } catch (const std::exception& e) {
    STARFISH_LOG(kError, "sim") << "fiber '" << name_ << "' died with exception: " << e.what();
  }
  state_ = FiberState::kFinished;
  engine_.fiber_exited();
}

// --------------------------------------------------------------- Engine ----

Engine::~Engine() {
  // Unblockable cleanup: any still-suspended fiber stacks are released
  // without unwinding (back into the stack pool, which the last owner
  // unmaps). Long-lived simulations should kill fibers and drain the queue
  // before destroying the engine; tests that end mid-simulation rely on
  // this path.
}

void Engine::EventPool::grow() {
  auto slab = std::make_unique<EventNode[]>(kSlabNodes);
  for (size_t i = 0; i < kSlabNodes; ++i) {
    slab[i].next_free = free_;
    free_ = &slab[i];
  }
  slabs_.push_back(std::move(slab));
}

Engine::TimerEntry Engine::TimerHeap::pop() {
  const TimerEntry out = v_[0];
  const TimerEntry last = v_.back();
  v_.pop_back();
  if (!v_.empty()) {
    // Sift the hole down, choosing the smallest of up to kArity children.
    size_t i = 0;
    const size_t n = v_.size();
    for (;;) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = std::min(first + kArity, n);
      for (size_t c = first + 1; c < end; ++c) {
        if (before(v_[c], v_[best])) best = c;
      }
      if (!before(v_[best], last)) break;
      v_[i] = v_[best];
      i = best;
    }
    v_[i] = last;
  }
  return out;
}

void Engine::ReadyQueue::grow() {
  const size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
  std::vector<ReadyEntry> next(cap);
  for (size_t i = 0; i < count_; ++i) next[i] = std::move(buf_[(head_ + i) & mask_]);
  buf_ = std::move(next);
  head_ = 0;
  mask_ = cap - 1;
}

FiberPtr Engine::spawn(std::string name, std::function<void()> body, Duration delay) {
  auto fiber = std::make_shared<Fiber>(*this, std::move(name), std::move(body));
  fibers_.push_back(fiber);
  fiber->state_ = FiberState::kRunnable;
  schedule(delay, [this, fiber] {
    if (fiber->state_ == FiberState::kRunnable && !fiber->killed_) resume(fiber.get());
  });
  return fiber;
}

void Engine::kill(const FiberPtr& fiber) {
  Fiber* f = fiber.get();
  if (f == nullptr || f->finished() || f->killed_) return;
  f->killed_ = true;
  if (f->state_ == FiberState::kBlocked) wake(f, WakeReason::kKilled);
  // Runnable-but-not-yet-started fibers simply never start (spawn's start
  // event checks killed_); running fibers throw at their next block.
}

void Engine::note_event_dispatched(size_t remaining) {
  ++events_executed_;
  if (obs_events_ != nullptr) {
    obs_events_->add(1);
    obs_runq_->record(remaining);
  }
}

bool Engine::dispatch_one(Time deadline) {
  // Pick the globally smallest (time, seq) across the ready ring and the
  // timer heap. Ready entries were enqueued at their wake time with a seq
  // from the same counter timers draw from, so this interleaving is exactly
  // the order the old single priority queue produced.
  bool take_ready;
  if (ready_.empty()) {
    if (timers_.empty()) return false;
    take_ready = false;
  } else if (timers_.empty()) {
    take_ready = true;
  } else {
    const ReadyEntry& r = ready_.front();
    const TimerEntry& t = timers_.top();
    take_ready = r.at != t.at ? r.at < t.at : r.seq < t.seq;
  }

  if (take_ready) {
    if (ready_.front().at > deadline) return false;
    ReadyEntry e = ready_.pop();
    assert(e.at >= now_);
    now_ = e.at;
    note_event_dispatched(timers_.size() + ready_.size());
    Fiber* f = e.fiber.get();
    // Same guards the old wake event applied: the epoch and state checks
    // make stale or duplicate wakes harmless (the fiber may already have
    // resumed and re-blocked).
    if (f->state_ == FiberState::kRunnable && f->wait_epoch_ == e.epoch && !f->finished()) {
      resume(f);
    }
  } else {
    if (timers_.top().at > deadline) return false;
    TimerEntry t = timers_.pop();
    assert(t.at >= now_);
    now_ = t.at;
    note_event_dispatched(timers_.size() + ready_.size());
    t.node->fn();
    pool_.release(t.node);
  }

  // Periodically drop finished fibers so long simulations don't grow. Both
  // run() and run_for() dispatch through here (run_for never swept before
  // this lived in the shared path, so run_for-driven simulations leaked).
  if ((events_executed_ & 0x3ff) == 0) {
    std::erase_if(fibers_, [](const FiberPtr& f) { return f->finished() && f.use_count() == 1; });
  }
  return true;
}

void Engine::run() {
  assert(current_ == nullptr && "Engine::run called from inside a fiber");
  constexpr Time kForever = std::numeric_limits<Time>::max();
  while (dispatch_one(kForever)) {
  }
}

void Engine::run_for(Duration d) {
  assert(current_ == nullptr && "Engine::run_for called from inside a fiber");
  const Time deadline = now_ + d;
  while (dispatch_one(deadline)) {
  }
  now_ = deadline;
}

void Engine::resume(Fiber* fiber) {
  assert(current_ == nullptr && "nested fiber resume");
  assert(!fiber->finished());
  current_ = fiber;
  fiber->state_ = FiberState::kRunning;
  if (obs_switches_ != nullptr) obs_switches_->add(1);
#if STARFISH_FAST_CONTEXT
  starfish_ctx_swap(&main_sp_, fiber->ctx_sp_);
#else
  swapcontext(&main_context_, &fiber->context_);
#endif
  current_ = nullptr;
  // A finished fiber's context never runs again: recycle the stack now,
  // not when the last FiberPtr dies, so spawn churn reuses stacks
  // immediately.
  if (fiber->finished()) fiber->release_stack();
}

void Engine::fiber_exited() {
  // Called on the fiber's stack just before trampoline return; nothing to do
  // beyond state bookkeeping (already set). Control flows to uc_link.
}

WakeReason Engine::block() {
  Fiber* f = current_;
  assert(f != nullptr && "block() outside a fiber");
  if (f->killed_) throw FiberKilled{};
  f->state_ = FiberState::kBlocked;
  ++f->wait_epoch_;
#if STARFISH_FAST_CONTEXT
  starfish_ctx_swap(&f->ctx_sp_, main_sp_);
#else
  swapcontext(&f->context_, &main_context_);
#endif
  // Resumed.
  if (f->wake_reason_ == WakeReason::kKilled || f->killed_) throw FiberKilled{};
  return f->wake_reason_;
}

WakeReason Engine::block_until(Time deadline) {
  Fiber* f = current_;
  assert(f != nullptr && "block_until() outside a fiber");
  if (f->killed_) throw FiberKilled{};
  const uint64_t epoch = f->wait_epoch_ + 1;  // epoch this block will have
  // Capture a shared_ptr: the timer may outlive the fiber if it is woken
  // early by a signal and then finishes. The capture set (this + keep +
  // epoch) fits SmallFn's inline buffer, so no allocation.
  schedule(deadline - now_ < 0 ? 0 : deadline - now_,
           [this, keep = f->shared_from_this(), epoch] {
             if (keep->state_ == FiberState::kBlocked && keep->wait_epoch_ == epoch) {
               wake(keep.get(), WakeReason::kTimer);
             }
           });
  return block();
}

void Engine::sleep_until(Time t) {
  (void)block_until(t);
}

void Engine::wake(Fiber* fiber, WakeReason reason) {
  if (fiber == nullptr || fiber->state_ != FiberState::kBlocked) return;
  fiber->state_ = FiberState::kRunnable;
  fiber->wake_reason_ = reason;
  // O(1) ready-ring enqueue: no heap round-trip, no callback allocation on
  // the dominant block/wake/resume cycle. The seq keeps global order.
  ready_.push(ReadyEntry{now_, next_seq_++, fiber->shared_from_this(), fiber->wait_epoch_});
}

}  // namespace starfish::sim
