#include "sim/engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>

#include "util/log.hpp"
#include "util/simd/simd.hpp"

#if STARFISH_TSAN_FIBER_API
// ThreadSanitizer's fiber API: announces each stack switch so TSan keeps a
// per-fiber shadow stack. Opt-in (see sim/context.hpp) — gcc's libtsan
// crashes when the API is used, and its swapcontext interceptor already
// tracks the switches well enough to run the suite clean without it.
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace starfish::sim {

namespace {
constexpr size_t kStackBytes = 256 * 1024;
constexpr Time kForever = std::numeric_limits<Time>::max();

#if !STARFISH_FAST_CONTEXT
// makecontext passes only ints; the fiber pointer travels as two halves.
Fiber* unpack_fiber(unsigned hi, unsigned lo) {
  uintptr_t p = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  return reinterpret_cast<Fiber*>(p);
}
#endif
}  // namespace

// ---------------------------------------------------------------- Fiber ----

Fiber::Fiber(Engine& engine, NodeId node, std::string name, std::function<void()> body)
    : engine_(engine),
      name_(std::move(name)),
      id_((static_cast<uint64_t>(node) << 32) | engine.nodes_[node].next_fiber++),
      node_(node),
      home_(engine.shards_[engine.nodes_[node].shard].get()),
      body_(std::move(body)),
      pool_(home_->stack_pool) {
  const StackPool::Allocation alloc = pool_->acquire(kStackBytes);
  stack_base_ = alloc.base;
  stack_total_ = alloc.total;
  if (alloc.reused) {
    if (engine.obs_stack_hits_ != nullptr) engine.obs_stack_hits_->add(1);
  } else if (engine.obs_stack_misses_ != nullptr) {
    engine.obs_stack_misses_->add(1);
  }

#if STARFISH_FAST_CONTEXT
  // Context creation is pure user-space pointer arithmetic: no getcontext
  // syscall, no signal-mask snapshot. The guard page sits at stack_base_.
  ctx_sp_ = ctx_make(static_cast<char*>(stack_base_) + stack_total_, &Fiber::fast_entry, this);
#else
  const long page = sysconf(_SC_PAGESIZE);
  getcontext(&context_);
  context_.uc_stack.ss_sp = static_cast<char*>(stack_base_) + page;
  context_.uc_stack.ss_size = stack_total_ - static_cast<size_t>(page);
  context_.uc_link = &home_->main_context;
  const uintptr_t p = reinterpret_cast<uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline_entry), 2,
              static_cast<unsigned>(p >> 32), static_cast<unsigned>(p & 0xffffffffu));
#endif
#if STARFISH_TSAN_FIBER_API
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() { release_stack(); }

void Fiber::release_stack() {
  if (stack_base_ != nullptr) {
    pool_->release(stack_base_, stack_total_);
    stack_base_ = nullptr;
  }
#if STARFISH_TSAN_FIBER_API
  if (tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
    tsan_fiber_ = nullptr;
  }
#endif
}

#if STARFISH_FAST_CONTEXT
void Fiber::fast_entry(void* arg) {
  Fiber* self = static_cast<Fiber*>(arg);
  self->run_body();
  // The uc_link equivalent: switch back to the home shard's main context for
  // good. The engine observes kFinished there and never resumes this context
  // again.
  starfish_ctx_swap(&self->ctx_sp_, self->home_->main_sp);
  // Unreachable (the asm entry stub ud2s if entry ever returns).
}
#else
void Fiber::trampoline_entry(unsigned hi, unsigned lo) {
  Fiber* self = unpack_fiber(hi, lo);
  self->run_body();
#if STARFISH_TSAN_FIBER_API
  __tsan_switch_to_fiber(self->home_->tsan_main, 0);
#endif
  // Returning lets ucontext switch to uc_link (the home shard's main
  // context); the engine observes kFinished there.
}
#endif

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Expected unwind path for killed fibers.
  } catch (const std::exception& e) {
    STARFISH_LOG(kError, "sim") << "fiber '" << name_ << "' died with exception: " << e.what();
  }
  state_ = FiberState::kFinished;
  engine_.fiber_exited();
}

// ----------------------------------------------------------- structures ----

void EventPool::grow() {
  auto slab = std::make_unique<EventNode[]>(kSlabNodes);
  for (size_t i = 0; i < kSlabNodes; ++i) {
    slab[i].next_free = free_;
    free_ = &slab[i];
  }
  slabs_.push_back(std::move(slab));
}

TimerEntry TimerHeap::pop() {
  const TimerEntry out = v_[0];
  const TimerEntry last = v_.back();
  v_.pop_back();
  if (!v_.empty()) {
    // Sift the hole down, choosing the smallest of up to kArity children.
    size_t i = 0;
    const size_t n = v_.size();
    for (;;) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = std::min(first + kArity, n);
      for (size_t c = first + 1; c < end; ++c) {
        if (before(v_[c], v_[best])) best = c;
      }
      if (!before(v_[best], last)) break;
      v_[i] = v_[best];
      i = best;
    }
    v_[i] = last;
  }
  return out;
}

void ReadyQueue::grow() {
  const size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
  std::vector<ReadyEntry> next(cap);
  for (size_t i = 0; i < count_; ++i) next[i] = std::move(buf_[(head_ + i) & mask_]);
  buf_ = std::move(next);
  head_ = 0;
  mask_ = cap - 1;
}

// --------------------------------------------------------------- Engine ----

Engine::Engine(uint64_t seed) : seed_(seed), rng_(seed) {
  nodes_.emplace_back();  // node 0: the control plane
  shards_.push_back(std::make_unique<Shard>());
  shards_[0]->outbox.resize(1);
  set_obs(obs::default_hub());
}

Engine::~Engine() {
  stop_threads();
  // Unblockable cleanup: any still-suspended fiber stacks are released
  // without unwinding (back into the stack pool, which the last owner
  // unmaps). Long-lived simulations should kill fibers and drain the queue
  // before destroying the engine; tests that end mid-simulation rely on
  // this path.
}

void Engine::set_obs(obs::Hub* hub) {
  obs_ = hub;
  if (hub != nullptr) {
    // Which kernel table the data plane dispatched to (0=scalar, 1=neon,
    // 2=avx2, 3=avx512), so bench JSON and metric snapshots are
    // self-describing about the ISA they were measured under.
    hub->metrics.gauge("sim.simd.dispatch")
        .set(static_cast<int64_t>(util::simd::level()));
  }
  obs_events_ = hub ? &hub->metrics.counter("sim.events_executed") : nullptr;
  obs_switches_ = hub ? &hub->metrics.counter("sim.fiber_switches") : nullptr;
  obs_runq_ = hub ? &hub->metrics.histogram("sim.run_queue_depth",
                                            obs::HistogramSpec::exponential(1, 2.0, 20))
                  : nullptr;
  obs_fn_heap_ = hub ? &hub->metrics.counter("sim.event_fn_heap") : nullptr;
  obs_stack_hits_ = hub ? &hub->metrics.counter("sim.stack_pool.hits") : nullptr;
  obs_stack_misses_ = hub ? &hub->metrics.counter("sim.stack_pool.misses") : nullptr;
}

void Engine::set_shards(unsigned n) {
  if (n == 0) n = 1;
  assert(nodes_.size() == 1 && "set_shards must precede host/node registration");
  assert(idle() && shards_[0]->fibers.empty() && "set_shards on a non-empty engine");
  stop_threads();
  shard_count_ = n;
  shards_.clear();
  const size_t total = n == 1 ? 1 : static_cast<size_t>(n) + 1;
  shards_.reserve(total);
  for (size_t i = 0; i < total; ++i) shards_.push_back(std::make_unique<Shard>());
  for (auto& s : shards_) s->outbox.resize(total);
  nodes_[0].shard = 0;
}

NodeId Engine::register_node() {
  assert(!parallel_active_ && "register_node from a parallel window");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodeState st;
  // Round-robin hosts over worker shards; shard 0 is the control plane's.
  st.shard = shard_count_ == 1 ? 0 : 1 + (id - 1) % shard_count_;
  nodes_.push_back(st);
  return id;
}

FiberPtr Engine::spawn(std::string name, std::function<void()> body, Duration delay) {
  const ExecCtx& c = tls_;
  return spawn_on(c.engine == this ? c.node : kControlNode, std::move(name), std::move(body),
                  delay);
}

FiberPtr Engine::spawn_on(NodeId node, std::string name, std::function<void()> body,
                          Duration delay) {
  assert(node < nodes_.size());
  Shard* home = shards_[nodes_[node].shard].get();
  assert((!parallel_active_ || tls_.shard == home) && "cross-shard spawn from a parallel window");
  auto fiber = std::make_shared<Fiber>(*this, node, std::move(name), std::move(body));
  home->fibers.push_back(fiber);
  fiber->state_ = FiberState::kRunnable;
  schedule_on(node, delay, [this, fiber] {
    if (fiber->state_ == FiberState::kRunnable && !fiber->killed_) {
      resume(*fiber->home_, fiber.get());
    }
  });
  return fiber;
}

void Engine::kill(const FiberPtr& fiber) {
  Fiber* f = fiber.get();
  if (f == nullptr || f->finished() || f->killed_) return;
  assert((!parallel_active_ || tls_.shard == f->home_) &&
         "cross-shard kill from a parallel window");
  f->killed_ = true;
  if (f->state_ == FiberState::kBlocked) wake(f, WakeReason::kKilled);
  // Runnable-but-not-yet-started fibers simply never start (spawn's start
  // event checks killed_); running fibers throw at their next block.
}

bool Engine::idle() const {
  for (const auto& s : shards_) {
    if (!s->timers.empty() || !s->ready.empty()) return false;
  }
  return true;
}

uint64_t Engine::events_executed() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->events;
  return total;
}

uint64_t Engine::shard_events(unsigned shard) const {
  return shard < shards_.size() ? shards_[shard]->events : 0;
}

void Engine::note_event_dispatched(Shard& s, size_t remaining) {
  ++s.events;
  if (obs_events_ != nullptr) {
    obs_events_->add(1);
    // The run-queue depth histogram is only populated sequentially: per-
    // shard depths depend on the partition, and recording them would make
    // the metrics export shard-count-dependent.
    if (shard_count_ == 1) obs_runq_->record(remaining);
  }
}

bool Engine::next_key(const Shard& s, NextKey& out) const {
  bool have = false;
  if (!s.timers.empty()) {
    const TimerEntry& t = s.timers.top();
    out = NextKey{t.at, t.node, t.seq};
    have = true;
  }
  if (!s.ready.empty()) {
    const ReadyEntry& r = s.ready.front();
    if (!have || event_key_before(r.at, r.node, r.seq, out.at, out.node, out.seq)) {
      out = NextKey{r.at, r.node, r.seq};
    }
    have = true;
  }
  return have;
}

bool Engine::dispatch_one(Shard& s, Time deadline) {
  // Pick the smallest (time, node, seq) across the ready ring and the timer
  // heap. Ready entries carry keys from the same per-node counters timers
  // draw from, so this interleaving is exactly the global total order.
  bool take_ready;
  if (s.ready.empty()) {
    if (s.timers.empty()) return false;
    take_ready = false;
  } else if (s.timers.empty()) {
    take_ready = true;
  } else {
    const ReadyEntry& r = s.ready.front();
    const TimerEntry& t = s.timers.top();
    take_ready = event_key_before(r.at, r.node, r.seq, t.at, t.node, t.seq);
  }

  if (take_ready) {
    if (s.ready.front().at > deadline) return false;
    ReadyEntry e = s.ready.pop();
    assert(e.at >= s.now);
    s.now = e.at;
    // The stamp is only ever read through the hub (Tracer::push), so an
    // unobserved engine skips the TLS write — it is measurable per event.
    if (obs_ != nullptr) obs::trace_order() = obs::TraceOrder{e.at, e.node, e.seq, 0};
    note_event_dispatched(s, s.timers.size() + s.ready.size());
    Fiber* f = e.fiber.get();
    // Same guards the old wake event applied: the epoch and state checks
    // make stale or duplicate wakes harmless (the fiber may already have
    // resumed and re-blocked).
    if (f->state_ == FiberState::kRunnable && f->wait_epoch_ == e.epoch && !f->finished()) {
      tls_.node = f->node_;
      resume(s, f);
      tls_.node = kControlNode;
    }
  } else {
    if (s.timers.top().at > deadline) return false;
    TimerEntry t = s.timers.pop();
    assert(t.at >= s.now);
    s.now = t.at;
    if (obs_ != nullptr) obs::trace_order() = obs::TraceOrder{t.at, t.node, t.seq, 0};
    note_event_dispatched(s, s.timers.size() + s.ready.size());
    tls_.node = t.event->exec_node;
    t.event->fn();
    tls_.node = kControlNode;
    s.pool.release(t.event);
  }

  // Periodically drop finished fibers so long simulations don't grow. Both
  // run() and run_for() dispatch through here.
  if ((s.events & 0x3ff) == 0) {
    std::erase_if(s.fibers, [](const FiberPtr& f) { return f->finished() && f.use_count() == 1; });
  }
  return true;
}

void Engine::run() {
  assert(current() == nullptr && "Engine::run called from inside a fiber");
  run_until(kForever, /*bounded=*/false);
}

void Engine::run_for(Duration d) {
  assert(current() == nullptr && "Engine::run_for called from inside a fiber");
  run_until(global_now_ + d, /*bounded=*/true);
}

void Engine::run_until(Time deadline, bool bounded) {
  if (shard_count_ <= 1) {
    Shard& s = *shards_[0];
    const ExecCtx saved = tls_;
    tls_ = ExecCtx{this, &s, kControlNode};
#if STARFISH_TSAN_FIBER_API
    s.tsan_main = __tsan_get_current_fiber();
#endif
    while (dispatch_one(s, deadline)) {
    }
    if (bounded) s.now = deadline;
    global_now_ = bounded ? deadline : s.now;
    tls_ = saved;
  } else {
    run_parallel(deadline, bounded);
  }
  publish_shard_metrics();
  // Re-stamp the calling thread's trace order deterministically: records
  // emitted between runs sort after every event up to now (node UINT32_MAX
  // outranks all real nodes), identically for any shard count.
  obs::trace_order() = obs::TraceOrder{global_now_, UINT32_MAX, 0, 0};
}

void Engine::run_parallel(Time deadline, bool bounded) {
  ensure_threads();
  Shard& control = *shards_[0];
  const ExecCtx saved = tls_;
  tls_ = ExecCtx{this, &control, kControlNode};
#if STARFISH_TSAN_FIBER_API
  control.tsan_main = __tsan_get_current_fiber();
#endif
  const Duration la = lookahead();
  for (;;) {
    // Serial phase: every control event whose key precedes all worker
    // events runs stop-the-world — it may touch any shard (host crashes,
    // cross-host spawns, cluster mutations).
    NextKey ck{}, wk{};
    bool chave = false;
    bool whave = false;
    for (;;) {
      chave = next_key(control, ck);
      whave = false;
      for (size_t i = 1; i < shards_.size(); ++i) {
        NextKey k;
        if (next_key(*shards_[i], k)) {
          if (!whave || event_key_before(k.at, k.node, k.seq, wk.at, wk.node, wk.seq)) wk = k;
          whave = true;
        }
      }
      if (chave && ck.at <= deadline &&
          (!whave || event_key_before(ck.at, ck.node, ck.seq, wk.at, wk.node, wk.seq))) {
        dispatch_one(control, deadline);
        continue;
      }
      break;
    }
    if (!whave || (bounded && wk.at > deadline)) break;

    // Conservative window: everything strictly below w is safe to run in
    // parallel (cross-shard effects land at >= wk.at + lookahead). The next
    // control event and the run_for deadline also bound the window.
    Time w = wk.at > kForever - la ? kForever : wk.at + la;
    if (chave && ck.at < w) w = ck.at;
    if (bounded && deadline != kForever && deadline + 1 < w) w = deadline + 1;
    assert(w > wk.at);

    {
      std::unique_lock<std::mutex> lk(wmu_);
      window_ = w;
      window_end_ = w;
      parallel_active_ = true;
      pending_ = shard_count_;
      ++go_gen_;
      cv_go_.notify_all();
      cv_done_.wait(lk, [&] { return pending_ == 0; });
      parallel_active_ = false;
    }
    merge_outboxes();
    ++epochs_;
  }

  if (bounded) {
    for (auto& s : shards_) s->now = deadline;
    global_now_ = deadline;
  } else {
    Time latest = global_now_;
    for (auto& s : shards_) latest = std::max(latest, s->now);
    global_now_ = latest;
  }
  tls_ = saved;
}

void Engine::run_shard_window(Shard& s, Time limit) {
  const ExecCtx saved = tls_;
  tls_ = ExecCtx{this, &s, kControlNode};
  while (dispatch_one(s, limit - 1)) {
  }
  tls_ = saved;
}

void Engine::worker_main(unsigned shard_idx) {
  Shard& s = *shards_[shard_idx];
#if STARFISH_TSAN_FIBER_API
  s.tsan_main = __tsan_get_current_fiber();
#endif
  std::unique_lock<std::mutex> lk(wmu_);
  uint64_t seen = 0;
  auto idle_since = std::chrono::steady_clock::now();
  for (;;) {
    cv_go_.wait(lk, [&] { return stopping_ || go_gen_ != seen; });
    if (stopping_) return;
    seen = go_gen_;
    const Time limit = window_;
    lk.unlock();
    const auto woke = std::chrono::steady_clock::now();
    s.barrier_wait_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(woke - idle_since).count());
    run_shard_window(s, limit);
    idle_since = std::chrono::steady_clock::now();
    lk.lock();
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void Engine::ensure_threads() {
  if (!threads_.empty() || shard_count_ <= 1) return;
  threads_.reserve(shard_count_);
  for (unsigned i = 1; i <= shard_count_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

void Engine::stop_threads() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(wmu_);
    stopping_ = true;
  }
  cv_go_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  stopping_ = false;
}

void Engine::merge_outboxes() {
  // Any merge order works: keys are globally unique, so the destination
  // heap induces the same total order no matter the insertion sequence.
  for (auto& src : shards_) {
    for (size_t d = 0; d < src->outbox.size(); ++d) {
      auto& box = src->outbox[d];
      if (box.empty()) continue;
      Shard& dst = *shards_[d];
      for (ExchangeMsg& m : box) {
        EventNode* n = dst.pool.acquire();
        n->fn = std::move(m.fn);
        n->exec_node = m.exec_node;
        dst.timers.push(TimerEntry{m.at, m.origin, m.seq, n});
      }
      box.clear();
    }
  }
}

void Engine::publish_shard_metrics() {
  if (obs_ == nullptr || shard_count_ <= 1) return;
  auto& m = obs_->metrics;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    const std::string prefix = "sim.shard." + std::to_string(i);
    if (s.events != s.events_published) {
      m.counter(prefix + ".events").add(s.events - s.events_published);
      s.events_published = s.events;
    }
    if (s.cross_msgs != s.cross_published) {
      m.counter(prefix + ".cross_msgs").add(s.cross_msgs - s.cross_published);
      s.cross_published = s.cross_msgs;
    }
    if (s.barrier_wait_ns != s.wait_published) {
      m.counter(prefix + ".barrier_wait_ns").add(s.barrier_wait_ns - s.wait_published);
      s.wait_published = s.barrier_wait_ns;
    }
  }
  if (epochs_ != epochs_published_) {
    m.counter("sim.shard.epochs").add(epochs_ - epochs_published_);
    epochs_published_ = epochs_;
  }
}

void Engine::resume(Shard& s, Fiber* fiber) {
  assert(s.current == nullptr && "nested fiber resume");
  assert(!fiber->finished());
  assert(fiber->home_ == &s);
  s.current = fiber;
  fiber->state_ = FiberState::kRunning;
  if (obs_switches_ != nullptr) obs_switches_->add(1);
#if STARFISH_FAST_CONTEXT
  starfish_ctx_swap(&s.main_sp, fiber->ctx_sp_);
#else
#if STARFISH_TSAN_FIBER_API
  __tsan_switch_to_fiber(fiber->tsan_fiber_, 0);
#endif
  swapcontext(&s.main_context, &fiber->context_);
#endif
  s.current = nullptr;
  // A finished fiber's context never runs again: recycle the stack now,
  // not when the last FiberPtr dies, so spawn churn reuses stacks
  // immediately.
  if (fiber->finished()) fiber->release_stack();
}

void Engine::fiber_exited() {
  // Called on the fiber's stack just before trampoline return; nothing to do
  // beyond state bookkeeping (already set). Control flows to uc_link.
}

WakeReason Engine::block() {
  const ExecCtx c = tls_;
  assert(c.engine == this && c.shard != nullptr && "block() outside the engine");
  Shard& s = *c.shard;
  Fiber* f = s.current;
  assert(f != nullptr && "block() outside a fiber");
  if (f->killed_) throw FiberKilled{};
  f->state_ = FiberState::kBlocked;
  ++f->wait_epoch_;
#if STARFISH_FAST_CONTEXT
  starfish_ctx_swap(&f->ctx_sp_, s.main_sp);
#else
#if STARFISH_TSAN_FIBER_API
  __tsan_switch_to_fiber(s.tsan_main, 0);
#endif
  swapcontext(&f->context_, &s.main_context);
#endif
  // Resumed.
  if (f->wake_reason_ == WakeReason::kKilled || f->killed_) throw FiberKilled{};
  return f->wake_reason_;
}

WakeReason Engine::block_until(Time deadline) {
  const ExecCtx c = tls_;
  assert(c.engine == this && c.shard != nullptr && "block_until() outside the engine");
  Fiber* f = c.shard->current;
  assert(f != nullptr && "block_until() outside a fiber");
  if (f->killed_) throw FiberKilled{};
  const uint64_t epoch = f->wait_epoch_ + 1;  // epoch this block will have
  const Time now = c.shard->now;
  // Capture a shared_ptr: the timer may outlive the fiber if it is woken
  // early by a signal and then finishes. The capture set (this + keep +
  // epoch) fits SmallFn's inline buffer, so no allocation.
  schedule(deadline - now < 0 ? 0 : deadline - now,
           [this, keep = f->shared_from_this(), epoch] {
             if (keep->state_ == FiberState::kBlocked && keep->wait_epoch_ == epoch) {
               wake(keep.get(), WakeReason::kTimer);
             }
           });
  return block();
}

void Engine::sleep_until(Time t) {
  (void)block_until(t);
}

void Engine::wake(Fiber* fiber, WakeReason reason) {
  if (fiber == nullptr || fiber->state_ != FiberState::kBlocked) return;
  Shard* home = fiber->home_;
  assert((!parallel_active_ || tls_.shard == home) &&
         "cross-shard wake from a parallel window");
  const ExecCtx& c = tls_;
  const bool own = c.engine == this;
  const NodeId origin = own ? c.node : kControlNode;
  const Time at = own ? c.shard->now : global_now_;
  fiber->state_ = FiberState::kRunnable;
  fiber->wake_reason_ = reason;
  // O(1) amortized ready-ring enqueue: no heap round-trip, no callback
  // allocation on the dominant block/wake/resume cycle. The (node, seq) key
  // keeps the global order.
  home->ready.push(ReadyEntry{at, origin, nodes_[origin].next_seq++, fiber->shared_from_this(),
                              fiber->wait_epoch_});
}

}  // namespace starfish::sim
