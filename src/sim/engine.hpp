// Deterministic discrete-event engine.
//
// Single-threaded: events execute on the main context in (time, sequence)
// order, so two runs with the same seed are identical. Fibers are resumed by
// events; blocking primitives park the current fiber and schedule/await a
// wake event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace starfish::sim {

class Engine {
 public:
  /// The seed feeds the engine-owned RNG that randomized simulation
  /// components (fault injection, chaos schedules) draw from. Two engines
  /// with the same seed and the same event sequence replay bit-for-bit.
  explicit Engine(uint64_t seed = 0) : seed_(seed), rng_(seed) { set_obs(obs::default_hub()); }
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }
  uint64_t seed() const { return seed_; }
  /// The engine's deterministic RNG. Draw order is deterministic because
  /// events execute in (time, sequence) order on a single thread.
  util::Rng& rng() { return rng_; }

  /// Observability hub recording this engine's metrics and trace events
  /// (nullptr = observability off, the default unless a process-default hub
  /// is installed). Attaching a hub never perturbs the simulation.
  obs::Hub* obs() const { return obs_; }
  void set_obs(obs::Hub* hub) {
    obs_ = hub;
    obs_events_ = hub ? &hub->metrics.counter("sim.events_executed") : nullptr;
    obs_switches_ = hub ? &hub->metrics.counter("sim.fiber_switches") : nullptr;
    obs_runq_ = hub ? &hub->metrics.histogram("sim.run_queue_depth",
                                              obs::HistogramSpec::exponential(1, 2.0, 20))
                    : nullptr;
  }
  /// The tracer when attached and enabled, else nullptr — the one-branch
  /// guard every trace call site uses.
  obs::Tracer* tracer() const {
    return obs_ != nullptr && obs_->tracer.enabled() ? &obs_->tracer : nullptr;
  }

  /// Schedules a plain callback at now() + delay. Callbacks run on the main
  /// context and must not block.
  void schedule(Duration delay, std::function<void()> fn);

  /// Creates a fiber and schedules it to start at now() + delay.
  FiberPtr spawn(std::string name, std::function<void()> body, Duration delay = 0);

  /// Kills a fiber: a blocked fiber is woken with WakeReason::kKilled (its
  /// blocking primitive throws FiberKilled); a runnable/running fiber throws
  /// at its next blocking point. Idempotent.
  void kill(const FiberPtr& fiber);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= now()+d, then sets now() = start+d.
  void run_for(Duration d);
  /// True if no events remain.
  bool idle() const { return queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

  // --- Fiber-side API (call only from inside a fiber) ---

  /// The currently running fiber, or nullptr when on the main context.
  Fiber* current() const { return current_; }

  /// Suspends the current fiber until t (virtual time). Throws FiberKilled
  /// if killed while sleeping.
  void sleep_until(Time t);
  void sleep(Duration d) { sleep_until(now_ + d); }
  /// Charges CPU time to the current fiber; identical to sleep but named for
  /// intent at call sites that model computation.
  void advance(Duration d) { sleep(d); }
  /// Cooperative yield: requeue at the current time (after already-queued
  /// same-time events).
  void yield() { sleep(0); }

  /// Parks the current fiber indefinitely; resumed by wake(). Returns the
  /// wake reason (kKilled is turned into a FiberKilled throw before return).
  WakeReason block();
  /// Parks with a deadline; returns kTimer if the deadline fired first.
  WakeReason block_until(Time deadline);

  /// Wakes a blocked fiber (no-op if not blocked or already woken).
  void wake(Fiber* fiber, WakeReason reason = WakeReason::kSignal);

 private:
  friend class Fiber;

  struct Event {
    Time at;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void resume(Fiber* fiber);
  void fiber_exited();

  Time now_ = 0;
  uint64_t seed_ = 0;
  util::Rng rng_;
  obs::Hub* obs_ = nullptr;
  obs::Counter* obs_events_ = nullptr;
  obs::Counter* obs_switches_ = nullptr;
  obs::Histogram* obs_runq_ = nullptr;
  uint64_t next_seq_ = 0;
  uint64_t next_fiber_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;

  Fiber* current_ = nullptr;
  ucontext_t main_context_{};
  /// Keeps fibers alive; swept opportunistically when finished.
  std::vector<FiberPtr> fibers_;
};

}  // namespace starfish::sim
