// Deterministic discrete-event engine, sharded across host threads.
//
// Events execute in a single global total order keyed by
// (time, origin node, per-node sequence): each scheduling *node* (node 0 =
// control plane, one node per simulated host) stamps the events it creates
// from its own counter. Because every node's execution history is
// deterministic, the counters advance identically no matter how the nodes
// are placed on threads — which is what makes the sharded engine replay the
// sequential engine bit-for-bit (DESIGN.md section 13).
//
// Sequential mode (shards() == 1, the default) is the PR4/PR5 hot path:
// slab-pooled events with inline callback storage (SmallFn) ordered by a
// 4-ary min-heap of trivially-copyable (time, node, seq) entries, same-
// timestamp wakeups through an order-preserving ready ring, recycled
// guard-paged fiber stacks. The engine_golden_test goldens pin that the
// dispatch order equals the old single priority queue's.
//
// Parallel mode (set_shards(N), N > 1) partitions hosts round-robin across
// N shards, each owning all of the above machinery privately, and runs
// conservative time windows: every shard may dispatch freely below
//   window_end = min(next event time over all shards) + lookahead
// because no cross-shard interaction can arrive below that bound (lookahead
// is the minimum cross-host network latency, reported by the net layer).
// Cross-shard schedules are buffered in per-(src,dst) exchange queues and
// merged into the destination heap at the epoch barrier; control-node events
// run serially between windows (stop-the-world), so host crashes and other
// global mutations never race a window.
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "sim/fiber.hpp"
#include "sim/small_fn.hpp"
#include "sim/stack_pool.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace starfish::sim {

/// Pooled timer event: callback storage that never moves once scheduled.
/// Nodes are recycled through an intrusive free list; slabs are only ever
/// appended, so node pointers stay stable across scheduling from inside
/// event callbacks.
struct EventNode {
  SmallFn fn;
  NodeId exec_node = kControlNode;  ///< node context the callback runs under
  EventNode* next_free = nullptr;
};

class EventPool {
 public:
  EventNode* acquire() {
    if (free_ == nullptr) grow();
    EventNode* n = free_;
    free_ = n->next_free;
    n->next_free = nullptr;
    return n;
  }
  /// Destroys the callable and returns the node to the free list.
  void release(EventNode* n) {
    n->fn.reset();
    n->next_free = free_;
    free_ = n;
  }

 private:
  static constexpr size_t kSlabNodes = 256;
  void grow();
  std::vector<std::unique_ptr<EventNode[]>> slabs_;
  EventNode* free_ = nullptr;
};

/// What the heap actually sifts: 32 trivially-copyable bytes per event.
struct TimerEntry {
  Time at;
  NodeId node;   ///< origin node (allocated the seq)
  uint64_t seq;  ///< per-origin-node sequence number
  EventNode* event;
};

/// The global total order every queue agrees on.
inline bool event_key_before(Time a_at, NodeId a_node, uint64_t a_seq, Time b_at,
                             NodeId b_node, uint64_t b_seq) {
  if (a_at != b_at) return a_at < b_at;
  if (a_node != b_node) return a_node < b_node;
  return a_seq < b_seq;
}

/// 4-ary min-heap on (at, node, seq): shallower than binary for the same
/// size, pops move entries instead of copying callables.
class TimerHeap {
 public:
  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  const TimerEntry& top() const { return v_[0]; }
  void push(TimerEntry e) {
    size_t i = v_.size();
    v_.push_back(e);  // placeholder; the hole walks up
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!before(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }
  TimerEntry pop();

 private:
  static constexpr size_t kArity = 4;
  static bool before(const TimerEntry& a, const TimerEntry& b) {
    return event_key_before(a.at, a.node, a.seq, b.at, b.node, b.seq);
  }
  std::vector<TimerEntry> v_;
};

/// A woken fiber waiting its turn; carries the keep-alive the old wake
/// lambda captured and the epoch that makes stale wakes harmless.
struct ReadyEntry {
  Time at = 0;
  NodeId node = kControlNode;  ///< origin node of the wake
  uint64_t seq = 0;
  FiberPtr fiber;
  uint64_t epoch = 0;
};

/// Power-of-two ring buffer; push/pop never allocate at steady state.
/// Pushes insert in (at, node, seq) order from the back: wakes from one
/// node arrive already ordered (zero shifts, the dominant case), and the
/// rare same-time wake from a lower node shifts a handful of entries —
/// keeping the front the global minimum, which the multi-node total order
/// requires (a FIFO ring is only sorted when all wakes share one counter).
class ReadyQueue {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  const ReadyEntry& front() const { return buf_[head_]; }
  void push(ReadyEntry e) {
    if (count_ == buf_.size()) grow();
    size_t pos = count_;
    while (pos > 0) {
      ReadyEntry& prev = buf_[(head_ + pos - 1) & mask_];
      if (!event_key_before(e.at, e.node, e.seq, prev.at, prev.node, prev.seq)) break;
      buf_[(head_ + pos) & mask_] = std::move(prev);
      --pos;
    }
    buf_[(head_ + pos) & mask_] = std::move(e);
    ++count_;
  }
  ReadyEntry pop() {
    ReadyEntry e = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    return e;
  }

 private:
  void grow();
  std::vector<ReadyEntry> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = 0;
};

/// A cross-shard schedule buffered until the epoch barrier.
struct ExchangeMsg {
  Time at;
  NodeId origin;
  uint64_t seq;
  NodeId exec_node;
  SmallFn fn;
};

/// One event-loop partition: the complete PR4 machinery, privately owned.
/// Everything here is touched only by the shard's thread during a window,
/// or by the coordinator between windows (barrier-synchronized). Internal
/// to the engine; public members because Engine and Fiber share it.
struct Shard {
  Time now = 0;
  TimerHeap timers;
  ReadyQueue ready;
  EventPool pool;
  /// Shared with every fiber homed here (FiberPtrs can outlive the engine).
  std::shared_ptr<StackPool> stack_pool = std::make_shared<StackPool>();
  Fiber* current = nullptr;
#if STARFISH_FAST_CONTEXT
  /// Main context's saved stack pointer while a fiber runs.
  void* main_sp = nullptr;
#else
  ucontext_t main_context{};
#endif
#if STARFISH_TSAN_FIBER_API
  void* tsan_main = nullptr;  ///< TSan shadow context of the shard thread
#endif
  uint64_t events = 0;  ///< events dispatched on this shard, ever
  /// Keeps fibers alive; swept opportunistically when finished.
  std::vector<FiberPtr> fibers;
  /// outbox[d]: cross-shard schedules destined for shard d this window.
  std::vector<std::vector<ExchangeMsg>> outbox;
  uint64_t cross_msgs = 0;       ///< cross-shard messages sent, ever
  uint64_t barrier_wait_ns = 0;  ///< wall ns spent idle at barriers (S > 1)
  // Published-so-far marks so metrics counters receive deltas per run.
  uint64_t events_published = 0;
  uint64_t cross_published = 0;
  uint64_t wait_published = 0;

  Shard() = default;
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;
};

class Engine {
 public:
  /// The seed feeds the engine-owned RNG that randomized simulation
  /// components draw from, and derives the per-host fault streams in the
  /// net layer. Two engines with the same seed replay bit-for-bit — at any
  /// shard count.
  explicit Engine(uint64_t seed = 0);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Shard-aware clock: inside an event or fiber this is the executing
  /// shard's clock (exact for everything the caller can observe); outside
  /// run() it is the global clock. Daemon/GCS code calls this freely.
  Time now() const {
    const ExecCtx& c = tls_;
    return c.engine == this ? c.shard->now : global_now_;
  }
  uint64_t seed() const { return seed_; }
  /// The engine's deterministic RNG. Serial contexts only (the control
  /// node and code outside run()); shard-parallel code must use its own
  /// per-node stream (the fault injector does).
  util::Rng& rng() {
    assert(!parallel_active_ && "Engine::rng() from a parallel window");
    return rng_;
  }

  // --- Sharding ---

  /// Partitions hosts across `n` worker threads (1 = sequential, the
  /// default). Call before registering nodes or scheduling anything.
  void set_shards(unsigned n);
  unsigned shards() const { return shard_count_; }

  /// Mints a new node (shard placement is fixed immediately). Hosts call
  /// this at construction; everything else runs on the control node.
  NodeId register_node();
  size_t node_count() const { return nodes_.size(); }

  /// The conservative window slack: cross-shard events must be scheduled at
  /// least this far in the future. The net layer reports its minimum
  /// cross-host latency via note_min_latency(); set_lookahead() overrides.
  Duration lookahead() const { return lookahead_ == 0 ? 1 : lookahead_; }
  void set_lookahead(Duration d) {
    assert(d >= 1);
    lookahead_ = d;
  }
  /// Lower the lookahead to `d` if it is currently larger (or unset).
  void note_min_latency(Duration d) {
    if (d < 1) d = 1;
    if (lookahead_ == 0 || d < lookahead_) lookahead_ = d;
  }

  /// Observability hub recording this engine's metrics and trace events
  /// (nullptr = observability off, the default unless a process-default hub
  /// is installed). Attaching a hub never perturbs the simulation.
  obs::Hub* obs() const { return obs_; }
  void set_obs(obs::Hub* hub);
  /// The tracer when attached and enabled, else nullptr — the one-branch
  /// guard every trace call site uses.
  obs::Tracer* tracer() const {
    return obs_ != nullptr && obs_->tracer.enabled() ? &obs_->tracer : nullptr;
  }

  /// Schedules a callback at now() + delay on the calling context's node.
  /// Callbacks run on the main context and must not block. Captures up to
  /// SmallFn::kInlineBytes are constructed directly inside the pooled event
  /// record — no allocation, no callable move.
  template <typename F>
  void schedule(Duration delay, F&& fn) {
    const ExecCtx& c = tls_;
    schedule_on(c.engine == this ? c.node : kControlNode, delay, std::forward<F>(fn));
  }

  /// Schedules a callback to execute under `exec_node`'s context (on its
  /// shard). From inside a parallel window, a cross-shard target requires
  /// delay >= lookahead() — the conservative-synchronization contract; the
  /// net layer's minimum latency guarantees it for all message traffic.
  template <typename F>
  void schedule_on(NodeId exec_node, Duration delay, F&& fn) {
    assert(delay >= 0);
    assert(exec_node < nodes_.size());
    const ExecCtx& c = tls_;
    const bool own = c.engine == this;
    const NodeId origin = own ? c.node : kControlNode;
    const Time at = (own ? c.shard->now : global_now_) + delay;
    const uint64_t seq = nodes_[origin].next_seq++;
    const uint32_t dst_idx = nodes_[exec_node].shard;
    Shard* dst = shards_[dst_idx].get();
    if (parallel_active_ && own && dst != c.shard) {
      assert(at >= window_end_ && "cross-shard schedule below the lookahead bound");
      c.shard->outbox[dst_idx].push_back(
          ExchangeMsg{at, origin, seq, exec_node, SmallFn(std::forward<F>(fn))});
      ++c.shard->cross_msgs;
      return;
    }
    EventNode* n = dst->pool.acquire();
    n->fn.emplace(std::forward<F>(fn));
    n->exec_node = exec_node;
    if (obs_fn_heap_ != nullptr && n->fn.heap_allocated()) obs_fn_heap_->add(1);
    dst->timers.push(TimerEntry{at, origin, seq, n});
  }

  /// Creates a fiber on the calling context's node and schedules it to
  /// start at now() + delay.
  FiberPtr spawn(std::string name, std::function<void()> body, Duration delay = 0);
  /// Creates a fiber homed on `node` (Host::spawn uses this). Cross-shard
  /// spawns are serial-phase only.
  FiberPtr spawn_on(NodeId node, std::string name, std::function<void()> body,
                    Duration delay = 0);

  /// Kills a fiber: a blocked fiber is woken with WakeReason::kKilled (its
  /// blocking primitive throws FiberKilled); a runnable/running fiber throws
  /// at its next blocking point. Idempotent. Cross-shard kills are
  /// serial-phase only (host crashes run on the control node).
  void kill(const FiberPtr& fiber);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= now()+d, then sets now() = start+d.
  void run_for(Duration d);
  /// True if no events remain.
  bool idle() const;
  uint64_t events_executed() const;
  /// Events dispatched by one shard. Sequential mode has a single shard
  /// (index 0); parallel mode has shards()+1 — index 0 is the control
  /// plane's, 1..shards() are the host workers. Out-of-range reads 0.
  uint64_t shard_events(unsigned shard) const;
  /// Parallel epochs (windows) executed; 0 in sequential mode.
  uint64_t epochs() const { return epochs_; }
  /// True while inside a parallel window (shared-state mutators assert
  /// against this; serial phases and sequential mode return false).
  bool in_parallel() const { return parallel_active_; }

  /// The stack pool of shard 0 (sequential mode's only pool; stats for
  /// tests and reporting).
  const StackPool& stack_pool() const { return *shards_[0]->stack_pool; }

  // --- Fiber-side API (call only from inside a fiber) ---

  /// The currently running fiber, or nullptr when on the main context.
  Fiber* current() const {
    const ExecCtx& c = tls_;
    return c.engine == this ? c.shard->current : nullptr;
  }

  /// Suspends the current fiber until t (virtual time). Throws FiberKilled
  /// if killed while sleeping.
  void sleep_until(Time t);
  void sleep(Duration d) { sleep_until(now() + d); }
  /// Charges CPU time to the current fiber; identical to sleep but named for
  /// intent at call sites that model computation.
  void advance(Duration d) { sleep(d); }
  /// Cooperative yield: requeue at the current time (after already-queued
  /// same-time events).
  void yield() { sleep(0); }

  /// Parks the current fiber indefinitely; resumed by wake(). Returns the
  /// wake reason (kKilled is turned into a FiberKilled throw before return).
  WakeReason block();
  /// Parks with a deadline; returns kTimer if the deadline fired first.
  WakeReason block_until(Time deadline);

  /// Wakes a blocked fiber (no-op if not blocked or already woken). The
  /// resume is queued on the fiber's home ready ring — O(1) amortized, no
  /// heap traffic — and dispatched in global (time, node, seq) order.
  /// Cross-shard wakes are serial-phase only.
  void wake(Fiber* fiber, WakeReason reason = WakeReason::kSignal);

 private:
  friend class Fiber;

  /// Where execution currently stands on this thread: which engine, which
  /// shard's event loop, and which node's context the running event holds.
  struct ExecCtx {
    Engine* engine;
    Shard* shard;
    NodeId node;
  };
  // Value-initialized (all null): no NSDMIs, which an in-class inline
  // thread_local of the enclosing class's nested type cannot use.
  inline static thread_local ExecCtx tls_{};

  /// Per-node determinism state. Padded: shards bump different nodes'
  /// counters concurrently.
  struct alignas(64) NodeState {
    uint64_t next_seq = 0;
    uint64_t next_fiber = 1;
    uint32_t shard = 0;  ///< index into shards_
  };

  struct NextKey {
    Time at;
    NodeId node;
    uint64_t seq;
  };

  /// Smallest pending key on a shard (heap top vs ready front).
  bool next_key(const Shard& s, NextKey& out) const;

  /// Dispatches the next event on `s` in (time, node, seq) order across the
  /// ready ring and the timer heap; returns false when none remains at
  /// <= deadline (inclusive).
  bool dispatch_one(Shard& s, Time deadline);
  void note_event_dispatched(Shard& s, size_t remaining);

  void run_until(Time deadline, bool bounded);
  void run_parallel(Time deadline, bool bounded);
  /// Worker body: dispatch everything strictly below `limit`.
  void run_shard_window(Shard& s, Time limit);
  void worker_main(unsigned shard_idx);
  void ensure_threads();
  void stop_threads();
  void merge_outboxes();
  void publish_shard_metrics();

  void resume(Shard& s, Fiber* fiber);
  void fiber_exited();

  Time global_now_ = 0;
  uint64_t seed_ = 0;
  util::Rng rng_;
  obs::Hub* obs_ = nullptr;
  obs::Counter* obs_events_ = nullptr;
  obs::Counter* obs_switches_ = nullptr;
  obs::Histogram* obs_runq_ = nullptr;
  obs::Counter* obs_fn_heap_ = nullptr;
  obs::Counter* obs_stack_hits_ = nullptr;
  obs::Counter* obs_stack_misses_ = nullptr;

  std::vector<NodeState> nodes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned shard_count_ = 1;  ///< worker shards (1 = sequential)
  Duration lookahead_ = 0;    ///< 0 = unset (treated as 1)
  bool parallel_active_ = false;
  Time window_end_ = 0;  ///< exclusive bound of the active window
  uint64_t epochs_ = 0;
  uint64_t epochs_published_ = 0;

  // Worker thread pool (created at first parallel run).
  std::vector<std::thread> threads_;
  std::mutex wmu_;
  std::condition_variable cv_go_;
  std::condition_variable cv_done_;
  uint64_t go_gen_ = 0;
  unsigned pending_ = 0;
  bool stopping_ = false;
  Time window_ = 0;  ///< exclusive limit handed to workers
};

}  // namespace starfish::sim
