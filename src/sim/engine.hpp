// Deterministic discrete-event engine.
//
// Single-threaded: events execute on the main context in (time, sequence)
// order, so two runs with the same seed are identical. Fibers are resumed by
// events; blocking primitives park the current fiber and schedule/await a
// wake event.
//
// Hot-path layout (see DESIGN.md section 11): timer events live in
// slab-pooled records with inline callback storage (SmallFn) ordered by a
// 4-ary min-heap of trivially-copyable (time, seq, node) entries; same-
// timestamp wakeups bypass the heap entirely through a FIFO ready ring.
// Dispatch interleaves the two by (time, seq), which is exactly the order
// the old single priority queue produced — the engine_golden_test goldens
// pin that equivalence.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/fiber.hpp"
#include "sim/small_fn.hpp"
#include "sim/stack_pool.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace starfish::sim {

class Engine {
 public:
  /// The seed feeds the engine-owned RNG that randomized simulation
  /// components (fault injection, chaos schedules) draw from. Two engines
  /// with the same seed and the same event sequence replay bit-for-bit.
  explicit Engine(uint64_t seed = 0) : seed_(seed), rng_(seed) { set_obs(obs::default_hub()); }
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }
  uint64_t seed() const { return seed_; }
  /// The engine's deterministic RNG. Draw order is deterministic because
  /// events execute in (time, sequence) order on a single thread.
  util::Rng& rng() { return rng_; }

  /// Observability hub recording this engine's metrics and trace events
  /// (nullptr = observability off, the default unless a process-default hub
  /// is installed). Attaching a hub never perturbs the simulation.
  obs::Hub* obs() const { return obs_; }
  void set_obs(obs::Hub* hub) {
    obs_ = hub;
    obs_events_ = hub ? &hub->metrics.counter("sim.events_executed") : nullptr;
    obs_switches_ = hub ? &hub->metrics.counter("sim.fiber_switches") : nullptr;
    obs_runq_ = hub ? &hub->metrics.histogram("sim.run_queue_depth",
                                              obs::HistogramSpec::exponential(1, 2.0, 20))
                    : nullptr;
    obs_fn_heap_ = hub ? &hub->metrics.counter("sim.event_fn_heap") : nullptr;
    obs_stack_hits_ = hub ? &hub->metrics.counter("sim.stack_pool.hits") : nullptr;
    obs_stack_misses_ = hub ? &hub->metrics.counter("sim.stack_pool.misses") : nullptr;
  }
  /// The tracer when attached and enabled, else nullptr — the one-branch
  /// guard every trace call site uses.
  obs::Tracer* tracer() const {
    return obs_ != nullptr && obs_->tracer.enabled() ? &obs_->tracer : nullptr;
  }

  /// Schedules a callback at now() + delay. Callbacks run on the main
  /// context and must not block. Captures up to SmallFn::kInlineBytes are
  /// constructed directly inside the pooled event record — no allocation,
  /// no callable move.
  template <typename F>
  void schedule(Duration delay, F&& fn) {
    assert(delay >= 0);
    EventNode* n = pool_.acquire();
    n->fn.emplace(std::forward<F>(fn));
    if (obs_fn_heap_ != nullptr && n->fn.heap_allocated()) obs_fn_heap_->add(1);
    timers_.push(TimerEntry{now_ + delay, next_seq_++, n});
  }

  /// Creates a fiber and schedules it to start at now() + delay.
  FiberPtr spawn(std::string name, std::function<void()> body, Duration delay = 0);

  /// Kills a fiber: a blocked fiber is woken with WakeReason::kKilled (its
  /// blocking primitive throws FiberKilled); a runnable/running fiber throws
  /// at its next blocking point. Idempotent.
  void kill(const FiberPtr& fiber);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= now()+d, then sets now() = start+d.
  void run_for(Duration d);
  /// True if no events remain.
  bool idle() const { return timers_.empty() && ready_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

  /// The shared fiber-stack recycling pool (stats for tests and reporting).
  const StackPool& stack_pool() const { return *stack_pool_; }

  // --- Fiber-side API (call only from inside a fiber) ---

  /// The currently running fiber, or nullptr when on the main context.
  Fiber* current() const { return current_; }

  /// Suspends the current fiber until t (virtual time). Throws FiberKilled
  /// if killed while sleeping.
  void sleep_until(Time t);
  void sleep(Duration d) { sleep_until(now_ + d); }
  /// Charges CPU time to the current fiber; identical to sleep but named for
  /// intent at call sites that model computation.
  void advance(Duration d) { sleep(d); }
  /// Cooperative yield: requeue at the current time (after already-queued
  /// same-time events).
  void yield() { sleep(0); }

  /// Parks the current fiber indefinitely; resumed by wake(). Returns the
  /// wake reason (kKilled is turned into a FiberKilled throw before return).
  WakeReason block();
  /// Parks with a deadline; returns kTimer if the deadline fired first.
  WakeReason block_until(Time deadline);

  /// Wakes a blocked fiber (no-op if not blocked or already woken). The
  /// resume is queued on the ready ring — O(1), no heap traffic, no
  /// allocation — and dispatched in global (time, seq) order.
  void wake(Fiber* fiber, WakeReason reason = WakeReason::kSignal);

 private:
  friend class Fiber;

  /// Pooled timer event: callback storage that never moves once scheduled.
  /// Nodes are recycled through an intrusive free list; slabs are only ever
  /// appended, so node pointers stay stable across scheduling from inside
  /// event callbacks.
  struct EventNode {
    SmallFn fn;
    EventNode* next_free = nullptr;
  };

  class EventPool {
   public:
    EventNode* acquire() {
      if (free_ == nullptr) grow();
      EventNode* n = free_;
      free_ = n->next_free;
      n->next_free = nullptr;
      return n;
    }
    /// Destroys the callable and returns the node to the free list.
    void release(EventNode* n) {
      n->fn.reset();
      n->next_free = free_;
      free_ = n;
    }

   private:
    static constexpr size_t kSlabNodes = 256;
    void grow();
    std::vector<std::unique_ptr<EventNode[]>> slabs_;
    EventNode* free_ = nullptr;
  };

  /// What the heap actually sifts: 24 trivially-copyable bytes per event.
  struct TimerEntry {
    Time at;
    uint64_t seq;
    EventNode* node;
  };

  /// 4-ary min-heap on (at, seq): shallower than binary for the same size,
  /// pops move entries instead of copying callables.
  class TimerHeap {
   public:
    bool empty() const { return v_.empty(); }
    size_t size() const { return v_.size(); }
    const TimerEntry& top() const { return v_[0]; }
    void push(TimerEntry e) {
      size_t i = v_.size();
      v_.push_back(e);  // placeholder; the hole walks up
      while (i > 0) {
        const size_t parent = (i - 1) / kArity;
        if (!before(e, v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      }
      v_[i] = e;
    }
    TimerEntry pop();

   private:
    static constexpr size_t kArity = 4;
    static bool before(const TimerEntry& a, const TimerEntry& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    }
    std::vector<TimerEntry> v_;
  };

  /// A woken fiber waiting its turn; carries the keep-alive the old wake
  /// lambda captured and the epoch that makes stale wakes harmless.
  struct ReadyEntry {
    Time at = 0;
    uint64_t seq = 0;
    FiberPtr fiber;
    uint64_t epoch = 0;
  };

  /// Power-of-two ring buffer; push/pop never allocate at steady state.
  class ReadyQueue {
   public:
    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    const ReadyEntry& front() const { return buf_[head_]; }
    void push(ReadyEntry e) {
      if (count_ == buf_.size()) grow();
      buf_[(head_ + count_) & mask_] = std::move(e);
      ++count_;
    }
    ReadyEntry pop() {
      ReadyEntry e = std::move(buf_[head_]);
      head_ = (head_ + 1) & mask_;
      --count_;
      return e;
    }

   private:
    void grow();
    std::vector<ReadyEntry> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
    size_t mask_ = 0;
  };

  /// Dispatches the next event in (time, seq) order across the ready ring
  /// and the timer heap; returns false when none remains at <= deadline.
  bool dispatch_one(Time deadline);
  void note_event_dispatched(size_t remaining);

  void resume(Fiber* fiber);
  void fiber_exited();

  Time now_ = 0;
  uint64_t seed_ = 0;
  util::Rng rng_;
  obs::Hub* obs_ = nullptr;
  obs::Counter* obs_events_ = nullptr;
  obs::Counter* obs_switches_ = nullptr;
  obs::Histogram* obs_runq_ = nullptr;
  obs::Counter* obs_fn_heap_ = nullptr;
  obs::Counter* obs_stack_hits_ = nullptr;
  obs::Counter* obs_stack_misses_ = nullptr;
  uint64_t next_seq_ = 0;
  uint64_t next_fiber_id_ = 1;
  uint64_t events_executed_ = 0;

  /// Shared with every Fiber: FiberPtrs held by user code may outlive the
  /// engine, and their stacks must still find their way back.
  std::shared_ptr<StackPool> stack_pool_ = std::make_shared<StackPool>();
  EventPool pool_;
  TimerHeap timers_;
  ReadyQueue ready_;

  Fiber* current_ = nullptr;
#if STARFISH_FAST_CONTEXT
  /// Main context's saved stack pointer while a fiber runs.
  void* main_sp_ = nullptr;
#else
  ucontext_t main_context_{};
#endif
  /// Keeps fibers alive; swept opportunistically when finished.
  std::vector<FiberPtr> fibers_;
};

}  // namespace starfish::sim
