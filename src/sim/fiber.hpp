// Cooperative fibers on POSIX ucontext with guarded mmap stacks.
//
// Each simulated entity — application process, daemon, polling thread,
// failure detector — is a fiber. Fibers block on simulation primitives
// (sleep, channel recv, condition wait); the engine resumes them at later
// virtual times. Killing a fiber (host crash) unwinds its stack by throwing
// FiberKilled from the next blocking point, so RAII cleanup still runs.
//
// Since the engine went multi-shard (DESIGN.md section 13) every fiber has
// a home *node* fixed at creation; the node determines the shard (and thus
// the OS thread) the fiber always runs on. Node 0 is the control plane and
// runs on the coordinator between windows.
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/context.hpp"
#include "sim/stack_pool.hpp"

namespace starfish::sim {

class Engine;
struct Shard;

/// Logical execution lane for determinism and shard placement. Node 0 (the
/// control node) belongs to the coordinator; Engine::register_node() mints
/// one per host. The event total order is (time, node, per-node seq).
using NodeId = uint32_t;
constexpr NodeId kControlNode = 0;

/// Thrown inside a fiber when it has been killed; caught by the trampoline.
/// User code should let it propagate (catch-all handlers must rethrow it).
struct FiberKilled {};

enum class FiberState : uint8_t { kCreated, kRunnable, kRunning, kBlocked, kFinished };

/// Why a blocked fiber was resumed.
enum class WakeReason : uint8_t { kTimer, kSignal, kKilled, kClosed };

class Fiber : public std::enable_shared_from_this<Fiber> {
 public:
  Fiber(Engine& engine, NodeId node, std::string name, std::function<void()> body);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  const std::string& name() const { return name_; }
  /// (node << 32) | per-node counter: unique and shard-count-independent.
  uint64_t id() const { return id_; }
  NodeId node() const { return node_; }
  FiberState state() const { return state_; }
  bool finished() const { return state_ == FiberState::kFinished; }
  bool killed() const { return killed_; }

 private:
  friend class Engine;
#if STARFISH_FAST_CONTEXT
  static void fast_entry(void* arg);
#else
  static void trampoline_entry(unsigned hi, unsigned lo);
#endif
  void run_body();
  /// Returns the stack to the pool; the engine calls this as soon as the
  /// fiber finishes (its context will never be resumed again), so churning
  /// workloads recycle stacks without waiting for the FiberPtr to die.
  void release_stack();

  Engine& engine_;
  std::string name_;
  uint64_t id_;
  NodeId node_;
  Shard* home_;  ///< owning shard, fixed at creation
  std::function<void()> body_;

  FiberState state_ = FiberState::kCreated;
  bool killed_ = false;
  WakeReason wake_reason_ = WakeReason::kSignal;
  /// Incremented on every block; stale wake events compare against it.
  uint64_t wait_epoch_ = 0;

#if STARFISH_FAST_CONTEXT
  /// Saved stack pointer while suspended (see sim/context.hpp).
  void* ctx_sp_ = nullptr;
#else
  ucontext_t context_{};
#endif
#if STARFISH_TSAN_FIBER_API
  void* tsan_fiber_ = nullptr;  ///< TSan's shadow context for this stack
#endif
  /// Owns the recycling pool jointly with the engine: a FiberPtr held by
  /// user code can outlive the engine, and ~Fiber must still release.
  std::shared_ptr<StackPool> pool_;
  void* stack_base_ = nullptr;  // mmap'd region including guard page
  size_t stack_total_ = 0;
};

using FiberPtr = std::shared_ptr<Fiber>;

}  // namespace starfish::sim
