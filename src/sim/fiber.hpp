// Cooperative fibers on POSIX ucontext with guarded mmap stacks.
//
// Each simulated entity — application process, daemon, polling thread,
// failure detector — is a fiber. Fibers block on simulation primitives
// (sleep, channel recv, condition wait); the engine resumes them at later
// virtual times. Killing a fiber (host crash) unwinds its stack by throwing
// FiberKilled from the next blocking point, so RAII cleanup still runs.
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/context.hpp"
#include "sim/stack_pool.hpp"

namespace starfish::sim {

class Engine;

/// Thrown inside a fiber when it has been killed; caught by the trampoline.
/// User code should let it propagate (catch-all handlers must rethrow it).
struct FiberKilled {};

enum class FiberState : uint8_t { kCreated, kRunnable, kRunning, kBlocked, kFinished };

/// Why a blocked fiber was resumed.
enum class WakeReason : uint8_t { kTimer, kSignal, kKilled, kClosed };

class Fiber : public std::enable_shared_from_this<Fiber> {
 public:
  Fiber(Engine& engine, std::string name, std::function<void()> body);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }
  FiberState state() const { return state_; }
  bool finished() const { return state_ == FiberState::kFinished; }
  bool killed() const { return killed_; }

 private:
  friend class Engine;
#if STARFISH_FAST_CONTEXT
  static void fast_entry(void* arg);
#else
  static void trampoline_entry(unsigned hi, unsigned lo);
#endif
  void run_body();
  /// Returns the stack to the pool; the engine calls this as soon as the
  /// fiber finishes (its context will never be resumed again), so churning
  /// workloads recycle stacks without waiting for the FiberPtr to die.
  void release_stack();

  Engine& engine_;
  std::string name_;
  uint64_t id_;
  std::function<void()> body_;

  FiberState state_ = FiberState::kCreated;
  bool killed_ = false;
  WakeReason wake_reason_ = WakeReason::kSignal;
  /// Incremented on every block; stale wake events compare against it.
  uint64_t wait_epoch_ = 0;

#if STARFISH_FAST_CONTEXT
  /// Saved stack pointer while suspended (see sim/context.hpp).
  void* ctx_sp_ = nullptr;
#else
  ucontext_t context_{};
#endif
  /// Owns the recycling pool jointly with the engine: a FiberPtr held by
  /// user code can outlive the engine, and ~Fiber must still release.
  std::shared_ptr<StackPool> pool_;
  void* stack_base_ = nullptr;  // mmap'd region including guard page
  size_t stack_total_ = 0;
};

using FiberPtr = std::shared_ptr<Fiber>;

}  // namespace starfish::sim
