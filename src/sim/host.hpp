// A simulated workstation: a named node with a machine type, a local disk,
// and the set of fibers running on it. Crashing a host kills all its fibers
// (stacks unwind via FiberKilled) and flips it dead so the network layer
// drops traffic to and from it — the failure model daemons must detect.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/disk.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace starfish::sim {

using HostId = uint32_t;
constexpr HostId kInvalidHost = UINT32_MAX;

class Host {
 public:
  Host(Engine& engine, HostId id, std::string name, Machine machine,
       DiskParams disk_params = ide_disk_params())
      : engine_(engine),
        id_(id),
        name_(std::move(name)),
        machine_(std::move(machine)),
        disk_(engine, disk_params),
        node_(engine.register_node()) {}

  Engine& engine() const { return engine_; }
  HostId id() const { return id_; }
  /// The host's determinism/placement node (see DESIGN.md section 13); all
  /// of the host's fibers and deliveries execute under it.
  NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  const Machine& machine() const { return machine_; }
  Disk& disk() { return disk_; }
  bool alive() const { return alive_; }

  /// Spawns a fiber that belongs to this host (homed on its node/shard); it
  /// dies with the host.
  FiberPtr spawn(std::string fiber_name, std::function<void()> body, Duration delay = 0) {
    auto f = engine_.spawn_on(node_, name_ + "/" + std::move(fiber_name), std::move(body), delay);
    fibers_.push_back(f);
    return f;
  }

  /// Fail-stop crash: kill every fiber on the host and go dead.
  void crash() {
    if (!alive_) return;
    alive_ = false;
    ++incarnation_;
    for (auto& f : fibers_) engine_.kill(f);
    fibers_.clear();
  }

  /// Brings a crashed host back (empty: a rebooted node rejoins the cluster
  /// by starting a fresh daemon on it).
  void reboot() { alive_ = true; }

  /// Incremented on every crash; lets protocols distinguish a rebooted node
  /// from the old incarnation.
  uint32_t incarnation() const { return incarnation_; }

 private:
  Engine& engine_;
  HostId id_;
  std::string name_;
  Machine machine_;
  Disk disk_;
  NodeId node_;
  bool alive_ = true;
  uint32_t incarnation_ = 0;
  std::vector<FiberPtr> fibers_;
};

using HostPtr = std::shared_ptr<Host>;

}  // namespace starfish::sim
