#include "sim/machine.hpp"

#include <array>

namespace starfish::sim {

namespace {
using util::Endian;

const std::array<Machine, 6> kTable2 = {{
    {"Intel P-II 350 MHz, i686", "RedHat 6.1 Linux", Endian::kLittle, 4},
    {"Sun Ultra Enterprise 3000", "SunOS 5.7", Endian::kBig, 4},
    {"RS/6000", "AIX 3.2", Endian::kBig, 4},
    {"Intel P-I, 160 MHz", "FreeBSD 3.2", Endian::kLittle, 4},
    {"Intel P-II, 350 MHz", "Win NT", Endian::kLittle, 4},
    {"Dual Alpha DS20 500 MHz", "RedHat 6.2 Linux", Endian::kLittle, 8},
}};

const Machine kDefault = {"Intel P-II 300 MHz, i686", "RedHat 6.1 Linux", Endian::kLittle, 4};
}  // namespace

std::span<const Machine> table2_machines() { return {kTable2.data(), kTable2.size()}; }
const Machine& default_machine() { return kDefault; }

}  // namespace starfish::sim
