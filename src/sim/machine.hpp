// Machine descriptors for the heterogeneous cluster (paper Table 2).
//
// A simulated host carries a Machine describing the architecture the
// (virtual) hardware would expose: endianness and word length are what
// heterogeneous checkpointing must convert between; the arch/OS strings are
// reporting labels.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/buffer.hpp"

namespace starfish::sim {

struct Machine {
  std::string arch;   ///< e.g. "Intel P-II 350 MHz, i686"
  std::string os;     ///< e.g. "RedHat 6.1 Linux"
  util::Endian endian = util::Endian::kLittle;
  uint8_t word_bytes = 4;  ///< native word length: 4 (32-bit) or 8 (64-bit)

  bool same_representation(const Machine& o) const {
    return endian == o.endian && word_bytes == o.word_bytes;
  }
  std::string label() const { return arch + " / " + os; }
  /// Compact representation descriptor stored in checkpoint headers.
  uint16_t repr_code() const {
    return static_cast<uint16_t>((static_cast<uint16_t>(endian) << 8) | word_bytes);
  }
};

/// The six machine types of Table 2, in paper order.
std::span<const Machine> table2_machines();
/// Default machine for homogeneous clusters (the paper's PII-300 Linux box).
const Machine& default_machine();

}  // namespace starfish::sim
