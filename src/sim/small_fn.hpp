// Inline small-callback storage for engine events.
//
// std::function is the wrong shape for a discrete-event hot path: libstdc++
// inlines only 16 bytes of capture, so every wake/timer lambda that carries
// a shared_ptr keep-alive plus an epoch heap-allocates, and the copyability
// requirement forces the old priority queue to deep-copy callables on every
// pop. SmallFn is the replacement: move-only, kInlineBytes of in-place
// capture (sized so every engine-internal lambda fits), and a single-
// allocation heap fallback for oversized captures from higher layers.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace starfish::sim {

class SmallFn {
 public:
  /// Covers every engine-internal lambda (this + shared_ptr + epoch) and the
  /// common net/gcs capture sets; measured fallbacks are counted by the
  /// engine's sim.event_fn_heap metric.
  static constexpr size_t kInlineBytes = 64;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    emplace(std::forward<F>(f));
  }

  /// Constructs the callable in place (no SmallFn move); *this must be
  /// empty or reset() first.
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }
  /// True when the callable was too large for the inline buffer.
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

  /// Destroys the held callable (and any heap fallback); leaves *this empty.
  /// Trivially-destructible inline callables skip the indirect call — the
  /// dominant case on the event hot path.
  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct dst from src and destroy src (stack-to-node transfer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool heap;
    bool trivial_destroy;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
      false,
      std::is_trivially_destructible_v<Fn>,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
      true,
      false,
  };

  void move_from(SmallFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace starfish::sim
