#include "sim/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace starfish::sim {

namespace {
size_t page_size() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}
}  // namespace

StackPool::~StackPool() {
  for (Bucket& b : buckets_) {
    for (void* base : b.free) munmap(base, b.total);
  }
}

StackPool::Bucket& StackPool::bucket_for(size_t total) {
  for (Bucket& b : buckets_) {
    if (b.total == total) return b;
  }
  buckets_.push_back(Bucket{total, {}});
  return buckets_.back();
}

StackPool::Allocation StackPool::acquire(size_t stack_bytes) {
  const size_t total = stack_bytes + page_size();
  Bucket& b = bucket_for(total);
  if (!b.free.empty()) {
    void* base = b.free.back();
    b.free.pop_back();
    ++hits_;
    return {base, total, /*reused=*/true};
  }
  void* base = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    std::perror("starfish: fiber stack mmap");
    std::abort();
  }
  // Guard page at the low end catches stack overflow with a SIGSEGV instead
  // of silent corruption; it stays protected for the mapping's whole pooled
  // lifetime, so reuse never repeats the mprotect.
  mprotect(base, page_size(), PROT_NONE);
  ++misses_;
  return {base, total, /*reused=*/false};
}

void StackPool::release(void* base, size_t total) {
  if (base == nullptr) return;
  Bucket& b = bucket_for(total);
  if (b.free.size() < kMaxFreePerBucket) {
    b.free.push_back(base);
  } else {
    munmap(base, total);
    ++retired_;
  }
}

size_t StackPool::cached() const {
  size_t n = 0;
  for (const Bucket& b : buckets_) n += b.free.size();
  return n;
}

}  // namespace starfish::sim
