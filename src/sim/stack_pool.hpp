// Size-bucketed recycling pool for guarded fiber stacks.
//
// Creating a fiber used to cost an mmap + mprotect, and destroying one a
// munmap — three syscalls per fiber, which dominates spawn-heavy workloads
// (daemon restarts, chaos churn, per-message handler fibers). The pool
// keeps released stacks mapped, guard page and all, so a recycled stack
// costs zero syscalls. Buckets are keyed by total mapping size; each bucket
// caps its free list and munmaps overflow, bounding retained memory.
//
// Lifetime: the pool is shared (std::shared_ptr) between the engine and
// every fiber it spawned, because a FiberPtr held by user code can outlive
// the engine; the last owner unmaps whatever is still cached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace starfish::sim {

class StackPool {
 public:
  /// Free stacks retained per bucket before release() starts unmapping.
  static constexpr size_t kMaxFreePerBucket = 64;

  struct Allocation {
    void* base = nullptr;  ///< mapping start (guard page at the low end)
    size_t total = 0;      ///< mapping size including the guard page
    bool reused = false;   ///< true on a pool hit (no syscalls made)
  };

  StackPool() = default;
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Returns a mapping of `stack_bytes` usable stack plus one PROT_NONE
  /// guard page at the low end; recycled when the bucket has a free stack.
  /// Aborts on mmap failure (matches the engine's out-of-memory policy).
  Allocation acquire(size_t stack_bytes);

  /// Returns a mapping obtained from acquire(); cached or unmapped.
  void release(void* base, size_t total);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Stacks unmapped because their bucket was full.
  uint64_t retired() const { return retired_; }
  size_t cached() const;

 private:
  struct Bucket {
    size_t total;             ///< mapping size this bucket serves
    std::vector<void*> free;  ///< mapped, guard-protected, ready to reuse
  };

  Bucket& bucket_for(size_t total);

  std::vector<Bucket> buckets_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t retired_ = 0;
};

}  // namespace starfish::sim
