// Blocking primitives for fibers: channels, mutex, condition variable,
// barrier. All are single-threaded simulation objects — "blocking" means
// parking the calling fiber in the engine, never an OS wait.
//
// Wait-list discipline (keeps raw Fiber* safe): the *waiting* fiber always
// removes its own entry after Engine::block() returns, including on the
// FiberKilled unwind path, so lists never hold dangling pointers.
#pragma once

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>
#include <vector>

#include "sim/engine.hpp"

namespace starfish::sim {

/// FIFO list of parked fibers.
class WaitList {
 public:
  explicit WaitList(Engine& engine) : engine_(engine) {}

  /// Parks the current fiber until woken (kSignal) or deadline (kTimer).
  /// deadline < 0 means wait forever.
  WakeReason park(Time deadline = -1) {
    Fiber* self = engine_.current();
    assert(self != nullptr);
    waiters_.push_back(self);
    WakeReason reason;
    try {
      reason = deadline < 0 ? engine_.block() : engine_.block_until(deadline);
    } catch (...) {
      remove(self);
      throw;
    }
    remove(self);
    return reason;
  }

  /// Wakes the longest-waiting still-blocked fiber; returns false if none.
  /// Entries are popped here (not when the fiber resumes) so back-to-back
  /// wake_one calls reach distinct waiters; fibers already woken by a timer
  /// or kill are skipped — they will re-check their condition on resume.
  bool wake_one() {
    while (!waiters_.empty()) {
      Fiber* f = waiters_.front();
      waiters_.erase(waiters_.begin());
      if (f->state() == FiberState::kBlocked) {
        engine_.wake(f);
        return true;
      }
    }
    return false;
  }
  void wake_all() {
    auto snapshot = std::move(waiters_);
    waiters_.clear();
    for (Fiber* f : snapshot) {
      if (f->state() == FiberState::kBlocked) engine_.wake(f);
    }
  }
  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }

 private:
  void remove(Fiber* f) {
    auto it = std::find(waiters_.begin(), waiters_.end(), f);
    if (it != waiters_.end()) waiters_.erase(it);
  }
  Engine& engine_;
  std::vector<Fiber*> waiters_;
};

enum class RecvStatus : uint8_t { kOk, kClosed, kTimeout };

template <typename T>
struct RecvResult {
  RecvStatus status;
  std::optional<T> value;
  bool ok() const { return status == RecvStatus::kOk; }
};

/// Unbounded MPSC/MPMC channel. send() never blocks; recv() blocks until an
/// item, close, or deadline. Closing wakes all readers; remaining queued
/// items are still delivered before kClosed is reported.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine), readers_(engine) {}

  Engine& engine() const { return engine_; }

  /// Returns false (dropping the item) if the channel is closed — matching
  /// a message arriving at a dead process.
  bool send(T item) {
    if (closed_) return false;
    items_.push_back(std::move(item));
    readers_.wake_one();
    return true;
  }

  RecvResult<T> recv(Time deadline = -1) {
    while (items_.empty()) {
      if (closed_) return {RecvStatus::kClosed, std::nullopt};
      const WakeReason r = readers_.park(deadline);
      if (r == WakeReason::kTimer && items_.empty()) {
        return {RecvStatus::kTimeout, std::nullopt};
      }
    }
    T v = std::move(items_.front());
    items_.pop_front();
    return {RecvStatus::kOk, std::move(v)};
  }

  /// Non-blocking poll.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  void close() {
    if (closed_) return;
    closed_ = true;
    readers_.wake_all();
  }
  bool closed() const { return closed_; }
  size_t pending() const { return items_.size(); }

 private:
  Engine& engine_;
  std::deque<T> items_;
  WaitList readers_;
  bool closed_ = false;
};

/// Fiber mutex: serializes critical sections that span blocking points
/// (e.g. queued access to a disk).
class Mutex {
 public:
  explicit Mutex(Engine& engine) : waiters_(engine) {}

  void lock() {
    while (locked_) (void)waiters_.park();
    locked_ = true;
  }
  void unlock() {
    assert(locked_);
    locked_ = false;
    waiters_.wake_one();
  }
  bool locked() const { return locked_; }

 private:
  bool locked_ = false;
  WaitList waiters_;
};

/// RAII lock for Mutex (CP.20: never plain lock/unlock). Unlocks on the
/// FiberKilled unwind path too.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : mutex_(m) { mutex_.lock(); }
  ~LockGuard() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over fiber blocking; no separate mutex needed in a
/// single-threaded simulation, but wait(pred) re-checks after every wake.
class CondVar {
 public:
  explicit CondVar(Engine& engine) : waiters_(engine) {}

  template <typename Pred>
  void wait(Pred pred) {
    while (!pred()) (void)waiters_.park();
  }
  /// Returns false on timeout with the predicate still false.
  template <typename Pred>
  bool wait_until(Time deadline, Pred pred) {
    while (!pred()) {
      const WakeReason r = waiters_.park(deadline);
      if (r == WakeReason::kTimer && !pred()) return false;
    }
    return true;
  }
  void notify_one() { waiters_.wake_one(); }
  void notify_all() { waiters_.wake_all(); }

 private:
  WaitList waiters_;
};

/// Reusable barrier for n participants.
class Barrier {
 public:
  Barrier(Engine& engine, size_t parties) : waiters_(engine), parties_(parties) {}

  void arrive_and_wait() {
    const uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      waiters_.wake_all();
      return;
    }
    while (generation_ == gen) (void)waiters_.park();
  }

 private:
  WaitList waiters_;
  size_t parties_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace starfish::sim
