#include "sim/time.hpp"

#include <cstdio>

namespace starfish::sim {

std::string format_time(Time t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f s", to_seconds(t));
  return buf;
}

}  // namespace starfish::sim
