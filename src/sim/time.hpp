// Virtual time. The whole Starfish reproduction runs on a discrete-event
// clock measured in integer nanoseconds: deterministic, and fine-grained
// enough to model microsecond network latencies and multi-second disk writes.
#pragma once

#include <cstdint>
#include <string>

namespace starfish::sim {

/// Nanoseconds since simulation start.
using Time = int64_t;
/// Nanosecond span.
using Duration = int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration nanoseconds(int64_t n) { return n; }
constexpr Duration microseconds(int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(double s) { return static_cast<Duration>(s * static_cast<double>(kSecond)); }

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / static_cast<double>(kSecond); }
constexpr double to_micros(Duration d) { return static_cast<double>(d) / static_cast<double>(kMicrosecond); }

std::string format_time(Time t);

}  // namespace starfish::sim
