// Byte buffers with explicit-endianness encode/decode.
//
// All Starfish wire formats (control messages, checkpoint images, the
// management protocol's binary side) are built on Writer/Reader. Endianness
// is always explicit because heterogeneous checkpointing (section 4 of the
// paper) stores data in the *saving* machine's native representation and
// converts on restore.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace starfish::util {

enum class Endian : uint8_t { kLittle = 0, kBig = 1 };

/// Endianness of the machine this library was compiled for (the "physical"
/// host; simulated machines carry their own Representation).
constexpr Endian native_endian() {
  return std::endian::native == std::endian::little ? Endian::kLittle : Endian::kBig;
}

using Bytes = std::vector<std::byte>;

inline std::span<const std::byte> as_bytes_view(const Bytes& b) { return {b.data(), b.size()}; }

/// Appends fixed-width integers/floats/strings to a byte vector in a chosen
/// endianness. Cheap value type; owns nothing but a reference to the target.
class Writer {
 public:
  explicit Writer(Bytes& out, Endian endian = Endian::kLittle) : out_(out), endian_(endian) {}

  Endian endian() const { return endian_; }
  size_t size() const { return out_.size(); }

  void u8(uint8_t v) { out_.push_back(std::byte{v}); }
  void u16(uint16_t v) { put_int(v); }
  void u32(uint32_t v) { put_int(v); }
  void u64(uint64_t v) { put_int(v); }
  void i32(int32_t v) { put_int(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { put_int(static_cast<uint64_t>(v)); }
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_int(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::byte> data) {
    u32(static_cast<uint32_t>(data.size()));
    raw(data);
  }
  void str(std::string_view s) {
    bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
  }
  /// Raw append without a length prefix.
  void raw(std::span<const std::byte> data) { out_.insert(out_.end(), data.begin(), data.end()); }

 private:
  template <typename U>
  void put_int(U v) {
    std::byte tmp[sizeof(U)];
    for (size_t i = 0; i < sizeof(U); ++i) {
      const unsigned shift =
          endian_ == Endian::kLittle ? 8 * i : 8 * (sizeof(U) - 1 - i);
      tmp[i] = static_cast<std::byte>((v >> shift) & 0xff);
    }
    out_.insert(out_.end(), tmp, tmp + sizeof(U));
  }

  Bytes& out_;
  Endian endian_;
};

/// Bounds-checked decoder over a byte span. Decode failures surface as
/// Error{"decode", ...} results rather than UB.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data, Endian endian = Endian::kLittle)
      : data_(data), endian_(endian) {}

  Endian endian() const { return endian_; }
  void set_endian(Endian e) { endian_ = e; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Result<uint8_t> u8() {
    if (remaining() < 1) return short_read("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint16_t> u16() { return get_int<uint16_t>("u16"); }
  Result<uint32_t> u32() { return get_int<uint32_t>("u32"); }
  Result<uint64_t> u64() { return get_int<uint64_t>("u64"); }
  Result<int32_t> i32() {
    auto r = get_int<uint32_t>("i32");
    if (!r) return r.error();
    return static_cast<int32_t>(r.value());
  }
  Result<int64_t> i64() {
    auto r = get_int<uint64_t>("i64");
    if (!r) return r.error();
    return static_cast<int64_t>(r.value());
  }
  Result<double> f64() {
    auto r = get_int<uint64_t>("f64");
    if (!r) return r.error();
    double v;
    uint64_t bits = r.value();
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  Result<bool> boolean() {
    auto r = u8();
    if (!r) return r.error();
    return r.value() != 0;
  }

  Result<Bytes> bytes() {
    auto len = u32();
    if (!len) return len.error();
    if (remaining() < len.value()) return short_read("bytes");
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + len.value()));
    pos_ += len.value();
    return out;
  }
  Result<std::string> str() {
    auto b = bytes();
    if (!b) return b.error();
    return std::string(reinterpret_cast<const char*>(b.value().data()), b.value().size());
  }
  /// Reads exactly n raw bytes (no length prefix).
  Result<Bytes> raw(size_t n) {
    if (remaining() < n) return short_read("raw");
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

 private:
  template <typename U>
  Result<U> get_int(const char* what) {
    if (remaining() < sizeof(U)) return short_read(what);
    U v = 0;
    for (size_t i = 0; i < sizeof(U); ++i) {
      const unsigned shift =
          endian_ == Endian::kLittle ? 8 * i : 8 * (sizeof(U) - 1 - i);
      v |= static_cast<U>(static_cast<U>(data_[pos_ + i]) << shift);
    }
    pos_ += sizeof(U);
    return v;
  }

  Error short_read(const char* what) const {
    return Error::make("decode", std::string("short read decoding ") + what);
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  Endian endian_;
};

}  // namespace starfish::util
