// Byte buffers with explicit-endianness encode/decode.
//
// All Starfish wire formats (control messages, checkpoint images, the
// management protocol's binary side) are built on Writer/Reader. Endianness
// is always explicit because heterogeneous checkpointing (section 4 of the
// paper) stores data in the *saving* machine's native representation and
// converts on restore.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"
#include "util/simd/simd.hpp"

namespace starfish::util {

enum class Endian : uint8_t { kLittle = 0, kBig = 1 };

/// Endianness of the machine this library was compiled for (the "physical"
/// host; simulated machines carry their own Representation).
constexpr Endian native_endian() {
  return std::endian::native == std::endian::little ? Endian::kLittle : Endian::kBig;
}

using Bytes = std::vector<std::byte>;

/// Non-owning read-only window into a byte buffer.
using BytesView = std::span<const std::byte>;

inline BytesView as_bytes_view(const Bytes& b) { return {b.data(), b.size()}; }

/// Immutable, cheaply-copyable, refcounted payload buffer.
///
/// The zero-copy data path hands one SharedBytes from the sender's frame
/// encoder through Packet, the VNI and the receive queues without ever
/// duplicating the body; `slice` lets a decoder alias a sub-range (e.g. the
/// payload inside a frame) of the same allocation. Immutability is what
/// makes the sharing safe: no layer may mutate a buffer another layer still
/// references, so simulation replay stays deterministic (see DESIGN.md
/// "Payload ownership").
class SharedBytes {
 public:
  SharedBytes() = default;
  /// Adopts an owned buffer without copying. Intentionally implicit so call
  /// sites handing off an rvalue `Bytes` (encoder output, moved-from app
  /// data) keep reading naturally.
  SharedBytes(Bytes&& b)  // NOLINT(google-explicit-constructor)
      : owner_(std::make_shared<Bytes>(std::move(b))), len_(owner_->size()) {}

  /// Deep-copies a view into a fresh buffer (the only copying entry point).
  static SharedBytes copy(BytesView v) { return SharedBytes(Bytes(v.begin(), v.end())); }

  BytesView view() const {
    return owner_ ? BytesView{owner_->data() + offset_, len_} : BytesView{};
  }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  const std::byte* data() const { return owner_ ? owner_->data() + offset_ : nullptr; }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::byte operator[](size_t i) const { return (*owner_)[offset_ + i]; }

  /// Zero-copy sub-range sharing (and keeping alive) the same allocation.
  /// Clamped to the buffer bounds.
  SharedBytes slice(size_t off, size_t n) const {
    SharedBytes s;
    if (off > len_) off = len_;
    if (n > len_ - off) n = len_ - off;
    s.owner_ = owner_;
    s.offset_ = offset_ + off;
    s.len_ = n;
    return s;
  }

  /// Materializes an owned mutable copy. The rvalue overload steals the
  /// underlying vector when this handle is the sole owner of the whole
  /// buffer (the common case at final delivery of an unsliced payload).
  Bytes to_bytes() const& {
    auto v = view();
    return Bytes(v.begin(), v.end());
  }
  Bytes to_bytes() && {
    if (owner_ && owner_.use_count() == 1 && offset_ == 0 && len_ == owner_->size()) {
      Bytes out = std::move(*owner_);
      owner_.reset();
      len_ = 0;
      return out;
    }
    auto v = view();
    return Bytes(v.begin(), v.end());
  }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    auto va = a.view(), vb = b.view();
    return va.size() == vb.size() &&
           (va.empty() || std::memcmp(va.data(), vb.data(), va.size()) == 0);
  }

 private:
  /// Held non-const for the unique-owner move-out in to_bytes()&&; no
  /// mutating access is ever exposed.
  std::shared_ptr<Bytes> owner_;
  size_t offset_ = 0;
  size_t len_ = 0;
};

inline BytesView as_bytes_view(const SharedBytes& b) { return b.view(); }

/// Appends fixed-width integers/floats/strings to a byte vector in a chosen
/// endianness. Cheap value type; owns nothing but a reference to the target.
class Writer {
 public:
  explicit Writer(Bytes& out, Endian endian = Endian::kLittle) : out_(out), endian_(endian) {}

  Endian endian() const { return endian_; }
  size_t size() const { return out_.size(); }

  /// Pre-sizes the target for `n` further bytes of appends. Encoders that
  /// know their message size up front should call this once instead of
  /// letting the vector grow geometrically under per-field appends.
  void reserve(size_t n) { out_.reserve(out_.size() + n); }

  void u8(uint8_t v) { out_.push_back(std::byte{v}); }
  void u16(uint16_t v) { put_int(v); }
  void u32(uint32_t v) { put_int(v); }
  void u64(uint64_t v) { put_int(v); }
  void i32(int32_t v) { put_int(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { put_int(static_cast<uint64_t>(v)); }
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_int(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::byte> data) {
    reserve(sizeof(uint32_t) + data.size());
    u32(static_cast<uint32_t>(data.size()));
    raw(data);
  }
  void str(std::string_view s) {
    bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
  }
  /// Raw append without a length prefix.
  void raw(std::span<const std::byte> data) {
    const size_t at = out_.size();
    out_.resize(at + data.size());
    if (!data.empty()) std::memcpy(out_.data() + at, data.data(), data.size());
  }

  // --- bulk appends (SIMD byteswap/convert; one resize, no per-element
  // shifting loop). Wire layout is identical to calling the per-element
  // append in a loop — these exist because the portable-image codec and the
  // typed array codecs write thousands of homogeneous words at a time. ---

  void u32s(std::span<const uint32_t> v) { put_ints<uint32_t, 4>(v.data(), v.size()); }
  void i32s(std::span<const int32_t> v) { put_ints<int32_t, 4>(v.data(), v.size()); }
  void u64s(std::span<const uint64_t> v) { put_ints<uint64_t, 8>(v.data(), v.size()); }
  void i64s(std::span<const int64_t> v) { put_ints<int64_t, 8>(v.data(), v.size()); }
  /// IEEE bit patterns as 64-bit words (same bytes as f64() per element).
  void f64s(std::span<const double> v) { put_ints<double, 8>(v.data(), v.size()); }
  /// Truncates each int64 to int32 and appends the 32-bit words (the
  /// word-size conversion of heterogeneous checkpointing, in bulk).
  void i32s_narrowed(std::span<const int64_t> v) {
    if (v.empty()) return;
    const size_t at = grow(v.size() * 4);
    std::byte* dst = out_.data() + at;
    simd::narrow_i64_i32(dst, reinterpret_cast<const std::byte*>(v.data()), v.size());
    if (endian_ != native_endian()) simd::bswap32(dst, dst, v.size());
  }

 private:
  /// Appends n elements of kElem bytes each, byte-swapping when the target
  /// endianness differs from the host's.
  template <typename T, unsigned kElem>
  void put_ints(const T* src, size_t n) {
    static_assert(sizeof(T) == kElem);
    if (n == 0) return;
    const size_t at = grow(n * kElem);
    std::byte* dst = out_.data() + at;
    const std::byte* s = reinterpret_cast<const std::byte*>(src);
    if (endian_ == native_endian()) {
      simd::copy(dst, s, n * kElem);
    } else if constexpr (kElem == 4) {
      simd::bswap32(dst, s, n);
    } else {
      simd::bswap64(dst, s, n);
    }
  }

  size_t grow(size_t n) {
    const size_t at = out_.size();
    out_.resize(at + n);
    return at;
  }

  template <typename U>
  void put_int(U v) {
    // One resize + direct stores (no per-integer insert churn); the
    // little-endian/native case collapses to a plain memcpy.
    const size_t at = out_.size();
    out_.resize(at + sizeof(U));
    std::byte* dst = out_.data() + at;
    if (endian_ == native_endian()) {
      std::memcpy(dst, &v, sizeof(U));
      return;
    }
    for (size_t i = 0; i < sizeof(U); ++i) {
      const unsigned shift =
          endian_ == Endian::kLittle ? 8 * i : 8 * (sizeof(U) - 1 - i);
      dst[i] = static_cast<std::byte>((v >> shift) & 0xff);
    }
  }

  Bytes& out_;
  Endian endian_;
};

/// Bounds-checked decoder over a byte span. Decode failures surface as
/// Error{"decode", ...} results rather than UB.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data, Endian endian = Endian::kLittle)
      : data_(data), endian_(endian) {}

  Endian endian() const { return endian_; }
  void set_endian(Endian e) { endian_ = e; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Result<uint8_t> u8() {
    if (remaining() < 1) return short_read("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint16_t> u16() { return get_int<uint16_t>("u16"); }
  Result<uint32_t> u32() { return get_int<uint32_t>("u32"); }
  Result<uint64_t> u64() { return get_int<uint64_t>("u64"); }
  Result<int32_t> i32() {
    auto r = get_int<uint32_t>("i32");
    if (!r) return r.error();
    return static_cast<int32_t>(r.value());
  }
  Result<int64_t> i64() {
    auto r = get_int<uint64_t>("i64");
    if (!r) return r.error();
    return static_cast<int64_t>(r.value());
  }
  Result<double> f64() {
    auto r = get_int<uint64_t>("f64");
    if (!r) return r.error();
    double v;
    uint64_t bits = r.value();
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  Result<bool> boolean() {
    auto r = u8();
    if (!r) return r.error();
    return r.value() != 0;
  }

  Result<Bytes> bytes() {
    auto v = view();
    if (!v) return v.error();
    return Bytes(v.value().begin(), v.value().end());
  }
  /// Zero-copy variant of bytes(): a length-prefixed window into the source
  /// span. Valid only while the underlying buffer is alive and unmodified.
  Result<BytesView> view() {
    auto len = u32();
    if (!len) return len.error();
    if (remaining() < len.value()) return short_read("bytes");
    BytesView out = data_.subspan(pos_, len.value());
    pos_ += len.value();
    return out;
  }
  Result<std::string> str() {
    auto v = str_view();
    if (!v) return v.error();
    return std::string(v.value());
  }
  /// Zero-copy variant of str(); same lifetime caveat as view().
  Result<std::string_view> str_view() {
    auto v = view();
    if (!v) return v.error();
    return std::string_view(reinterpret_cast<const char*>(v.value().data()), v.value().size());
  }
  /// Reads exactly n raw bytes (no length prefix).
  Result<Bytes> raw(size_t n) {
    auto v = raw_view(n);
    if (!v) return v.error();
    return Bytes(v.value().begin(), v.value().end());
  }
  /// Zero-copy variant of raw(); same lifetime caveat as view().
  Result<BytesView> raw_view(size_t n) {
    if (remaining() < n) return short_read("raw");
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  // --- bulk reads (inverse of the Writer bulk appends; bounds-checked as a
  // whole, then one SIMD byteswap/convert pass into the caller's array) ---

  Status read_u32s(std::span<uint32_t> out) { return get_ints<uint32_t, 4>(out, "u32s"); }
  Status read_i32s(std::span<int32_t> out) { return get_ints<int32_t, 4>(out, "i32s"); }
  Status read_u64s(std::span<uint64_t> out) { return get_ints<uint64_t, 8>(out, "u64s"); }
  Status read_i64s(std::span<int64_t> out) { return get_ints<int64_t, 8>(out, "i64s"); }
  Status read_f64s(std::span<double> out) { return get_ints<double, 8>(out, "f64s"); }
  /// Reads out.size() 32-bit words and sign-extends each into an int64 (the
  /// widening restore of a 32-bit saver's image on a 64-bit reader).
  Status read_i64s_widened(std::span<int64_t> out) {
    const size_t n = out.size();
    if (remaining() < n * 4) return short_read("i32s");
    const std::byte* src = data_.data() + pos_;
    std::byte* dst = reinterpret_cast<std::byte*>(out.data());
    if (endian_ == native_endian()) {
      simd::widen_i32_i64(dst, src, n);
    } else {
      // Swap into native int32 order first (chunked through a small stack
      // buffer so the pass stays allocation-free), then sign-extend.
      constexpr size_t kChunk = 512;
      alignas(16) std::byte tmp[kChunk * 4];
      for (size_t i = 0; i < n; i += kChunk) {
        const size_t c = n - i < kChunk ? n - i : kChunk;
        simd::bswap32(tmp, src + 4 * i, c);
        simd::widen_i32_i64(dst + 8 * i, tmp, c);
      }
    }
    pos_ += n * 4;
    return Status::ok_status();
  }

 private:
  template <typename T, unsigned kElem>
  Status get_ints(std::span<T> out, const char* what) {
    static_assert(sizeof(T) == kElem);
    const size_t n = out.size();
    if (remaining() < n * kElem) return short_read(what);
    if (n != 0) {
      const std::byte* src = data_.data() + pos_;
      std::byte* dst = reinterpret_cast<std::byte*>(out.data());
      if (endian_ == native_endian()) {
        simd::copy(dst, src, n * kElem);
      } else if constexpr (kElem == 4) {
        simd::bswap32(dst, src, n);
      } else {
        simd::bswap64(dst, src, n);
      }
    }
    pos_ += n * kElem;
    return Status::ok_status();
  }

  template <typename U>
  Result<U> get_int(const char* what) {
    if (remaining() < sizeof(U)) return short_read(what);
    U v = 0;
    for (size_t i = 0; i < sizeof(U); ++i) {
      const unsigned shift =
          endian_ == Endian::kLittle ? 8 * i : 8 * (sizeof(U) - 1 - i);
      v |= static_cast<U>(static_cast<U>(data_[pos_ + i]) << shift);
    }
    pos_ += sizeof(U);
    return v;
  }

  Error short_read(const char* what) const {
    return Error::make("decode", std::string("short read decoding ") + what);
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  Endian endian_;
};

}  // namespace starfish::util
