#include "util/codec/lz.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "util/simd/simd.hpp"

namespace starfish::util::codec {

namespace {

// Token byte: high nibble = literal run length (15 = extended), low nibble
// = match length code (0 = no match; 1..14 = match of code+3 bytes; 15 =
// 18 + extension bytes). Extensions are runs of 0xff plus a final <255
// byte, LZ4-style. A match is followed by its u16 little-endian in-block
// offset. Matches never cross a block boundary, so blocks decode (and
// corrupt) independently.
constexpr size_t kMinMatch = 4;
constexpr size_t kShortMatchMax = 17;  // low nibble 14 -> 3 + 14
constexpr int kHashBits = 14;
constexpr int kChainCap = 16;
constexpr size_t kBlockHeaderBytes = 1 + 4 + 4 + 8;
constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;

uint32_t load_le32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) v = __builtin_bswap32(v);
  return v;
}

uint32_t hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

void put_ext(Bytes& out, size_t v) {
  while (v >= 255) {
    out.push_back(std::byte{0xff});
    v -= 255;
  }
  out.push_back(static_cast<std::byte>(v));
}

Error codec_error(const std::string& what) { return Error::make("codec", "lz: " + what); }

/// Token-compresses one block. Returns false (and an undefined `out`
/// prefix beyond `out_start`) when the tokens would not beat the raw
/// block, in which case the caller emits a stored block instead.
bool compress_block(const std::byte* p, size_t n, Bytes& out, size_t out_start,
                    std::vector<int32_t>& head, std::vector<int32_t>& prev) {
  const simd::Ops& simd = simd::ops();
  std::fill(head.begin(), head.end(), -1);
  prev.assign(n, -1);
  size_t pos = 0;
  size_t lit_start = 0;

  auto emit_seq = [&](size_t lit_len, size_t match_len, size_t offset) {
    const size_t lit_code = lit_len < 15 ? lit_len : 15;
    size_t match_code = 0;
    if (match_len != 0) {
      match_code = match_len - 3 < 15 ? match_len - 3 : 15;
    }
    out.push_back(static_cast<std::byte>((lit_code << 4) | match_code));
    if (lit_code == 15) put_ext(out, lit_len - 15);
    if (lit_len != 0) {
      const size_t at = out.size();
      out.resize(at + lit_len);
      simd.copy(out.data() + at, p + lit_start, lit_len);
    }
    if (match_len != 0) {
      out.push_back(static_cast<std::byte>(offset & 0xff));
      out.push_back(static_cast<std::byte>((offset >> 8) & 0xff));
      if (match_code == 15) put_ext(out, match_len - (kShortMatchMax + 1));
    }
  };

  while (pos + kMinMatch <= n) {
    const uint32_t here = load_le32(p + pos);
    const uint32_t h = hash4(here);
    size_t best_len = 0;
    size_t best_off = 0;
    const size_t max_len = n - pos;
    int32_t cand = head[h];
    for (int depth = 0; cand >= 0 && depth < kChainCap; ++depth, cand = prev[cand]) {
      if (load_le32(p + static_cast<size_t>(cand)) != here) continue;
      // Self-referential overlap (cand + i >= pos) is fine: the decoder
      // replicates the pattern byte-by-byte, exactly what the forward
      // comparison below proves equal.
      const size_t len =
          4 + simd.mismatch(p + static_cast<size_t>(cand) + 4, p + pos + 4, max_len - 4);
      if (len > best_len) {
        best_len = len;
        best_off = pos - static_cast<size_t>(cand);
      }
    }
    if (best_len >= kMinMatch) {
      emit_seq(pos - lit_start, best_len, best_off);
      const size_t end = pos + best_len;
      for (size_t q = pos; q < end && q + kMinMatch <= n; ++q) {
        const uint32_t hq = hash4(load_le32(p + q));
        prev[q] = head[hq];
        head[hq] = static_cast<int32_t>(q);
      }
      pos = end;
      lit_start = pos;
      if (out.size() - out_start >= n) return false;  // not profitable, bail early
    } else {
      prev[pos] = head[h];
      head[h] = static_cast<int32_t>(pos);
      ++pos;
    }
  }
  if (lit_start < n) emit_seq(n - lit_start, 0, 0);
  return out.size() - out_start < n;
}

struct BlockRef {
  uint8_t kind;
  uint32_t raw_len;
  BytesView enc;
};

/// Parses and checksum-verifies the frame scaffolding shared by verify and
/// decompress. On success `blocks` holds one entry per block and the
/// announced raw length is returned.
Result<uint64_t> parse_frame(BytesView frame, std::vector<BlockRef>& blocks) {
  Reader r(frame);
  auto magic = r.u32();
  if (!magic || magic.value() != kLzMagic) return codec_error("bad magic");
  auto version = r.u8();
  if (!version || version.value() != kLzVersion) return codec_error("unsupported version");
  auto raw_len = r.u64();
  if (!raw_len) return codec_error("truncated header");
  auto n_blocks = r.u32();
  if (!n_blocks) return codec_error("truncated header");
  const uint64_t want_blocks =
      raw_len.value() == 0 ? 0 : (raw_len.value() + kLzBlockBytes - 1) / kLzBlockBytes;
  if (n_blocks.value() != want_blocks) return codec_error("block count mismatch");
  blocks.clear();
  blocks.reserve(n_blocks.value());
  uint64_t raw_total = 0;
  for (uint32_t b = 0; b < n_blocks.value(); ++b) {
    auto kind = r.u8();
    auto block_raw = r.u32();
    auto enc_len = r.u32();
    auto check = r.u64();
    if (!kind || !block_raw || !enc_len || !check) return codec_error("truncated block header");
    if (kind.value() > 1) return codec_error("unknown block kind");
    if (block_raw.value() == 0 || block_raw.value() > kLzBlockBytes) {
      return codec_error("bad block raw length");
    }
    auto enc = r.raw_view(enc_len.value());
    if (!enc) return codec_error("truncated block body");
    if (kind.value() == 0 && enc.value().size() != block_raw.value()) {
      return codec_error("stored block length mismatch");
    }
    if (simd::fingerprint(enc.value().data(), enc.value().size()) != check.value()) {
      return codec_error("block checksum mismatch");
    }
    raw_total += block_raw.value();
    blocks.push_back({kind.value(), block_raw.value(), enc.value()});
  }
  if (!r.exhausted()) return codec_error("trailing bytes after frame");
  if (raw_total != raw_len.value()) return codec_error("block raw lengths disagree with header");
  return raw_len.value();
}

Status decode_block(const BlockRef& blk, std::byte* dst) {
  const simd::Ops& simd = simd::ops();
  const std::byte* in = blk.enc.data();
  const size_t in_len = blk.enc.size();
  const size_t out_len = blk.raw_len;
  size_t ip = 0;
  size_t op = 0;
  auto read_ext = [&](size_t& v) -> bool {
    for (;;) {
      if (ip >= in_len) return false;
      const auto b = static_cast<uint8_t>(in[ip++]);
      v += b;
      if (b != 0xff) return true;
    }
  };
  while (op < out_len) {
    if (ip >= in_len) return codec_error("token stream exhausted");
    const auto token = static_cast<uint8_t>(in[ip++]);
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !read_ext(lit_len)) return codec_error("truncated literal length");
    if (lit_len > in_len - ip || lit_len > out_len - op) {
      return codec_error("literal run out of bounds");
    }
    simd.copy(dst + op, in + ip, lit_len);
    ip += lit_len;
    op += lit_len;
    const size_t match_code = token & 0x0f;
    if (match_code == 0) continue;
    if (in_len - ip < 2) return codec_error("truncated match offset");
    const size_t off =
        static_cast<size_t>(static_cast<uint8_t>(in[ip])) |
        (static_cast<size_t>(static_cast<uint8_t>(in[ip + 1])) << 8);
    ip += 2;
    size_t match_len = match_code < 15 ? match_code + 3 : kShortMatchMax + 1;
    if (match_code == 15 && !read_ext(match_len)) return codec_error("truncated match length");
    if (off == 0 || off > op) return codec_error("match offset out of bounds");
    if (match_len > out_len - op) return codec_error("match run out of bounds");
    const std::byte* src = dst + op - off;
    if (off >= match_len) {
      simd.copy(dst + op, src, match_len);
    } else {
      for (size_t i = 0; i < match_len; ++i) dst[op + i] = src[i];  // overlapping replicate
    }
    op += match_len;
  }
  if (ip != in_len) return codec_error("trailing bytes in block");
  return Status::ok_status();
}

}  // namespace

Bytes lz_compress(BytesView raw) {
  Bytes out;
  Writer w(out);
  w.reserve(kFrameHeaderBytes + raw.size() / 4 + 64);
  w.u32(kLzMagic);
  w.u8(kLzVersion);
  w.u64(raw.size());
  const uint64_t n_blocks = raw.empty() ? 0 : (raw.size() + kLzBlockBytes - 1) / kLzBlockBytes;
  w.u32(static_cast<uint32_t>(n_blocks));

  std::vector<int32_t> head(size_t{1} << kHashBits);
  std::vector<int32_t> prev;
  Bytes tokens;
  for (uint64_t b = 0; b < n_blocks; ++b) {
    const size_t off = static_cast<size_t>(b) * kLzBlockBytes;
    const size_t len = std::min(kLzBlockBytes, raw.size() - off);
    tokens.clear();
    const bool lz = compress_block(raw.data() + off, len, tokens, 0, head, prev);
    const BytesView enc = lz ? as_bytes_view(tokens) : raw.subspan(off, len);
    w.u8(lz ? 1 : 0);
    w.u32(static_cast<uint32_t>(len));
    w.u32(static_cast<uint32_t>(enc.size()));
    w.u64(simd::fingerprint(enc.data(), enc.size()));
    w.raw(enc);
  }
  return out;
}

Result<uint64_t> lz_raw_size(BytesView frame) {
  Reader r(frame);
  auto magic = r.u32();
  if (!magic || magic.value() != kLzMagic) return codec_error("bad magic");
  auto version = r.u8();
  if (!version || version.value() != kLzVersion) return codec_error("unsupported version");
  auto raw_len = r.u64();
  if (!raw_len) return codec_error("truncated header");
  return raw_len.value();
}

Status lz_verify(BytesView frame) {
  std::vector<BlockRef> blocks;
  auto parsed = parse_frame(frame, blocks);
  if (!parsed) return parsed.error();
  return Status::ok_status();
}

Result<Bytes> lz_decompress(BytesView frame, uint64_t max_bytes) {
  std::vector<BlockRef> blocks;
  auto parsed = parse_frame(frame, blocks);
  if (!parsed) return parsed.error();
  if (parsed.value() > max_bytes) {
    return codec_error("frame announces oversized payload (" + std::to_string(parsed.value()) +
                       " > " + std::to_string(max_bytes) + " bytes)");
  }
  Bytes out(static_cast<size_t>(parsed.value()));
  size_t off = 0;
  for (const BlockRef& blk : blocks) {
    if (blk.kind == 0) {
      simd::copy(out.data() + off, blk.enc.data(), blk.enc.size());
    } else {
      auto st = decode_block(blk, out.data() + off);
      if (!st.ok()) return st.error();
    }
    off += blk.raw_len;
  }
  return out;
}

}  // namespace starfish::util::codec
