// Deterministic LZ block codec for the checkpoint byte path.
//
// An LZ4-shaped format — token-coded literal runs and back-references —
// chosen over a real entropy coder because checkpoint payloads are
// dominated by runs and repeated structure, and because decode speed and
// *determinism* matter more than the last few percent of ratio: the same
// input must produce the same compressed bytes on every host and ISA level
// (checkpoint content hashes and replica transfers are compared across
// machines). The matcher is a fixed-parameter greedy hash-chain search with
// no heuristics keyed on timing, addresses or ISA; the hot copy/compare
// loops route through the util/simd dispatch table, whose kernels are
// bit-identical across levels by contract.
//
// Frame layout (all little-endian, independent blocks of 64 KB raw):
//   u32 magic "SLZ1"   u8 version   u64 raw_len   u32 n_blocks
//   per block: u8 kind (0 stored / 1 lz)   u32 block_raw_len
//              u32 enc_len   u64 check (fingerprint of the enc bytes)
//              enc bytes
// The per-block checksum makes verification cheap (one fingerprint pass,
// no decode) and localizes corruption; stored blocks keep incompressible
// input within a few dozen bytes of its raw size. Decode failures are
// typed Error{"codec", ...} — callers fall back, never abort.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/buffer.hpp"
#include "util/result.hpp"

namespace starfish::util::codec {

inline constexpr uint32_t kLzMagic = 0x315A4C53;  // "SLZ1" little-endian
inline constexpr uint8_t kLzVersion = 1;
inline constexpr size_t kLzBlockBytes = 64 * 1024;

/// Compresses raw into a framed stream. Deterministic: same input, same
/// output, on every host/ISA. Incompressible input degrades to stored
/// blocks (output ≈ raw + 21·ceil(n/64K) + 17 bytes), never fails.
Bytes lz_compress(BytesView raw);

/// The raw size a frame announces, without decoding (header peek).
Result<uint64_t> lz_raw_size(BytesView frame);

/// Structural + checksum validation without materializing the output:
/// header sanity, block bounds, per-block fingerprints. A frame that
/// verifies clean decodes clean (token-level corruption is covered by the
/// checksums, which hash the encoded bytes).
Status lz_verify(BytesView frame);

/// Decompresses a frame. `max_bytes` guards against forged headers
/// announcing absurd sizes. Any corruption or truncation yields a typed
/// Error{"codec", ...}.
Result<Bytes> lz_decompress(BytesView frame, uint64_t max_bytes);

}  // namespace starfish::util::codec
