// Tiny leveled logger. Components tag their lines ("gcs", "daemon", ...);
// tests run with the logger silenced, benches may enable kInfo for tracing.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string_view>

namespace starfish::util {

enum class LogLevel : uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log level; defaults to kWarn so tests stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes one formatted line to stderr if `level` passes the global filter.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style convenience: LOG(kInfo, "gcs") << "view " << id;
///
/// A filtered-out line costs two stores and a branch: the component stays a
/// string_view (it outlives the statement — STARFISH_LOG call sites pass
/// literals) and the ostringstream is only constructed when the line will
/// actually be emitted. Trace-level call sites on hot paths therefore cost
/// nothing while the logger sits at its kWarn default.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {
    if (level >= log_level()) stream_.emplace();
  }
  ~LogStream() {
    if (stream_) log_line(level_, component_, stream_->str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (stream_) *stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::optional<std::ostringstream> stream_;
};

}  // namespace starfish::util

#define STARFISH_LOG(level, component) \
  ::starfish::util::LogStream(::starfish::util::LogLevel::level, component)
