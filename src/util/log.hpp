// Tiny leveled logger. Components tag their lines ("gcs", "daemon", ...);
// tests run with the logger silenced, benches may enable kInfo for tracing.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace starfish::util {

enum class LogLevel : uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log level; defaults to kWarn so tests stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes one formatted line to stderr if `level` passes the global filter.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style convenience: LOG(kInfo, "gcs") << "view " << id;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(level >= log_level()) {}
  ~LogStream() {
    if (enabled_) log_line(level_, component_, stream_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace starfish::util

#define STARFISH_LOG(level, component) \
  ::starfish::util::LogStream(::starfish::util::LogLevel::level, component)
