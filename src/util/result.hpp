// Minimal expected-style result type used across Starfish for recoverable
// errors (protocol parse failures, store misses, representation mismatches).
// Irrecoverable programming errors use assertions instead.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace starfish::util {

/// Error payload: a short machine-readable code plus a human message.
struct Error {
  std::string code;
  std::string message;

  static Error make(std::string code, std::string message) {
    return Error{std::move(code), std::move(message)};
  }
  std::string to_string() const { return code + ": " + message; }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}          // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }

  const T& value_or(const T& fallback) const& { return ok() ? std::get<T>(state_) : fallback; }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

}  // namespace starfish::util
