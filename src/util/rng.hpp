// Deterministic RNG (xoshiro256**). Every randomized component takes an
// explicit seed so whole-cluster simulations replay bit-for-bit.
#pragma once

#include <cstdint>

namespace starfish::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5747464953484653ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }
  /// Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }
  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  bool chance(double p) { return uniform() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace starfish::util
