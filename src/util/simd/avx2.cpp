// AVX2 backend: 4 x 64-bit lanes per register. Compiled with -mavx2 (this
// file only); the self-gate below turns the TU into a nullptr stub when the
// build does not carry AVX2 (non-x86 target or -DSTARFISH_SIMD=scalar).
#include "util/simd/backends.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "util/simd/kernels.hpp"

namespace starfish::util::simd {
namespace {

struct Avx2 {
  using vec = __m256i;
  static constexpr size_t kLanes = 4;

  static vec loadu(const std::byte* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(std::byte* p, vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static vec load64(const uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu64(uint64_t* p, vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static vec xor_(vec a, vec b) { return _mm256_xor_si256(a, b); }
  static vec add64(vec a, vec b) { return _mm256_add_epi64(a, b); }
  /// lo32(v) * hi32(v) per 64-bit lane.
  static vec mul_lo32_hi32(vec v) { return _mm256_mul_epu32(v, _mm256_srli_epi64(v, 32)); }
  /// 64-bit lane i -> lane i^1 (pairs sit inside each 128-bit half).
  static vec swap_pairs(vec v) { return _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)); }

  template <unsigned kElem>
  static vec bswap(vec v) {
    // Per-128-bit-lane byte shuffle; the reversal pattern repeats every
    // element, so one control vector handles both halves.
    if constexpr (kElem == 2) {
      const __m256i ctl = _mm256_setr_epi8(1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14,
                                           1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14);
      return _mm256_shuffle_epi8(v, ctl);
    } else if constexpr (kElem == 4) {
      const __m256i ctl = _mm256_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
                                           3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
      return _mm256_shuffle_epi8(v, ctl);
    } else {
      const __m256i ctl = _mm256_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
                                           7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8);
      return _mm256_shuffle_epi8(v, ctl);
    }
  }
};

uint64_t fingerprint_avx2(const std::byte* p, size_t n) {
  return detail::fingerprint_shell(p, n, detail::fp_accumulate_vec<Avx2>);
}

void copy_avx2(std::byte* dst, const std::byte* src, size_t n) {
  detail::copy_vec<Avx2>(dst, src, n);
}

template <unsigned kElem>
void bswap_avx2(std::byte* dst, const std::byte* src, size_t n) {
  detail::bswap_vec<Avx2, kElem>(dst, src, n);
}

void widen_avx2(std::byte* dst, const std::byte* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i in = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 4 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8 * i), _mm256_cvtepi32_epi64(in));
  }
  for (; i < n; ++i) detail::widen_one(dst + 8 * i, src + 4 * i);
}

void narrow_avx2(std::byte* dst, const std::byte* src, size_t n) {
  const __m256i pick_lo = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i in = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 8 * i));
    const __m256i packed = _mm256_permutevar8x32_epi32(in, pick_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 4 * i), _mm256_castsi256_si128(packed));
  }
  for (; i < n; ++i) detail::narrow_one(dst + 4 * i, src + 8 * i);
}

size_t mismatch_avx2(const std::byte* a, const std::byte* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const auto eq = static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) return i + static_cast<size_t>(std::countr_zero(~eq));
  }
  return detail::mismatch_tail(a, b, i, n);
}

void gather64_avx2(std::byte* dst, const std::byte* src, size_t stride, size_t n) {
  const __m256i vidx = _mm256_setr_epi64x(0, static_cast<long long>(stride),
                                          static_cast<long long>(2 * stride),
                                          static_cast<long long>(3 * stride));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(src + i * stride), vidx, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8 * i), v);
  }
  detail::gather64_tail(dst, src, stride, i, n);
}

constexpr Ops kAvx2Table = {
    Isa::kAvx2,    fingerprint_avx2, copy_avx2,   bswap_avx2<2>,
    bswap_avx2<4>, bswap_avx2<8>,    widen_avx2,  narrow_avx2,
    mismatch_avx2, gather64_avx2,
};

}  // namespace

const Ops* avx2_ops() { return &kAvx2Table; }

}  // namespace starfish::util::simd

#else  // !__AVX2__

namespace starfish::util::simd {
const Ops* avx2_ops() { return nullptr; }
}  // namespace starfish::util::simd

#endif
