// AVX-512 backend: 8 x 64-bit lanes per register (F for the integer ALU and
// the 64<->32 converts, BW for the byte shuffle). Compiled with
// -mavx512f -mavx512bw (this file only); nullptr stub otherwise.
#include "util/simd/backends.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include "util/simd/kernels.hpp"

namespace starfish::util::simd {
namespace {

struct Avx512 {
  using vec = __m512i;
  static constexpr size_t kLanes = 8;

  static vec loadu(const std::byte* p) { return _mm512_loadu_si512(p); }
  static void storeu(std::byte* p, vec v) { _mm512_storeu_si512(p, v); }
  static vec load64(const uint64_t* p) { return _mm512_loadu_si512(p); }
  static void storeu64(uint64_t* p, vec v) { _mm512_storeu_si512(p, v); }
  static vec xor_(vec a, vec b) { return _mm512_xor_si512(a, b); }
  static vec add64(vec a, vec b) { return _mm512_add_epi64(a, b); }
  static vec mul_lo32_hi32(vec v) { return _mm512_mul_epu32(v, _mm512_srli_epi64(v, 32)); }
  /// 64-bit lane i -> lane i^1 (per-128-bit shuffle, same pattern as AVX2).
  static vec swap_pairs(vec v) { return _mm512_shuffle_epi32(v, _MM_PERM_BADC); }

  template <unsigned kElem>
  static vec bswap(vec v) {
    if constexpr (kElem == 2) {
      const __m512i ctl = _mm512_broadcast_i32x4(
          _mm_setr_epi8(1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14));
      return _mm512_shuffle_epi8(v, ctl);
    } else if constexpr (kElem == 4) {
      const __m512i ctl = _mm512_broadcast_i32x4(
          _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12));
      return _mm512_shuffle_epi8(v, ctl);
    } else {
      const __m512i ctl = _mm512_broadcast_i32x4(
          _mm_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8));
      return _mm512_shuffle_epi8(v, ctl);
    }
  }
};

uint64_t fingerprint_avx512(const std::byte* p, size_t n) {
  return detail::fingerprint_shell(p, n, detail::fp_accumulate_vec<Avx512>);
}

void copy_avx512(std::byte* dst, const std::byte* src, size_t n) {
  detail::copy_vec<Avx512>(dst, src, n);
}

template <unsigned kElem>
void bswap_avx512(std::byte* dst, const std::byte* src, size_t n) {
  detail::bswap_vec<Avx512, kElem>(dst, src, n);
}

void widen_avx512(std::byte* dst, const std::byte* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i in = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 4 * i));
    _mm512_storeu_si512(dst + 8 * i, _mm512_cvtepi32_epi64(in));
  }
  for (; i < n; ++i) detail::widen_one(dst + 8 * i, src + 4 * i);
}

void narrow_avx512(std::byte* dst, const std::byte* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i in = _mm512_loadu_si512(src + 8 * i);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4 * i), _mm512_cvtepi64_epi32(in));
  }
  for (; i < n; ++i) detail::narrow_one(dst + 4 * i, src + 8 * i);
}

size_t mismatch_avx512(const std::byte* a, const std::byte* b, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __mmask64 eq = _mm512_cmpeq_epi8_mask(_mm512_loadu_si512(a + i),
                                                _mm512_loadu_si512(b + i));
    if (eq != ~static_cast<__mmask64>(0)) {
      return i + static_cast<size_t>(std::countr_zero(~static_cast<uint64_t>(eq)));
    }
  }
  return detail::mismatch_tail(a, b, i, n);
}

void gather64_avx512(std::byte* dst, const std::byte* src, size_t stride, size_t n) {
  const long long s = static_cast<long long>(stride);
  const __m512i vidx = _mm512_setr_epi64(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_i64gather_epi64(vidx, src + i * stride, 1);
    _mm512_storeu_si512(dst + 8 * i, v);
  }
  detail::gather64_tail(dst, src, stride, i, n);
}

constexpr Ops kAvx512Table = {
    Isa::kAvx512,    fingerprint_avx512, copy_avx512,   bswap_avx512<2>,
    bswap_avx512<4>, bswap_avx512<8>,    widen_avx512,  narrow_avx512,
    mismatch_avx512, gather64_avx512,
};

}  // namespace

const Ops* avx512_ops() { return &kAvx512Table; }

}  // namespace starfish::util::simd

#else  // !(__AVX512F__ && __AVX512BW__)

namespace starfish::util::simd {
const Ops* avx512_ops() { return nullptr; }
}  // namespace starfish::util::simd

#endif
