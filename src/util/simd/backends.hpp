// Internal: per-ISA table accessors, one per backend translation unit.
// Each returns a pointer to a static Ops table, or nullptr when the backend
// is not compiled into this binary (wrong architecture, or the build was
// configured with -DSTARFISH_SIMD=scalar). dispatch.cpp combines these with
// the runtime CPU probe; nothing else may call them.
#pragma once

#include "util/simd/simd.hpp"

namespace starfish::util::simd {

const Ops* scalar_ops();
const Ops* avx2_ops();
const Ops* avx512_ops();
const Ops* neon_ops();

}  // namespace starfish::util::simd
