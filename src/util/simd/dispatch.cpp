// Runtime table selection: CPU probe + STARFISH_SIMD override.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/simd/backends.hpp"
#include "util/simd/simd.hpp"

namespace starfish::util::simd {

namespace {

/// Highest-preference usable level (table() already folds the CPU probe in).
const Ops* best_table() {
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (const Ops* t = table(isa)) return t;
  }
  return table(Isa::kScalar);
}

const Ops* select_from_env() {
  const char* env = std::getenv("STARFISH_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "native") == 0) return best_table();
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (std::strcmp(env, isa_name(isa)) != 0) continue;
    if (const Ops* t = table(isa)) return t;
    // Never run an unsupported level: an explicit-but-unavailable request
    // degrades to the reference table (the conservative choice for the
    // scalar-forced test tiers this override exists for).
    std::fprintf(stderr, "starfish: STARFISH_SIMD=%s not available on this host/build, using scalar\n",
                 env);
    return table(Isa::kScalar);
  }
  std::fprintf(stderr, "starfish: unknown STARFISH_SIMD=%s (want scalar|avx2|avx512|neon|native), using native\n",
               env);
  return best_table();
}

std::atomic<const Ops*> g_ops{nullptr};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kNeon: return "neon";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "?";
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    f.avx2 = __builtin_cpu_supports("avx2");
    f.avx512 = __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
#elif defined(__aarch64__)
    f.neon = true;
#endif
    return f;
  }();
  return features;
}

const Ops* table(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return scalar_ops();
    case Isa::kNeon: return cpu_features().neon ? neon_ops() : nullptr;
    case Isa::kAvx2: return cpu_features().avx2 ? avx2_ops() : nullptr;
    case Isa::kAvx512: return cpu_features().avx512 ? avx512_ops() : nullptr;
  }
  return nullptr;
}

std::vector<Isa> available() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512}) {
    if (table(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

const Ops& ops() {
  const Ops* t = g_ops.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first calls select the same table.
    t = select_from_env();
    g_ops.store(t, std::memory_order_release);
  }
  return *t;
}

Isa level() { return ops().isa; }

const Ops& force(Isa isa) {
  const Ops* t = table(isa);
  if (t == nullptr) t = table(Isa::kScalar);
  g_ops.store(t, std::memory_order_release);
  return *t;
}

}  // namespace starfish::util::simd
