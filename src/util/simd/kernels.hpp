// Generic kernel bodies shared by the per-ISA translation units.
//
// Each backend TU (scalar.cpp, avx2.cpp, avx512.cpp, neon.cpp) defines a
// small fixed-width vector type — N 64-bit lanes with load/store, xor, add,
// 32x32->64 multiply, pair-swap shuffle and byteswap — and instantiates the
// templates below with it. The kernels are written lane-by-lane so every
// instantiation computes the same function; only the number of lanes
// retired per step differs.
//
// Everything here is `static` (internal linkage) on purpose: these bodies
// are compiled once per backend TU under that TU's -m flags. A vague
// `inline` would merge the instantiations at link time and could leave the
// AVX-compiled copy as the survivor, executing AVX instructions on the
// scalar path of a machine without them.
//
// Tail handling (the scheme every kernel shares): the vector body retires
// whole stripes/registers only; the remainder runs through the *same*
// scalar epilogue in every backend. For the fingerprint that epilogue is
// the 8/4/1-byte XXH64-style tail below; for byteswap/widen/narrow it is a
// per-element loop. Identical epilogue + lane-exact body = bit-identical
// kernels, which is what the differential suite pins.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace starfish::util::simd::detail {

// XXH64/XXH3 primes (shared with the pre-PR9 fingerprint).
inline constexpr uint64_t kPrime1 = 11400714785074694791ull;
inline constexpr uint64_t kPrime2 = 14029467366897019727ull;
inline constexpr uint64_t kPrime3 = 1609587929392839161ull;
inline constexpr uint64_t kPrime4 = 9650029242287828579ull;
inline constexpr uint64_t kPrime5 = 2870177450012600261ull;

/// Per-lane accumulator seeds and xor-keys for the 8-lane wide fingerprint
/// (64-byte stripes). Constants only feed mixing, so distinctness is all
/// that matters; these extend the old 4-register AVX2 seeds to 8 lanes.
inline constexpr uint64_t kFpInit[8] = {
    kPrime3, 0ull - kPrime1, kPrime1,           kPrime2,
    kPrime4, 0ull - kPrime2, kPrime5,           kPrime1 + kPrime2,
};
inline constexpr uint64_t kFpKey[8] = {
    kPrime1,           kPrime2,           kPrime3,           0ull - kPrime2,
    kPrime1 ^ kPrime5, kPrime2 ^ kPrime4, kPrime3 ^ kPrime1, kPrime5,
};

static inline uint64_t rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

static inline uint64_t load_le64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) v = __builtin_bswap64(v);
  return v;
}

static inline uint64_t avalanche64(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

/// One fingerprint lane step, the function every backend must reproduce:
///   acc += lo32(data ^ key) * hi32(data ^ key) + data_of_pair_lane
/// (the XXH3 accumulate: a non-commutative 32x32 multiply of the keyed
/// word plus the unkeyed neighbor, so lane order and pairing both matter).
static inline uint64_t fp_lane_step(uint64_t acc, uint64_t data, uint64_t pair, uint64_t key) {
  const uint64_t mixed = data ^ key;
  return acc + (mixed & 0xffffffffull) * (mixed >> 32) + pair;
}

/// Scalar reference stripe loop (also the body of the kScalar table).
static inline void fp_accumulate_scalar(uint64_t acc[8], const std::byte* p, size_t stripes) {
  for (size_t s = 0; s < stripes; ++s) {
    const std::byte* stripe = p + s * 64;
    uint64_t d[8];
    for (int i = 0; i < 8; ++i) d[i] = load_le64(stripe + 8 * i);
    for (int i = 0; i < 8; ++i) acc[i] = fp_lane_step(acc[i], d[i], d[i ^ 1], kFpKey[i]);
  }
}

/// Vector stripe loop: B supplies `vec` (B::kLanes u64 lanes, kLanes in
/// {2,4,8}), loadu/load64/storeu64, xor_/add64, mul_lo32_hi32 and
/// swap_pairs (lane i -> lane i^1, pairs never straddle a register because
/// kLanes is even).
template <class B>
static inline void fp_accumulate_vec(uint64_t acc[8], const std::byte* p, size_t stripes) {
  constexpr size_t kW = B::kLanes;
  constexpr size_t kR = 8 / kW;
  typename B::vec a[kR], key[kR];
  for (size_t r = 0; r < kR; ++r) {
    a[r] = B::load64(acc + r * kW);
    key[r] = B::load64(kFpKey + r * kW);
  }
  // A stripe's contribution (mul + pair) does not depend on acc, and u64
  // addition is associative and commutative mod 2^64, so summing the even
  // and odd stripes in two independent accumulators is bit-identical to
  // the scalar reference's sequential order while halving the loop-carried
  // add chain (the differential suite pins the identity).
  auto contribution = [&](const std::byte* stripe, size_t r) {
    const typename B::vec data = B::loadu(stripe + r * kW * 8);
    const typename B::vec mixed = B::xor_(data, key[r]);
    return B::add64(B::mul_lo32_hi32(mixed), B::swap_pairs(data));
  };
  typename B::vec c0[kR], c1[kR];
  for (size_t r = 0; r < kR; ++r) {
    c0[r] = B::xor_(key[r], key[r]);  // zero
    c1[r] = c0[r];
  }
  size_t s = 0;
  for (; s + 2 <= stripes; s += 2) {
    const std::byte* stripe = p + s * 64;
    for (size_t r = 0; r < kR; ++r) c0[r] = B::add64(c0[r], contribution(stripe, r));
    for (size_t r = 0; r < kR; ++r) c1[r] = B::add64(c1[r], contribution(stripe + 64, r));
  }
  if (s < stripes) {
    for (size_t r = 0; r < kR; ++r) c0[r] = B::add64(c0[r], contribution(p + s * 64, r));
  }
  for (size_t r = 0; r < kR; ++r) {
    B::storeu64(acc + r * kW, B::add64(a[r], B::add64(c0[r], c1[r])));
  }
}

/// Shared fingerprint shell: stripe accumulation (via `acc_fn`, the only
/// ISA-dependent part), lane merge, then the common scalar tail.
template <class AccFn>
static inline uint64_t fingerprint_shell(const std::byte* p, size_t n, AccFn acc_fn) {
  uint64_t h;
  size_t i = 0;
  if (n >= 64) {
    uint64_t acc[8];
    std::memcpy(acc, kFpInit, sizeof(acc));
    const size_t stripes = n / 64;
    acc_fn(acc, p, stripes);
    i = stripes * 64;
    h = static_cast<uint64_t>(n) * kPrime1;
    for (uint64_t lane : acc) h = (h ^ lane) * kPrime1 + kPrime3;
  } else {
    h = kPrime5 + static_cast<uint64_t>(n) * kPrime1;
  }
  for (; i + 8 <= n; i += 8) {
    h = rotl64(h ^ (rotl64(load_le64(p + i) * kPrime2, 31) * kPrime1), 27) * kPrime1 + kPrime4;
  }
  if (i + 4 <= n) {
    uint32_t v;
    std::memcpy(&v, p + i, sizeof(v));
    if constexpr (std::endian::native == std::endian::big) v = __builtin_bswap32(v);
    h = rotl64(h ^ (static_cast<uint64_t>(v) * kPrime1), 23) * kPrime2 + kPrime3;
    i += 4;
  }
  for (; i < n; ++i) {
    h = rotl64(h ^ (static_cast<uint64_t>(static_cast<uint8_t>(p[i])) * kPrime5), 11) * kPrime1;
  }
  return avalanche64(h);
}

/// Shared scalar epilogue of the mismatch kernel: first index in [i, n)
/// where a and b differ, or n. Also the whole scalar reference body.
static inline size_t mismatch_tail(const std::byte* a, const std::byte* b, size_t i, size_t n) {
  for (; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

/// Shared scalar epilogue of the strided gather: element j in [i, n) of dst
/// is the 8 bytes at src + j*stride. Also the whole scalar reference body
/// (pure data movement, so bit-identity across backends is structural).
static inline void gather64_tail(std::byte* dst, const std::byte* src, size_t stride, size_t i,
                                 size_t n) {
  for (; i < n; ++i) std::memcpy(dst + 8 * i, src + i * stride, 8);
}

// --- per-element scalar steps (the shared tails of the movement kernels) ---

template <unsigned kElem>
static inline void bswap_one(std::byte* dst, const std::byte* src) {
  if constexpr (kElem == 2) {
    uint16_t v;
    std::memcpy(&v, src, 2);
    v = __builtin_bswap16(v);
    std::memcpy(dst, &v, 2);
  } else if constexpr (kElem == 4) {
    uint32_t v;
    std::memcpy(&v, src, 4);
    v = __builtin_bswap32(v);
    std::memcpy(dst, &v, 4);
  } else {
    uint64_t v;
    std::memcpy(&v, src, 8);
    v = __builtin_bswap64(v);
    std::memcpy(dst, &v, 8);
  }
}

static inline void widen_one(std::byte* dst, const std::byte* src) {
  int32_t v;
  std::memcpy(&v, src, 4);
  const int64_t w = v;
  std::memcpy(dst, &w, 8);
}

static inline void narrow_one(std::byte* dst, const std::byte* src) {
  int64_t v;
  std::memcpy(&v, src, 8);
  const int32_t w = static_cast<int32_t>(v);  // truncate (VM ints already wrapped)
  std::memcpy(dst, &w, 4);
}

/// Vector byteswap: whole registers through B::bswap<kElem>, remainder
/// element-wise. Safe in place — each element is read before it is written.
template <class B, unsigned kElem>
static inline void bswap_vec(std::byte* dst, const std::byte* src, size_t n) {
  constexpr size_t kVecBytes = B::kLanes * 8;
  const size_t total = n * kElem;
  size_t i = 0;
  for (; i + kVecBytes <= total; i += kVecBytes) {
    B::storeu(dst + i, B::template bswap<kElem>(B::loadu(src + i)));
  }
  for (; i < total; i += kElem) bswap_one<kElem>(dst + i, src + i);
}

/// Vector copy: two registers per iteration, memcpy for the sub-register
/// tail (exact, and still branch-cheap for the small-run case).
template <class B>
static inline void copy_vec(std::byte* dst, const std::byte* src, size_t n) {
  constexpr size_t kVecBytes = B::kLanes * 8;
  size_t i = 0;
  for (; i + 2 * kVecBytes <= n; i += 2 * kVecBytes) {
    const typename B::vec a = B::loadu(src + i);
    const typename B::vec b = B::loadu(src + i + kVecBytes);
    B::storeu(dst + i, a);
    B::storeu(dst + i + kVecBytes, b);
  }
  for (; i + kVecBytes <= n; i += kVecBytes) B::storeu(dst + i, B::loadu(src + i));
  if (i < n) std::memcpy(dst + i, src + i, n - i);
}

}  // namespace starfish::util::simd::detail
