// NEON backend: 2 x 64-bit lanes per register. Advanced SIMD is baseline on
// aarch64, so the TU needs no extra compile flags; on other targets it is a
// nullptr stub. Untested on x86 CI — kept deliberately close to the generic
// kernel shapes so the differential suite on an arm host is the proof.
#include "util/simd/backends.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "util/simd/kernels.hpp"

namespace starfish::util::simd {
namespace {

struct Neon {
  using vec = uint64x2_t;
  static constexpr size_t kLanes = 2;

  static vec loadu(const std::byte* p) {
    return vreinterpretq_u64_u8(vld1q_u8(reinterpret_cast<const uint8_t*>(p)));
  }
  static void storeu(std::byte* p, vec v) {
    vst1q_u8(reinterpret_cast<uint8_t*>(p), vreinterpretq_u8_u64(v));
  }
  static vec load64(const uint64_t* p) { return vld1q_u64(p); }
  static void storeu64(uint64_t* p, vec v) { vst1q_u64(p, v); }
  static vec xor_(vec a, vec b) { return veorq_u64(a, b); }
  static vec add64(vec a, vec b) { return vaddq_u64(a, b); }
  static vec mul_lo32_hi32(vec v) {
    const uint32x2_t lo = vmovn_u64(v);
    const uint32x2_t hi = vshrn_n_u64(v, 32);
    return vmull_u32(lo, hi);
  }
  static vec swap_pairs(vec v) { return vextq_u64(v, v, 1); }

  template <unsigned kElem>
  static vec bswap(vec v) {
    const uint8x16_t b = vreinterpretq_u8_u64(v);
    if constexpr (kElem == 2) {
      return vreinterpretq_u64_u8(vrev16q_u8(b));
    } else if constexpr (kElem == 4) {
      return vreinterpretq_u64_u8(vrev32q_u8(b));
    } else {
      return vreinterpretq_u64_u8(vrev64q_u8(b));
    }
  }
};

uint64_t fingerprint_neon(const std::byte* p, size_t n) {
  return detail::fingerprint_shell(p, n, detail::fp_accumulate_vec<Neon>);
}

void copy_neon(std::byte* dst, const std::byte* src, size_t n) {
  detail::copy_vec<Neon>(dst, src, n);
}

template <unsigned kElem>
void bswap_neon(std::byte* dst, const std::byte* src, size_t n) {
  detail::bswap_vec<Neon, kElem>(dst, src, n);
}

void widen_neon(std::byte* dst, const std::byte* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int32x2_t in = vld1_s32(reinterpret_cast<const int32_t*>(src + 4 * i));
    vst1q_s64(reinterpret_cast<int64_t*>(dst + 8 * i), vmovl_s32(in));
  }
  for (; i < n; ++i) detail::widen_one(dst + 8 * i, src + 4 * i);
}

void narrow_neon(std::byte* dst, const std::byte* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t in = vld1q_s64(reinterpret_cast<const int64_t*>(src + 8 * i));
    vst1_s32(reinterpret_cast<int32_t*>(dst + 4 * i), vmovn_s64(in));
  }
  for (; i < n; ++i) detail::narrow_one(dst + 4 * i, src + 8 * i);
}

size_t mismatch_neon(const std::byte* a, const std::byte* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t va = vld1q_u8(reinterpret_cast<const uint8_t*>(a + i));
    const uint8x16_t vb = vld1q_u8(reinterpret_cast<const uint8_t*>(b + i));
    const uint64x2_t eq = vreinterpretq_u64_u8(vceqq_u8(va, vb));
    const uint64_t lo = vgetq_lane_u64(eq, 0);
    if (lo != ~0ull) return i + static_cast<size_t>(std::countr_zero(~lo)) / 8;
    const uint64_t hi = vgetq_lane_u64(eq, 1);
    if (hi != ~0ull) return i + 8 + static_cast<size_t>(std::countr_zero(~hi)) / 8;
  }
  return detail::mismatch_tail(a, b, i, n);
}

void gather64_neon(std::byte* dst, const std::byte* src, size_t stride, size_t n) {
  // NEON has no gather; the scalar loop already saturates the load ports.
  detail::gather64_tail(dst, src, stride, 0, n);
}

constexpr Ops kNeonTable = {
    Isa::kNeon,    fingerprint_neon, copy_neon,   bswap_neon<2>,
    bswap_neon<4>, bswap_neon<8>,    widen_neon,  narrow_neon,
    mismatch_neon, gather64_neon,
};

}  // namespace

const Ops* neon_ops() { return &kNeonTable; }

}  // namespace starfish::util::simd

#else  // !__aarch64__

namespace starfish::util::simd {
const Ops* neon_ops() { return nullptr; }
}  // namespace starfish::util::simd

#endif
