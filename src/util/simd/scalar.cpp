// Scalar reference kernels: the semantics every vector backend must match.
// Plain element loops, no intrinsics, no memcpy bulk tricks on the main
// loops — this table is what the differential suite and the scalar-forced
// sanitizer tiers compare against, so clarity beats throughput here.
#include "util/simd/backends.hpp"
#include "util/simd/kernels.hpp"

namespace starfish::util::simd {
namespace {

uint64_t fingerprint_scalar(const std::byte* p, size_t n) {
  return detail::fingerprint_shell(p, n, detail::fp_accumulate_scalar);
}

void copy_scalar(std::byte* dst, const std::byte* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[i];  // byte-loop reference
}

template <unsigned kElem>
void bswap_scalar(std::byte* dst, const std::byte* src, size_t n) {
  for (size_t i = 0; i < n * kElem; i += kElem) detail::bswap_one<kElem>(dst + i, src + i);
}

void widen_scalar(std::byte* dst, const std::byte* src, size_t n) {
  for (size_t i = 0; i < n; ++i) detail::widen_one(dst + 8 * i, src + 4 * i);
}

void narrow_scalar(std::byte* dst, const std::byte* src, size_t n) {
  for (size_t i = 0; i < n; ++i) detail::narrow_one(dst + 4 * i, src + 8 * i);
}

size_t mismatch_scalar(const std::byte* a, const std::byte* b, size_t n) {
  return detail::mismatch_tail(a, b, 0, n);
}

void gather64_scalar(std::byte* dst, const std::byte* src, size_t stride, size_t n) {
  detail::gather64_tail(dst, src, stride, 0, n);
}

constexpr Ops kScalarTable = {
    Isa::kScalar,    fingerprint_scalar, copy_scalar,   bswap_scalar<2>,
    bswap_scalar<4>, bswap_scalar<8>,    widen_scalar,  narrow_scalar,
    mismatch_scalar, gather64_scalar,
};

}  // namespace

const Ops* scalar_ops() { return &kScalarTable; }

}  // namespace starfish::util::simd
