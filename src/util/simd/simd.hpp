// Runtime-dispatched SIMD kernels for the data plane.
//
// The per-byte work left on Starfish's hot paths — page fingerprints for
// incremental checkpoints, portable-image endianness/word conversion, MPI
// datatype pack/unpack — runs through this one small kernel table. Each
// kernel exists in up to four implementations (scalar reference, AVX2,
// AVX-512, NEON) compiled into separate translation units; a CPU-feature
// probe selects one table at startup, overridable with
// STARFISH_SIMD=scalar|avx2|avx512|neon|native for tests and A/B benches.
//
// The contract that makes dispatch safe for a deterministic simulator: every
// kernel is *bit-identical* across implementations. The wide fingerprint is
// defined lane-by-lane so the scalar reference and the vector bodies compute
// the same function; byteswap/widen/narrow/copy are pure data movement. A
// seeded differential suite (tests/simd_differential_test.cpp) pins this for
// every level the build carries, so checkpoint bytes, image payloads and
// packed messages do not depend on the host's ISA (DESIGN.md section 16).
//
// The scalar table is the *reference semantics* implementation — simple,
// obviously correct loops, not tuned — which is what the differential tests
// and the scalar-forced sanitizer tiers run against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace starfish::util::simd {

/// Instruction-set levels a kernel table can be built for, in preference
/// order (dispatch picks the highest supported one).
enum class Isa : uint8_t { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

const char* isa_name(Isa isa);

/// One-shot CPU feature probe (the only place in the tree that calls
/// __builtin_cpu_supports; call sites must never probe locally).
struct CpuFeatures {
  bool avx2 = false;    ///< x86-64 AVX2
  bool avx512 = false;  ///< x86-64 AVX-512 F+BW (all the kernels need)
  bool neon = false;    ///< aarch64 Advanced SIMD (baseline there)
};
const CpuFeatures& cpu_features();

/// Kernel table. All pointers are always non-null in a table returned by
/// table()/ops(). Buffers are raw byte pointers so callers can hand
/// unaligned slices of wire buffers; kernels use unaligned loads/stores.
struct Ops {
  Isa isa;

  /// 64-bit content fingerprint (page-change detection, replica warm
  /// re-replication). Bit-identical across ISA levels; seed folded length.
  uint64_t (*fingerprint)(const std::byte* p, size_t n);

  /// Bulk copy of n bytes. dst and src must not overlap (memcpy rules).
  void (*copy)(std::byte* dst, const std::byte* src, size_t n);

  /// Byte-reverse n elements of 2/4/8 bytes each. In-place (dst == src) or
  /// fully disjoint; partial overlap is not allowed.
  void (*bswap16)(std::byte* dst, const std::byte* src, size_t n);
  void (*bswap32)(std::byte* dst, const std::byte* src, size_t n);
  void (*bswap64)(std::byte* dst, const std::byte* src, size_t n);

  /// Sign-extend n host-order int32 into n int64 (dst, src disjoint).
  void (*widen_i32_i64)(std::byte* dst, const std::byte* src, size_t n);
  /// Truncate n host-order int64 into n int32 (dst, src disjoint).
  void (*narrow_i64_i32)(std::byte* dst, const std::byte* src, size_t n);

  /// First index at which a and b differ, or n when the ranges are equal
  /// (LZ match extension, incremental page change detection).
  size_t (*mismatch)(const std::byte* a, const std::byte* b, size_t n);

  /// Strided gather: dst receives n contiguous 8-byte elements, element i
  /// read from the 8 bytes at src + i*stride (stride >= 8; dst and the
  /// source range must be disjoint). The AoS -> column gather of
  /// portable-image encode (32-byte Value stride).
  void (*gather64)(std::byte* dst, const std::byte* src, size_t stride, size_t n);
};

/// Table for one level, or nullptr when that level is not compiled into
/// this binary or not supported by this CPU. table(Isa::kScalar) never
/// returns nullptr.
const Ops* table(Isa isa);

/// Levels usable in this process (always contains kScalar).
std::vector<Isa> available();

/// The dispatched table: selected once on first use from cpu_features(),
/// honoring STARFISH_SIMD. Subsequent calls are one relaxed atomic load.
const Ops& ops();

/// The level ops() dispatched to (feeds the sim.simd.dispatch gauge).
Isa level();

/// Repoints the global table (tests/benches only; returns the previous
/// table so callers can restore it). Falls back to scalar when `isa` is
/// unavailable. Not safe to race against kernels running on other threads.
const Ops& force(Isa isa);

// --- convenience wrappers over the dispatched table ---

inline uint64_t fingerprint(const std::byte* p, size_t n) { return ops().fingerprint(p, n); }
inline void copy(std::byte* dst, const std::byte* src, size_t n) { ops().copy(dst, src, n); }
inline void bswap16(std::byte* dst, const std::byte* src, size_t n) { ops().bswap16(dst, src, n); }
inline void bswap32(std::byte* dst, const std::byte* src, size_t n) { ops().bswap32(dst, src, n); }
inline void bswap64(std::byte* dst, const std::byte* src, size_t n) { ops().bswap64(dst, src, n); }
inline void widen_i32_i64(std::byte* dst, const std::byte* src, size_t n) {
  ops().widen_i32_i64(dst, src, n);
}
inline void narrow_i64_i32(std::byte* dst, const std::byte* src, size_t n) {
  ops().narrow_i64_i32(dst, src, n);
}
inline size_t mismatch(const std::byte* a, const std::byte* b, size_t n) {
  return ops().mismatch(a, b, n);
}
inline void gather64(std::byte* dst, const std::byte* src, size_t stride, size_t n) {
  ops().gather64(dst, src, stride, n);
}

}  // namespace starfish::util::simd
