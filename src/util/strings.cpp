#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace starfish::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<int64_t> parse_int(std::string_view s) {
  s = trim(s);
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string format_bytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f GB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f MB", static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f s", seconds);
  return buf;
}

}  // namespace starfish::util
