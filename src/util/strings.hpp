// Small string helpers used by the ASCII management protocol and formatters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace starfish::util {

std::vector<std::string> split(std::string_view s, char sep);
/// Splits on runs of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);
std::string_view trim(std::string_view s);
std::string to_upper(std::string_view s);
std::string to_lower(std::string_view s);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::optional<int64_t> parse_int(std::string_view s);

/// "632 KB", "1.3 MB" style human-readable byte counts.
std::string format_bytes(uint64_t bytes);
/// Seconds with µs precision, e.g. "0.104061 s".
std::string format_seconds(double seconds);

}  // namespace starfish::util
