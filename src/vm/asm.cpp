// Two-pass assembler for the tiny text bytecode format used by tests and
// example programs. Grammar per line (comments start with '#'):
//   func <name> <nargs> <nlocals>
//   <label>:
//   <mnemonic> [operand]
// Jump targets are label names; `call` takes a function name; `syscall`
// takes a syscall name (print, rank, world_size, send_to, recv_from,
// checkpoint, sleep_ms, spin).
#include <map>
#include <optional>

#include "util/strings.hpp"
#include "vm/bytecode.hpp"

namespace starfish::vm {

namespace {

const std::map<std::string, Op> kMnemonics = {
    {"nop", Op::kNop},           {"push_int", Op::kPushInt},
    {"push_float", Op::kPushFloat}, {"push_bool", Op::kPushBool},
    {"push_unit", Op::kPushUnit}, {"pop", Op::kPop},
    {"dup", Op::kDup},           {"swap", Op::kSwap},
    {"load_local", Op::kLoadLocal}, {"store_local", Op::kStoreLocal},
    {"load_global", Op::kLoadGlobal}, {"store_global", Op::kStoreGlobal},
    {"add", Op::kAdd},           {"sub", Op::kSub},
    {"mul", Op::kMul},           {"div", Op::kDiv},
    {"mod", Op::kMod},           {"neg", Op::kNeg},
    {"fadd", Op::kFAdd},         {"fsub", Op::kFSub},
    {"fmul", Op::kFMul},         {"fdiv", Op::kFDiv},
    {"eq", Op::kEq},             {"ne", Op::kNe},
    {"lt", Op::kLt},             {"le", Op::kLe},
    {"gt", Op::kGt},             {"ge", Op::kGe},
    {"and", Op::kAnd},           {"or", Op::kOr},
    {"not", Op::kNot},           {"i2f", Op::kI2F},
    {"f2i", Op::kF2I},           {"jmp", Op::kJmp},
    {"jmp_if_false", Op::kJmpIfFalse}, {"call", Op::kCall},
    {"ret", Op::kRet},           {"halt", Op::kHalt},
    {"new_array", Op::kNewArray}, {"new_bytes", Op::kNewBytes},
    {"aload", Op::kALoad},       {"astore", Op::kAStore},
    {"alen", Op::kALen},         {"syscall", Op::kSyscall},
};

const std::map<std::string, Syscall> kSyscalls = {
    {"print", Syscall::kPrint},         {"rank", Syscall::kRank},
    {"world_size", Syscall::kWorldSize}, {"send_to", Syscall::kSendTo},
    {"recv_from", Syscall::kRecvFrom},  {"checkpoint", Syscall::kCheckpoint},
    {"sleep_ms", Syscall::kSleepMs},    {"spin", Syscall::kSpin},
    {"barrier", Syscall::kBarrier},     {"allreduce_sum", Syscall::kAllreduceSum},
};

struct PendingJump {
  size_t fn;
  size_t instr;
  std::string label;
  int line_no;
};

struct PendingCall {
  size_t fn;
  size_t instr;
  std::string callee;
  int line_no;
};

util::Error err(int line, const std::string& what) {
  return util::Error::make("asm", "line " + std::to_string(line) + ": " + what);
}

}  // namespace

util::Result<Program> assemble(const std::string& source) {
  Program prog;
  // Per-function label table, resolved at end of each function.
  std::map<std::string, uint32_t> labels;
  std::vector<PendingJump> jumps;
  std::vector<PendingCall> calls;
  bool in_func = false;

  auto close_function = [&]() -> std::optional<util::Error> {
    for (const auto& j : jumps) {
      auto it = labels.find(j.label);
      if (it == labels.end()) return err(j.line_no, "unknown label '" + j.label + "'");
      prog.functions[j.fn].code[j.instr].imm_i = it->second;
    }
    jumps.clear();
    labels.clear();
    return std::nullopt;
  };

  int line_no = 0;
  for (const auto& raw_line : util::split(source, '\n')) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = util::trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    auto tokens = util::split_ws(line);
    const std::string& head = tokens[0];

    if (head == "func") {
      if (tokens.size() != 4) return err(line_no, "func needs: name nargs nlocals");
      if (in_func) {
        if (auto e = close_function()) return *e;
      }
      Function fn;
      fn.name = tokens[1];
      auto nargs = util::parse_int(tokens[2]);
      auto nlocals = util::parse_int(tokens[3]);
      if (!nargs || !nlocals || *nargs < 0 || *nlocals < *nargs) {
        return err(line_no, "bad arg/local counts");
      }
      fn.n_args = static_cast<uint32_t>(*nargs);
      fn.n_locals = static_cast<uint32_t>(*nlocals);
      prog.functions.push_back(std::move(fn));
      in_func = true;
      continue;
    }

    if (!in_func) return err(line_no, "instruction outside a function");
    Function& fn = prog.functions.back();

    if (head.size() > 1 && head.back() == ':') {
      if (tokens.size() != 1) return err(line_no, "label must be alone on its line");
      labels[head.substr(0, head.size() - 1)] = static_cast<uint32_t>(fn.code.size());
      continue;
    }

    auto op_it = kMnemonics.find(head);
    if (op_it == kMnemonics.end()) return err(line_no, "unknown mnemonic '" + head + "'");
    Instr instr;
    instr.op = op_it->second;

    switch (instr.op) {
      case Op::kPushInt:
      case Op::kPushBool:
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kLoadGlobal:
      case Op::kStoreGlobal: {
        if (tokens.size() != 2) return err(line_no, head + " needs an integer operand");
        auto v = util::parse_int(tokens[1]);
        if (!v) return err(line_no, "bad integer operand");
        instr.imm_i = *v;
        break;
      }
      case Op::kPushFloat: {
        if (tokens.size() != 2) return err(line_no, "push_float needs an operand");
        try {
          instr.imm_f = std::stod(tokens[1]);
        } catch (...) {
          return err(line_no, "bad float operand");
        }
        break;
      }
      case Op::kJmp:
      case Op::kJmpIfFalse: {
        if (tokens.size() != 2) return err(line_no, head + " needs a label");
        jumps.push_back({prog.functions.size() - 1, fn.code.size(), tokens[1], line_no});
        break;
      }
      case Op::kCall: {
        if (tokens.size() != 2) return err(line_no, "call needs a function name");
        calls.push_back({prog.functions.size() - 1, fn.code.size(), tokens[1], line_no});
        break;
      }
      case Op::kSyscall: {
        if (tokens.size() != 2) return err(line_no, "syscall needs a name");
        auto sys = kSyscalls.find(tokens[1]);
        if (sys == kSyscalls.end()) return err(line_no, "unknown syscall '" + tokens[1] + "'");
        instr.imm_i = static_cast<int64_t>(sys->second);
        break;
      }
      default:
        if (tokens.size() != 1) return err(line_no, head + " takes no operand");
        break;
    }
    fn.code.push_back(instr);
  }

  if (in_func) {
    if (auto e = close_function()) return *e;
  }
  // Calls may reference functions defined later; resolve after the whole
  // file is parsed.
  for (const auto& c : calls) {
    const int idx = prog.function_index(c.callee);
    if (idx < 0) return err(c.line_no, "unknown function '" + c.callee + "'");
    prog.functions[c.fn].code[c.instr].imm_i = idx;
  }
  return prog;
}

}  // namespace starfish::vm
