// Two-pass assembler for the tiny text bytecode format used by tests and
// example programs. Grammar per line (comments start with '#'):
//   func <name> <nargs> <nlocals>
//   <label>:
//   <mnemonic> [operand]
// Jump targets are label names; `call` takes a function name; `syscall`
// takes a syscall name (print, rank, world_size, send_to, recv_from,
// checkpoint, sleep_ms, spin).
#include <map>
#include <optional>

#include "util/strings.hpp"
#include "vm/bytecode.hpp"
#include "vm/exec.hpp"

namespace starfish::vm {

namespace {

const std::map<std::string, Op> kMnemonics = {
    {"nop", Op::kNop},           {"push_int", Op::kPushInt},
    {"push_float", Op::kPushFloat}, {"push_bool", Op::kPushBool},
    {"push_unit", Op::kPushUnit}, {"pop", Op::kPop},
    {"dup", Op::kDup},           {"swap", Op::kSwap},
    {"load_local", Op::kLoadLocal}, {"store_local", Op::kStoreLocal},
    {"load_global", Op::kLoadGlobal}, {"store_global", Op::kStoreGlobal},
    {"add", Op::kAdd},           {"sub", Op::kSub},
    {"mul", Op::kMul},           {"div", Op::kDiv},
    {"mod", Op::kMod},           {"neg", Op::kNeg},
    {"fadd", Op::kFAdd},         {"fsub", Op::kFSub},
    {"fmul", Op::kFMul},         {"fdiv", Op::kFDiv},
    {"eq", Op::kEq},             {"ne", Op::kNe},
    {"lt", Op::kLt},             {"le", Op::kLe},
    {"gt", Op::kGt},             {"ge", Op::kGe},
    {"and", Op::kAnd},           {"or", Op::kOr},
    {"not", Op::kNot},           {"i2f", Op::kI2F},
    {"f2i", Op::kF2I},           {"jmp", Op::kJmp},
    {"jmp_if_false", Op::kJmpIfFalse}, {"call", Op::kCall},
    {"ret", Op::kRet},           {"halt", Op::kHalt},
    {"new_array", Op::kNewArray}, {"new_bytes", Op::kNewBytes},
    {"aload", Op::kALoad},       {"astore", Op::kAStore},
    {"alen", Op::kALen},         {"syscall", Op::kSyscall},
};

const std::map<std::string, Syscall> kSyscalls = {
    {"print", Syscall::kPrint},         {"rank", Syscall::kRank},
    {"world_size", Syscall::kWorldSize}, {"send_to", Syscall::kSendTo},
    {"recv_from", Syscall::kRecvFrom},  {"checkpoint", Syscall::kCheckpoint},
    {"sleep_ms", Syscall::kSleepMs},    {"spin", Syscall::kSpin},
    {"barrier", Syscall::kBarrier},     {"allreduce_sum", Syscall::kAllreduceSum},
};

struct PendingJump {
  size_t fn;
  size_t instr;
  std::string label;
  int line_no;
};

struct PendingCall {
  size_t fn;
  size_t instr;
  std::string callee;
  int line_no;
};

util::Error err(int line, const std::string& what) {
  return util::Error::make("asm", "line " + std::to_string(line) + ": " + what);
}

}  // namespace

util::Result<Program> assemble(const std::string& source) {
  Program prog;
  // Per-function label table, resolved at end of each function.
  std::map<std::string, uint32_t> labels;
  std::vector<PendingJump> jumps;
  std::vector<PendingCall> calls;
  bool in_func = false;

  auto close_function = [&]() -> std::optional<util::Error> {
    for (const auto& j : jumps) {
      auto it = labels.find(j.label);
      if (it == labels.end()) return err(j.line_no, "unknown label '" + j.label + "'");
      prog.functions[j.fn].code[j.instr].imm_i = it->second;
    }
    jumps.clear();
    labels.clear();
    return std::nullopt;
  };

  int line_no = 0;
  for (const auto& raw_line : util::split(source, '\n')) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = util::trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    auto tokens = util::split_ws(line);
    const std::string& head = tokens[0];

    if (head == "func") {
      if (tokens.size() != 4) return err(line_no, "func needs: name nargs nlocals");
      if (in_func) {
        if (auto e = close_function()) return *e;
      }
      Function fn;
      fn.name = tokens[1];
      auto nargs = util::parse_int(tokens[2]);
      auto nlocals = util::parse_int(tokens[3]);
      if (!nargs || !nlocals || *nargs < 0 || *nlocals < *nargs) {
        return err(line_no, "bad arg/local counts");
      }
      fn.n_args = static_cast<uint32_t>(*nargs);
      fn.n_locals = static_cast<uint32_t>(*nlocals);
      prog.functions.push_back(std::move(fn));
      in_func = true;
      continue;
    }

    if (!in_func) return err(line_no, "instruction outside a function");
    Function& fn = prog.functions.back();

    if (head.size() > 1 && head.back() == ':') {
      if (tokens.size() != 1) return err(line_no, "label must be alone on its line");
      labels[head.substr(0, head.size() - 1)] = static_cast<uint32_t>(fn.code.size());
      continue;
    }

    auto op_it = kMnemonics.find(head);
    if (op_it == kMnemonics.end()) return err(line_no, "unknown mnemonic '" + head + "'");
    Instr instr;
    instr.op = op_it->second;

    switch (instr.op) {
      case Op::kPushInt:
      case Op::kPushBool:
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kLoadGlobal:
      case Op::kStoreGlobal: {
        if (tokens.size() != 2) return err(line_no, head + " needs an integer operand");
        auto v = util::parse_int(tokens[1]);
        if (!v) return err(line_no, "bad integer operand");
        instr.imm_i = *v;
        break;
      }
      case Op::kPushFloat: {
        if (tokens.size() != 2) return err(line_no, "push_float needs an operand");
        try {
          instr.imm_f = std::stod(tokens[1]);
        } catch (...) {
          return err(line_no, "bad float operand");
        }
        break;
      }
      case Op::kJmp:
      case Op::kJmpIfFalse: {
        if (tokens.size() != 2) return err(line_no, head + " needs a label");
        jumps.push_back({prog.functions.size() - 1, fn.code.size(), tokens[1], line_no});
        break;
      }
      case Op::kCall: {
        if (tokens.size() != 2) return err(line_no, "call needs a function name");
        calls.push_back({prog.functions.size() - 1, fn.code.size(), tokens[1], line_no});
        break;
      }
      case Op::kSyscall: {
        if (tokens.size() != 2) return err(line_no, "syscall needs a name");
        auto sys = kSyscalls.find(tokens[1]);
        if (sys == kSyscalls.end()) return err(line_no, "unknown syscall '" + tokens[1] + "'");
        instr.imm_i = static_cast<int64_t>(sys->second);
        break;
      }
      default:
        if (tokens.size() != 1) return err(line_no, head + " takes no operand");
        break;
    }
    fn.code.push_back(instr);
  }

  if (in_func) {
    if (auto e = close_function()) return *e;
  }
  // Calls may reference functions defined later; resolve after the whole
  // file is parsed.
  for (const auto& c : calls) {
    const int idx = prog.function_index(c.callee);
    if (idx < 0) return err(c.line_no, "unknown function '" + c.callee + "'");
    prog.functions[c.fn].code[c.instr].imm_i = idx;
  }
  return prog;
}

// ------------------------------------------------------------ peephole ----
//
// Superinstruction fusion over the decoded stream. The pass matches hot
// idioms on the ORIGINAL instruction sequence and rewrites only the entry
// at the idiom's first pc; the shadowed entries keep their own decodings so
// a jump into the middle of a fused region executes the tail unfused. A
// fused entry advances pc and the step count by the full component count,
// so execution histories — and the checkpoint images portable_encode cuts
// from them — are indistinguishable from the unfused interpreter's.
//
// Fusion requires every component to be verifier-fast: the superinstruction
// bodies elide the same checks the components' fast forms elide.

namespace {

bool is_int_arith(Op op) { return op == Op::kAdd || op == Op::kSub || op == Op::kMul; }
bool is_compare(Op op) {
  return op == Op::kEq || op == Op::kNe || op == Op::kLt || op == Op::kLe ||
         op == Op::kGt || op == Op::kGe;
}

}  // namespace

void peephole_fuse(const Function& fn, const FunctionFacts& facts,
                   std::vector<DecodedInstr>& code) {
  const size_t n = fn.code.size();
  auto fast_run = [&](size_t p, size_t len) {
    if (p + len > n) return false;
    for (size_t k = p; k < p + len; ++k) {
      if (!facts.fast[k]) return false;
    }
    return true;
  };

  for (size_t p = 0; p < n; ++p) {
    const Op op0 = fn.code[p].op;

    // load_local s, push_int c, add|sub, store_local d  ->  kFusedIncLocal
    if (op0 == Op::kLoadLocal && fast_run(p, 4) && fn.code[p + 1].op == Op::kPushInt &&
        (fn.code[p + 2].op == Op::kAdd || fn.code[p + 2].op == Op::kSub) &&
        fn.code[p + 3].op == Op::kStoreLocal) {
      DecodedInstr d;
      d.op = XOp::kFusedIncLocal;
      d.len = 4;
      d.aux = static_cast<uint8_t>(fn.code[p + 2].op);
      d.b = static_cast<uint32_t>(fn.code[p].imm_i);
      d.c = static_cast<uint32_t>(fn.code[p + 3].imm_i);
      d.imm.i = code[p + 1].imm.i;  // pre-wrapped by prepare_program
      code[p] = d;
      continue;
    }

    // load_local s, push_int c, <cmp>, jmp_if_false t  ->  kFusedLoadCmpBr
    // (cmp fast against a push_int => the local is proven Int)
    if (op0 == Op::kLoadLocal && fast_run(p, 4) && fn.code[p + 1].op == Op::kPushInt &&
        is_compare(fn.code[p + 2].op) && fn.code[p + 3].op == Op::kJmpIfFalse) {
      DecodedInstr d;
      d.op = XOp::kFusedLoadCmpBr;
      d.len = 4;
      d.aux = static_cast<uint8_t>(fn.code[p + 2].op);
      d.b = static_cast<uint32_t>(fn.code[p].imm_i);
      d.c = static_cast<uint32_t>(fn.code[p + 3].imm_i);
      d.imm.i = code[p + 1].imm.i;
      code[p] = d;
      continue;
    }

    // load_local a, load_local b, add|sub|mul [, store_local dst]
    if (op0 == Op::kLoadLocal && fn.code.size() > p + 2 &&
        fn.code[p + 1].op == Op::kLoadLocal && is_int_arith(fn.code[p + 2].op)) {
      if (fast_run(p, 4) && fn.code[p + 3].op == Op::kStoreLocal) {
        DecodedInstr d;
        d.op = XOp::kFusedLoadLoadArithSt;
        d.len = 4;
        d.aux = static_cast<uint8_t>(fn.code[p + 2].op);
        d.b = static_cast<uint32_t>(fn.code[p].imm_i);
        d.c = static_cast<uint32_t>(fn.code[p + 1].imm_i);
        d.imm.i = fn.code[p + 3].imm_i;
        code[p] = d;
        continue;
      }
      if (fast_run(p, 3)) {
        DecodedInstr d;
        d.op = XOp::kFusedLoadLoadArith;
        d.len = 3;
        d.aux = static_cast<uint8_t>(fn.code[p + 2].op);
        d.b = static_cast<uint32_t>(fn.code[p].imm_i);
        d.c = static_cast<uint32_t>(fn.code[p + 1].imm_i);
        code[p] = d;
        continue;
      }
    }

    // <cmp>, jmp_if_false t  ->  kFusedCmpBr
    if (is_compare(op0) && fast_run(p, 2) && fn.code[p + 1].op == Op::kJmpIfFalse) {
      DecodedInstr d;
      d.op = XOp::kFusedCmpBr;
      d.len = 2;
      d.aux = static_cast<uint8_t>(op0);
      d.b = static_cast<uint32_t>(fn.code[p + 1].imm_i);
      d.c = facts.operand_tag[p];  // proven operand class of the compare
      code[p] = d;
      continue;
    }
  }
}

}  // namespace starfish::vm
