// Bytecode definition for the Starfish VM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace starfish::vm {

enum class Op : uint8_t {
  kNop = 0,
  // Stack / constants.
  kPushInt,    ///< operand: imm_i
  kPushFloat,  ///< operand: imm_f
  kPushBool,   ///< operand: imm_i (0/1)
  kPushUnit,
  kPop,
  kDup,
  kSwap,
  // Locals / globals (operand: index).
  kLoadLocal,
  kStoreLocal,
  kLoadGlobal,
  kStoreGlobal,
  // Arithmetic / logic (integers wrap to machine word; / and % trap on 0).
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kFAdd, kFSub, kFMul, kFDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kI2F, kF2I,
  // Control (operand: target pc / function index).
  kJmp,
  kJmpIfFalse,
  kCall,   ///< operand: function index; args popped into locals[0..n)
  kRet,    ///< pops return value, pops frame, pushes value
  kHalt,
  // Heap.
  kNewArray,  ///< pops length; pushes ref (fields zeroed to unit)
  kALoad,     ///< pops index, ref; pushes element
  kAStore,    ///< pops value, index, ref
  kALen,      ///< pops ref; pushes length
  kNewBytes,  ///< pops length; pushes ref to byte object
  // Host escape: operand selects the syscall (see Syscall).
  kSyscall,
};

/// Host syscalls: the hooks the Starfish application module implements.
/// MPI-ish calls block the hosting fiber until satisfied.
enum class Syscall : uint8_t {
  kPrint = 0,      ///< pops a value, prints via host hook
  kRank = 1,       ///< pushes this process's rank
  kWorldSize = 2,  ///< pushes the number of processes
  kSendTo = 3,     ///< pops value, dest rank: send (tag 0)
  kRecvFrom = 4,   ///< pops src rank; pushes received value
  kCheckpoint = 5, ///< user-initiated checkpoint request (paper's downcall)
  kSleepMs = 6,    ///< pops milliseconds; advances virtual time
  kSpin = 7,       ///< pops loop count; pure compute (charged as CPU time)
  kBarrier = 8,       ///< synchronize all ranks (collective)
  kAllreduceSum = 9,  ///< pops an int; pushes the sum over all ranks
};

struct Instr {
  Op op = Op::kNop;
  int64_t imm_i = 0;
  double imm_f = 0.0;
};

struct Function {
  std::string name;
  uint32_t n_args = 0;
  uint32_t n_locals = 0;  ///< including args
  std::vector<Instr> code;
};

struct Program {
  std::vector<Function> functions;

  int function_index(const std::string& name) const {
    for (size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Assembles the tiny text format used by tests and examples. One
/// instruction per line; `func name nargs nlocals` opens a function; labels
/// are `label:` lines, referenced by name in jmp/jmp_if_false.
util::Result<Program> assemble(const std::string& source);

}  // namespace starfish::vm
