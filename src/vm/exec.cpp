#include "vm/exec.hpp"

namespace starfish::vm {

PreparedProgram prepare_program(const Program& program, const ProgramFacts& facts,
                                const sim::Machine& machine, bool fuse) {
  // Same wrap the interpreter applies at runtime; folding it into push_int
  // immediates here removes one shift pair per push on the hot path.
  const unsigned shift = machine.word_bytes >= 8 ? 0u : 32u;
  const auto wrap = [shift](int64_t v) {
    return static_cast<int64_t>(static_cast<uint64_t>(v) << shift) >> shift;
  };

  PreparedProgram out;
  out.functions.resize(program.functions.size());
  for (size_t f = 0; f < program.functions.size(); ++f) {
    const Function& fn = program.functions[f];
    const FunctionFacts& ff = facts.functions[f];
    PreparedFunction& pf = out.functions[f];
    pf.analyzed = ff.analyzed;
    pf.max_stack = ff.max_stack;
    pf.code.resize(fn.code.size());
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      const Instr& in = fn.code[pc];
      DecodedInstr d;
      if (!ff.analyzed || ff.fast[pc] == 0) {
        d.op = XOp::kChecked;  // defer to the original single-step
      } else {
        d.op = static_cast<XOp>(in.op);
        d.aux = ff.operand_tag[pc];
        switch (in.op) {
          case Op::kPushInt:
            d.imm.i = wrap(in.imm_i);
            break;
          case Op::kPushBool:
            d.imm.i = in.imm_i != 0 ? 1 : 0;
            break;
          case Op::kPushFloat:
            d.imm.f = in.imm_f;
            break;
          case Op::kJmp:
          case Op::kJmpIfFalse:
            // The runtime truncation to uint32 happens once, here.
            d.b = static_cast<uint32_t>(in.imm_i);
            break;
          default:
            d.imm.i = in.imm_i;
            break;
        }
        out.any_fast = true;
      }
      pf.code[pc] = d;
    }
    if (fuse && ff.analyzed) peephole_fuse(fn, ff, pf.code);
  }
  return out;
}

}  // namespace starfish::vm
