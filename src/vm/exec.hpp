// Prepared (decoded) code for the fast dispatcher.
//
// The interpreter never executes `Function::code` directly on its hot path.
// At construction it lowers each function into a DecodedInstr stream indexed
// by the ORIGINAL pc: entry `pc` holds the decoding that starts at that pc.
// A superinstruction at `pc` covers `len` original instructions; the entries
// it shadows (`pc+1 .. pc+len-1`) still hold their own valid decodings, so a
// jump into the middle of a fused region lands on ordinary code. Because
// frames keep original pc coordinates and `steps_executed` is charged one
// per ORIGINAL instruction, the execution history — and therefore every
// checkpoint image `ckpt::portable_encode` produces — is bit-identical to
// the unfused, unprepared interpreter's.
//
// Which entries may elide runtime checks is decided by the verifier
// (`vm::analyze`): an instruction whose stack depth and operand tags are
// proven at load time is lowered to its unchecked XOp; anything unproven
// (or proven to trap) is lowered to XOp::kChecked, which defers to the
// original fully-checked single-step — preserving every trap message.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/bytecode.hpp"
#include "vm/value.hpp"
#include "vm/verify.hpp"

namespace starfish::vm {

/// Extended opcode space of the fast loop. Values 0..kBaseOpCount-1 mirror
/// `Op` exactly (decode is a cast); the tail adds the checked escape and the
/// fused superinstructions. The dispatch table is indexed by this value, so
/// the numbering here and the label/case order in interp.cpp must agree.
enum class XOp : uint8_t {
  // --- base ops, numerically identical to Op ---
  kNop = 0,
  kPushInt, kPushFloat, kPushBool, kPushUnit,
  kPop, kDup, kSwap,
  kLoadLocal, kStoreLocal, kLoadGlobal, kStoreGlobal,
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kFAdd, kFSub, kFMul, kFDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kI2F, kF2I,
  kJmp, kJmpIfFalse, kCall, kRet, kHalt,
  kNewArray, kALoad, kAStore, kALen, kNewBytes,
  kSyscall,
  // --- escape: run the original checked single-step for this pc ---
  kChecked,
  // --- superinstructions (see peephole_fuse) ---
  kFusedIncLocal,       ///< load_local i, push_int c, add|sub, store_local i
  kFusedCmpBr,          ///< <compare>, jmp_if_false t
  kFusedLoadCmpBr,      ///< load_local i, push_int c, <compare>, jmp_if_false t
  kFusedLoadLoadArith,  ///< load_local a, load_local b, add|sub|mul
  kFusedLoadLoadArithSt,///< load_local a, load_local b, add|sub|mul, store_local d
  kCount,
};

constexpr size_t kXOpCount = static_cast<size_t>(XOp::kCount);
constexpr size_t kBaseOpCount = static_cast<size_t>(Op::kSyscall) + 1;

/// One decoded entry. Field use by XOp:
///  - base fast ops: `imm.i` / `imm.f` carry the original immediate
///    (push_int immediates are pre-wrapped to the interpreter's machine
///    word); compares and neg carry the verifier-proven operand tag class in
///    `aux`.
///  - kChecked: no operands; the escape re-fetches the original Instr.
///  - kFusedIncLocal: b = source slot, c = destination slot (b == c for
///    the canonical increment), imm.i = pre-wrapped constant, aux = Op
///    (kAdd or kSub).
///  - kFusedCmpBr: aux = compare Op, b = branch target, c = operand tag.
///  - kFusedLoadCmpBr: b = local slot, imm.i = pre-wrapped constant,
///    aux = compare Op, c = branch target (operands proven Int).
///  - kFusedLoadLoadArith[St]: b/c = source slots, aux = arithmetic Op,
///    imm.i = destination slot (St form only).
struct DecodedInstr {
  XOp op = XOp::kChecked;
  uint8_t len = 1;  ///< original instructions covered (fused: 2..4)
  uint8_t aux = 0;  ///< inner Op / proven Tag, per the table above
  uint8_t pad = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  union {
    int64_t i;
    double f;
  } imm = {0};
};

struct PreparedFunction {
  std::vector<DecodedInstr> code;  ///< same length as Function::code
  uint32_t max_stack = 0;          ///< verifier's max relative operand depth
  bool analyzed = false;           ///< depth facts valid (else all-checked)
};

struct PreparedProgram {
  std::vector<PreparedFunction> functions;
  bool any_fast = false;  ///< at least one function carries elided entries
};

/// Lowers `program` for execution on `machine` (push_int immediates are
/// pre-wrapped to the machine word): verifier facts pick checked vs fast
/// entries, then — unless `fuse` is false (differential tests pin
/// fused/unfused equivalence) — the assembler's peephole pass fuses hot
/// idioms.
PreparedProgram prepare_program(const Program& program, const ProgramFacts& facts,
                                const sim::Machine& machine, bool fuse = true);

/// Assembler-level peephole pass (vm/asm.cpp): rewrites `code[pc]` with
/// superinstruction entries where a hot idiom's components are all
/// fast-eligible. Never touches the Program itself, so checkpoint images
/// decode back to the original sequence untouched.
void peephole_fuse(const Function& fn, const FunctionFacts& facts,
                   std::vector<DecodedInstr>& code);

}  // namespace starfish::vm
