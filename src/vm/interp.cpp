#include "vm/interp.hpp"

namespace starfish::vm {

void Interpreter::start(const std::string& entry) {
  state_ = VmState{};
  halted_ = false;
  const int fn = program_.function_index(entry);
  if (fn < 0) {
    halted_ = true;
    return;
  }
  Frame frame;
  frame.function = static_cast<uint32_t>(fn);
  frame.pc = 0;
  frame.locals.assign(program_.functions[static_cast<size_t>(fn)].n_locals, Value::unit());
  state_.frames.push_back(std::move(frame));
}

Value Interpreter::pop_value() {
  if (state_.stack.empty()) return Value::unit();
  Value v = state_.stack.back();
  state_.stack.pop_back();
  return v;
}

void Interpreter::push_value(Value v) { state_.stack.push_back(v); }

RunResult Interpreter::trap(std::string why) {
  halted_ = true;
  RunResult r;
  r.status = RunStatus::kTrap;
  r.trap = std::move(why);
  return r;
}

bool Interpreter::pop2_ints(int64_t& a, int64_t& b, RunResult& out) {
  if (state_.stack.size() < 2) {
    out = trap("stack underflow");
    return false;
  }
  Value vb = pop_value(), va = pop_value();
  if (va.tag != Tag::kInt || vb.tag != Tag::kInt) {
    out = trap("type error: expected two ints");
    return false;
  }
  a = va.i;
  b = vb.i;
  return true;
}

bool Interpreter::pop2_floats(double& a, double& b, RunResult& out) {
  if (state_.stack.size() < 2) {
    out = trap("stack underflow");
    return false;
  }
  Value vb = pop_value(), va = pop_value();
  if (va.tag != Tag::kFloat || vb.tag != Tag::kFloat) {
    out = trap("type error: expected two floats");
    return false;
  }
  a = va.f;
  b = vb.f;
  return true;
}

RunResult Interpreter::run(uint64_t max_steps) {
  RunResult out;
  if (halted_) {
    out.status = RunStatus::kHalted;
    return out;
  }
  auto wrap = [this](int64_t v) { return wrap_to_word(v, machine_); };

  for (uint64_t step = 0; step < max_steps; ++step) {
    if (state_.frames.empty()) {
      halted_ = true;
      out.status = RunStatus::kHalted;
      return out;
    }
    Frame& frame = state_.frames.back();
    if (frame.function >= program_.functions.size()) return trap("bad function index");
    const Function& fn = program_.functions[frame.function];
    if (frame.pc >= fn.code.size()) return trap("pc out of range in " + fn.name);
    const Instr& instr = fn.code[frame.pc];
    ++frame.pc;
    ++state_.steps_executed;

    switch (instr.op) {
      case Op::kNop: break;
      case Op::kPushInt: push_value(Value::integer(wrap(instr.imm_i))); break;
      case Op::kPushFloat: push_value(Value::real(instr.imm_f)); break;
      case Op::kPushBool: push_value(Value::boolean(instr.imm_i != 0)); break;
      case Op::kPushUnit: push_value(Value::unit()); break;
      case Op::kPop:
        if (state_.stack.empty()) return trap("pop on empty stack");
        state_.stack.pop_back();
        break;
      case Op::kDup:
        if (state_.stack.empty()) return trap("dup on empty stack");
        push_value(state_.stack.back());
        break;
      case Op::kSwap: {
        if (state_.stack.size() < 2) return trap("swap underflow");
        std::swap(state_.stack[state_.stack.size() - 1], state_.stack[state_.stack.size() - 2]);
        break;
      }
      case Op::kLoadLocal: {
        const auto idx = static_cast<size_t>(instr.imm_i);
        if (idx >= frame.locals.size()) return trap("local index out of range");
        push_value(frame.locals[idx]);
        break;
      }
      case Op::kStoreLocal: {
        const auto idx = static_cast<size_t>(instr.imm_i);
        if (idx >= frame.locals.size()) return trap("local index out of range");
        if (state_.stack.empty()) return trap("store_local underflow");
        frame.locals[idx] = pop_value();
        break;
      }
      case Op::kLoadGlobal: {
        const auto idx = static_cast<size_t>(instr.imm_i);
        if (idx >= state_.globals.size()) state_.globals.resize(idx + 1, Value::unit());
        push_value(state_.globals[idx]);
        break;
      }
      case Op::kStoreGlobal: {
        const auto idx = static_cast<size_t>(instr.imm_i);
        if (idx >= state_.globals.size()) state_.globals.resize(idx + 1, Value::unit());
        if (state_.stack.empty()) return trap("store_global underflow");
        state_.globals[idx] = pop_value();
        break;
      }

      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod: {
        int64_t a, b;
        if (!pop2_ints(a, b, out)) return out;
        int64_t r = 0;
        switch (instr.op) {
          case Op::kAdd: r = a + b; break;
          case Op::kSub: r = a - b; break;
          case Op::kMul: r = a * b; break;
          case Op::kDiv:
            if (b == 0) return trap("division by zero");
            r = a / b;
            break;
          case Op::kMod:
            if (b == 0) return trap("modulo by zero");
            r = a % b;
            break;
          default: break;
        }
        push_value(Value::integer(wrap(r)));
        break;
      }
      case Op::kNeg: {
        Value v = pop_value();
        if (v.tag == Tag::kInt) {
          push_value(Value::integer(wrap(-v.i)));
        } else if (v.tag == Tag::kFloat) {
          push_value(Value::real(-v.f));
        } else {
          return trap("neg on non-number");
        }
        break;
      }
      case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv: {
        double a, b;
        if (!pop2_floats(a, b, out)) return out;
        double r = 0;
        switch (instr.op) {
          case Op::kFAdd: r = a + b; break;
          case Op::kFSub: r = a - b; break;
          case Op::kFMul: r = a * b; break;
          case Op::kFDiv: r = a / b; break;
          default: break;
        }
        push_value(Value::real(r));
        break;
      }
      case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe: case Op::kGt: case Op::kGe: {
        if (state_.stack.size() < 2) return trap("compare underflow");
        Value vb = pop_value(), va = pop_value();
        double a, b;
        if (va.tag == Tag::kInt && vb.tag == Tag::kInt) {
          a = static_cast<double>(va.i);
          b = static_cast<double>(vb.i);
        } else if (va.tag == Tag::kFloat && vb.tag == Tag::kFloat) {
          a = va.f;
          b = vb.f;
        } else if (va.tag == Tag::kBool && vb.tag == Tag::kBool) {
          a = static_cast<double>(va.i);
          b = static_cast<double>(vb.i);
        } else {
          return trap("compare type mismatch");
        }
        bool r = false;
        switch (instr.op) {
          case Op::kEq: r = a == b; break;
          case Op::kNe: r = a != b; break;
          case Op::kLt: r = a < b; break;
          case Op::kLe: r = a <= b; break;
          case Op::kGt: r = a > b; break;
          case Op::kGe: r = a >= b; break;
          default: break;
        }
        push_value(Value::boolean(r));
        break;
      }
      case Op::kAnd: case Op::kOr: {
        int64_t a, b;
        if (!pop2_ints(a, b, out)) return out;
        push_value(Value::integer(instr.op == Op::kAnd ? (a & b) : (a | b)));
        break;
      }
      case Op::kNot: {
        Value v = pop_value();
        if (v.tag != Tag::kBool) return trap("not on non-bool");
        push_value(Value::boolean(v.i == 0));
        break;
      }
      case Op::kI2F: {
        Value v = pop_value();
        if (v.tag != Tag::kInt) return trap("i2f on non-int");
        push_value(Value::real(static_cast<double>(v.i)));
        break;
      }
      case Op::kF2I: {
        Value v = pop_value();
        if (v.tag != Tag::kFloat) return trap("f2i on non-float");
        push_value(Value::integer(wrap(static_cast<int64_t>(v.f))));
        break;
      }

      case Op::kJmp:
        frame.pc = static_cast<uint32_t>(instr.imm_i);
        break;
      case Op::kJmpIfFalse: {
        Value v = pop_value();
        if (v.tag != Tag::kBool) return trap("jmp_if_false on non-bool");
        if (v.i == 0) frame.pc = static_cast<uint32_t>(instr.imm_i);
        break;
      }
      case Op::kCall: {
        const auto callee_idx = static_cast<size_t>(instr.imm_i);
        if (callee_idx >= program_.functions.size()) return trap("call: bad function");
        const Function& callee = program_.functions[callee_idx];
        if (state_.stack.size() < callee.n_args) return trap("call: missing args");
        Frame next;
        next.function = static_cast<uint32_t>(callee_idx);
        next.pc = 0;
        next.locals.assign(callee.n_locals, Value::unit());
        for (uint32_t a = callee.n_args; a > 0; --a) next.locals[a - 1] = pop_value();
        state_.frames.push_back(std::move(next));
        break;
      }
      case Op::kRet: {
        Value v = state_.stack.empty() ? Value::unit() : pop_value();
        state_.frames.pop_back();
        if (state_.frames.empty()) {
          halted_ = true;
          out.status = RunStatus::kHalted;
          return out;
        }
        push_value(v);
        break;
      }
      case Op::kHalt:
        halted_ = true;
        out.status = RunStatus::kHalted;
        return out;

      case Op::kNewArray: {
        Value len = pop_value();
        if (len.tag != Tag::kInt || len.i < 0) return trap("new_array: bad length");
        HeapObject obj;
        obj.kind = HeapObject::Kind::kArray;
        obj.fields.assign(static_cast<size_t>(len.i), Value::unit());
        state_.heap.push_back(std::move(obj));
        push_value(Value::reference(static_cast<HeapIndex>(state_.heap.size() - 1)));
        break;
      }
      case Op::kNewBytes: {
        Value len = pop_value();
        if (len.tag != Tag::kInt || len.i < 0) return trap("new_bytes: bad length");
        HeapObject obj;
        obj.kind = HeapObject::Kind::kBytes;
        obj.bytes.assign(static_cast<size_t>(len.i), std::byte{0});
        state_.heap.push_back(std::move(obj));
        push_value(Value::reference(static_cast<HeapIndex>(state_.heap.size() - 1)));
        break;
      }
      case Op::kALoad: {
        if (state_.stack.size() < 2) return trap("aload underflow");
        Value idx = pop_value(), ref = pop_value();
        if (ref.tag != Tag::kRef || idx.tag != Tag::kInt) return trap("aload: bad operands");
        if (ref.ref >= state_.heap.size()) return trap("aload: dangling ref");
        HeapObject& obj = state_.heap[ref.ref];
        if (obj.kind != HeapObject::Kind::kArray) return trap("aload: not an array");
        if (idx.i < 0 || static_cast<size_t>(idx.i) >= obj.fields.size()) {
          return trap("aload: index out of bounds");
        }
        push_value(obj.fields[static_cast<size_t>(idx.i)]);
        break;
      }
      case Op::kAStore: {
        if (state_.stack.size() < 3) return trap("astore underflow");
        Value val = pop_value(), idx = pop_value(), ref = pop_value();
        if (ref.tag != Tag::kRef || idx.tag != Tag::kInt) return trap("astore: bad operands");
        if (ref.ref >= state_.heap.size()) return trap("astore: dangling ref");
        HeapObject& obj = state_.heap[ref.ref];
        if (obj.kind != HeapObject::Kind::kArray) return trap("astore: not an array");
        if (idx.i < 0 || static_cast<size_t>(idx.i) >= obj.fields.size()) {
          return trap("astore: index out of bounds");
        }
        obj.fields[static_cast<size_t>(idx.i)] = val;
        break;
      }
      case Op::kALen: {
        Value ref = pop_value();
        if (ref.tag != Tag::kRef || ref.ref >= state_.heap.size()) return trap("alen: bad ref");
        const HeapObject& obj = state_.heap[ref.ref];
        const size_t n = obj.kind == HeapObject::Kind::kArray ? obj.fields.size()
                                                              : obj.bytes.size();
        push_value(Value::integer(static_cast<int64_t>(n)));
        break;
      }

      case Op::kSyscall:
        // Restartable syscalls: pc stays AT the syscall instruction (and the
        // operand stack untouched) until the host calls complete_syscall().
        // A checkpoint taken while the process is blocked inside a syscall
        // therefore captures a consistent "about to execute it" state, and a
        // restore simply re-executes the call (receives are replayed from
        // the saved channel state).
        --frame.pc;
        --state_.steps_executed;
        out.status = RunStatus::kSyscall;
        out.syscall = static_cast<Syscall>(instr.imm_i);
        return out;
    }
  }
  out.status = RunStatus::kRunning;
  return out;
}

}  // namespace starfish::vm
