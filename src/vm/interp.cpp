#include "vm/interp.hpp"

#include <utility>

namespace starfish::vm {

// Computed-goto (direct-threaded) dispatch where the compiler supports the
// GNU label-address extension; -DSTARFISH_VM_SWITCH_DISPATCH (CMake option)
// pins the portable switch loop instead, e.g. for sanitized builds or
// foreign compilers. Both loops execute the same op bodies via the VM_OP /
// VM_NEXT macros below.
#if defined(__GNUC__) && !defined(STARFISH_VM_SWITCH_DISPATCH)
#define STARFISH_VM_CGOTO 1
#endif

namespace {

inline bool fast_compare(Op op, double a, double b) {
  switch (op) {
    case Op::kEq: return a == b;
    case Op::kNe: return a != b;
    case Op::kLt: return a < b;
    case Op::kLe: return a <= b;
    case Op::kGt: return a > b;
    default: return a >= b;  // kGe — peephole only emits compare ops
  }
}

inline int64_t fast_int_arith(Op op, int64_t a, int64_t b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    default: return a * b;  // kMul — peephole only emits add/sub/mul
  }
}

}  // namespace

Interpreter::Interpreter(const Program& program, sim::Machine machine,
                         Dispatch dispatch)
    : program_(program),
      machine_(std::move(machine)),
      dispatch_(dispatch),
      // wrap_to_word is "truncate to int32" for any word under 8 bytes, so
      // the shift pair is 32 there and the identity (0) on 64-bit machines.
      wrap_shift_(machine_.word_bytes >= 8 ? 0u : 32u) {
  if (dispatch_ != Dispatch::kChecked) {
    facts_ = analyze(program_);
    prepared_ = prepare_program(program_, facts_, machine_,
                                dispatch_ == Dispatch::kFast);
    if (!prepared_.any_fast) dispatch_ = Dispatch::kChecked;
  }
}

void Interpreter::start(const std::string& entry) {
  state_ = VmState{};
  halted_ = false;
  host_trap_.clear();
  state_fast_ok_ = true;
  const int fn = program_.function_index(entry);
  if (fn < 0) {
    halted_ = true;
    return;
  }
  Frame frame;
  frame.function = static_cast<uint32_t>(fn);
  frame.pc = 0;
  frame.locals.assign(program_.functions[static_cast<size_t>(fn)].n_locals, Value::unit());
  state_.frames.push_back(std::move(frame));
}

Value Interpreter::pop_value() {
  if (state_.stack.empty()) {
    host_trap_ = "host pop on empty stack";
    return Value::unit();
  }
  Value v = state_.stack.back();
  state_.stack.pop_back();
  return v;
}

void Interpreter::push_value(Value v) { state_.stack.push_back(v); }

void Interpreter::set_state(VmState s) {
  state_ = std::move(s);
  halted_ = false;
  host_trap_.clear();
  state_fast_ok_ = dispatch_ != Dispatch::kChecked && restored_state_fast_ok();
}

// The verifier's depth facts hold for states *this interpreter* produced,
// but set_state() accepts arbitrary images (a corrupt checkpoint, a
// hand-built test state). Vet the restored state against the facts before
// letting the fast loop elide checks on it: every frame must sit in an
// analyzed function at a reachable pc with the right locals count, and the
// facts' stack depths must add up to the actual operand stack (each
// non-top frame is parked after a call, so it contributes depth-at-pc
// minus the callee result that is not there yet). Anything inconsistent
// runs on the checked loop, which re-validates per instruction.
bool Interpreter::restored_state_fast_ok() const {
  size_t expected = 0;
  for (size_t i = 0; i < state_.frames.size(); ++i) {
    const Frame& fr = state_.frames[i];
    if (fr.function >= program_.functions.size()) return false;
    const Function& fn = program_.functions[fr.function];
    const FunctionFacts& ff = facts_.functions[fr.function];
    if (!ff.analyzed) return false;
    if (fr.locals.size() != fn.n_locals) return false;
    if (fr.pc >= ff.depth.size()) return false;
    const int32_t dep = ff.depth[fr.pc];
    if (dep < 0) return false;  // pc the dataflow proved unreachable
    if (i + 1 == state_.frames.size()) {
      expected += static_cast<size_t>(dep);
    } else {
      if (dep < 1) return false;
      expected += static_cast<size_t>(dep) - 1;
    }
  }
  return expected == state_.stack.size();
}

void Interpreter::set_obs(obs::Hub* hub) {
  if (hub == nullptr) {
    obs_retired_ = nullptr;
    obs_fast_ = nullptr;
    obs_checked_ = nullptr;
    obs_fused_ = nullptr;
    return;
  }
  obs_retired_ = &hub->metrics.counter("sim.vm.instructions_retired");
  obs_fast_ = &hub->metrics.counter("sim.vm.dispatch_fast");
  obs_checked_ = &hub->metrics.counter("sim.vm.dispatch_checked");
  obs_fused_ = &hub->metrics.counter("sim.vm.fused_hits");
}

void Interpreter::note_fast(uint64_t n, uint64_t fused) {
  if (n == 0 && fused == 0) return;
  stats_.fast_instrs += n;
  stats_.fused_hits += fused;
  if (obs_retired_ != nullptr) {
    obs_retired_->add(n);
    obs_fast_->add(n);
    if (fused != 0) obs_fused_->add(fused);
  }
}

void Interpreter::note_checked(uint64_t n) {
  if (n == 0) return;
  stats_.checked_instrs += n;
  if (obs_retired_ != nullptr) {
    obs_retired_->add(n);
    obs_checked_->add(n);
  }
}

RunResult Interpreter::trap(std::string why) {
  halted_ = true;
  RunResult r;
  r.status = RunStatus::kTrap;
  r.trap = std::move(why);
  return r;
}

bool Interpreter::pop2_ints(int64_t& a, int64_t& b, RunResult& out) {
  if (state_.stack.size() < 2) {
    out = trap("stack underflow");
    return false;
  }
  Value vb = pop_or_unit(), va = pop_or_unit();
  if (va.tag != Tag::kInt || vb.tag != Tag::kInt) {
    out = trap("type error: expected two ints");
    return false;
  }
  a = va.i;
  b = vb.i;
  return true;
}

bool Interpreter::pop2_floats(double& a, double& b, RunResult& out) {
  if (state_.stack.size() < 2) {
    out = trap("stack underflow");
    return false;
  }
  Value vb = pop_or_unit(), va = pop_or_unit();
  if (va.tag != Tag::kFloat || vb.tag != Tag::kFloat) {
    out = trap("type error: expected two floats");
    return false;
  }
  a = va.f;
  b = vb.f;
  return true;
}

RunResult Interpreter::run(uint64_t max_steps) {
  if (halted_) {
    RunResult out;
    out.status = RunStatus::kHalted;
    return out;
  }
  if (!host_trap_.empty()) {
    std::string why = std::move(host_trap_);
    host_trap_.clear();
    return trap(std::move(why));
  }
  if (dispatch_ != Dispatch::kChecked && state_fast_ok_) return run_fast(max_steps);
  return run_checked(max_steps);
}

// ------------------------------------------------------- checked loop ----
//
// The original interpreter, loop body factored into step_checked_one() so
// the fast loop's escape hatch executes the exact same code (and therefore
// produces the exact same traps, stack effects and step accounting).

RunResult Interpreter::run_checked(uint64_t max_steps) {
  RunResult out;
  out.status = RunStatus::kRunning;
  const uint64_t before = state_.steps_executed;
  for (uint64_t step = 0; step < max_steps; ++step) {
    if (state_.frames.empty()) {
      halted_ = true;
      out.status = RunStatus::kHalted;
      break;
    }
    if (step_checked_one(out) != StepOutcome::kContinue) break;
  }
  note_checked(state_.steps_executed - before);
  return out;
}

Interpreter::StepOutcome Interpreter::step_checked_one(RunResult& out) {
  Frame& frame = state_.frames.back();
  if (frame.function >= program_.functions.size()) {
    out = trap("bad function index");
    return StepOutcome::kTrap;
  }
  const Function& fn = program_.functions[frame.function];
  if (frame.pc >= fn.code.size()) {
    out = trap("pc out of range in " + fn.name);
    return StepOutcome::kTrap;
  }
  const Instr& instr = fn.code[frame.pc];
  ++frame.pc;
  ++state_.steps_executed;

  switch (instr.op) {
    case Op::kNop: break;
    case Op::kPushInt: push_value(Value::integer(wrap(instr.imm_i))); break;
    case Op::kPushFloat: push_value(Value::real(instr.imm_f)); break;
    case Op::kPushBool: push_value(Value::boolean(instr.imm_i != 0)); break;
    case Op::kPushUnit: push_value(Value::unit()); break;
    case Op::kPop:
      if (state_.stack.empty()) {
        out = trap("pop on empty stack");
        return StepOutcome::kTrap;
      }
      state_.stack.pop_back();
      break;
    case Op::kDup:
      if (state_.stack.empty()) {
        out = trap("dup on empty stack");
        return StepOutcome::kTrap;
      }
      push_value(state_.stack.back());
      break;
    case Op::kSwap: {
      if (state_.stack.size() < 2) {
        out = trap("swap underflow");
        return StepOutcome::kTrap;
      }
      std::swap(state_.stack[state_.stack.size() - 1], state_.stack[state_.stack.size() - 2]);
      break;
    }
    case Op::kLoadLocal: {
      const auto idx = static_cast<size_t>(instr.imm_i);
      if (idx >= frame.locals.size()) {
        out = trap("local index out of range");
        return StepOutcome::kTrap;
      }
      push_value(frame.locals[idx]);
      break;
    }
    case Op::kStoreLocal: {
      const auto idx = static_cast<size_t>(instr.imm_i);
      if (idx >= frame.locals.size()) {
        out = trap("local index out of range");
        return StepOutcome::kTrap;
      }
      if (state_.stack.empty()) {
        out = trap("store_local underflow");
        return StepOutcome::kTrap;
      }
      frame.locals[idx] = pop_or_unit();
      break;
    }
    case Op::kLoadGlobal: {
      // Bound matches the verifier's structural prepass: a negative index
      // used to be cast to size_t and fed to resize(), throwing
      // std::length_error out of run() instead of trapping.
      if (instr.imm_i < 0 || instr.imm_i > 1'000'000) {
        out = trap("global index out of range");
        return StepOutcome::kTrap;
      }
      const auto idx = static_cast<size_t>(instr.imm_i);
      if (idx >= state_.globals.size()) state_.globals.resize(idx + 1, Value::unit());
      push_value(state_.globals[idx]);
      break;
    }
    case Op::kStoreGlobal: {
      if (instr.imm_i < 0 || instr.imm_i > 1'000'000) {
        out = trap("global index out of range");
        return StepOutcome::kTrap;
      }
      const auto idx = static_cast<size_t>(instr.imm_i);
      if (idx >= state_.globals.size()) state_.globals.resize(idx + 1, Value::unit());
      if (state_.stack.empty()) {
        out = trap("store_global underflow");
        return StepOutcome::kTrap;
      }
      state_.globals[idx] = pop_or_unit();
      break;
    }

    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod: {
      int64_t a, b;
      if (!pop2_ints(a, b, out)) return StepOutcome::kTrap;
      int64_t r = 0;
      switch (instr.op) {
        case Op::kAdd: r = a + b; break;
        case Op::kSub: r = a - b; break;
        case Op::kMul: r = a * b; break;
        case Op::kDiv:
          if (b == 0) {
            out = trap("division by zero");
            return StepOutcome::kTrap;
          }
          r = a / b;
          break;
        case Op::kMod:
          if (b == 0) {
            out = trap("modulo by zero");
            return StepOutcome::kTrap;
          }
          r = a % b;
          break;
        default: break;
      }
      push_value(Value::integer(wrap(r)));
      break;
    }
    case Op::kNeg: {
      Value v = pop_or_unit();
      if (v.tag == Tag::kInt) {
        push_value(Value::integer(wrap(-v.i)));
      } else if (v.tag == Tag::kFloat) {
        push_value(Value::real(-v.f));
      } else {
        out = trap("neg on non-number");
        return StepOutcome::kTrap;
      }
      break;
    }
    case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv: {
      double a, b;
      if (!pop2_floats(a, b, out)) return StepOutcome::kTrap;
      double r = 0;
      switch (instr.op) {
        case Op::kFAdd: r = a + b; break;
        case Op::kFSub: r = a - b; break;
        case Op::kFMul: r = a * b; break;
        case Op::kFDiv: r = a / b; break;
        default: break;
      }
      push_value(Value::real(r));
      break;
    }
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe: case Op::kGt: case Op::kGe: {
      if (state_.stack.size() < 2) {
        out = trap("compare underflow");
        return StepOutcome::kTrap;
      }
      Value vb = pop_or_unit(), va = pop_or_unit();
      double a, b;
      if (va.tag == Tag::kInt && vb.tag == Tag::kInt) {
        a = static_cast<double>(va.i);
        b = static_cast<double>(vb.i);
      } else if (va.tag == Tag::kFloat && vb.tag == Tag::kFloat) {
        a = va.f;
        b = vb.f;
      } else if (va.tag == Tag::kBool && vb.tag == Tag::kBool) {
        a = static_cast<double>(va.i);
        b = static_cast<double>(vb.i);
      } else {
        out = trap("compare type mismatch");
        return StepOutcome::kTrap;
      }
      bool r = false;
      switch (instr.op) {
        case Op::kEq: r = a == b; break;
        case Op::kNe: r = a != b; break;
        case Op::kLt: r = a < b; break;
        case Op::kLe: r = a <= b; break;
        case Op::kGt: r = a > b; break;
        case Op::kGe: r = a >= b; break;
        default: break;
      }
      push_value(Value::boolean(r));
      break;
    }
    case Op::kAnd: case Op::kOr: {
      int64_t a, b;
      if (!pop2_ints(a, b, out)) return StepOutcome::kTrap;
      push_value(Value::integer(instr.op == Op::kAnd ? (a & b) : (a | b)));
      break;
    }
    case Op::kNot: {
      Value v = pop_or_unit();
      if (v.tag != Tag::kBool) {
        out = trap("not on non-bool");
        return StepOutcome::kTrap;
      }
      push_value(Value::boolean(v.i == 0));
      break;
    }
    case Op::kI2F: {
      Value v = pop_or_unit();
      if (v.tag != Tag::kInt) {
        out = trap("i2f on non-int");
        return StepOutcome::kTrap;
      }
      push_value(Value::real(static_cast<double>(v.i)));
      break;
    }
    case Op::kF2I: {
      Value v = pop_or_unit();
      if (v.tag != Tag::kFloat) {
        out = trap("f2i on non-float");
        return StepOutcome::kTrap;
      }
      push_value(Value::integer(wrap(static_cast<int64_t>(v.f))));
      break;
    }

    case Op::kJmp:
      frame.pc = static_cast<uint32_t>(instr.imm_i);
      break;
    case Op::kJmpIfFalse: {
      Value v = pop_or_unit();
      if (v.tag != Tag::kBool) {
        out = trap("jmp_if_false on non-bool");
        return StepOutcome::kTrap;
      }
      if (v.i == 0) frame.pc = static_cast<uint32_t>(instr.imm_i);
      break;
    }
    case Op::kCall: {
      const auto callee_idx = static_cast<size_t>(instr.imm_i);
      if (callee_idx >= program_.functions.size()) {
        out = trap("call: bad function");
        return StepOutcome::kTrap;
      }
      const Function& callee = program_.functions[callee_idx];
      if (state_.stack.size() < callee.n_args) {
        out = trap("call: missing args");
        return StepOutcome::kTrap;
      }
      Frame next;
      next.function = static_cast<uint32_t>(callee_idx);
      next.pc = 0;
      next.locals.assign(callee.n_locals, Value::unit());
      for (uint32_t a = callee.n_args; a > 0; --a) next.locals[a - 1] = pop_or_unit();
      state_.frames.push_back(std::move(next));
      break;
    }
    case Op::kRet: {
      Value v = state_.stack.empty() ? Value::unit() : pop_or_unit();
      state_.frames.pop_back();
      if (state_.frames.empty()) {
        halted_ = true;
        out.status = RunStatus::kHalted;
        return StepOutcome::kHalted;
      }
      push_value(v);
      break;
    }
    case Op::kHalt:
      halted_ = true;
      out.status = RunStatus::kHalted;
      return StepOutcome::kHalted;

    case Op::kNewArray: {
      Value len = pop_or_unit();
      if (len.tag != Tag::kInt || len.i < 0) {
        out = trap("new_array: bad length");
        return StepOutcome::kTrap;
      }
      HeapObject obj;
      obj.kind = HeapObject::Kind::kArray;
      obj.fields.assign(static_cast<size_t>(len.i), Value::unit());
      state_.heap.push_back(std::move(obj));
      push_value(Value::reference(static_cast<HeapIndex>(state_.heap.size() - 1)));
      break;
    }
    case Op::kNewBytes: {
      Value len = pop_or_unit();
      if (len.tag != Tag::kInt || len.i < 0) {
        out = trap("new_bytes: bad length");
        return StepOutcome::kTrap;
      }
      HeapObject obj;
      obj.kind = HeapObject::Kind::kBytes;
      obj.bytes.assign(static_cast<size_t>(len.i), std::byte{0});
      state_.heap.push_back(std::move(obj));
      push_value(Value::reference(static_cast<HeapIndex>(state_.heap.size() - 1)));
      break;
    }
    case Op::kALoad: {
      if (state_.stack.size() < 2) {
        out = trap("aload underflow");
        return StepOutcome::kTrap;
      }
      Value idx = pop_or_unit(), ref = pop_or_unit();
      if (ref.tag != Tag::kRef || idx.tag != Tag::kInt) {
        out = trap("aload: bad operands");
        return StepOutcome::kTrap;
      }
      if (ref.ref >= state_.heap.size()) {
        out = trap("aload: dangling ref");
        return StepOutcome::kTrap;
      }
      HeapObject& obj = state_.heap[ref.ref];
      if (obj.kind != HeapObject::Kind::kArray) {
        out = trap("aload: not an array");
        return StepOutcome::kTrap;
      }
      if (idx.i < 0 || static_cast<size_t>(idx.i) >= obj.fields.size()) {
        out = trap("aload: index out of bounds");
        return StepOutcome::kTrap;
      }
      push_value(obj.fields[static_cast<size_t>(idx.i)]);
      break;
    }
    case Op::kAStore: {
      if (state_.stack.size() < 3) {
        out = trap("astore underflow");
        return StepOutcome::kTrap;
      }
      Value val = pop_or_unit(), idx = pop_or_unit(), ref = pop_or_unit();
      if (ref.tag != Tag::kRef || idx.tag != Tag::kInt) {
        out = trap("astore: bad operands");
        return StepOutcome::kTrap;
      }
      if (ref.ref >= state_.heap.size()) {
        out = trap("astore: dangling ref");
        return StepOutcome::kTrap;
      }
      HeapObject& obj = state_.heap[ref.ref];
      if (obj.kind != HeapObject::Kind::kArray) {
        out = trap("astore: not an array");
        return StepOutcome::kTrap;
      }
      if (idx.i < 0 || static_cast<size_t>(idx.i) >= obj.fields.size()) {
        out = trap("astore: index out of bounds");
        return StepOutcome::kTrap;
      }
      obj.fields[static_cast<size_t>(idx.i)] = val;
      break;
    }
    case Op::kALen: {
      Value ref = pop_or_unit();
      if (ref.tag != Tag::kRef || ref.ref >= state_.heap.size()) {
        out = trap("alen: bad ref");
        return StepOutcome::kTrap;
      }
      const HeapObject& obj = state_.heap[ref.ref];
      const size_t n = obj.kind == HeapObject::Kind::kArray ? obj.fields.size()
                                                            : obj.bytes.size();
      push_value(Value::integer(static_cast<int64_t>(n)));
      break;
    }

    case Op::kSyscall:
      // Restartable syscalls: pc stays AT the syscall instruction (and the
      // operand stack untouched) until the host calls complete_syscall().
      // A checkpoint taken while the process is blocked inside a syscall
      // therefore captures a consistent "about to execute it" state, and a
      // restore simply re-executes the call (receives are replayed from
      // the saved channel state).
      --frame.pc;
      --state_.steps_executed;
      out.status = RunStatus::kSyscall;
      out.syscall = static_cast<Syscall>(instr.imm_i);
      return StepOutcome::kSyscall;
  }
  return StepOutcome::kContinue;
}

// ---------------------------------------------------------- fast loop ----
//
// Executes prepared code (vm/exec.hpp) with verifier-elided checks. The
// invariants that keep it bit-identical to the checked loop:
//  - pc and frames stay in ORIGINAL bytecode coordinates; a fused entry
//    advances pc/steps by its full component count, and the budget check
//    (`d->len > left`) guarantees a superinstruction never straddles a
//    run() boundary — if the budget would expire inside one, the remaining
//    components execute singly through the checked step instead.
//  - steps are accumulated in `fast_done` and flushed to
//    state_.steps_executed at every exit, so a checkpoint cut at any
//    kSyscall/kRunning boundary sees the same count the checked loop
//    produces.
//  - any entry the verifier could not prove runs through
//    step_checked_one(), i.e. the original code with original messages.
//  - int/bool compares convert through double exactly like the checked
//    loop (observable for |int| > 2^53), and div/mod keep their zero
//    guards; only proven underflow/type checks are gone.

RunResult Interpreter::run_fast(uint64_t max_steps) {
  RunResult out;
  out.status = RunStatus::kRunning;
  if (max_steps == 0) return out;  // checked loop returns kRunning here too

  std::vector<Value>& stack = state_.stack;
  std::vector<Frame>& frames = state_.frames;

  uint64_t left = max_steps;  // local countdown, flushed in batches
  uint64_t fast_done = 0;     // fast instructions retired since last flush
  uint64_t fused_done = 0;    // superinstructions among them
  Frame* fr = nullptr;
  Value* locals = nullptr;
  const DecodedInstr* code = nullptr;
  size_t code_size = 0;
  size_t pc = 0;
  const DecodedInstr* d = nullptr;

#ifdef STARFISH_VM_CGOTO
  // Indexed by XOp; order must match vm/exec.hpp exactly.
  static const void* kLabels[] = {
      &&op_Nop, &&op_PushInt, &&op_PushFloat, &&op_PushBool, &&op_PushUnit,
      &&op_Pop, &&op_Dup, &&op_Swap,
      &&op_LoadLocal, &&op_StoreLocal, &&op_LoadGlobal, &&op_StoreGlobal,
      &&op_Add, &&op_Sub, &&op_Mul, &&op_Div, &&op_Mod, &&op_Neg,
      &&op_FAdd, &&op_FSub, &&op_FMul, &&op_FDiv,
      &&op_Eq, &&op_Ne, &&op_Lt, &&op_Le, &&op_Gt, &&op_Ge,
      &&op_And, &&op_Or, &&op_Not,
      &&op_I2F, &&op_F2I,
      &&op_Jmp, &&op_JmpIfFalse, &&op_Call, &&op_Ret, &&op_Halt,
      &&op_Checked,  // kNewArray: heap ops always run checked
      &&op_Checked,  // kALoad
      &&op_Checked,  // kAStore
      &&op_Checked,  // kALen
      &&op_Checked,  // kNewBytes
      &&op_Syscall,
      &&op_Checked,
      &&op_FusedIncLocal, &&op_FusedCmpBr, &&op_FusedLoadCmpBr,
      &&op_FusedLoadLoadArith, &&op_FusedLoadLoadArithSt,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kXOpCount,
                "dispatch table out of sync with XOp");
#endif

// Fetch/decode shared by both dispatch flavors: budget first (the checked
// loop's for-condition), then the pc bounds check the fast loop keeps.
#define VM_FETCH()                                      \
  do {                                                  \
    if (left == 0) goto budget_out;                     \
    if (pc >= code_size) goto pc_oob;                   \
    d = &code[pc];                                      \
    if (d->len > left) goto partial_fused;              \
    left -= d->len;                                     \
    fast_done += d->len;                                \
    pc += d->len;                                       \
  } while (0)

// Flush batched step accounting to the canonical state. Does not touch
// fr->pc — exits that need it write it explicitly first.
#define VM_FLUSH_STEPS()                \
  do {                                  \
    state_.steps_executed += fast_done; \
    note_fast(fast_done, fused_done);   \
    fast_done = 0;                      \
    fused_done = 0;                     \
  } while (0)

#define VM_TRAP_EXIT(msg)                 \
  do {                                    \
    fr->pc = static_cast<uint32_t>(pc);   \
    VM_FLUSH_STEPS();                     \
    out = trap(msg);                      \
    return out;                           \
  } while (0)

#ifdef STARFISH_VM_CGOTO
#define VM_OP(name) op_##name:
#define VM_NEXT()                                        \
  do {                                                   \
    VM_FETCH();                                          \
    goto* kLabels[static_cast<size_t>(d->op)];           \
  } while (0)
#else
#define VM_OP(name) case XOp::k##name:
#define VM_NEXT() continue
#endif

load_frame:
  if (frames.empty()) {
    VM_FLUSH_STEPS();
    halted_ = true;
    out.status = RunStatus::kHalted;
    return out;
  }
  fr = &frames.back();
  if (fr->function >= program_.functions.size()) {
    VM_FLUSH_STEPS();
    return trap("bad function index");
  }
  {
    const PreparedFunction& pf = prepared_.functions[fr->function];
    code = pf.code.data();
    code_size = pf.code.size();
    // Reserve-backed operand stack: one capacity check per frame entry
    // instead of a growth check per push.
    if (stack.capacity() - stack.size() < pf.max_stack) {
      stack.reserve(stack.size() + pf.max_stack);
    }
  }
  locals = fr->locals.data();
  pc = fr->pc;

#ifdef STARFISH_VM_CGOTO
  VM_NEXT();
#else
  for (;;) {
    VM_FETCH();
    switch (d->op) {
#endif

  VM_OP(Nop)
    VM_NEXT();

  VM_OP(PushInt) {  // immediate pre-wrapped by prepare_program
    stack.push_back(Value::integer(d->imm.i));
    VM_NEXT();
  }
  VM_OP(PushFloat) {
    stack.push_back(Value::real(d->imm.f));
    VM_NEXT();
  }
  VM_OP(PushBool) {
    stack.push_back(Value::boolean(d->imm.i != 0));
    VM_NEXT();
  }
  VM_OP(PushUnit) {
    stack.push_back(Value::unit());
    VM_NEXT();
  }
  VM_OP(Pop) {
    stack.pop_back();
    VM_NEXT();
  }
  VM_OP(Dup) {
    const Value v = stack.back();
    stack.push_back(v);
    VM_NEXT();
  }
  VM_OP(Swap) {
    std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
    VM_NEXT();
  }
  VM_OP(LoadLocal) {
    stack.push_back(locals[static_cast<size_t>(d->imm.i)]);
    VM_NEXT();
  }
  VM_OP(StoreLocal) {
    locals[static_cast<size_t>(d->imm.i)] = stack.back();
    stack.pop_back();
    VM_NEXT();
  }
  VM_OP(LoadGlobal) {
    const auto idx = static_cast<size_t>(d->imm.i);
    if (idx >= state_.globals.size()) state_.globals.resize(idx + 1, Value::unit());
    stack.push_back(state_.globals[idx]);
    VM_NEXT();
  }
  VM_OP(StoreGlobal) {
    const auto idx = static_cast<size_t>(d->imm.i);
    if (idx >= state_.globals.size()) state_.globals.resize(idx + 1, Value::unit());
    state_.globals[idx] = stack.back();
    stack.pop_back();
    VM_NEXT();
  }

  VM_OP(Add) {
    const int64_t b = stack.back().i;
    stack.pop_back();
    stack.back() = Value::integer(wrap(stack.back().i + b));
    VM_NEXT();
  }
  VM_OP(Sub) {
    const int64_t b = stack.back().i;
    stack.pop_back();
    stack.back() = Value::integer(wrap(stack.back().i - b));
    VM_NEXT();
  }
  VM_OP(Mul) {
    const int64_t b = stack.back().i;
    stack.pop_back();
    stack.back() = Value::integer(wrap(stack.back().i * b));
    VM_NEXT();
  }
  VM_OP(Div) {
    // Both operands come off before the zero check, exactly like the
    // checked pop2_ints path, so a trapped state is byte-identical.
    const int64_t b = stack.back().i;
    stack.pop_back();
    const int64_t a = stack.back().i;
    stack.pop_back();
    if (b == 0) VM_TRAP_EXIT("division by zero");
    stack.push_back(Value::integer(wrap(a / b)));
    VM_NEXT();
  }
  VM_OP(Mod) {
    const int64_t b = stack.back().i;
    stack.pop_back();
    const int64_t a = stack.back().i;
    stack.pop_back();
    if (b == 0) VM_TRAP_EXIT("modulo by zero");
    stack.push_back(Value::integer(wrap(a % b)));
    VM_NEXT();
  }
  VM_OP(Neg) {
    Value& t = stack.back();
    if (d->aux == static_cast<uint8_t>(Tag::kInt)) {
      t = Value::integer(wrap(-t.i));
    } else {
      t = Value::real(-t.f);
    }
    VM_NEXT();
  }
  VM_OP(FAdd) {
    const double b = stack.back().f;
    stack.pop_back();
    stack.back() = Value::real(stack.back().f + b);
    VM_NEXT();
  }
  VM_OP(FSub) {
    const double b = stack.back().f;
    stack.pop_back();
    stack.back() = Value::real(stack.back().f - b);
    VM_NEXT();
  }
  VM_OP(FMul) {
    const double b = stack.back().f;
    stack.pop_back();
    stack.back() = Value::real(stack.back().f * b);
    VM_NEXT();
  }
  VM_OP(FDiv) {
    const double b = stack.back().f;
    stack.pop_back();
    stack.back() = Value::real(stack.back().f / b);
    VM_NEXT();
  }

// Compares convert int/bool operands through double like the checked loop
// (d->aux is the verifier-proven shared operand tag). Plain block, not
// do/while: VM_NEXT() is `continue` in switch mode and must reach the
// dispatch loop, not a wrapper loop.
#define VM_COMPARE(rel)                                         \
  {                                                             \
    const Value vb = stack.back();                              \
    stack.pop_back();                                           \
    const Value va = stack.back();                              \
    double a, b;                                                \
    if (d->aux == static_cast<uint8_t>(Tag::kFloat)) {          \
      a = va.f;                                                 \
      b = vb.f;                                                 \
    } else {                                                    \
      a = static_cast<double>(va.i);                            \
      b = static_cast<double>(vb.i);                            \
    }                                                           \
    stack.back() = Value::boolean(a rel b);                     \
    VM_NEXT();                                                  \
  }

  VM_OP(Eq) VM_COMPARE(==);
  VM_OP(Ne) VM_COMPARE(!=);
  VM_OP(Lt) VM_COMPARE(<);
  VM_OP(Le) VM_COMPARE(<=);
  VM_OP(Gt) VM_COMPARE(>);
  VM_OP(Ge) VM_COMPARE(>=);

  VM_OP(And) {
    const int64_t b = stack.back().i;
    stack.pop_back();
    stack.back() = Value::integer(stack.back().i & b);  // not wrapped, as checked
    VM_NEXT();
  }
  VM_OP(Or) {
    const int64_t b = stack.back().i;
    stack.pop_back();
    stack.back() = Value::integer(stack.back().i | b);
    VM_NEXT();
  }
  VM_OP(Not) {
    Value& t = stack.back();
    t = Value::boolean(t.i == 0);
    VM_NEXT();
  }
  VM_OP(I2F) {
    Value& t = stack.back();
    t = Value::real(static_cast<double>(t.i));
    VM_NEXT();
  }
  VM_OP(F2I) {
    Value& t = stack.back();
    t = Value::integer(wrap(static_cast<int64_t>(t.f)));
    VM_NEXT();
  }

  VM_OP(Jmp) {
    pc = d->b;
    VM_NEXT();
  }
  VM_OP(JmpIfFalse) {
    const int64_t cond = stack.back().i;
    stack.pop_back();
    if (cond == 0) pc = d->b;
    VM_NEXT();
  }
  VM_OP(Call) {
    const auto callee_idx = static_cast<size_t>(d->imm.i);
    const Function& callee = program_.functions[callee_idx];
    Frame next;
    next.function = static_cast<uint32_t>(callee_idx);
    next.pc = 0;
    next.locals.assign(callee.n_locals, Value::unit());
    for (uint32_t a = callee.n_args; a > 0; --a) {
      next.locals[a - 1] = stack.back();
      stack.pop_back();
    }
    fr->pc = static_cast<uint32_t>(pc);  // caller resumes after the call
    frames.push_back(std::move(next));   // may invalidate fr
    goto load_frame;
  }
  VM_OP(Ret) {
    const Value v = stack.back();  // depth >= 1 proven by the verifier
    stack.pop_back();
    frames.pop_back();
    if (frames.empty()) {
      VM_FLUSH_STEPS();
      halted_ = true;
      out.status = RunStatus::kHalted;
      return out;
    }
    stack.push_back(v);
    goto load_frame;
  }
  VM_OP(Halt) {
    fr->pc = static_cast<uint32_t>(pc);
    VM_FLUSH_STEPS();
    halted_ = true;
    out.status = RunStatus::kHalted;
    return out;
  }

  VM_OP(Syscall) {
    // Restartable: rewind so pc stays AT the syscall and it is charged
    // only by complete_syscall() — the checked loop's un-increment.
    pc -= d->len;
    fast_done -= d->len;
    fr->pc = static_cast<uint32_t>(pc);
    VM_FLUSH_STEPS();
    out.status = RunStatus::kSyscall;
    out.syscall = static_cast<Syscall>(d->imm.i);
    return out;
  }

#ifndef STARFISH_VM_CGOTO
  VM_OP(NewArray)
  VM_OP(ALoad)
  VM_OP(AStore)
  VM_OP(ALen)
  VM_OP(NewBytes)
#endif
  VM_OP(Checked) {
    // Escape hatch: heap ops and anything the verifier could not prove run
    // through the original fully-checked single-step. Undo the speculative
    // fetch charge (the checked step does its own pc/step accounting), then
    // resynchronize the cached frame pointers, which the step may move.
    pc -= d->len;
    left += d->len;
    fast_done -= d->len;
    fr->pc = static_cast<uint32_t>(pc);
    VM_FLUSH_STEPS();
    {
      const uint64_t before = state_.steps_executed;
      const StepOutcome so = step_checked_one(out);
      note_checked(state_.steps_executed - before);
      if (so != StepOutcome::kContinue) return out;
      const uint64_t used = state_.steps_executed - before;
      left = left > used ? left - used : 0;
    }
    goto load_frame;
  }

  VM_OP(FusedIncLocal) {  // load_local b, push_int imm, add|sub, store_local c
    const int64_t a = locals[d->b].i;
    const int64_t r =
        d->aux == static_cast<uint8_t>(Op::kAdd) ? a + d->imm.i : a - d->imm.i;
    locals[d->c] = Value::integer(wrap(r));
    ++fused_done;
    VM_NEXT();
  }
  VM_OP(FusedCmpBr) {  // <compare aux>, jmp_if_false b (operand class in c)
    const Value vb = stack.back();
    stack.pop_back();
    const Value va = stack.back();
    stack.pop_back();
    double a, b;
    if (d->c == static_cast<uint32_t>(Tag::kFloat)) {
      a = va.f;
      b = vb.f;
    } else {
      a = static_cast<double>(va.i);
      b = static_cast<double>(vb.i);
    }
    if (!fast_compare(static_cast<Op>(d->aux), a, b)) pc = d->b;
    ++fused_done;
    VM_NEXT();
  }
  VM_OP(FusedLoadCmpBr) {  // load_local b, push_int imm, <cmp aux>, jif c
    const double a = static_cast<double>(locals[d->b].i);
    const double b = static_cast<double>(d->imm.i);
    if (!fast_compare(static_cast<Op>(d->aux), a, b)) pc = d->c;
    ++fused_done;
    VM_NEXT();
  }
  VM_OP(FusedLoadLoadArith) {  // load_local b, load_local c, <arith aux>
    const int64_t r =
        fast_int_arith(static_cast<Op>(d->aux), locals[d->b].i, locals[d->c].i);
    stack.push_back(Value::integer(wrap(r)));
    ++fused_done;
    VM_NEXT();
  }
  VM_OP(FusedLoadLoadArithSt) {  // ... , store_local imm
    const int64_t r =
        fast_int_arith(static_cast<Op>(d->aux), locals[d->b].i, locals[d->c].i);
    locals[static_cast<size_t>(d->imm.i)] = Value::integer(wrap(r));
    ++fused_done;
    VM_NEXT();
  }

#ifndef STARFISH_VM_CGOTO
      case XOp::kCount:  // never emitted by prepare_program
        break;
    }
  }
#endif

budget_out:
  fr->pc = static_cast<uint32_t>(pc);
  VM_FLUSH_STEPS();
  out.status = RunStatus::kRunning;
  return out;

pc_oob:
  // Fetch-time trap, not charged as a step — same as the checked loop.
  fr->pc = static_cast<uint32_t>(pc);
  VM_FLUSH_STEPS();
  return trap("pc out of range in " + program_.functions[fr->function].name);

partial_fused:
  // The budget expires inside a superinstruction (1 <= left < d->len).
  // Retire the remaining budget one ORIGINAL instruction at a time through
  // the checked step so the pause lands on exactly the same instruction and
  // step count as the unfused interpreter. Fused components are
  // verifier-fast loads/pushes/arith/compares, so each step continues.
  fr->pc = static_cast<uint32_t>(pc);
  VM_FLUSH_STEPS();
  while (left > 0) {
    const uint64_t before = state_.steps_executed;
    const StepOutcome so = step_checked_one(out);
    note_checked(state_.steps_executed - before);
    if (so != StepOutcome::kContinue) return out;
    --left;
  }
  out.status = RunStatus::kRunning;
  return out;

#undef VM_FETCH
#undef VM_FLUSH_STEPS
#undef VM_TRAP_EXIT
#undef VM_OP
#undef VM_NEXT
#undef VM_COMPARE
}

}  // namespace starfish::vm
