// Bytecode interpreter with a host-escape (syscall) protocol.
//
// The interpreter never touches the network or the clock itself: when the
// program executes a syscall it returns control to the host (the Starfish
// application module), which performs the operation — possibly blocking its
// fiber on MPI traffic or a checkpoint — and resumes. This is what makes a
// VM program checkpointable at any syscall boundary and restartable on a
// different machine.
#pragma once

#include <string>

#include "vm/bytecode.hpp"
#include "vm/value.hpp"

namespace starfish::vm {

enum class RunStatus : uint8_t {
  kRunning = 0,  ///< step budget exhausted, more work to do
  kHalted,
  kTrap,
  kSyscall,  ///< host must service pending_syscall() and call run() again
};

struct RunResult {
  RunStatus status = RunStatus::kRunning;
  Syscall syscall = Syscall::kPrint;
  std::string trap;
};

class Interpreter {
 public:
  Interpreter(const Program& program, sim::Machine machine)
      : program_(program), machine_(std::move(machine)) {}

  /// Resets state and enters `entry` (trap if missing).
  void start(const std::string& entry = "main");

  /// Executes until halt, trap, syscall, or `max_steps` instructions.
  RunResult run(uint64_t max_steps = UINT64_MAX);

  // --- syscall servicing (host side) ---
  Value pop_value();
  void push_value(Value v);
  /// Peeks `depth` values below the top of the stack (0 = top) without
  /// popping — used to read syscall arguments while keeping the state
  /// restartable during a blocking operation.
  Value peek_value(size_t depth = 0) const {
    if (depth >= state_.stack.size()) return Value::unit();
    return state_.stack[state_.stack.size() - 1 - depth];
  }
  /// Marks the pending syscall done: advances past the instruction. Call
  /// after popping the arguments and pushing any result.
  void complete_syscall() {
    if (!state_.frames.empty()) {
      ++state_.frames.back().pc;
      ++state_.steps_executed;
    }
  }

  // --- state access (checkpointing) ---
  const VmState& state() const { return state_; }
  VmState& mutable_state() { return state_; }
  /// Installs a restored state; arithmetic continues under this
  /// interpreter's machine (which may differ from the saving machine).
  void set_state(VmState s) { state_ = std::move(s); halted_ = false; }

  const sim::Machine& machine() const { return machine_; }
  const Program& program() const { return program_; }
  bool halted() const { return halted_; }

 private:
  RunResult trap(std::string why);
  bool pop2_ints(int64_t& a, int64_t& b, RunResult& out);
  bool pop2_floats(double& a, double& b, RunResult& out);

  const Program& program_;
  sim::Machine machine_;
  VmState state_;
  bool halted_ = false;
};

}  // namespace starfish::vm
