// Bytecode interpreter with a host-escape (syscall) protocol.
//
// The interpreter never touches the network or the clock itself: when the
// program executes a syscall it returns control to the host (the Starfish
// application module), which performs the operation — possibly blocking its
// fiber on MPI traffic or a checkpoint — and resumes. This is what makes a
// VM program checkpointable at any syscall boundary and restartable on a
// different machine.
//
// Execution engine (DESIGN.md section 12): programs the verifier can
// analyze run on a direct-threaded fast loop (computed goto where the
// compiler supports it, a portable switch otherwise) over prepared code
// with proven underflow/type checks elided and hot idioms fused into
// superinstructions. Anything unproven — and any program that fails
// analysis outright — executes through the original fully-checked
// single-step, so observable behavior (state, traps, step counts,
// checkpoint images) is bit-identical across all dispatch configurations.
#pragma once

#include <string>

#include "obs/obs.hpp"
#include "vm/bytecode.hpp"
#include "vm/exec.hpp"
#include "vm/value.hpp"
#include "vm/verify.hpp"

namespace starfish::vm {

enum class RunStatus : uint8_t {
  kRunning = 0,  ///< step budget exhausted, more work to do
  kHalted,
  kTrap,
  kSyscall,  ///< host must service pending_syscall() and call run() again
};

struct RunResult {
  RunStatus status = RunStatus::kRunning;
  Syscall syscall = Syscall::kPrint;
  std::string trap;
};

class Interpreter {
 public:
  /// Dispatch selection, mainly for differential tests: kFast is the real
  /// engine, kFastNoFuse disables only the superinstruction peephole, and
  /// kChecked pins the original fully-checked loop. All three produce
  /// bit-identical observable behavior.
  enum class Dispatch : uint8_t { kFast = 0, kFastNoFuse, kChecked };

  Interpreter(const Program& program, sim::Machine machine,
              Dispatch dispatch = Dispatch::kFast);

  /// Resets state and enters `entry` (trap if missing).
  void start(const std::string& entry = "main");

  /// Executes until halt, trap, syscall, or `max_steps` instructions.
  RunResult run(uint64_t max_steps = UINT64_MAX);

  // --- syscall servicing (host side) ---
  /// Pops the top of the operand stack. Popping an empty stack is a host
  /// protocol violation (a syscall consumed arguments the program never
  /// pushed); it is reported as a trap on the next run() instead of being
  /// silently absorbed as unit.
  Value pop_value();
  void push_value(Value v);
  /// Peeks `depth` values below the top of the stack (0 = top) without
  /// popping — used to read syscall arguments while keeping the state
  /// restartable during a blocking operation. Callers must check
  /// stack_depth() (or the returned tag) before trusting the value: peeking
  /// past the end returns unit.
  Value peek_value(size_t depth = 0) const {
    if (depth >= state_.stack.size()) return Value::unit();
    return state_.stack[state_.stack.size() - 1 - depth];
  }
  size_t stack_depth() const { return state_.stack.size(); }
  /// Marks the pending syscall done: advances past the instruction. Call
  /// after popping the arguments and pushing any result.
  void complete_syscall() {
    if (!state_.frames.empty()) {
      ++state_.frames.back().pc;
      ++state_.steps_executed;
      if (obs_retired_ != nullptr) obs_retired_->add(1);
    }
  }

  // --- state access (checkpointing) ---
  const VmState& state() const { return state_; }
  VmState& mutable_state() { return state_; }
  /// Installs a restored state; arithmetic continues under this
  /// interpreter's machine (which may differ from the saving machine).
  /// The state is vetted against the verifier's depth facts before the
  /// fast loop will touch it; anything inconsistent (corrupt or
  /// hand-crafted images) runs on the checked loop, which re-validates
  /// everything per instruction.
  void set_state(VmState s);

  const sim::Machine& machine() const { return machine_; }
  const Program& program() const { return program_; }
  bool halted() const { return halted_; }

  /// True when the verifier licensed the fast loop for this program (and
  /// the current state passed restore vetting).
  bool fast_dispatch() const {
    return dispatch_ != Dispatch::kChecked && state_fast_ok_;
  }

  /// Execution counters, mirrored into `sim.vm.*` when a hub is attached.
  struct ExecStats {
    uint64_t fast_instrs = 0;     ///< retired with checks elided
    uint64_t checked_instrs = 0;  ///< retired through the checked step
    uint64_t fused_hits = 0;      ///< superinstructions executed
  };
  const ExecStats& exec_stats() const { return stats_; }

  /// Attaches sim.vm.* counters (instructions retired, fast vs checked
  /// dispatch, fused-op hits) to `hub`; nullptr detaches.
  void set_obs(obs::Hub* hub);

 private:
  enum class StepOutcome : uint8_t { kContinue = 0, kHalted, kTrap, kSyscall };

  RunResult run_checked(uint64_t max_steps);
  RunResult run_fast(uint64_t max_steps);
  /// Executes exactly one instruction with every runtime check — the
  /// original interpreter loop body, shared verbatim by the checked loop
  /// and the fast loop's escape hatch.
  StepOutcome step_checked_one(RunResult& out);

  RunResult trap(std::string why);
  bool pop2_ints(int64_t& a, int64_t& b, RunResult& out);
  bool pop2_floats(double& a, double& b, RunResult& out);
  /// Internal pop preserving the legacy "empty pops unit" behavior the
  /// checked opcodes rely on for their own trap messages.
  Value pop_or_unit() {
    if (state_.stack.empty()) return Value::unit();
    Value v = state_.stack.back();
    state_.stack.pop_back();
    return v;
  }
  /// Machine-word wrap as a precomputed shift pair (0 on 64-bit machines):
  /// hoisted out of the hot loop instead of a per-run lambda.
  int64_t wrap(int64_t v) const {
    return static_cast<int64_t>(static_cast<uint64_t>(v) << wrap_shift_) >>
           wrap_shift_;
  }
  bool restored_state_fast_ok() const;
  void note_fast(uint64_t n, uint64_t fused);
  void note_checked(uint64_t n);

  const Program& program_;
  sim::Machine machine_;
  VmState state_;
  bool halted_ = false;

  Dispatch dispatch_ = Dispatch::kChecked;
  bool state_fast_ok_ = true;
  unsigned wrap_shift_ = 0;
  ProgramFacts facts_;
  PreparedProgram prepared_;
  std::string host_trap_;
  ExecStats stats_;
  obs::Counter* obs_retired_ = nullptr;
  obs::Counter* obs_fast_ = nullptr;
  obs::Counter* obs_checked_ = nullptr;
  obs::Counter* obs_fused_ = nullptr;
};

}  // namespace starfish::vm
