#include "vm/value.hpp"

namespace starfish::vm {

std::string Value::to_string() const {
  switch (tag) {
    case Tag::kUnit: return "()";
    case Tag::kInt: return std::to_string(i);
    case Tag::kFloat: return std::to_string(f);
    case Tag::kBool: return i ? "true" : "false";
    case Tag::kRef: return "ref#" + std::to_string(ref);
  }
  return "?";
}

uint64_t VmState::footprint_bytes() const {
  uint64_t total = 0;
  total += (globals.size() + stack.size()) * sizeof(Value);
  for (const auto& f : frames) total += sizeof(Frame) + f.locals.size() * sizeof(Value);
  for (const auto& o : heap) {
    total += sizeof(HeapObject) + o.fields.size() * sizeof(Value) + o.bytes.size();
  }
  return total;
}

int64_t wrap_to_word(int64_t v, const sim::Machine& machine) {
  if (machine.word_bytes >= 8) return v;
  return static_cast<int64_t>(static_cast<int32_t>(static_cast<uint64_t>(v) & 0xffffffffu));
}

bool fits_word(int64_t v, const sim::Machine& machine) {
  if (machine.word_bytes >= 8) return true;
  return v >= INT32_MIN && v <= INT32_MAX;
}

}  // namespace starfish::vm
