// Value and state model of the Starfish virtual machine.
//
// The paper checkpoints OCaml bytecode programs at the virtual-machine level
// so that a state saved on one architecture restores on another (section 4,
// [2]). We reproduce the essential property with a small stack VM: its
// complete execution state — globals, operand stack, call frames, heap — is
// a plain data structure with *no* host pointers, so it can be serialized in
// the saving machine's native representation and converted on restore.
//
// Word-size semantics matter for heterogeneity: integer arithmetic wraps to
// the simulated machine's word length (32- or 64-bit), exactly the hazard
// heterogeneous checkpointing has to preserve and check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "util/buffer.hpp"

namespace starfish::vm {

using HeapIndex = uint32_t;
constexpr HeapIndex kNullRef = UINT32_MAX;

enum class Tag : uint8_t { kUnit = 0, kInt = 1, kFloat = 2, kBool = 3, kRef = 4 };

struct Value {
  Tag tag = Tag::kUnit;
  int64_t i = 0;       ///< kInt (wrapped to machine word) / kBool (0 or 1)
  double f = 0.0;      ///< kFloat
  HeapIndex ref = kNullRef;  ///< kRef

  static Value unit() { return {}; }
  static Value integer(int64_t v) { return Value{Tag::kInt, v, 0.0, kNullRef}; }
  static Value real(double v) { return Value{Tag::kFloat, 0, v, kNullRef}; }
  static Value boolean(bool v) { return Value{Tag::kBool, v ? 1 : 0, 0.0, kNullRef}; }
  static Value reference(HeapIndex h) { return Value{Tag::kRef, 0, 0.0, h}; }

  bool operator==(const Value&) const = default;
  std::string to_string() const;
};

/// Heap object: an array of values or a byte string.
struct HeapObject {
  enum class Kind : uint8_t { kArray = 0, kBytes = 1 };
  Kind kind = Kind::kArray;
  std::vector<Value> fields;  ///< kArray
  util::Bytes bytes;          ///< kBytes

  bool operator==(const HeapObject&) const = default;
};

/// One call frame: function index, program counter, locals.
struct Frame {
  uint32_t function = 0;
  uint32_t pc = 0;
  std::vector<Value> locals;

  bool operator==(const Frame&) const = default;
};

/// The complete machine-independent execution state (plus the machine whose
/// word semantics currently govern arithmetic).
struct VmState {
  std::vector<Value> globals;
  std::vector<Value> stack;
  std::vector<Frame> frames;
  std::vector<HeapObject> heap;
  uint64_t steps_executed = 0;

  bool operator==(const VmState&) const = default;

  /// Rough in-memory footprint; drives simulated-disk accounting.
  uint64_t footprint_bytes() const;
};

/// Wraps an integer to the word length of `machine` (two's complement).
int64_t wrap_to_word(int64_t v, const sim::Machine& machine);
/// True iff `v` is representable in `machine`'s word.
bool fits_word(int64_t v, const sim::Machine& machine);

}  // namespace starfish::vm
